//! Quickstart: solve the nonlocal heat equation on a simulated two-node
//! cluster and validate against the manufactured solution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // A 64x64 mesh over [0,1]^2 with horizon eps = 4h, decomposed into
    // 8x8-cell sub-domains, distributed over two simulated localities with
    // two worker threads each.
    let cluster = ClusterBuilder::new().uniform(2, 2).build();
    let mut cfg = DistConfig::new(64, 4.0, 8, 25);
    cfg.record_error = true;

    println!(
        "mesh 64x64, eps = 4h, 25 timesteps on {} localities",
        cluster.len()
    );
    let report = run_distributed(&cluster, &cfg);

    let error = report.error.as_ref().unwrap();
    println!("elapsed:          {:?}", report.elapsed);
    println!(
        "total error e:    {:.3e}   (eq. 7 vs manufactured solution)",
        error.total()
    );
    println!("max step error:   {:.3e}", error.max_step());
    println!(
        "busy time (ms):   {:?}",
        report
            .busy_ns
            .iter()
            .map(|&ns| ns as f64 / 1e6)
            .collect::<Vec<_>>()
    );
    println!(
        "ghost traffic:    {} messages, {} bytes crossed the wire",
        cluster.net_stats().messages(),
        cluster.net_stats().cross_bytes()
    );

    // Cross-check against the single-threaded reference solver: the
    // distributed result is bit-for-bit identical.
    let parts = cfg.spec.build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(cfg.n_steps);
    assert_eq!(report.field, serial.field(), "distributed == serial");
    println!("distributed field matches the serial solver bit-for-bit ✓");
}
