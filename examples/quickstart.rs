//! Quickstart: describe one scenario, run it on the real runtime, and
//! validate against the manufactured solution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // A 64x64 mesh over [0,1]^2 with horizon eps = 4h, decomposed into
    // 8x8-cell sub-domains, on two declared nodes of two cores each —
    // one Scenario value describes the whole experiment.
    let scenario = Scenario::square(64, 4.0, 8, 25)
        .on(ClusterSpec::uniform(2, 2))
        .with_record_error(true);

    println!(
        "mesh 64x64, eps = 4h, 25 timesteps on {} localities",
        scenario.cluster.len()
    );
    let report = scenario.run_dist();

    let error = report.error.as_ref().unwrap();
    let extras = report.dist_extras().expect("real-runtime extras");
    println!("elapsed:          {:?}", extras.elapsed);
    println!(
        "total error e:    {:.3e}   (eq. 7 vs manufactured solution)",
        error.total()
    );
    println!("max step error:   {:.3e}", error.max_step());
    println!(
        "busy time (ms):   {:?}",
        report.busy.iter().map(|&s| s * 1e3).collect::<Vec<_>>()
    );
    println!(
        "ghost traffic:    {} messages, {} bytes crossed the wire",
        extras.wire_messages, extras.wire_cross_bytes
    );

    // Cross-check against the single-threaded reference solver: the
    // distributed result is bit-for-bit identical.
    let parts = scenario.problem.build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(scenario.steps);
    assert_eq!(
        report.field.as_deref(),
        Some(serial.field().as_slice()),
        "distributed == serial"
    );
    println!("distributed field matches the serial solver bit-for-bit ✓");

    // The same scenario through the discrete-event simulator: no field,
    // but the timing shape of the run in virtual seconds.
    let sim = scenario.run_sim();
    println!(
        "simulator makespan: {:.3} ms over {} nodes",
        sim.makespan * 1e3,
        sim.busy.len()
    );
}
