//! Validation of the discretization (the Fig. 8 study): the total error
//! (eq. 7) against the manufactured solution decreases as the mesh is
//! refined.
//!
//! ```text
//! cargo run --release --example convergence
//! ```

use nonlocalheat::prelude::*;

fn main() {
    println!("manufactured solution w = cos(2πt) sin(2πx) sin(2πy), eps = 8h, 20 steps\n");
    println!("{:>6} {:>12} {:>14} {:>12}", "n", "h", "dt", "total error");
    let mut last: Option<f64> = None;
    for exp in 2..=6u32 {
        let n = 1usize << exp;
        let parts = ProblemSpec::paper(n).build();
        let dt = parts.dt;
        let mut solver = SerialSolver::manufactured(&parts);
        let err = solver.run_with_error(20).total();
        let ratio = last
            .map(|p| format!("  ({:.2}x smaller)", p / err))
            .unwrap_or_default();
        println!(
            "{:>6} {:>12.6} {:>14.6e} {:>12.4e}{ratio}",
            n,
            1.0 / n as f64,
            dt,
            err
        );
        last = Some(err);
    }
    println!("\nerror decreases monotonically with h — the Fig. 8 validation.");
}
