//! Sweeping scenario grids: the fleet-scale experiment harness.
//!
//! One [`ScenarioSweep`] = a base [`Scenario`] × named axes, expanded
//! into the labeled cross product and executed by a multi-threaded
//! worker pool. Results stream as JSONL (stable `run` index, so parallel
//! output canonicalizes by sort) and tabulate into a [`SweepSummary`] —
//! the per-axis-value view the A6–A9 ablation figures are built from.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // --- a λ × μ grid of ghost-aware tree plans on the two-rack net ---
    // λ prices one-off migration bytes, μ the recurring ghost cut; the
    // grid shows both knobs' traffic/makespan trade-off in one table.
    let base = Scenario::square(200, 8.0, 25, 8)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(scenarios::two_rack_net());
    let sweep = ScenarioSweep::new(base)
        .axis(Axis::numeric("lambda", &[0.0, 1.0, 4.0], |sc, l| {
            sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::tree(l)))
        }))
        .axis(Axis::numeric("mu", &[0.0, 0.05, 0.25], |mut sc, mu| {
            if let Some(lb) = &mut sc.lb {
                lb.spec = lb.spec.clone().with_mu(mu);
            }
            sc
        }))
        .with_parallelism(4);
    println!(
        "== 3x3 lambda x mu grid, {} runs, worker ceiling {} ==",
        sweep.runs(),
        sweep.parallelism()
    );

    // stream one JSON line per run as it completes...
    let mut sink = JsonlSink::new(Vec::<u8>::new());
    sweep.run(&SimSubstrate, &mut sink);
    let jsonl = String::from_utf8(sink.into_inner()).unwrap();
    println!("\nfirst two JSONL rows (of {}):", sink_rows(&jsonl));
    for line in jsonl.lines().take(2) {
        println!("{line}");
    }

    // ...or collect and tabulate per-axis-value aggregates
    let records = sweep.run_collect(&SimSubstrate);
    println!("\n{}", SweepSummary::from_records(&records).to_markdown());

    // every row parses back — offline tooling reads the same schema
    let parsed = RunRecord::from_json_line(jsonl.lines().next().unwrap()).unwrap();
    println!(
        "row round-trip: run {} at lambda={} mu={} -> {} migrations",
        parsed.index,
        parsed.axis_label("lambda").unwrap(),
        parsed.axis_label("mu").unwrap(),
        parsed.migrations
    );

    // --- the whole named scenario library as one categorical axis ---
    let library = ScenarioSweep::new(scenarios::paper_baseline(true))
        .axis(Axis::scenarios("scenario", scenarios::all(true)))
        .with_parallelism(2);
    let records = library.run_collect(&SimSubstrate);
    println!("\n== quick scenario library on the simulator ==\n");
    println!("{}", SweepSummary::from_records(&records).to_markdown());
}

fn sink_rows(jsonl: &str) -> usize {
    jsonl.lines().count()
}
