//! The fracture-model motivation of §7: SDs containing the crack do less
//! bond work than intact SDs, so a static distribution goes idle around
//! the crack. Algorithm 1 rebalances using only busy-time counters — it
//! needs no knowledge of where the crack is.
//!
//! One declarative [`Scenario`] describes the workload; the simulator
//! quantifies the win at paper scale and the real runtime executes the
//! same crack (bit-exact numerics) at smoke scale.
//!
//! ```text
//! cargo run --release --example crack_workload
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // A horizontal "crack" band across the middle of the domain: the SDs
    // it touches only do a quarter of the bond work. Strip distribution
    // deliberately gives one node the whole cheap band.
    let scenario = Scenario::square(400, 8.0, 25, 40)
        .on(ClusterSpec::uniform(4, 1))
        .with_partition(PartitionSpec::Strip)
        .with_work(WorkModel::Crack {
            y_cell: 200,
            half_width: 30,
            factor: 0.25,
        });

    let off = scenario.clone().run_sim();
    let on = scenario.clone().with_lb(LbSchedule::every(4)).run_sim();

    let fractions = |r: &RunReport| {
        r.sim_extras()
            .map(|s| {
                s.busy_fraction
                    .iter()
                    .map(|f| format!("{f:.2}"))
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default()
    };
    println!("== crack workload: 400x400 mesh, 16x16 SDs, 4 symmetric nodes ==");
    println!("crack band: cells y in [170, 230], work factor 0.25");
    println!(
        "makespan without LB: {:.2} ms  busy fractions {:?}",
        off.makespan * 1e3,
        fractions(&off)
    );
    println!(
        "makespan with LB:    {:.2} ms  busy fractions {:?}",
        on.makespan * 1e3,
        fractions(&on)
    );
    println!(
        "speedup: {:.2}x with {} SD migrations",
        off.makespan / on.makespan,
        on.migrations
    );
    println!("\nfinal ownership (node ids; crack band rows own more SDs):");
    println!("{}", on.final_ownership.render());
    for (node, count) in on.final_ownership.counts().iter().enumerate() {
        println!("node {node}: {count} SDs");
    }

    // The same experiment shape on the real runtime at smoke scale: the
    // crack is emulated by kernel repetition, so the solution matches the
    // serial solver bit for bit while the balancer chases the band.
    let real = Scenario::square(48, 2.0, 8, 12)
        .on(ClusterSpec::uniform(4, 1))
        .with_partition(PartitionSpec::Strip)
        .with_work(WorkModel::Crack {
            y_cell: 24,
            half_width: 4,
            factor: 0.25,
        })
        .with_lb(LbSchedule::every(3))
        .run_dist();
    println!(
        "\nreal runtime (48x48 smoke): {} migrations, final counts {:?}",
        real.migrations,
        real.final_ownership.counts()
    );
}
