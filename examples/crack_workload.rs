//! The fracture-model motivation of §7: SDs containing the crack do less
//! bond work than intact SDs, so a static distribution goes idle around
//! the crack. Algorithm 1 rebalances using only busy-time counters — it
//! needs no knowledge of where the crack is.
//!
//! ```text
//! cargo run --release --example crack_workload
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // A horizontal "crack" band across the middle of the domain: the SDs
    // it touches only do a quarter of the bond work.
    let crack = WorkModel::Crack {
        y_cell: 200,
        half_width: 30,
        factor: 0.25,
    };

    // Strip distribution deliberately gives one node the whole cheap band.
    let nodes: Vec<VirtualNode> = (0..4).map(|_| VirtualNode::with_cores(1)).collect();
    let mut cfg = SimConfig::paper(400, 25, 40, nodes);
    cfg.partition = nonlocalheat::sim::SimPartition::Strip;
    cfg.work = crack.clone();

    cfg.lb = None;
    let off = simulate(&cfg);
    cfg.lb = Some(SimLbConfig::every(4));
    let on = simulate(&cfg);

    println!("== crack workload: 400x400 mesh, 16x16 SDs, 4 symmetric nodes ==");
    println!("crack band: cells y in [170, 230], work factor 0.25");
    println!(
        "makespan without LB: {:.2} ms  busy fractions {:?}",
        off.total_time * 1e3,
        off.busy_fraction
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "makespan with LB:    {:.2} ms  busy fractions {:?}",
        on.total_time * 1e3,
        on.busy_fraction
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "speedup: {:.2}x with {} SD migrations",
        off.total_time / on.total_time,
        on.migrations
    );
    println!("\nfinal ownership (node ids; crack band rows own more SDs):");
    println!("{}", on.final_ownership.render());
    for (node, count) in on.final_ownership.counts().iter().enumerate() {
        println!("node {node}: {count} SDs");
    }
}
