//! Heterogeneous cluster: four localities with different compute speeds.
//!
//! One declarative [`Scenario`] drives **both** substrates: the real AMT
//! runtime shows Algorithm 1 migrating SDs (bit-exact numerics), and the
//! discrete-event simulator quantifies the makespan win at paper scale.
//! Everything below — network models, the λ and μ knobs, the policy
//! duel — swaps one field of the scenario and reruns.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // --- the scenario library's heterogeneous cluster, both substrates ---
    // speeds [2.0, 1.0, 1.0, 0.5]: without balancing the half-speed node
    // drags every step.
    let quick = scenarios::heterogeneous_cluster(true);
    println!(
        "== real runtime: {}x{} mesh, speeds [2.0, 1.0, 1.0, 0.5] ==",
        quick.problem.n, quick.problem.n
    );
    let report = quick.run_dist();
    println!("SD migrations: {}", report.migrations);
    for (epoch, counts) in report.lb_history.iter().enumerate() {
        println!("after LB epoch {}: SD counts {:?}", epoch + 1, counts);
    }
    println!("final ownership:\n{}", report.final_ownership.render());

    // --- simulator: the same cluster at paper scale (400x400) ---
    let paper = scenarios::heterogeneous_cluster(false);
    let off = paper.clone().without_lb().run_sim();
    let on = paper.run_sim();
    let fractions = |r: &RunReport| {
        r.sim_extras()
            .map(|s| {
                s.busy_fraction
                    .iter()
                    .map(|f| format!("{f:.2}"))
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default()
    };
    println!("\n== simulator: 400x400 mesh, 16x16 SDs, 40 steps ==");
    println!(
        "makespan without LB: {:.2} ms   busy fractions {:?}",
        off.makespan * 1e3,
        fractions(&off)
    );
    println!(
        "makespan with LB:    {:.2} ms   busy fractions {:?}",
        on.makespan * 1e3,
        fractions(&on)
    );
    println!(
        "speedup from load balancing: {:.2}x ({} SDs migrated)",
        off.makespan / on.makespan,
        on.migrations
    );

    // --- topology-aware network: two racks, slow inter-rack uplink ---
    // The same NetSpec drives both substrates: the real fabric delays
    // ghost parcels according to the rack topology (numerics unchanged),
    // and the simulator quantifies the cost of rack crossings at scale.
    let topo = NetSpec::Topology(TopologySpec {
        ranks_per_node: 1,
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(0.0, f64::INFINITY),
        intra_rack: LinkSpec::new(100e-6, 1e8),
        inter_rack: LinkSpec::new(500e-6, 1e7),
    });
    let racked = Scenario::square(48, 2.0, 8, 8)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(topo)
        .with_lb(LbSchedule::every(3));
    println!("\n== real runtime on 2 racks x 2 nodes (slow inter-rack uplink) ==");
    let report = racked.run_dist();
    let extras = report.dist_extras().expect("real-runtime extras");
    println!(
        "wall time {:?}, {} messages, {:.1} KB planner-grade ghost traffic \
         ({:.1} KB of it inter-rack)",
        extras.elapsed,
        extras.wire_messages,
        report.ghost_bytes as f64 / 1e3,
        report.inter_rack_ghost_bytes as f64 / 1e3,
    );

    // Harsher uplink at paper scale: the cross-rack ghost volume rivals
    // the compute time, so the topology becomes visible in the makespan —
    // and case-1/case-2 overlap wins back most of it.
    let congested = NetSpec::Topology(TopologySpec {
        ranks_per_node: 1,
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(0.0, f64::INFINITY),
        intra_rack: LinkSpec::new(100e-6, 1e8),
        inter_rack: LinkSpec::new(500e-6, 1e6),
    });
    let sim_base = Scenario::square(400, 8.0, 25, 20).on(ClusterSpec::uniform(4, 1));
    for (label, net) in [
        ("in-rack only (shared 10 GB/s)", NetSpec::cluster()),
        ("2 racks, congested 1 MB/s uplink", congested),
    ] {
        let hidden = sim_base.clone().with_net(net).run_sim();
        let exposed = sim_base.clone().with_net(net).with_overlap(false).run_sim();
        let cross = hidden.sim_extras().map_or(0, |s| s.cross_bytes);
        println!(
            "sim {label}: makespan {:.2} ms overlapped / {:.2} ms without overlap, {:.1} MB cross-node",
            hidden.makespan * 1e3,
            exposed.makespan * 1e3,
            cross as f64 / 1e6
        );
    }

    // --- communication-aware balancing: the λ knob ---
    // Each rack pairs a fast and a slow node, so the useful rebalancing
    // flow is intra-rack; the count-based planner (λ = 0) still routes
    // part of every settlement over the slow uplink. λ > 0 gates a
    // migration unless its busy-time relief covers λ x the estimated
    // transfer seconds — inter-rack migration bytes drop while the
    // makespan holds (ablation A7 sweeps this in full).
    let lam_base = Scenario::square(400, 8.0, 25, 16)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(scenarios::two_rack_net());
    println!("\n== cost-aware balancing on 2 racks (speeds 2:1 in each rack) ==");
    for lambda in [0.0, 1.0, 2.0] {
        let run = lam_base
            .clone()
            .with_lb(LbSchedule::every(4).with_spec(LbSpec::Tree { lambda, mu: 0.0 }))
            .run_sim();
        println!(
            "lambda {lambda}: {:>6.1} KB inter-rack / {:>6.1} KB total migration traffic, makespan {:.2} ms",
            run.inter_rack_migration_bytes as f64 / 1e3,
            run.migration_bytes as f64 / 1e3,
            run.makespan * 1e3
        );
    }

    // --- pluggable balancing policies: the LbSpec seam ---
    // The same scenario value drives every policy on both substrates
    // (ablation A8 sweeps this in full; numerics on the real runtime are
    // bit-exact under every policy — the test suite pins that).
    println!("\n== LB policy comparison, same 2-rack cluster (simulator) ==");
    let specs = [
        LbSpec::tree(1.0),
        LbSpec::diffusion(1.0, 8),
        LbSpec::greedy_steal(1),
        LbSpec::adaptive(LbSpec::tree(0.0), 0.05),
        LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.3),
    ];
    for spec in &specs {
        let run = lam_base
            .clone()
            .with_lb(LbSchedule::every(4).with_spec(spec.clone()))
            .run_sim();
        println!(
            "{:>15}: makespan {:.2} ms, {} SDs migrated, {:>6.1} KB inter-rack",
            spec.name(),
            run.makespan * 1e3,
            run.migrations,
            run.inter_rack_migration_bytes as f64 / 1e3,
        );
    }

    // ... and the identical specs through the real runtime at smoke scale.
    println!("\n== LB policy comparison, real runtime on the 2-rack fabric ==");
    let real_base = Scenario::square(48, 2.0, 8, 8)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(scenarios::two_rack_net());
    for spec in &specs[1..] {
        let report = real_base
            .clone()
            .with_lb(LbSchedule::every(3).with_spec(spec.clone()))
            .run_dist();
        println!(
            "{:>15}: {} SDs migrated, final counts {:?}",
            spec.name(),
            report.migrations,
            report.final_ownership.counts()
        );
    }

    // --- the propagating crack on real hardware ---
    // The work_schedule used to be simulator-only; the unified Scenario
    // runs it on the real runtime too (kernel repetition emulates the
    // factor, so numerics stay bit-exact while the busy times shift).
    let crack = scenarios::propagating_crack(true);
    let report = crack.run_dist();
    println!(
        "\n== propagating crack on the real runtime ({} steps) ==",
        crack.steps
    );
    println!(
        "{} migrations over {} epochs as the cheap band moved",
        report.migrations,
        report.epoch_traces.len()
    );
}
