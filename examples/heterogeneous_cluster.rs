//! Heterogeneous cluster: four localities with different compute speeds.
//!
//! Without load balancing the slow node drags every step; with the
//! paper's Algorithm 1 the busy-time counters drive SDs toward the fast
//! nodes until idle time is minimal. The real runtime shows the migration
//! happening; the discrete-event simulator quantifies the makespan win at
//! paper scale.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use nonlocalheat::prelude::*;

fn main() {
    // --- real runtime: watch Algorithm 1 migrate SDs ---
    let cluster = ClusterBuilder::new()
        .node(1, 2.0) // twice nominal speed
        .node(1, 1.0)
        .node(1, 1.0)
        .node(1, 0.5) // half speed
        .build();
    let mut cfg = DistConfig::new(48, 2.0, 8, 12);
    cfg.lb = Some(LbConfig::every(3));
    println!("== real runtime: 48x48 mesh, 6x6 SDs, speeds [2.0, 1.0, 1.0, 0.5] ==");
    let report = run_distributed(&cluster, &cfg);
    println!("SD migrations: {}", report.migrations);
    for (epoch, counts) in report.lb_history.iter().enumerate() {
        println!("after LB epoch {}: SD counts {:?}", epoch + 1, counts);
    }
    println!("final ownership:\n{}", report.final_ownership.render());

    // --- simulator: the same scenario at paper scale (400x400) ---
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 2.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 0.5,
        },
    ];
    let mut sim_cfg = SimConfig::paper(400, 25, 40, nodes);
    sim_cfg.lb = None;
    let off = simulate(&sim_cfg);
    sim_cfg.lb = Some(SimLbConfig::every(4));
    let on = simulate(&sim_cfg);
    println!("\n== simulator: 400x400 mesh, 16x16 SDs, 40 steps ==");
    println!(
        "makespan without LB: {:.2} ms   busy fractions {:?}",
        off.total_time * 1e3,
        off.busy_fraction
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "makespan with LB:    {:.2} ms   busy fractions {:?}",
        on.total_time * 1e3,
        on.busy_fraction
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "speedup from load balancing: {:.2}x ({} SDs migrated)",
        off.total_time / on.total_time,
        on.migrations
    );

    // --- topology-aware network: two racks, slow inter-rack uplink ---
    // The same NetSpec drives both substrates: the real fabric delays
    // ghost parcels according to the rack topology (numerics unchanged),
    // and the simulator quantifies the cost of rack crossings at scale.
    let topo = NetSpec::Topology(TopologySpec {
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(0.0, f64::INFINITY),
        intra_rack: LinkSpec::new(100e-6, 1e8),
        inter_rack: LinkSpec::new(500e-6, 1e7),
    });
    let mut cfg = DistConfig::new(48, 2.0, 8, 8);
    cfg.net = topo;
    cfg.lb = Some(LbConfig::every(3));
    let cluster = cfg.cluster().uniform(4, 1).build();
    println!("\n== real runtime on 2 racks x 2 nodes (slow inter-rack uplink) ==");
    let report = run_distributed(&cluster, &cfg);
    let stats = cluster.net_stats();
    println!(
        "wall time {:?}, {} messages, {} cross-rack bytes 0<->2 / {} in-rack bytes 0<->1",
        report.elapsed,
        stats.messages(),
        stats.pair_bytes(0, 2) + stats.pair_bytes(2, 0),
        stats.pair_bytes(0, 1) + stats.pair_bytes(1, 0),
    );

    let mut sim_cfg = SimConfig::paper(
        400,
        25,
        20,
        (0..4).map(|_| VirtualNode::with_cores(1)).collect(),
    );
    // Harsher uplink than the real-runtime demo above (1 MB/s): at paper
    // scale the cross-rack ghost volume then rivals the compute time, so
    // the topology becomes visible in the makespan — and case-1/case-2
    // overlap wins back most of it.
    let congested = NetSpec::Topology(TopologySpec {
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(0.0, f64::INFINITY),
        intra_rack: LinkSpec::new(100e-6, 1e8),
        inter_rack: LinkSpec::new(500e-6, 1e6),
    });
    for (label, net) in [
        ("in-rack only (shared 10 GB/s)", NetSpec::cluster()),
        ("2 racks, congested 1 MB/s uplink", congested),
    ] {
        sim_cfg.net = net;
        sim_cfg.overlap = true;
        let hidden = simulate(&sim_cfg);
        sim_cfg.overlap = false;
        let exposed = simulate(&sim_cfg);
        println!(
            "sim {label}: makespan {:.2} ms overlapped / {:.2} ms without overlap, {:.1} MB cross-node",
            hidden.total_time * 1e3,
            exposed.total_time * 1e3,
            hidden.cross_bytes as f64 / 1e6
        );
    }

    // --- communication-aware balancing: the λ knob ---
    // Each rack pairs a fast and a slow node, so the useful rebalancing
    // flow is intra-rack; the count-based planner (λ = 0) still routes
    // part of every settlement over the slow uplink. λ > 0 gates a
    // migration unless its busy-time relief covers λ x the estimated
    // transfer seconds — inter-rack migration bytes drop while the
    // makespan holds (ablation A7 sweeps this in full).
    let nodes: Vec<VirtualNode> = [2.0, 1.0, 2.0, 1.0]
        .iter()
        .map(|&speed| VirtualNode { cores: 1, speed })
        .collect();
    let mut lam_cfg = SimConfig::paper(400, 25, 16, nodes);
    lam_cfg.partition = nonlocalheat::sim::SimPartition::Strip;
    lam_cfg.net = NetSpec::Topology(TopologySpec {
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(1e-7, 5e9),
        intra_rack: LinkSpec::new(1e-4, 1e8),
        inter_rack: LinkSpec::new(4e-4, 2.5e7),
    });
    println!("\n== cost-aware balancing on 2 racks (speeds 2:1 in each rack) ==");
    for lambda in [0.0, 1.0, 2.0] {
        lam_cfg.lb = Some(SimLbConfig::every(4).with_spec(LbSpec::Tree { lambda, mu: 0.0 }));
        let run = simulate(&lam_cfg);
        println!(
            "lambda {lambda}: {:>6.1} KB inter-rack / {:>6.1} KB total migration traffic, makespan {:.2} ms",
            run.inter_rack_migration_bytes as f64 / 1e3,
            run.migration_bytes as f64 / 1e3,
            run.total_time * 1e3
        );
    }

    // --- pluggable balancing policies: the LbSpec seam ---
    // One LbSchedule type drives both substrates; swapping the spec
    // compares the paper's tree planner against diffusion, greedy
    // stealing and the adaptive-λ decorator on the identical workload
    // (ablation A8 sweeps this in full).
    println!("\n== LB policy comparison, same 2-rack cluster (simulator) ==");
    for spec in [
        LbSpec::tree(1.0),
        LbSpec::diffusion(1.0, 8),
        LbSpec::greedy_steal(1),
        LbSpec::adaptive(LbSpec::tree(0.0), 0.05),
    ] {
        lam_cfg.lb = Some(SimLbConfig::every(4).with_spec(spec.clone()));
        let run = simulate(&lam_cfg);
        println!(
            "{:>15}: makespan {:.2} ms, {} SDs migrated, {:>6.1} KB inter-rack",
            spec.name(),
            run.total_time * 1e3,
            run.migrations,
            run.inter_rack_migration_bytes as f64 / 1e3,
        );
    }

    // ... and the identical specs through the real runtime: the numerics
    // are policy-independent (bit-exact against the serial solver; the
    // test suite pins that), only where the SDs end up changes.
    println!("\n== LB policy comparison, real runtime on the 2-rack fabric ==");
    for spec in [
        LbSpec::diffusion(1.0, 8),
        LbSpec::greedy_steal(1),
        LbSpec::adaptive(LbSpec::tree(0.0), 0.05),
    ] {
        let mut cfg = DistConfig::new(48, 2.0, 8, 8);
        cfg.net = topo;
        cfg.lb = Some(LbConfig::every(3).with_spec(spec.clone()));
        let cluster = cfg.cluster().uniform(4, 1).build();
        let report = run_distributed(&cluster, &cfg);
        println!(
            "{:>15}: {} SDs migrated, final counts {:?}",
            spec.name(),
            report.migrations,
            report.final_ownership.counts()
        );
    }
}
