//! Mesh partitioning demo: decompose the Fig. 13 SD grid (16x16 SDs)
//! across computational nodes with the multilevel partitioner and compare
//! the data-exchange cost against naive strips.
//!
//! ```text
//! cargo run --release --example partitioning
//! ```

use nonlocalheat::mesh::SdGrid;
use nonlocalheat::partition::{balance, edge_cut, part_mesh_dual, sd_dual_graph, strip_partition};

fn render(sds: &SdGrid, parts: &[u32]) -> String {
    let mut out = String::new();
    for sy in (0..sds.nsy).rev() {
        for sx in 0..sds.nsx {
            out.push_str(&format!("{:>3}", parts[sds.id(sx, sy) as usize]));
        }
        out.push('\n');
    }
    out
}

fn main() {
    let sds = SdGrid::new(16, 16, 50); // the paper's 800x800 mesh, SD 50x50
    let dual = sd_dual_graph(&sds);
    println!(
        "dual graph: {} SDs, {} adjacencies, SD weight {} DPs\n",
        dual.n(),
        dual.n_edges(),
        dual.vwgt[0]
    );
    for k in [4u32, 8, 16] {
        let metis = part_mesh_dual(&sds, k, 1);
        let strip = strip_partition(&sds, k);
        println!(
            "k = {k:2}: multilevel cut = {:5} cells  (balance {:.3}),  strip cut = {:5} cells",
            metis.edgecut,
            balance(&dual, &metis.parts, k),
            edge_cut(&dual, &strip),
        );
    }
    let p4 = part_mesh_dual(&sds, 4, 1);
    println!("\n4-way multilevel partition of the 16x16 SD grid:");
    println!("{}", render(&sds, &p4.parts));
    println!("4-way strips, for comparison:");
    println!("{}", render(&sds, &strip_partition(&sds, 4)));
}
