//! Cross-crate integration: the distributed solver must produce exactly
//! the serial solver's numbers under every decomposition, distribution,
//! overlap mode and cluster shape — every run described through the
//! declarative `Scenario` API.

use nonlocalheat::prelude::*;

fn serial_field(n: usize, eps_mult: f64, steps: usize) -> Vec<f64> {
    let parts = ProblemSpec::square(n, eps_mult).build();
    let mut s = SerialSolver::manufactured(&parts);
    s.run(steps);
    s.field()
}

#[test]
fn matrix_of_cluster_shapes() {
    let reference = serial_field(24, 2.0, 5);
    for nodes in [1usize, 2, 3, 4] {
        for cores in [1usize, 2] {
            let report = Scenario::square(24, 2.0, 6, 5)
                .on(ClusterSpec::uniform(nodes, cores))
                .run_dist();
            assert_eq!(
                report.field.as_ref(),
                Some(&reference),
                "mismatch for {nodes} nodes x {cores} cores"
            );
        }
    }
}

#[test]
fn matrix_of_sd_sizes() {
    let reference = serial_field(24, 3.0, 4);
    for sd in [4usize, 6, 8, 12, 24] {
        let report = Scenario::square(24, 3.0, sd, 4)
            .on(ClusterSpec::uniform(2, 1))
            .run_dist();
        assert_eq!(
            report.field.as_ref(),
            Some(&reference),
            "mismatch for sd={sd}"
        );
    }
}

#[test]
fn overlap_and_partition_modes() {
    let reference = serial_field(20, 2.0, 4);
    for overlap in [true, false] {
        for partition in [PartitionSpec::Metis { seed: 7 }, PartitionSpec::Strip] {
            let report = Scenario::square(20, 2.0, 4, 4)
                .on(ClusterSpec::uniform(3, 1))
                .with_overlap(overlap)
                .with_partition(partition.clone())
                .run_dist();
            assert_eq!(
                report.field.as_ref(),
                Some(&reference),
                "mismatch overlap={overlap} partition={partition:?}"
            );
        }
    }
}

#[test]
fn horizon_larger_than_sd() {
    // eps = 6h with 4-cell SDs: ghosts span two SD rings across nodes.
    let reference = serial_field(16, 6.0, 3);
    let report = Scenario::square(16, 6.0, 4, 3)
        .on(ClusterSpec::uniform(4, 1))
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn shared_solver_agrees_with_distributed() {
    let dist = Scenario::square(16, 2.0, 4, 5)
        .on(ClusterSpec::uniform(2, 2))
        .run_dist();
    let shared = SharedSolver::new(SharedConfig::new(16, 2.0, 4, 5, 3)).run();
    assert_eq!(dist.field.as_ref(), Some(&shared.field));
}

#[test]
fn more_nodes_than_sds_leaves_idle_nodes_consistent() {
    // 4 SDs over 6 localities: two localities never own anything.
    let reference = serial_field(16, 2.0, 3);
    let report = Scenario::square(16, 2.0, 8, 3)
        .on(ClusterSpec::uniform(6, 1))
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn error_decreases_with_resolution_distributed() {
    // the Fig. 8 property measured through the distributed stack
    let mut totals = Vec::new();
    for n in [8usize, 16, 32] {
        let report = Scenario::square(n, 2.0, n / 4, 6)
            .on(ClusterSpec::uniform(2, 1))
            .with_record_error(true)
            .run_dist();
        totals.push(report.error.unwrap().total());
    }
    assert!(totals[0] > totals[1] && totals[1] > totals[2], "{totals:?}");
}

#[test]
fn repeated_runs_are_deterministic() {
    let run = || {
        Scenario::square(20, 2.0, 5, 5)
            .on(ClusterSpec::uniform(3, 2))
            .run_dist()
            .field
    };
    assert_eq!(run(), run());
}
