//! Integration pins for the `ScenarioSweep` layer: parallel execution is
//! deterministic in content, the JSONL stream round-trips, and a sweep
//! produces the same planner-grade measurements on both substrates under
//! modeled planning input.

use nonlocalheat::prelude::*;

/// A small λ × μ grid of ghost-aware tree plans on the two-rack
/// interconnect — every knob the flattened record reports gets exercised
/// (migrations, inter-rack bytes, epochs, final cut).
fn lambda_mu_sweep(parallelism: usize) -> ScenarioSweep {
    let base = Scenario::square(48, 4.0, 8, 6)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(scenarios::two_rack_net());
    ScenarioSweep::new(base)
        .axis(Axis::numeric("lambda", &[0.0, 1.0], |sc, l| {
            sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::tree(l)))
        }))
        .axis(Axis::numeric("mu", &[0.0, 0.01], |mut sc, mu| {
            if let Some(lb) = &mut sc.lb {
                lb.spec = lb.spec.clone().with_mu(mu);
            }
            sc
        }))
        .with_parallelism(parallelism)
}

fn sorted_jsonl(sweep: &ScenarioSweep) -> Vec<String> {
    let mut sink = JsonlSink::new(Vec::<u8>::new());
    sweep.run(&SimSubstrate, &mut sink);
    let text = String::from_utf8(sink.into_inner()).expect("utf8 jsonl");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort_unstable();
    lines
}

#[test]
fn parallel_sweep_is_deterministic_in_content() {
    // The determinism contract: identical sorted JSONL for any worker
    // count. Only completion order may differ — the stable run index
    // canonicalizes it away.
    let serial = sorted_jsonl(&lambda_mu_sweep(1));
    let parallel = sorted_jsonl(&lambda_mu_sweep(4));
    assert_eq!(serial.len(), 4);
    assert_eq!(
        serial, parallel,
        "sorted JSONL must be byte-identical across parallelism 1 and 4"
    );
}

#[test]
fn jsonl_stream_round_trips_through_the_parser() {
    // Every streamed line parses back into exactly the record the
    // in-memory collector saw for the same run index.
    let sweep = lambda_mu_sweep(2);
    let records = sweep.run_collect(&SimSubstrate);
    for line in sorted_jsonl(&sweep) {
        let parsed = RunRecord::from_json_line(&line).expect("row parses");
        let original = &records[parsed.index];
        assert_eq!(&parsed, original, "run {} must round-trip", parsed.index);
        assert!(parsed.makespan.is_finite());
        assert_eq!(parsed.substrate, "sim");
        assert_eq!(parsed.axes.len(), 2);
    }
}

#[test]
fn sweep_measurements_agree_across_substrates_under_modeled_input() {
    // The cross-substrate contract lifted to sweep scope: under
    // LbInput::Modeled both substrates plan from the same deterministic
    // busy model, so every plan-derived measurement of every grid cell
    // must match (makespans differ by design — one is simulated, one is
    // wall clock).
    let sweep = |parallelism| {
        let base = scenarios::lopsided_two_rack(true).with_lb_input(LbInput::Modeled);
        ScenarioSweep::new(base)
            .axis(Axis::numeric("lambda", &[0.0, 1.0], |mut sc, l| {
                if let Some(lb) = &mut sc.lb {
                    if let LbSpec::Tree { lambda, .. } = &mut lb.spec {
                        *lambda = l;
                    }
                }
                sc
            }))
            .with_parallelism(parallelism)
    };
    let sim = sweep(2).run_collect(&SimSubstrate);
    let dist = sweep(1).run_collect(&DistSubstrate);
    assert_eq!(sim.len(), dist.len());
    let mut saw_migrations = false;
    for (s, d) in sim.iter().zip(&dist) {
        assert_eq!(s.index, d.index);
        assert_eq!(s.axes, d.axes);
        assert_eq!(
            (s.substrate.as_str(), d.substrate.as_str()),
            ("sim", "dist")
        );
        assert_eq!(s.migrations, d.migrations, "run {}", s.index);
        assert_eq!(s.migration_bytes, d.migration_bytes, "run {}", s.index);
        assert_eq!(
            (s.ghost_bytes, s.inter_rack_ghost_bytes),
            (d.ghost_bytes, d.inter_rack_ghost_bytes),
            "run {}",
            s.index
        );
        assert_eq!(s.epochs, d.epochs, "run {}", s.index);
        assert_eq!(
            (s.final_cut_bytes, s.final_inter_rack_cut_bytes),
            (d.final_cut_bytes, d.final_inter_rack_cut_bytes),
            "run {}",
            s.index
        );
        saw_migrations |= s.migrations > 0;
    }
    assert!(saw_migrations, "the lopsided grid must actually rebalance");
}

#[test]
fn summary_tabulates_a_real_sweep() {
    let records = lambda_mu_sweep(2).run_collect(&SimSubstrate);
    let summary = SweepSummary::from_records(&records);
    assert_eq!(summary.total_runs, 4);
    // two values per axis, two axes
    assert_eq!(summary.axis_groups("lambda").len(), 2);
    assert_eq!(summary.axis_groups("mu").len(), 2);
    for group in &summary.groups {
        assert_eq!(group.runs, 2, "2x2 grid: every value covers two runs");
        assert!(group.makespan_min <= group.makespan_mean);
        assert!(group.makespan_mean <= group.makespan_max);
    }
    // λ gates inter-rack migration traffic — visible through the grouped
    // means exactly like in ablation A7
    let inter = |label: &str| {
        summary
            .group("lambda", label)
            .expect("lambda group")
            .inter_rack_migration_bytes_mean
    };
    assert!(
        inter("1") <= inter("0"),
        "λ=1 must not move more inter-rack bytes than λ=0"
    );
}
