//! Property-based tests of the core invariants (proptest).

use bytes::Bytes;
use nonlocalheat::amt::codec::{decode_f64_vec, encode_f64_slice, Wire};
use nonlocalheat::amt::rendezvous::Rendezvous;
use nonlocalheat::core::balance::{
    compute_metrics, plan_rebalance, plan_rebalance_with_cost, CostParams, LbNetwork, LbSpec,
};
use nonlocalheat::core::ownership::Ownership;
use nonlocalheat::mesh::{build_halo_plan, split_cases, Rect, SdGrid};
use nonlocalheat::netmodel::{CommCost, LinkSpec, NetSpec, TopologySpec};
use nonlocalheat::partition::{balance as part_balance, part_graph, Csr, PartitionConfig, SdGraph};
use proptest::prelude::*;
use std::sync::Arc;

// ---------- codec ----------

proptest! {
    #[test]
    fn codec_roundtrip_f64_vec(values in proptest::collection::vec(-1e12f64..1e12, 0..200)) {
        let mut buf = bytes::BytesMut::new();
        encode_f64_slice(&values, &mut buf);
        let mut b = buf.freeze();
        let back = decode_f64_vec(&mut b).unwrap();
        prop_assert_eq!(back, values);
        prop_assert_eq!(b.len(), 0);
    }

    #[test]
    fn codec_roundtrip_nested(
        a in any::<u64>(),
        b in any::<u32>(),
        s in "[a-z]{0,12}",
        v in proptest::collection::vec(any::<bool>(), 0..20),
    ) {
        let value = (a, (b, s.clone()), v.clone());
        let bytes = value.to_bytes();
        let back = <(u64, (u32, String), Vec<bool>)>::from_bytes(bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    #[test]
    fn codec_rejects_truncation(payload in proptest::collection::vec(any::<u64>(), 1..20)) {
        let bytes = payload.to_bytes();
        // any strict prefix must fail to decode as the same type
        let cut = bytes.len() - 1;
        let res = Vec::<u64>::from_bytes(bytes.slice(0..cut));
        prop_assert!(res.is_err());
    }
}

// ---------- rendezvous ----------

proptest! {
    #[test]
    fn rendezvous_any_interleaving_matches(order in proptest::collection::vec(any::<bool>(), 1..40)) {
        // For each tag t we either expect-then-deliver or deliver-then-
        // expect depending on the generated boolean; all must match.
        let rv = Rendezvous::new();
        let mut futures = Vec::new();
        for (t, first_expect) in order.iter().enumerate() {
            let tag = t as u64;
            let payload = Bytes::from(tag.to_le_bytes().to_vec());
            if *first_expect {
                futures.push((tag, rv.expect(tag)));
                rv.deliver(tag, payload);
            } else {
                rv.deliver(tag, payload);
                futures.push((tag, rv.expect(tag)));
            }
        }
        for (tag, fut) in futures {
            let got = fut.get();
            prop_assert_eq!(got.as_ref(), &tag.to_le_bytes());
        }
        prop_assert_eq!(rv.outstanding(), 0);
    }
}

// ---------- halo plans & case splits ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn halo_patches_tile_ring(
        nsx in 1i64..6,
        nsy in 1i64..6,
        sd in 1i64..8,
        halo in 0i64..10,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, sd as usize);
        for id in grid.ids() {
            let plan = build_halo_plan(&grid, halo, id);
            let padded = Rect::new(-halo, -halo, sd + 2 * halo, sd + 2 * halo);
            let interior = Rect::new(0, 0, sd, sd);
            let mut covered = 0i64;
            for (i, p) in plan.patches.iter().enumerate() {
                covered += p.dst_rect.area();
                prop_assert!(padded.contains_rect(&p.dst_rect));
                prop_assert!(p.dst_rect.intersect(&interior).is_empty());
                for q in plan.patches.iter().skip(i + 1) {
                    prop_assert!(p.dst_rect.intersect(&q.dst_rect).is_empty());
                }
            }
            prop_assert_eq!(covered, padded.area() - interior.area());
        }
    }

    #[test]
    fn case_split_tiles_interior(
        nsx in 2i64..5,
        nsy in 2i64..5,
        sd in 2i64..8,
        halo in 1i64..6,
        owner_bits in any::<u64>(),
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, sd as usize);
        for id in grid.ids() {
            let plan = build_halo_plan(&grid, halo, id);
            let split = split_cases(sd, halo, &plan, |n| (owner_bits >> (n % 64)) & 1 == 1);
            let mut area = split.case2.area();
            for (i, r) in split.case1.iter().enumerate() {
                area += r.area();
                prop_assert!(r.intersect(&split.case2).is_empty());
                for q in split.case1.iter().skip(i + 1) {
                    prop_assert!(r.intersect(q).is_empty());
                }
            }
            prop_assert_eq!(area, sd * sd);
        }
    }
}

// ---------- partitioner ----------

fn random_grid_graph(w: usize, h: usize, weights: &[i64]) -> Csr {
    let id = |x: usize, y: usize| (y * w + x) as u32;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y), 1));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1), 1));
            }
        }
    }
    Csr::from_edges(w * h, &edges, weights.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn partition_is_valid_and_roughly_balanced(
        w in 3usize..9,
        h in 3usize..9,
        k in 2u32..6,
        seed in any::<u64>(),
    ) {
        let weights = vec![1i64; w * h];
        let g = random_grid_graph(w, h, &weights);
        let p = part_graph(&g, &PartitionConfig::new(k).with_seed(seed));
        prop_assert_eq!(p.parts.len(), w * h);
        prop_assert!(p.parts.iter().all(|&x| x < k));
        if (k as usize) * 2 <= w * h {
            // every part non-empty when comfortably fewer parts than cells
            for part in 0..k {
                prop_assert!(p.parts.contains(&part), "part {} empty", part);
            }
            let b = part_balance(&g, &p.parts, k);
            prop_assert!(b < 1.7, "balance {} too skewed", b);
        }
    }
}

// ---------- load balancer ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn rebalance_plan_is_applicable_and_conserving(
        nsx in 2i64..6,
        nsy in 2i64..6,
        n_nodes in 1u32..5,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.1f64..10.0, 4),
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        // pseudo-random but deterministic ownership from the seed
        let owners: Vec<u32> = (0..count)
            .map(|i| ((owner_seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
            .collect();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        let plan = plan_rebalance(&own, &busy_vec);

        // 1. moves apply sequentially from the initial state
        let mut working = own.clone();
        for m in &plan.moves {
            prop_assert_eq!(working.owner(m.sd), m.from);
            prop_assert!(m.to < n_nodes);
            working.set_owner(m.sd, m.to);
        }
        // 2. result matches the plan's claimed new ownership
        prop_assert_eq!(&working, &plan.new_ownership);
        // 3. SD conservation
        prop_assert_eq!(
            working.counts().iter().sum::<usize>(),
            count
        );
        // 4. metrics imbalance sums to zero
        prop_assert_eq!(plan.metrics.imbalance.iter().sum::<i64>(), 0);
    }
}

// The single-hop invariant, across count-based and cost-aware plans:
// within one `MigrationPlan`, no SD may appear as a transfer source
// (`from`) after having appeared as a destination (`to`) — the
// distributed driver ships every migrating tile concurrently from its
// pre-epoch owner, so a chained plan would ask a node to forward a tile
// it never received (panic "migrating unowned SD", then cluster
// deadlock). Random ownerships, busy vectors and λ weights over a 2-rack
// topology whose uplink is slow enough for the λ gate to actually fire on
// some cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn no_sd_moves_again_after_arriving(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        lambda in 0.0f64..4.0,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners: Vec<u32> = (0..count)
            .map(|i| ((owner_seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
            .collect();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        let comm = CommCost::from_spec(&NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(1e-3, 1e6),
            inter_rack: LinkSpec::new(0.5, 2e4),
        }));
        let params = CostParams::new(comm, lambda, 4 * 4 * 8 + 24);
        let plan = plan_rebalance_with_cost(&own, &busy_vec, &params);

        let mut arrived = std::collections::HashSet::new();
        for m in &plan.moves {
            prop_assert!(
                !arrived.contains(&m.sd),
                "SD {} re-moved after arriving (λ={})", m.sd, lambda
            );
            // `from` is always the pre-epoch owner: the collapse folded
            // any internal chain into one direct hop
            prop_assert_eq!(own.owner(m.sd), m.from);
            prop_assert!(m.from != m.to);
            arrived.insert(m.sd);
        }
        // applying the single hops lands exactly on the claimed ownership
        let mut check = own.clone();
        for m in &plan.moves {
            check.set_owner(m.sd, m.to);
        }
        prop_assert_eq!(&check, &plan.new_ownership);
    }
}

// The same single-hop contract, but for *every* `LbSpec` variant of the
// pluggable policy layer: whatever strategy plans the epoch, the emitted
// plan must never move an SD twice, never ship an SD to its current
// owner, and must land exactly on the claimed post-epoch ownership —
// over the same random ownership/busy generator as above (`which`
// selects the policy, so the proptest sweep covers all variants).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn every_lb_spec_yields_single_hop_plans(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        which in 0usize..8,
        mu in 0.0f64..3.0,
        halo in 1i64..6,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners: Vec<u32> = (0..count)
            .map(|i| ((owner_seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
            .collect();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        // ghost graph attached and μ swept: the single-hop contract must
        // survive ghost-aware gating and one-at-a-time realization too
        let net = LbNetwork::new(
            CommCost::from_spec(&NetSpec::Topology(TopologySpec {
                ranks_per_node: 1,
                nodes_per_rack: 2,
                intra_node: LinkSpec::new(0.0, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-3, 1e6),
                inter_rack: LinkSpec::new(0.5, 2e4),
            })),
            4 * 4 * 8 + 24,
        )
        .with_sd_graph(Arc::new(SdGraph::build(&grid, halo)));
        let spec = match which {
            0 => LbSpec::tree(0.0),
            1 => LbSpec::tree(1.5),
            2 => LbSpec::diffusion(1.0, 6),
            3 => LbSpec::greedy_steal(1),
            4 => LbSpec::adaptive(LbSpec::greedy_steal(1), 0.1),
            5 => LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2),
            6 => LbSpec::hierarchical(LbSpec::tree(0.0), 0.0),
            _ => LbSpec::hierarchical(LbSpec::greedy_steal(1), 1.5),
        }
        .with_mu(mu);
        let mut policy = spec.build();
        let metrics = compute_metrics(&own.counts(), &busy_vec);
        let plan = policy.plan(&own, &metrics, &net);

        let mut arrived = std::collections::HashSet::new();
        for m in &plan.moves {
            prop_assert!(
                !arrived.contains(&m.sd),
                "{}: SD {} re-moved after arriving", spec.name(), m.sd
            );
            prop_assert_eq!(own.owner(m.sd), m.from, "{}: stale source", spec.name());
            prop_assert!(m.from != m.to, "{}: SD shipped to its own owner", spec.name());
            arrived.insert(m.sd);
        }
        let mut check = own.clone();
        for m in &plan.moves {
            check.set_owner(m.sd, m.to);
        }
        prop_assert_eq!(&check, &plan.new_ownership);
        // conservation: no SD appears or disappears
        prop_assert_eq!(
            plan.new_ownership.counts().iter().sum::<usize>(),
            count
        );
    }
}

// The ghost-aware degenerate case, across every `LbSpec` variant: with
// μ = 0, attaching the SD adjacency / halo-volume graph to the planning
// view must not change a single move — the whole ghost machinery
// (edge-cut deltas, one-at-a-time realization, projected neighbour
// graphs) must be pinned inert, so pre-μ configurations reproduce their
// plans bit for bit after the upgrade. Random ownerships, busy vectors
// and halo widths over the same 2-rack topology as above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn mu_zero_plans_byte_identical_with_and_without_graph(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        which in 0usize..8,
        halo in 1i64..6,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners: Vec<u32> = (0..count)
            .map(|i| ((owner_seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
            .collect();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        let plain = LbNetwork::new(
            CommCost::from_spec(&NetSpec::Topology(TopologySpec {
                ranks_per_node: 1,
                nodes_per_rack: 2,
                intra_node: LinkSpec::new(0.0, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-3, 1e6),
                inter_rack: LinkSpec::new(0.5, 2e4),
            })),
            4 * 4 * 8 + 24,
        );
        let with_graph = plain.clone().with_sd_graph(Arc::new(SdGraph::build(&grid, halo)));
        let spec = match which {
            0 => LbSpec::tree(0.0),
            1 => LbSpec::tree(1.5),
            2 => LbSpec::diffusion(1.0, 6),
            3 => LbSpec::greedy_steal(1),
            4 => LbSpec::adaptive(LbSpec::tree(0.5), 0.1),
            5 => LbSpec::adaptive_mu(LbSpec::tree(0.5), 0.2),
            6 => LbSpec::hierarchical(LbSpec::tree(0.0), 0.0),
            _ => LbSpec::hierarchical(LbSpec::tree(0.5), 1.5),
        };
        let metrics = compute_metrics(&own.counts(), &busy_vec);
        let blind = spec.build().plan(&own, &metrics, &plain);
        let ghosted = spec.build().plan(&own, &metrics, &with_graph);
        prop_assert_eq!(&blind.moves, &ghosted.moves, "{}", spec.name());
        prop_assert_eq!(&blind.new_ownership, &ghosted.new_ownership);
        prop_assert_eq!(blind.comm, ghosted.comm);
    }
}

// The hierarchical planner's degenerate case: on a cluster whose comm
// model carries no topology (every pair of ranks is one flat tier) and
// with no memory capacities attached, `LbSpec::Hierarchical` must
// delegate to its inner leaf — plans byte-identical to running the leaf
// directly, so single-rack configurations pay nothing for the wrapper.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn hierarchical_degenerates_to_flat_on_single_rack(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        lambda in 0.0f64..2.0,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners: Vec<u32> = (0..count)
            .map(|i| ((owner_seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
            .collect();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        let net = LbNetwork::new(
            CommCost::from_spec(&NetSpec::shared(1e-4, 1e8)),
            4 * 4 * 8 + 24,
        );
        let metrics = compute_metrics(&own.counts(), &busy_vec);
        let flat = LbSpec::tree(lambda).build().plan(&own, &metrics, &net);
        let hier = LbSpec::hierarchical(LbSpec::tree(lambda), 1.5)
            .build()
            .plan(&own, &metrics, &net);
        prop_assert_eq!(&flat.moves, &hier.moves, "λ={}", lambda);
        prop_assert_eq!(&flat.new_ownership, &hier.new_ownership);
        prop_assert_eq!(flat.comm, hier.comm);
    }
}

// The memory capacity gate, under adversarial inputs: random ownerships,
// random per-node headroom (including zero — a full node must receive
// nothing), footprints from the real SdGraph. Whatever the hierarchical
// planner emits, applying the whole plan must leave every rank at or
// under its declared capacity — the invariant `RunReport::check_invariants`
// replays for every recorded scenario epoch.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn hierarchical_plan_never_overflows_destinations(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        headroom in proptest::collection::vec(0u64..3, 8),
        halo in 1i64..6,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners: Vec<u32> = (0..count)
            .map(|i| ((owner_seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
            .collect();
        let graph = Arc::new(SdGraph::build(&grid, halo));
        let fp = Arc::new(graph.footprints());
        // capacities: each rank's initial residency plus 0–2 of the
        // largest footprint — tight enough that the gate must refuse
        // moves on most cases
        let mut usage = vec![0u64; n_nodes as usize];
        for (sd, &o) in owners.iter().enumerate() {
            usage[o as usize] += fp[sd];
        }
        let max_fp = fp.iter().copied().max().unwrap_or(1).max(1);
        let caps: Vec<u64> = usage
            .iter()
            .enumerate()
            .map(|(i, &u)| (u + headroom[i % headroom.len()] * max_fp).max(1))
            .collect();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        let net = LbNetwork::new(
            CommCost::from_spec(&NetSpec::Topology(TopologySpec {
                ranks_per_node: 1,
                nodes_per_rack: 2,
                intra_node: LinkSpec::new(0.0, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-3, 1e6),
                inter_rack: LinkSpec::new(0.5, 2e4),
            })),
            4 * 4 * 8 + 24,
        )
        .with_sd_graph(graph.clone())
        .with_memory(Arc::new(caps.clone()), fp.clone());
        let metrics = compute_metrics(&own.counts(), &busy_vec);
        let plan = LbSpec::hierarchical(LbSpec::tree(0.0), 0.0)
            .build()
            .plan(&own, &metrics, &net);
        let mut after = usage.clone();
        for m in &plan.moves {
            prop_assert_eq!(own.owner(m.sd), m.from);
            after[m.from as usize] -= fp[m.sd as usize];
            after[m.to as usize] += fp[m.sd as usize];
        }
        for (node, (&used, &cap)) in after.iter().zip(caps.iter()).enumerate() {
            prop_assert!(
                used <= cap,
                "rank {} holds {} B after the plan, over its {} B capacity",
                node, used, cap
            );
        }
    }
}

// ---------- cut-aware repartitioning ----------

/// The shared random-ownership generator of the sections above, as a
/// helper: pseudo-random but deterministic owners from a seed.
fn scrambled_owners(count: usize, n_nodes: u32, seed: u64) -> Vec<u32> {
    (0..count)
        .map(|i| ((seed >> (i % 60)) as u32 ^ i as u32) % n_nodes)
        .collect()
}

fn two_rack_lb_net() -> LbNetwork {
    LbNetwork::new(
        CommCost::from_spec(&NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(1e-3, 1e6),
            inter_rack: LinkSpec::new(0.5, 2e4),
        })),
        4 * 4 * 8 + 24,
    )
}

// `LbSpec::Repartition` under adversarial inputs, across the whole staged
// drain: every epoch's plan must be single-hop (the distributed driver
// ships all moves concurrently from pre-epoch owners), and every epoch
// where the drift monitor is driving (`drift_info().replan`) must stay
// under `max_bytes_per_epoch` — the budget is what makes a replan safe to
// run inside a balancing epoch. Uniform 16-cell tiles are 152 wire bytes,
// so any budget of at least one tile makes the bound exact (the one-move
// progress guarantee never needs to exceed it).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn repartition_drain_is_single_hop_and_budgeted(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        budget_tiles in 1u64..6,
        threshold in 1.0f64..2.0,
        halo in 1i64..6,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners = scrambled_owners(count, n_nodes, owner_seed);
        let net = two_rack_lb_net()
            .with_sd_graph(Arc::new(SdGraph::build(&grid, halo)));
        let budget = budget_tiles * (4 * 4 * 8 + 24);
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), threshold, 1, budget).build();
        let mut current = Ownership::new(grid, owners, n_nodes);
        for _epoch in 0..12 {
            let busy_vec: Vec<f64> =
                (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
            let metrics = compute_metrics(&current.counts(), &busy_vec);
            let plan = policy.plan(&current, &metrics, &net);
            let replanning = policy.drift_info().expect("repartition reports drift").replan;
            let mut arrived = std::collections::HashSet::new();
            for m in &plan.moves {
                prop_assert!(!arrived.contains(&m.sd), "SD {} re-moved", m.sd);
                prop_assert_eq!(current.owner(m.sd), m.from, "stale source");
                prop_assert!(m.from != m.to, "SD shipped to its own owner");
                arrived.insert(m.sd);
            }
            if replanning {
                prop_assert!(
                    plan.comm.total_bytes <= budget,
                    "replan epoch shipped {} B > budget {} B",
                    plan.comm.total_bytes, budget
                );
            }
            let mut check = current.clone();
            for m in &plan.moves {
                check.set_owner(m.sd, m.to);
            }
            prop_assert_eq!(&check, &plan.new_ownership);
            prop_assert_eq!(check.counts().iter().sum::<usize>(), count);
            current = plan.new_ownership;
        }
    }
}

// The capacity contract of a replan: whatever fresh partition the drift
// monitor installs, applying the epoch's moves must leave every rank at or
// under its declared `memory_bytes` — a rank with one footprint of
// headroom must never be handed more than it can hold. Budget unbounded,
// so the whole diff lands in the replan epoch (the adversarial case: the
// largest possible burst of arrivals).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn repartition_never_overflows_destination_capacities(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        headroom in proptest::collection::vec(1u64..4, 8),
        halo in 1i64..6,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners = scrambled_owners(count, n_nodes, owner_seed);
        let graph = Arc::new(SdGraph::build(&grid, halo));
        let fp = Arc::new(graph.footprints());
        let mut usage = vec![0u64; n_nodes as usize];
        for (sd, &o) in owners.iter().enumerate() {
            usage[o as usize] += fp[sd];
        }
        let max_fp = fp.iter().copied().max().unwrap_or(1).max(1);
        // at least one max footprint of slack per rank keeps the caps
        // feasible for single-vertex repair, yet tight enough to bind
        let caps: Vec<u64> = usage
            .iter()
            .enumerate()
            .map(|(i, &u)| u + headroom[i % headroom.len()] * max_fp)
            .collect();
        let net = two_rack_lb_net()
            .with_sd_graph(graph)
            .with_memory(Arc::new(caps.clone()), fp.clone());
        let mut policy =
            LbSpec::repartition(LbSpec::tree(0.0), 0.5, 1, u64::MAX).build();
        let own = Ownership::new(grid, owners, n_nodes);
        let busy_vec: Vec<f64> =
            (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
        let metrics = compute_metrics(&own.counts(), &busy_vec);
        let plan = policy.plan(&own, &metrics, &net);
        if !policy.drift_info().expect("repartition reports drift").replan {
            return; // already at the fresh partition: nothing staged
        }
        let mut after = usage.clone();
        for m in &plan.moves {
            prop_assert_eq!(own.owner(m.sd), m.from);
            after[m.from as usize] -= fp[m.sd as usize];
            after[m.to as usize] += fp[m.sd as usize];
        }
        for (node, (&used, &cap)) in after.iter().zip(caps.iter()).enumerate() {
            prop_assert!(
                used <= cap,
                "rank {} holds {} B after the replan, over its {} B capacity \
                 (nsx={nsx} nsy={nsy} n_nodes={n_nodes} owner_seed={owner_seed} \
                 headroom={headroom:?} halo={halo})",
                node, used, cap
            );
        }
    }
}

// The transparency contract: with an infinite drift threshold and no
// membership events, the Repartition decorator must be *byte-identical*
// to its inner policy — same moves, same claimed ownership, same comm
// estimate, epoch after epoch — so wrapping an existing configuration
// costs nothing until a threshold or a cluster event is configured.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn infinite_threshold_repartition_is_byte_identical_to_inner(
        nsx in 2i64..7,
        nsy in 2i64..7,
        n_nodes in 2u32..6,
        owner_seed in any::<u64>(),
        busy in proptest::collection::vec(0.05f64..10.0, 8),
        which in 0usize..4,
        halo in 1i64..6,
    ) {
        let grid = SdGrid::new(nsx as usize, nsy as usize, 4);
        let count = grid.count();
        let owners = scrambled_owners(count, n_nodes, owner_seed);
        let net = two_rack_lb_net()
            .with_sd_graph(Arc::new(SdGraph::build(&grid, halo)));
        let inner = match which {
            0 => LbSpec::tree(0.0),
            1 => LbSpec::tree(1.5),
            2 => LbSpec::greedy_steal(1),
            _ => LbSpec::diffusion(1.0, 6),
        };
        let mut plain = inner.clone().build();
        let mut wrapped =
            LbSpec::repartition(inner, f64::INFINITY, 1, u64::MAX).build();
        let mut current = Ownership::new(grid, owners, n_nodes);
        for _epoch in 0..4 {
            let busy_vec: Vec<f64> =
                (0..n_nodes as usize).map(|i| busy[i % busy.len()]).collect();
            let metrics = compute_metrics(&current.counts(), &busy_vec);
            let a = plain.plan(&current, &metrics, &net);
            let b = wrapped.plan(&current, &metrics, &net);
            prop_assert_eq!(&a.moves, &b.moves);
            prop_assert_eq!(&a.new_ownership, &b.new_ownership);
            prop_assert_eq!(a.comm, b.comm);
            prop_assert_eq!(check_counts(&a.new_ownership), count);
            current = a.new_ownership;
        }
    }
}

fn check_counts(own: &Ownership) -> usize {
    own.counts().iter().sum()
}
