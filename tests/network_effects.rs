//! Asynchrony correctness: message delay must never change the numerics —
//! only the timing. These tests run the distributed solver over a fabric
//! with real (sleeping) delivery driven by each pluggable network model, so
//! ghost parcels genuinely arrive late and the case-1/case-2 machinery is
//! exercised under pressure. The simulator side checks the ordering
//! property the models promise: makespan is monotonically non-decreasing
//! as the model gets more contended (instant ≤ constant ≤ shared ≤ duplex).
//! Every run is described through the declarative `Scenario` API, so the
//! network model is one field swap.

use nonlocalheat::prelude::*;
use std::time::Duration;

fn serial_field(n: usize, eps_mult: f64, steps: usize) -> Vec<f64> {
    let parts = ProblemSpec::square(n, eps_mult).build();
    let mut s = SerialSolver::manufactured(&parts);
    s.run(steps);
    s.field()
}

/// Every network model produces bit-identical numerics on the same
/// distributed run: the transport decides *when* ghosts arrive, never
/// *what* arrives.
#[test]
fn every_net_model_same_numerics() {
    let reference = serial_field(16, 2.0, 4);
    let specs = [
        NetSpec::Instant,
        NetSpec::constant(200e-6, 5e6),
        NetSpec::shared(200e-6, 5e6),
        NetSpec::duplex(200e-6, 5e6),
        NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(100e-6, 1e7),
            inter_rack: LinkSpec::new(500e-6, 2e6),
        }),
    ];
    for spec in specs {
        let report = Scenario::square(16, 2.0, 4, 4)
            .on(ClusterSpec::uniform(3, 1))
            .with_net(spec)
            .run_dist();
        assert_eq!(
            report.field.as_ref(),
            Some(&reference),
            "numerics must not depend on the network model: {spec:?}"
        );
    }
}

/// Simulator counterpart: one communication-heavy scenario swept across
/// the model ladder; each rung may only slow things down.
#[test]
fn sim_makespan_monotone_in_contention() {
    let lat = 2e-3;
    let bw = 5e7;
    // no case-1/case-2 overlap: every ghost delay lands on the critical
    // path, so the model ladder is directly visible
    let base = Scenario::square(200, 8.0, 25, 4)
        .on(ClusterSpec::uniform(4, 1))
        .with_overlap(false);
    let run = |net: NetSpec| base.clone().with_net(net).run_sim().makespan;
    let t_instant = run(NetSpec::Instant);
    let t_constant = run(NetSpec::constant(lat, bw));
    let t_shared = run(NetSpec::shared(lat, bw));
    let t_duplex = run(NetSpec::duplex(lat, bw));
    assert!(
        t_instant <= t_constant * (1.0 + 1e-12),
        "instant {t_instant} must not exceed constant {t_constant}"
    );
    assert!(
        t_constant <= t_shared * (1.0 + 1e-12),
        "constant {t_constant} must not exceed shared {t_shared}"
    );
    assert!(
        t_shared <= t_duplex * (1.0 + 1e-12),
        "shared {t_shared} must not exceed duplex {t_duplex}"
    );
    // The ladder must actually bite at these parameters, or the test
    // degenerates into 0 <= 0.
    assert!(t_constant > t_instant, "latency must cost something");
    assert!(
        t_shared > t_constant,
        "NIC serialization must cost something"
    );
    assert!(
        t_duplex > t_shared,
        "receiver-ingress serialization (incast) must cost something"
    );
}

#[test]
fn latency_does_not_change_results() {
    let reference = serial_field(16, 2.0, 4);
    let report = Scenario::square(16, 2.0, 4, 4)
        .on(ClusterSpec::uniform(3, 1))
        .with_net(NetSpec::constant_wall(
            Duration::from_micros(500),
            f64::INFINITY,
        ))
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn bandwidth_limit_does_not_change_results() {
    let reference = serial_field(16, 2.0, 4);
    // ~2 MB/s: a 3 KB ghost message takes ~1.5 ms on the wire
    let report = Scenario::square(16, 2.0, 4, 4)
        .on(ClusterSpec::uniform(2, 1))
        .with_net(NetSpec::constant_wall(Duration::from_micros(100), 2e6))
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn latency_with_load_balancing_still_exact() {
    let reference = serial_field(16, 2.0, 6);
    let report = Scenario::square(16, 2.0, 4, 6)
        .on(ClusterSpec::new().node(1, 1.0).node(1, 0.5))
        .with_net(NetSpec::constant_wall(
            Duration::from_micros(300),
            f64::INFINITY,
        ))
        .with_lb(LbSchedule::every(2))
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn shared_nic_with_load_balancing_still_exact() {
    // The stateful model (sender NICs mutate on every send) must also be
    // transparent to the numerics, including across SD migrations.
    let reference = serial_field(16, 2.0, 6);
    let report = Scenario::square(16, 2.0, 4, 6)
        .on(ClusterSpec::new().node(1, 1.0).node(1, 0.5))
        .with_net(NetSpec::shared(200e-6, 4e6))
        .with_lb(LbSchedule::every(2))
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn overlap_off_under_latency_still_exact() {
    let reference = serial_field(16, 2.0, 3);
    let report = Scenario::square(16, 2.0, 4, 3)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(NetSpec::constant_wall(
            Duration::from_micros(400),
            f64::INFINITY,
        ))
        .with_overlap(false)
        .run_dist();
    assert_eq!(report.field.as_ref(), Some(&reference));
}

#[test]
fn traffic_statistics_are_plausible() {
    let report = Scenario::square(16, 2.0, 4, 3)
        .on(ClusterSpec::uniform(2, 1))
        .run_dist();
    // 4x4 SDs halved: 4 boundary SD pairs + diagonals, both directions,
    // 3 steps; an LB-free run has no other messages. Just sanity-check
    // magnitude and consistency of the unified counters.
    let extras = report.dist_extras().expect("real-runtime extras");
    assert!(extras.wire_messages > 0);
    assert!(extras.wire_cross_bytes > 0);
    assert!(report.ghost_bytes > 0);
    // planner-grade bytes + the 8-byte codec length per parcel = wire
    assert_eq!(
        report.ghost_bytes + 8 * extras.wire_messages,
        extras.wire_cross_bytes
    );

    // Per-pair attribution through the real driver path: a symmetric
    // decomposition sends symmetric ghosts. The pair counters live on
    // the fabric, so this leg drives the compatibility layer directly
    // (scenario.build_cluster() keeps the declared net).
    let scenario = Scenario::square(16, 2.0, 4, 3).on(ClusterSpec::uniform(2, 1));
    let cluster = scenario.build_cluster();
    let _ = run_distributed(&cluster, &scenario.dist_config());
    let stats = cluster.net_stats();
    assert_eq!(
        stats.pair_bytes(0, 1),
        stats.pair_bytes(1, 0),
        "symmetric decomposition sends symmetric ghosts"
    );
}
