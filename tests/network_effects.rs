//! Asynchrony correctness: message delay must never change the numerics —
//! only the timing. These tests run the distributed solver over a fabric
//! with real (sleeping) latency so ghost parcels genuinely arrive late and
//! the case-1/case-2 machinery is exercised under pressure.

use nonlocalheat::prelude::*;
use std::time::Duration;

fn serial_field(n: usize, eps_mult: f64, steps: usize) -> Vec<f64> {
    let parts = ProblemSpec::square(n, eps_mult).build();
    let mut s = SerialSolver::manufactured(&parts);
    s.run(steps);
    s.field()
}

#[test]
fn latency_does_not_change_results() {
    let reference = serial_field(16, 2.0, 4);
    let cluster = ClusterBuilder::new()
        .uniform(3, 1)
        .net(NetModel::new(Duration::from_micros(500), f64::INFINITY))
        .build();
    let cfg = DistConfig::new(16, 2.0, 4, 4);
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn bandwidth_limit_does_not_change_results() {
    let reference = serial_field(16, 2.0, 4);
    let cluster = ClusterBuilder::new()
        .uniform(2, 1)
        // ~2 MB/s: a 3 KB ghost message takes ~1.5 ms on the wire
        .net(NetModel::new(Duration::from_micros(100), 2e6))
        .build();
    let cfg = DistConfig::new(16, 2.0, 4, 4);
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn latency_with_load_balancing_still_exact() {
    let reference = serial_field(16, 2.0, 6);
    let cluster = ClusterBuilder::new()
        .node(1, 1.0)
        .node(1, 0.5)
        .net(NetModel::new(Duration::from_micros(300), f64::INFINITY))
        .build();
    let mut cfg = DistConfig::new(16, 2.0, 4, 6);
    cfg.lb = Some(LbConfig { period: 2 });
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn overlap_off_under_latency_still_exact() {
    let reference = serial_field(16, 2.0, 3);
    let cluster = ClusterBuilder::new()
        .uniform(4, 1)
        .net(NetModel::new(Duration::from_micros(400), f64::INFINITY))
        .build();
    let mut cfg = DistConfig::new(16, 2.0, 4, 3);
    cfg.overlap = false;
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn traffic_statistics_are_plausible() {
    let cluster = ClusterBuilder::new().uniform(2, 1).build();
    let cfg = DistConfig::new(16, 2.0, 4, 3);
    let _ = run_distributed(&cluster, &cfg);
    let stats = cluster.net_stats();
    // 4x4 SDs halved: 4 boundary SD pairs + diagonals, both directions,
    // 3 steps, plus LB-free run has no other messages. Just sanity-check
    // magnitude and symmetry.
    assert!(stats.messages() > 0);
    assert!(stats.cross_bytes() > 0);
    assert_eq!(
        stats.pair_bytes(0, 1),
        stats.pair_bytes(1, 0),
        "symmetric decomposition sends symmetric ghosts"
    );
}
