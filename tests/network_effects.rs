//! Asynchrony correctness: message delay must never change the numerics —
//! only the timing. These tests run the distributed solver over a fabric
//! with real (sleeping) delivery driven by each pluggable network model, so
//! ghost parcels genuinely arrive late and the case-1/case-2 machinery is
//! exercised under pressure. The simulator side checks the ordering
//! property the models promise: makespan is monotonically non-decreasing
//! as the model gets more contended (instant ≤ constant ≤ shared).

use nonlocalheat::prelude::*;
use std::time::Duration;

fn serial_field(n: usize, eps_mult: f64, steps: usize) -> Vec<f64> {
    let parts = ProblemSpec::square(n, eps_mult).build();
    let mut s = SerialSolver::manufactured(&parts);
    s.run(steps);
    s.field()
}

/// Every network model produces bit-identical numerics on the same
/// distributed run: the transport decides *when* ghosts arrive, never
/// *what* arrives. Uses `DistConfig::net` + `DistConfig::cluster()` so the
/// model selection flows through the shared `NetSpec` plumbing.
#[test]
fn every_net_model_same_numerics() {
    let reference = serial_field(16, 2.0, 4);
    let specs = [
        NetSpec::Instant,
        NetSpec::constant(200e-6, 5e6),
        NetSpec::shared(200e-6, 5e6),
        NetSpec::duplex(200e-6, 5e6),
        NetSpec::Topology(TopologySpec {
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(100e-6, 1e7),
            inter_rack: LinkSpec::new(500e-6, 2e6),
        }),
    ];
    for spec in specs {
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        cfg.net = spec;
        let cluster = cfg.cluster().uniform(3, 1).build();
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(
            report.field, reference,
            "numerics must not depend on the network model: {spec:?}"
        );
    }
}

/// Simulator counterpart: one communication-heavy scenario swept across
/// the model ladder; each rung may only slow things down.
#[test]
fn sim_makespan_monotone_in_contention() {
    let lat = 2e-3;
    let bw = 5e7;
    let run = |net: NetSpec| {
        let mut cfg = SimConfig::paper(
            200,
            25,
            4,
            (0..4).map(|_| VirtualNode::with_cores(1)).collect(),
        );
        cfg.net = net;
        // no case-1/case-2 overlap: every ghost delay lands on the
        // critical path, so the model ladder is directly visible
        cfg.overlap = false;
        simulate(&cfg).total_time
    };
    let t_instant = run(NetSpec::Instant);
    let t_constant = run(NetSpec::constant(lat, bw));
    let t_shared = run(NetSpec::shared(lat, bw));
    let t_duplex = run(NetSpec::duplex(lat, bw));
    assert!(
        t_instant <= t_constant * (1.0 + 1e-12),
        "instant {t_instant} must not exceed constant {t_constant}"
    );
    assert!(
        t_constant <= t_shared * (1.0 + 1e-12),
        "constant {t_constant} must not exceed shared {t_shared}"
    );
    assert!(
        t_shared <= t_duplex * (1.0 + 1e-12),
        "shared {t_shared} must not exceed duplex {t_duplex}"
    );
    // The ladder must actually bite at these parameters, or the test
    // degenerates into 0 <= 0.
    assert!(t_constant > t_instant, "latency must cost something");
    assert!(
        t_shared > t_constant,
        "NIC serialization must cost something"
    );
    assert!(
        t_duplex > t_shared,
        "receiver-ingress serialization (incast) must cost something"
    );
}

#[test]
fn latency_does_not_change_results() {
    let reference = serial_field(16, 2.0, 4);
    let cluster = ClusterBuilder::new()
        .uniform(3, 1)
        .net(NetSpec::constant_wall(
            Duration::from_micros(500),
            f64::INFINITY,
        ))
        .build();
    let cfg = DistConfig::new(16, 2.0, 4, 4);
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn bandwidth_limit_does_not_change_results() {
    let reference = serial_field(16, 2.0, 4);
    let cluster = ClusterBuilder::new()
        .uniform(2, 1)
        // ~2 MB/s: a 3 KB ghost message takes ~1.5 ms on the wire
        .net(NetSpec::constant_wall(Duration::from_micros(100), 2e6))
        .build();
    let cfg = DistConfig::new(16, 2.0, 4, 4);
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn latency_with_load_balancing_still_exact() {
    let reference = serial_field(16, 2.0, 6);
    let cluster = ClusterBuilder::new()
        .node(1, 1.0)
        .node(1, 0.5)
        .net(NetSpec::constant_wall(
            Duration::from_micros(300),
            f64::INFINITY,
        ))
        .build();
    let mut cfg = DistConfig::new(16, 2.0, 4, 6);
    cfg.lb = Some(LbConfig::every(2));
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn shared_nic_with_load_balancing_still_exact() {
    // The stateful model (sender NICs mutate on every send) must also be
    // transparent to the numerics, including across SD migrations.
    let reference = serial_field(16, 2.0, 6);
    let mut cfg = DistConfig::new(16, 2.0, 4, 6);
    cfg.net = NetSpec::shared(200e-6, 4e6);
    cfg.lb = Some(LbConfig::every(2));
    let cluster = cfg.cluster().node(1, 1.0).node(1, 0.5).build();
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn overlap_off_under_latency_still_exact() {
    let reference = serial_field(16, 2.0, 3);
    let cluster = ClusterBuilder::new()
        .uniform(4, 1)
        .net(NetSpec::constant_wall(
            Duration::from_micros(400),
            f64::INFINITY,
        ))
        .build();
    let mut cfg = DistConfig::new(16, 2.0, 4, 3);
    cfg.overlap = false;
    let report = run_distributed(&cluster, &cfg);
    assert_eq!(report.field, reference);
}

#[test]
fn traffic_statistics_are_plausible() {
    let cluster = ClusterBuilder::new().uniform(2, 1).build();
    let cfg = DistConfig::new(16, 2.0, 4, 3);
    let _ = run_distributed(&cluster, &cfg);
    let stats = cluster.net_stats();
    // 4x4 SDs halved: 4 boundary SD pairs + diagonals, both directions,
    // 3 steps, plus LB-free run has no other messages. Just sanity-check
    // magnitude and symmetry.
    assert!(stats.messages() > 0);
    assert!(stats.cross_bytes() > 0);
    assert_eq!(
        stats.pair_bytes(0, 1),
        stats.pair_bytes(1, 0),
        "symmetric decomposition sends symmetric ghosts"
    );
}
