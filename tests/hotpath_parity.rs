//! Numerics pin for the hot-path optimizations: the blocked kernel, the
//! zero-copy halo codec and the pooled migration buffers must be invisible
//! in the results. Every optimized path is compared against the retained
//! scalar/copying reference — `apply_region` with a flat offset table, and
//! `pack` + `encode_f64_slice` — bit for bit, at scenario scope.

use bytes::BytesMut;
use nlheat_amt::codec::{decode_f64_rows, decode_f64_vec, encode_f64_rows, encode_f64_slice};
use nlheat_mesh::{Rect, Tile};
use nonlocalheat::prelude::*;

/// Forward-Euler on one whole-mesh tile via the *scalar* kernel path —
/// the pre-optimization reference the runtimes are pinned against.
fn scalar_reference_field(sc: &Scenario) -> Vec<f64> {
    let parts = sc.problem.build();
    let grid = parts.grid;
    let m = &parts.manufactured;
    let mut curr = Tile::new(grid.nx, grid.halo);
    for lj in 0..grid.ny {
        for li in 0..grid.nx {
            curr.set(li, lj, m.initial(li, lj));
        }
    }
    let mut next = Tile::new(grid.nx, grid.halo);
    let offsets = parts.kernel.storage_offsets(curr.stride());
    let source = m.source_fn();
    let region = curr.interior_rect();
    for step in 0..sc.steps {
        let t = step as f64 * parts.dt;
        parts.kernel.apply_region(
            &curr,
            &mut next,
            &region,
            &offsets,
            (0, 0),
            t,
            parts.dt,
            &source,
            1,
        );
        std::mem::swap(&mut curr, &mut next);
    }
    let mut out = Vec::with_capacity((grid.nx * grid.ny) as usize);
    for gj in 0..grid.ny {
        for gi in 0..grid.nx {
            out.push(curr.get(gi, gj));
        }
    }
    out
}

fn pinned_scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        ("paper-baseline", scenarios::paper_baseline(true)),
        ("lopsided-two-rack", scenarios::lopsided_two_rack(true)),
    ]
}

#[test]
fn optimized_runtime_matches_scalar_reference_bitwise() {
    // The real runtime now runs the blocked kernel, streams halos through
    // the zero-copy codec and recycles migration tiles — the field must
    // still equal the scalar single-tile integration bit for bit.
    for (name, sc) in pinned_scenarios() {
        let reference = scalar_reference_field(&sc);
        let report = sc.run_dist();
        let field = report.field.expect("real runs carry the field");
        assert_eq!(field.len(), reference.len(), "{name}");
        for (i, (got, want)) in field.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{name}: cell {i} diverged from the scalar reference"
            );
        }
    }
}

#[test]
fn intra_step_stealing_matches_scalar_reference_bitwise() {
    // Intra-step stealing chops each SD's update into row-band tasks that
    // race across pool workers and write `next` through a raw pointer —
    // a pure scheduling change. On multi-core re-clusterings of the
    // pinned scenarios (1-core nodes give thieves nothing to steal), the
    // field must still equal the scalar reference bit for bit.
    for (name, sc) in pinned_scenarios() {
        let reference = scalar_reference_field(&sc);
        let cores = ClusterSpec::uniform(sc.cluster.nodes.len(), 4);
        let sc = sc.on(cores).with_intra_step_stealing(true);
        let report = sc.run_dist();
        let field = report.field.as_ref().expect("real runs carry the field");
        assert_eq!(field.len(), reference.len(), "{name}");
        for (i, (got, want)) in field.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{name}: cell {i} diverged under intra-step stealing"
            );
        }
        let steals: u64 = report
            .dist_extras()
            .expect("real-runtime extras")
            .pool_steals
            .iter()
            .sum();
        assert!(steals > 0, "{name}: stealing run scheduled no steals");
    }
}

#[test]
fn serial_solver_blocked_path_matches_scalar_reference() {
    // The serial solver switched to the blocked kernel too; pin it against
    // the same scalar reference.
    for (name, sc) in pinned_scenarios() {
        let reference = scalar_reference_field(&sc);
        let parts = sc.problem.build();
        let mut serial = SerialSolver::manufactured(&parts);
        serial.run(sc.steps);
        assert_eq!(serial.field(), reference, "{name}");
    }
}

#[test]
fn report_counters_unchanged_across_substrates() {
    // Plan-derived counters must not notice the optimizations: under
    // modeled planning input both substrates still produce identical plan
    // sequences, histories and planner-grade byte counters.
    for (name, sc) in pinned_scenarios() {
        let sc = sc.with_lb_input(LbInput::Modeled);
        let sim = sc.run_sim();
        let real = sc.run_dist();
        assert_eq!(sim.lb_plans, real.lb_plans, "{name}");
        assert_eq!(sim.lb_history, real.lb_history, "{name}");
        assert_eq!(
            (sim.ghost_bytes, sim.inter_rack_ghost_bytes),
            (real.ghost_bytes, real.inter_rack_ghost_bytes),
            "{name}"
        );
        assert_eq!(
            (sim.migrations, sim.migration_bytes),
            (real.migrations, real.migration_bytes),
            "{name}"
        );
    }
}

#[test]
fn zero_copy_codec_wire_format_matches_copying_path() {
    // Same payload bytes on the wire, same values after decode — the
    // zero-copy rows codec is a drop-in for pack + slice-encode.
    let mut tile = Tile::new(12, 3);
    for (i, (x, y)) in tile.padded_rect().cells().enumerate() {
        tile.set(x, y, (i as f64).sin());
    }
    for rect in [
        Rect::new(0, 0, 3, 12),  // case-2 edge strip
        Rect::new(-3, 0, 3, 12), // halo destination strip
        Rect::new(0, 0, 12, 12), // whole interior (migration payload)
    ] {
        let legacy = {
            let mut buf = BytesMut::new();
            encode_f64_slice(&tile.pack(&rect), &mut buf);
            buf.freeze()
        };
        let streamed = {
            let mut buf = BytesMut::new();
            encode_f64_rows(rect.area() as usize, tile.rect_rows(&rect), &mut buf);
            buf.freeze()
        };
        assert_eq!(
            legacy, streamed,
            "wire bytes must be identical for {rect:?}"
        );

        let mut via_vec = Tile::new(12, 3);
        let values = decode_f64_vec(&mut legacy.clone()).unwrap();
        via_vec.unpack(&rect, &values);
        let mut via_rows = Tile::new(12, 3);
        decode_f64_rows(&mut streamed.clone(), via_rows.rect_rows_mut(&rect)).unwrap();
        assert_eq!(via_vec, via_rows, "decoded tiles must match for {rect:?}");
    }
}
