//! Consistency between the discrete-event simulator and the real runtime:
//! both execute the same decomposition, so their *communication structure*
//! must agree (message counts exactly, byte volumes up to the small
//! framing difference documented below).

use nonlocalheat::prelude::*;
use nonlocalheat::sim::SimPartition;

/// Run the same configuration through both substrates and return
/// `(real messages, real bytes, sim messages, sim bytes)` for the
/// LB-free ghost traffic.
fn traffic(n: usize, eps_mult: f64, sd: usize, nodes: usize, steps: usize) -> (u64, u64, u64, u64) {
    let cluster = ClusterBuilder::new().uniform(nodes, 1).build();
    let mut cfg = DistConfig::new(n, eps_mult, sd, steps);
    cfg.partition = PartitionMethod::Strip;
    let _ = run_distributed(&cluster, &cfg);
    let real_msgs = cluster.net_stats().messages();
    let real_bytes = cluster.net_stats().cross_bytes();

    let mut sim_cfg = SimConfig::paper(n, sd, steps, {
        (0..nodes).map(|_| VirtualNode::with_cores(1)).collect()
    });
    sim_cfg.eps_mult = eps_mult;
    sim_cfg.partition = SimPartition::Strip;
    let run = simulate(&sim_cfg);
    (real_msgs, real_bytes, run.messages, run.cross_bytes)
}

#[test]
fn message_counts_agree_exactly() {
    // NOTE: SimConfig::paper computes its cost model from eps=8h, but the
    // message *structure* depends only on eps_mult set below.
    let (rm, _, sm, _) = traffic(24, 2.0, 4, 2, 3);
    assert_eq!(rm, sm, "real {rm} vs sim {sm} ghost messages");
    let (rm4, _, sm4, _) = traffic(24, 2.0, 4, 4, 2);
    assert_eq!(rm4, sm4);
}

#[test]
fn byte_volumes_agree_within_framing() {
    // The real codec prepends an 8-byte length to each payload; the sim
    // accounts payload + 24-byte header. Expected delta: 8 bytes/message.
    let (rm, rb, sm, sb) = traffic(24, 2.0, 4, 2, 3);
    assert_eq!(rm, sm);
    let expected_real = sb + 8 * sm;
    assert_eq!(
        rb,
        expected_real,
        "real bytes {rb} vs sim bytes {sb} + framing {}",
        8 * sm
    );
}

#[test]
fn multi_ring_traffic_agrees() {
    // eps spanning two SD rings: the heavier communication pattern must
    // match too.
    let (rm, rb, sm, sb) = traffic(16, 6.0, 4, 2, 2);
    assert_eq!(rm, sm);
    assert_eq!(rb, sb + 8 * sm);
}

#[test]
fn sim_strong_scaling_shape_matches_theory() {
    // With communication negligible and one core per node, the speedup on
    // k nodes of a perfectly divisible problem approaches k.
    let mk = |k: usize| {
        SimConfig::paper(
            400,
            50,
            5,
            (0..k).map(|_| VirtualNode::with_cores(1)).collect(),
        )
    };
    let t1 = simulate(&mk(1)).total_time;
    for k in [2usize, 4, 8] {
        let tk = simulate(&mk(k)).total_time;
        let speedup = t1 / tk;
        assert!(
            speedup > 0.85 * k as f64 && speedup <= 1.02 * k as f64,
            "{k}-node speedup {speedup}"
        );
    }
}
