//! Consistency between the discrete-event simulator and the real runtime:
//! both execute the same decomposition, so their *communication structure*
//! must agree (message counts exactly, byte volumes up to the small
//! framing difference documented below). One `Scenario` value drives both
//! substrates; the unified `RunReport` carries the counters.

use nonlocalheat::prelude::*;

/// Run the same scenario through both substrates and return
/// `(real messages, real wire bytes, sim messages, sim bytes)` for the
/// LB-free ghost traffic.
fn traffic(n: usize, eps_mult: f64, sd: usize, nodes: usize, steps: usize) -> (u64, u64, u64, u64) {
    let scenario = Scenario::square(n, eps_mult, sd, steps)
        .on(ClusterSpec::uniform(nodes, 1))
        .with_partition(PartitionSpec::Strip)
        .with_net(NetSpec::Instant);
    let real = scenario.run_dist();
    let dist = real.dist_extras().expect("real-runtime extras");
    let sim = scenario.run_sim();
    let se = sim.sim_extras().expect("sim extras");
    (
        dist.wire_messages,
        dist.wire_cross_bytes,
        se.messages,
        se.cross_bytes,
    )
}

#[test]
fn message_counts_agree_exactly() {
    let (rm, _, sm, _) = traffic(24, 2.0, 4, 2, 3);
    assert_eq!(rm, sm, "real {rm} vs sim {sm} ghost messages");
    let (rm4, _, sm4, _) = traffic(24, 2.0, 4, 4, 2);
    assert_eq!(rm4, sm4);
}

#[test]
fn byte_volumes_agree_within_framing() {
    // The real codec prepends an 8-byte length to each payload; the sim
    // accounts payload + 24-byte header. Expected delta: 8 bytes/message.
    let (rm, rb, sm, sb) = traffic(24, 2.0, 4, 2, 3);
    assert_eq!(rm, sm);
    let expected_real = sb + 8 * sm;
    assert_eq!(
        rb,
        expected_real,
        "real bytes {rb} vs sim bytes {sb} + framing {}",
        8 * sm
    );
}

#[test]
fn planner_grade_ghost_counters_agree_exactly() {
    // The unified RunReport counts ghost bytes with the same
    // patch_wire_bytes formula on both substrates, so for one scenario
    // the numbers are *identical* — no framing allowance needed.
    let scenario = Scenario::square(24, 2.0, 4, 3)
        .on(ClusterSpec::uniform(2, 1))
        .with_partition(PartitionSpec::Strip)
        .with_net(NetSpec::Instant);
    let real = scenario.run_dist();
    let sim = scenario.run_sim();
    assert!(real.ghost_bytes > 0);
    assert_eq!(real.ghost_bytes, sim.ghost_bytes);
    assert_eq!(real.inter_rack_ghost_bytes, sim.inter_rack_ghost_bytes);
}

#[test]
fn multi_ring_traffic_agrees() {
    // eps spanning two SD rings: the heavier communication pattern must
    // match too.
    let (rm, rb, sm, sb) = traffic(16, 6.0, 4, 2, 2);
    assert_eq!(rm, sm);
    assert_eq!(rb, sb + 8 * sm);
}

/// Run a library scenario on both substrates and assert the planner made
/// *identical* decisions — same epochs, same plans, move for move. Under
/// `LbInput::Modeled` the planner sees deterministic busy times, so any
/// divergence means the substrates disagree about membership masks,
/// drift state, or epoch scheduling.
fn assert_plan_parity(scenario: &Scenario) -> (RunReport, RunReport) {
    let real = scenario.run_dist();
    let sim = scenario.run_sim();
    real.check_invariants();
    sim.check_invariants();
    assert_eq!(
        real.lb_history, sim.lb_history,
        "epoch schedules must match"
    );
    assert_eq!(real.lb_plans, sim.lb_plans, "plan sequences must match");
    assert_eq!(
        real.final_ownership.owners(),
        sim.final_ownership.owners(),
        "identical plans must land identical ownership"
    );
    (real, sim)
}

#[test]
fn elastic_scale_out_plans_identically_on_both_substrates() {
    let scenario = scenarios::elastic_scale_out(true);
    let (real, _) = assert_plan_parity(&scenario);
    let counts = real.final_ownership.counts();
    assert!(
        counts[2] > 0 && counts[3] > 0,
        "joined ranks must end up owning SDs: {counts:?}"
    );
}

#[test]
fn rank_failure_plans_identically_on_both_substrates() {
    let scenario = scenarios::rank_failure(true);
    let (real, _) = assert_plan_parity(&scenario);
    let counts = real.final_ownership.counts();
    assert_eq!(counts[3], 0, "failed rank must be evacuated: {counts:?}");
    assert!(real.migrations > 0, "evacuation must move SDs");
}

#[test]
fn cut_drift_replans_identically_on_both_substrates() {
    let scenario = scenarios::cut_drift(true);
    let (real, sim) = assert_plan_parity(&scenario);
    let drift = |r: &RunReport| {
        r.epoch_traces
            .iter()
            .map(|t| (t.step, t.replan))
            .collect::<Vec<_>>()
    };
    assert_eq!(drift(&real), drift(&sim), "drift decisions must match");
    assert!(
        real.epoch_traces.iter().any(|t| t.replan),
        "the drift monitor must fire on the decayed start"
    );
}

#[test]
fn sim_strong_scaling_shape_matches_theory() {
    // With communication negligible and one core per node, the speedup on
    // k nodes of a perfectly divisible problem approaches k.
    let mk = |k: usize| {
        Scenario::square(400, 8.0, 50, 5)
            .on(ClusterSpec::uniform(k, 1))
            .run_sim()
            .makespan
    };
    let t1 = mk(1);
    for k in [2usize, 4, 8] {
        let tk = mk(k);
        let speedup = t1 / tk;
        assert!(
            speedup > 0.85 * k as f64 && speedup <= 1.02 * k as f64,
            "{k}-node speedup {speedup}"
        );
    }
}
