//! Integration tests of Algorithm 1 across the stack: pure planning,
//! virtual iteration, the DES, and the real distributed runtime —
//! including the communication-aware (λ > 0) and ghost-aware (μ > 0)
//! planning paths. Run-level experiments are described through the
//! declarative `Scenario` API; planner-level tests drive the policy layer
//! directly.

use nonlocalheat::core::balance::{
    compute_metrics, iterate_rebalance, plan_rebalance, plan_rebalance_with_cost,
};
use nonlocalheat::prelude::*;

/// Busy model for identical nodes: busy ∝ SD count.
fn symmetric_busy(own: &Ownership) -> Vec<f64> {
    own.counts().iter().map(|&c| c.max(1) as f64).collect()
}

/// The shared 2-rack interconnect of the scenario library (a meaningfully
/// slower uplink); using the library definition keeps this file pinned to
/// the exact topology the ablations and library scenarios sweep.
fn two_rack_spec() -> NetSpec {
    scenarios::two_rack_net()
}

/// The 15/1 lopsided start on a 4x4 SD grid.
fn lopsided16() -> PartitionSpec {
    let mut owners = vec![0u32; 16];
    owners[15] = 1;
    PartitionSpec::Explicit(owners)
}

#[test]
fn fig14_scenario_full_history() {
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let own = Ownership::new(sds, owners, 4);

    let history = iterate_rebalance(&own, 3, symmetric_busy);
    assert!(history.len() >= 2, "at least one iteration must act");
    // spread shrinks monotonically across iterations
    let spreads: Vec<usize> = history
        .iter()
        .map(|o| {
            let c = o.counts();
            c.iter().max().unwrap() - c.iter().min().unwrap()
        })
        .collect();
    for w in spreads.windows(2) {
        assert!(w[1] <= w[0], "spread must not grow: {spreads:?}");
    }
    assert!(*spreads.last().unwrap() <= 2, "{spreads:?}");
    // all territories stay contiguous, as Fig. 6 requires
    for state in &history {
        for node in 0..4 {
            assert!(state.is_contiguous(node));
        }
    }
}

#[test]
fn planning_is_idempotent_when_balanced() {
    let sds = SdGrid::new(6, 6, 10);
    let partition = part_mesh_dual(&sds, 4, 3);
    let own = Ownership::from_partition(sds, &partition);
    let plan = plan_rebalance(&own, &symmetric_busy(&own));
    // a partitioner-balanced 36/4 = 9-each distribution needs no moves
    assert!(plan.is_noop(), "moves: {:?}", plan.moves);
}

#[test]
fn power_proportional_distribution_in_sim() {
    // speeds 3:1:1:1 -> fast node should converge to ~3/6 of the SDs
    let run = Scenario::square(400, 8.0, 25, 30)
        .on(ClusterSpec::speeds(&[3.0, 1.0, 1.0, 1.0]))
        .with_lb(LbSchedule::every(3))
        .run_sim();
    let counts = run.final_ownership.counts();
    let total: usize = counts.iter().sum();
    assert_eq!(total, 256);
    let share = counts[0] as f64 / total as f64;
    assert!(
        (0.35..0.62).contains(&share),
        "fast node share {share}, counts {counts:?}"
    );
}

#[test]
fn sim_busy_fractions_equalize_with_lb() {
    let base = Scenario::square(400, 8.0, 25, 40).on(ClusterSpec::speeds(&[2.0, 1.0, 1.0, 1.0]));
    let off = base.clone().run_sim();
    let on = base.with_lb(LbSchedule::every(4)).run_sim();
    let spread = |r: &RunReport| {
        let fractions = &r.sim_extras().expect("sim extras").busy_fraction;
        fractions.iter().cloned().fold(0.0, f64::max)
            - fractions.iter().cloned().fold(1.0, f64::min)
    };
    assert!(
        spread(&on) < spread(&off),
        "LB must equalize busy fractions: off {:?} on {:?}",
        off.sim_extras().unwrap().busy_fraction,
        on.sim_extras().unwrap().busy_fraction
    );
}

#[test]
fn real_runtime_migrations_match_plans() {
    let report = Scenario::square(16, 2.0, 4, 6)
        .on(ClusterSpec::uniform(2, 1))
        .with_partition(lopsided16())
        .with_lb(LbSchedule::every(2))
        .run_dist();
    // lb_history records the post-epoch counts; the last entry must match
    // the final ownership, and the recorded plans must cover every move
    let last = report.lb_history.last().expect("at least one epoch");
    assert_eq!(*last, report.final_ownership.counts());
    assert!(report.migrations > 0);
    assert_eq!(
        report.lb_plans.iter().map(Vec::len).sum::<usize>(),
        report.migrations
    );
}

#[test]
fn lambda_zero_cost_aware_plans_match_seed_planner() {
    // Acceptance criterion: with λ = 0 the cost-aware planner emits
    // byte-identical plans on this file's fixtures, even when a real
    // 2-rack CommCost and tile size are attached.
    let params = CostParams::new(two_rack_spec().comm_cost(), 0.0, 25 * 25 * 8 + 24);
    // fixture 1: the Fig. 14 scenario
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let fig14 = Ownership::new(sds, owners, 4);
    // fixture 2: a partitioner-produced ownership
    let sds6 = SdGrid::new(6, 6, 10);
    let partitioned = Ownership::from_partition(sds6, &part_mesh_dual(&sds6, 4, 3));
    for own in [fig14, partitioned] {
        for busy in [
            symmetric_busy(&own),
            vec![3.0, 0.5, 1.0, 2.0],
            vec![1.0, 1.0, 9.0, 1.0],
        ] {
            let seed = plan_rebalance(&own, &busy);
            let cost_aware = plan_rebalance_with_cost(&own, &busy, &params);
            assert_eq!(seed.moves, cost_aware.moves);
            assert_eq!(seed.new_ownership, cost_aware.new_ownership);
            assert_eq!(seed.metrics, cost_aware.metrics);
        }
    }
}

#[test]
fn sim_lambda_reduces_inter_rack_migration_traffic() {
    // End-to-end through the simulator: same 2-rack workload, λ on vs
    // off. λ must cut inter-rack migration bytes without freezing the
    // balancer.
    let base = Scenario::square(400, 8.0, 25, 16)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(two_rack_spec());
    let count_based = base.clone().with_lb(LbSchedule::every(4)).run_sim();
    let cost_aware = base
        .with_lb(LbSchedule::every(4).with_spec(LbSpec::tree(2.0)))
        .run_sim();
    assert!(
        count_based.inter_rack_migration_bytes > 0,
        "baseline must cross racks for the comparison to mean anything"
    );
    assert!(
        cost_aware.inter_rack_migration_bytes < count_based.inter_rack_migration_bytes,
        "λ=2 must cut inter-rack migration bytes: {} vs {}",
        cost_aware.inter_rack_migration_bytes,
        count_based.inter_rack_migration_bytes
    );
    assert!(cost_aware.migrations > 0, "balancer must keep working");
    assert!(
        cost_aware.makespan <= count_based.makespan * 1.10,
        "makespan must stay within noise: {} vs {}",
        cost_aware.makespan,
        count_based.makespan
    );
    // bookkeeping sanity: migration bytes are a subset of cross traffic
    let cross = cost_aware.sim_extras().expect("sim extras").cross_bytes;
    assert!(cost_aware.migration_bytes <= cross);
    assert!(cost_aware.inter_rack_migration_bytes <= cost_aware.migration_bytes);
}

#[test]
fn real_runtime_cost_aware_lb_preserves_numerics() {
    // The distributed runtime with a topology fabric and λ > 0: the plan
    // changes, the numerics must not. Two regimes: a tiny λ whose gate
    // always passes (migrations proceed), and a λ so large that no
    // measured relief can cover the link cost (every migration gated, the
    // imbalanced ownership freezes) — both must stay bit-exact.
    let parts = ProblemSpec::square(16, 2.0).build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(6);
    let reference = serial.field();
    for (lambda, expect_migrations) in [(1e-4, true), (1e6, false)] {
        let report = Scenario::square(16, 2.0, 4, 6)
            .on(ClusterSpec::uniform(2, 1))
            .with_net(two_rack_spec())
            .with_partition(lopsided16())
            .with_lb(LbSchedule::every(2).with_spec(LbSpec::Tree { lambda, mu: 0.0 }))
            .run_dist();
        assert_eq!(report.field.as_ref(), Some(&reference), "λ={lambda}");
        if expect_migrations {
            assert!(report.migrations > 0, "λ={lambda} gate must pass");
        } else {
            assert_eq!(report.migrations, 0, "λ={lambda} must gate every migration");
        }
    }
}

#[test]
fn tree_spec_pinned_byte_identical_to_pre_policy_planner() {
    // The api_redesign acceptance criterion: `LbSpec::Tree { lambda }`
    // routed through the policy layer reproduces the pre-PR planner's
    // `MigrationPlan`s move for move on this file's fixtures, at λ = 0
    // and λ > 0 alike.
    let net = LbNetwork::new(two_rack_spec().comm_cost(), 25 * 25 * 8 + 24);
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let fig14 = Ownership::new(sds, owners, 4);
    let sds6 = SdGrid::new(6, 6, 10);
    let partitioned = Ownership::from_partition(sds6, &part_mesh_dual(&sds6, 4, 3));
    for lambda in [0.0, 1.0] {
        let mut policy = LbSpec::Tree { lambda, mu: 0.0 }.build();
        for own in [fig14.clone(), partitioned.clone()] {
            for busy in [
                symmetric_busy(&own),
                vec![3.0, 0.5, 1.0, 2.0],
                vec![1.0, 1.0, 9.0, 1.0],
            ] {
                let legacy = plan_rebalance_with_cost(
                    &own,
                    &busy,
                    &CostParams::new(net.comm, lambda, net.sd_bytes.clone()),
                );
                let metrics = compute_metrics(&own.counts(), &busy);
                let plan = policy.plan(&own, &metrics, &net);
                assert_eq!(legacy.moves, plan.moves, "λ={lambda}");
                assert_eq!(legacy.new_ownership, plan.new_ownership);
                assert_eq!(legacy.metrics, plan.metrics);
                assert_eq!(legacy.comm, plan.comm);
            }
        }
    }
}

#[test]
fn every_lb_spec_runs_both_substrates_on_two_racks() {
    // The A8 acceptance shape at test scale: every policy variant drives
    // a 2-rack run through the simulator AND the real runtime — the same
    // Scenario value, two substrates. The real runtime must stay
    // bit-exact against the serial solver under every policy (migration
    // plans may differ; numerics may not).
    let parts = ProblemSpec::square(16, 2.0).build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(6);
    let reference = serial.field();
    let specs = [
        LbSpec::tree(1.0),
        LbSpec::diffusion(1.0, 8),
        LbSpec::greedy_steal(1),
        LbSpec::adaptive(LbSpec::tree(0.0), 0.1),
        LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2),
    ];
    for spec in specs {
        // simulator leg (paper horizon eps = 8h, so the 2-rack duel runs
        // under the full cross-rack ghost volume)
        let sim = Scenario::square(100, 8.0, 25, 8)
            .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
            .with_net(two_rack_spec())
            .with_lb(LbSchedule::every(2).with_spec(spec.clone()))
            .run_sim();
        assert!(
            sim.makespan.is_finite() && sim.makespan > 0.0,
            "{}",
            spec.name()
        );
        assert_eq!(
            sim.final_ownership.counts().iter().sum::<usize>(),
            16,
            "{}: SDs conserved",
            spec.name()
        );
        // real-runtime leg: 4 localities over 2 racks, node 0 holding
        // everything but the far corners
        let sds = SdGrid::tile_mesh(16, 16, 4);
        let report = Scenario::square(16, 2.0, 4, 6)
            .on(ClusterSpec::uniform(4, 1))
            .with_net(two_rack_spec())
            .with_partition(PartitionSpec::Explicit(scenarios::lopsided_owners(&sds, 4)))
            .with_lb(LbSchedule::every(2).with_spec(spec.clone()))
            .run_dist();
        assert_eq!(report.field.as_ref(), Some(&reference), "{}", spec.name());
    }
}

#[test]
fn ghost_aware_lb_preserves_numerics_and_gates() {
    // The μ gate in the real runtime: bit-exact numerics in the shaping
    // regime (tiny μ, migrations proceed) and in the full-gate regime
    // (huge μ: every move's recurring ghost cost dwarfs wall-clock
    // relief, the lopsided ownership freezes) — like the λ test above,
    // but priced by the SD graph's edge-cut delta.
    let parts = ProblemSpec::square(16, 2.0).build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(6);
    let reference = serial.field();
    for (mu, expect_migrations) in [(1e-9, true), (1e9, false)] {
        let report = Scenario::square(16, 2.0, 4, 6)
            .on(ClusterSpec::uniform(2, 1))
            .with_net(two_rack_spec())
            .with_partition(lopsided16())
            .with_lb(LbSchedule::every(2).with_spec(LbSpec::tree(0.0).with_mu(mu)))
            .run_dist();
        assert_eq!(report.field.as_ref(), Some(&reference), "μ={mu}");
        if expect_migrations {
            assert!(report.migrations > 0, "μ={mu} gate must pass");
            assert!(
                !report.epoch_traces.is_empty(),
                "realized epochs must be traced"
            );
            let t = &report.epoch_traces[0];
            assert!(t.ghost_bytes_before > 0, "real runtime attaches its graph");
        } else {
            assert_eq!(report.migrations, 0, "μ={mu} must gate every migration");
            assert!(report.epoch_traces.is_empty());
        }
    }
}

#[test]
fn sim_epoch_traces_align_with_aggregates_under_mu() {
    // Trace/aggregate consistency through the facade on a ghost-aware
    // run (the μ-lowers-the-cut claim itself is pinned by the engine's
    // own `mu_reduces_steady_state_ghost_cut` test). One lopsided 2-rack
    // run with μ active: the recorded per-epoch traces must sum to
    // exactly the run-level counters and carry the ghost columns.
    let base = Scenario::square(400, 8.0, 25, 24)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_spec());
    let sds = base.sd_grid();
    let run = base
        .with_partition(PartitionSpec::Explicit(scenarios::lopsided_owners(&sds, 4)))
        .with_lb(LbSchedule::every(4).with_spec(LbSpec::tree(0.0).with_mu(0.25)))
        .run_sim();
    assert!(run.migrations > 0, "the lopsided start must redistribute");
    run.check_invariants();
    assert_eq!(
        run.epoch_traces.iter().map(|t| t.moves).sum::<usize>(),
        run.migrations
    );
    assert_eq!(
        run.epoch_traces
            .iter()
            .map(|t| t.migration_bytes)
            .sum::<u64>(),
        run.migration_bytes
    );
    for t in &run.epoch_traces {
        assert_eq!(t.policy, "tree");
        assert!(t.ghost_bytes_before > 0, "graph always attached in sim");
    }
}

#[test]
fn crack_workload_rebalances_in_sim() {
    let run = Scenario::square(400, 8.0, 25, 24)
        .on(ClusterSpec::uniform(4, 1))
        .with_partition(PartitionSpec::Strip)
        .with_work(WorkModel::Crack {
            y_cell: 200,
            half_width: 30,
            factor: 0.25,
        })
        .with_lb(LbSchedule::every(4))
        .run_sim();
    assert!(run.migrations > 0, "crack imbalance must trigger migration");
    // nodes hosting the cheap band end with more SDs than the others
    let counts = run.final_ownership.counts();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(max > min, "counts should differentiate: {counts:?}");
}
