//! Integration tests of Algorithm 1 across the stack: pure planning,
//! virtual iteration, the DES, and the real distributed runtime —
//! including the communication-aware (λ > 0) planning path.

use nonlocalheat::core::balance::{
    compute_metrics, iterate_rebalance, plan_rebalance, plan_rebalance_with_cost,
};
use nonlocalheat::prelude::*;

/// Busy model for identical nodes: busy ∝ SD count.
fn symmetric_busy(own: &Ownership) -> Vec<f64> {
    own.counts().iter().map(|&c| c.max(1) as f64).collect()
}

/// A 2-rack interconnect with a meaningfully slower uplink.
fn two_rack_spec() -> NetSpec {
    NetSpec::Topology(TopologySpec {
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(0.0, f64::INFINITY),
        intra_rack: LinkSpec::new(1e-4, 1e8),
        inter_rack: LinkSpec::new(4e-4, 2.5e7),
    })
}

#[test]
fn fig14_scenario_full_history() {
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let own = Ownership::new(sds, owners, 4);

    let history = iterate_rebalance(&own, 3, symmetric_busy);
    assert!(history.len() >= 2, "at least one iteration must act");
    // spread shrinks monotonically across iterations
    let spreads: Vec<usize> = history
        .iter()
        .map(|o| {
            let c = o.counts();
            c.iter().max().unwrap() - c.iter().min().unwrap()
        })
        .collect();
    for w in spreads.windows(2) {
        assert!(w[1] <= w[0], "spread must not grow: {spreads:?}");
    }
    assert!(*spreads.last().unwrap() <= 2, "{spreads:?}");
    // all territories stay contiguous, as Fig. 6 requires
    for state in &history {
        for node in 0..4 {
            assert!(state.is_contiguous(node));
        }
    }
}

#[test]
fn planning_is_idempotent_when_balanced() {
    let sds = SdGrid::new(6, 6, 10);
    let partition = part_mesh_dual(&sds, 4, 3);
    let own = Ownership::from_partition(sds, &partition);
    let plan = plan_rebalance(&own, &symmetric_busy(&own));
    // a partitioner-balanced 36/4 = 9-each distribution needs no moves
    assert!(plan.is_noop(), "moves: {:?}", plan.moves);
}

#[test]
fn power_proportional_distribution_in_sim() {
    // speeds 3:1:1:1 -> fast node should converge to ~3/6 of the SDs
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 3.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
    ];
    let mut cfg = SimConfig::paper(400, 25, 30, nodes);
    cfg.lb = Some(SimLbConfig::every(3));
    let run = simulate(&cfg);
    let counts = run.final_ownership.counts();
    let total: usize = counts.iter().sum();
    assert_eq!(total, 256);
    let share = counts[0] as f64 / total as f64;
    assert!(
        (0.35..0.62).contains(&share),
        "fast node share {share}, counts {counts:?}"
    );
}

#[test]
fn sim_busy_fractions_equalize_with_lb() {
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 2.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
    ];
    let mut cfg = SimConfig::paper(400, 25, 40, nodes);
    cfg.lb = None;
    let off = simulate(&cfg);
    cfg.lb = Some(SimLbConfig::every(4));
    let on = simulate(&cfg);
    let spread = |fractions: &[f64]| {
        fractions.iter().cloned().fold(0.0, f64::max)
            - fractions.iter().cloned().fold(1.0, f64::min)
    };
    assert!(
        spread(&on.busy_fraction) < spread(&off.busy_fraction),
        "LB must equalize busy fractions: off {:?} on {:?}",
        off.busy_fraction,
        on.busy_fraction
    );
}

#[test]
fn real_runtime_migrations_match_plans() {
    let cluster = ClusterBuilder::new().uniform(2, 1).build();
    let mut cfg = DistConfig::new(16, 2.0, 4, 6);
    cfg.lb = Some(LbConfig::every(2));
    let mut owners = vec![0u32; 16];
    owners[15] = 1;
    cfg.partition = PartitionMethod::Explicit(owners);
    let report = run_distributed(&cluster, &cfg);
    // lb_history records the post-epoch counts; the last entry must match
    // the final ownership
    let last = report.lb_history.last().expect("at least one epoch");
    assert_eq!(*last, report.final_ownership.counts());
    assert!(report.migrations > 0);
}

#[test]
fn lambda_zero_cost_aware_plans_match_seed_planner() {
    // Acceptance criterion: with λ = 0 the cost-aware planner emits
    // byte-identical plans on this file's fixtures, even when a real
    // 2-rack CommCost and tile size are attached.
    let params = CostParams::new(two_rack_spec().comm_cost(), 0.0, 25 * 25 * 8 + 24);
    // fixture 1: the Fig. 14 scenario
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let fig14 = Ownership::new(sds, owners, 4);
    // fixture 2: a partitioner-produced ownership
    let sds6 = SdGrid::new(6, 6, 10);
    let partitioned = Ownership::from_partition(sds6, &part_mesh_dual(&sds6, 4, 3));
    for own in [fig14, partitioned] {
        for busy in [
            symmetric_busy(&own),
            vec![3.0, 0.5, 1.0, 2.0],
            vec![1.0, 1.0, 9.0, 1.0],
        ] {
            let seed = plan_rebalance(&own, &busy);
            let cost_aware = plan_rebalance_with_cost(&own, &busy, &params);
            assert_eq!(seed.moves, cost_aware.moves);
            assert_eq!(seed.new_ownership, cost_aware.new_ownership);
            assert_eq!(seed.metrics, cost_aware.metrics);
        }
    }
}

#[test]
fn sim_lambda_reduces_inter_rack_migration_traffic() {
    // End-to-end through the simulator: same 2-rack workload, λ on vs
    // off. λ must cut inter-rack migration bytes without freezing the
    // balancer.
    let nodes: Vec<VirtualNode> = [2.0, 1.0, 2.0, 1.0]
        .iter()
        .map(|&speed| VirtualNode { cores: 1, speed })
        .collect();
    let mut cfg = SimConfig::paper(400, 25, 16, nodes);
    cfg.partition = nonlocalheat::sim::SimPartition::Strip;
    cfg.net = two_rack_spec();
    cfg.lb = Some(SimLbConfig::every(4));
    let count_based = simulate(&cfg);
    cfg.lb = Some(SimLbConfig::every(4).with_spec(LbSpec::tree(2.0)));
    let cost_aware = simulate(&cfg);
    assert!(
        count_based.inter_rack_migration_bytes > 0,
        "baseline must cross racks for the comparison to mean anything"
    );
    assert!(
        cost_aware.inter_rack_migration_bytes < count_based.inter_rack_migration_bytes,
        "λ=2 must cut inter-rack migration bytes: {} vs {}",
        cost_aware.inter_rack_migration_bytes,
        count_based.inter_rack_migration_bytes
    );
    assert!(cost_aware.migrations > 0, "balancer must keep working");
    assert!(
        cost_aware.total_time <= count_based.total_time * 1.10,
        "makespan must stay within noise: {} vs {}",
        cost_aware.total_time,
        count_based.total_time
    );
    // bookkeeping sanity: migration bytes are a subset of cross traffic
    assert!(cost_aware.migration_bytes <= cost_aware.cross_bytes);
    assert!(cost_aware.inter_rack_migration_bytes <= cost_aware.migration_bytes);
}

#[test]
fn real_runtime_cost_aware_lb_preserves_numerics() {
    // The distributed runtime with a topology fabric and λ > 0: the plan
    // changes, the numerics must not. Two regimes: a tiny λ whose gate
    // always passes (migrations proceed), and a λ so large that no
    // measured relief can cover the link cost (every migration gated, the
    // imbalanced ownership freezes) — both must stay bit-exact.
    let parts = ProblemSpec::square(16, 2.0).build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(6);
    let reference = serial.field();
    for (lambda, expect_migrations) in [(1e-4, true), (1e6, false)] {
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.net = two_rack_spec();
        cfg.lb = Some(LbConfig::every(2).with_spec(LbSpec::Tree { lambda, mu: 0.0 }));
        let mut owners = vec![0u32; 16];
        owners[15] = 1;
        cfg.partition = PartitionMethod::Explicit(owners);
        let cluster = cfg.cluster().uniform(2, 1).build();
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, reference, "λ={lambda}");
        if expect_migrations {
            assert!(report.migrations > 0, "λ={lambda} gate must pass");
        } else {
            assert_eq!(report.migrations, 0, "λ={lambda} must gate every migration");
        }
    }
}

#[test]
fn tree_spec_pinned_byte_identical_to_pre_policy_planner() {
    // The api_redesign acceptance criterion: `LbSpec::Tree { lambda }`
    // routed through the policy layer reproduces the pre-PR planner's
    // `MigrationPlan`s move for move on this file's fixtures, at λ = 0
    // and λ > 0 alike.
    let net = LbNetwork::new(two_rack_spec().comm_cost(), 25 * 25 * 8 + 24);
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let fig14 = Ownership::new(sds, owners, 4);
    let sds6 = SdGrid::new(6, 6, 10);
    let partitioned = Ownership::from_partition(sds6, &part_mesh_dual(&sds6, 4, 3));
    for lambda in [0.0, 1.0] {
        let mut policy = LbSpec::Tree { lambda, mu: 0.0 }.build();
        for own in [fig14.clone(), partitioned.clone()] {
            for busy in [
                symmetric_busy(&own),
                vec![3.0, 0.5, 1.0, 2.0],
                vec![1.0, 1.0, 9.0, 1.0],
            ] {
                let legacy = plan_rebalance_with_cost(
                    &own,
                    &busy,
                    &CostParams::new(net.comm, lambda, net.sd_bytes),
                );
                let metrics = compute_metrics(&own.counts(), &busy);
                let plan = policy.plan(&own, &metrics, &net);
                assert_eq!(legacy.moves, plan.moves, "λ={lambda}");
                assert_eq!(legacy.new_ownership, plan.new_ownership);
                assert_eq!(legacy.metrics, plan.metrics);
                assert_eq!(legacy.comm, plan.comm);
            }
        }
    }
}

#[test]
fn every_lb_spec_runs_both_substrates_on_two_racks() {
    // The A8 acceptance shape at test scale: all four policy variants
    // drive a 2-rack run through the simulator AND the real runtime. The
    // real runtime must stay bit-exact against the serial solver under
    // every policy (migration plans may differ; numerics may not).
    let parts = ProblemSpec::square(16, 2.0).build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(6);
    let reference = serial.field();
    let specs = [
        LbSpec::tree(1.0),
        LbSpec::diffusion(1.0, 8),
        LbSpec::greedy_steal(1),
        LbSpec::adaptive(LbSpec::tree(0.0), 0.1),
    ];
    for spec in specs {
        // simulator leg
        let nodes: Vec<VirtualNode> = [2.0, 1.0, 2.0, 1.0]
            .iter()
            .map(|&speed| VirtualNode { cores: 1, speed })
            .collect();
        let mut sim_cfg = SimConfig::paper(100, 25, 8, nodes);
        sim_cfg.net = two_rack_spec();
        sim_cfg.lb = Some(SimLbConfig::every(2).with_spec(spec.clone()));
        let run = simulate(&sim_cfg);
        assert!(
            run.total_time.is_finite() && run.total_time > 0.0,
            "{}",
            spec.name()
        );
        assert_eq!(
            run.final_ownership.counts().iter().sum::<usize>(),
            16,
            "{}: SDs conserved",
            spec.name()
        );
        // real-runtime leg: 4 localities over 2 racks, node 0 holding
        // everything but the far corners
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.net = two_rack_spec();
        cfg.lb = Some(LbConfig::every(2).with_spec(spec.clone()));
        let mut owners = vec![0u32; 16];
        owners[3] = 1;
        owners[12] = 2;
        owners[15] = 3;
        cfg.partition = PartitionMethod::Explicit(owners);
        let cluster = cfg.cluster().uniform(4, 1).build();
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, reference, "{}", spec.name());
    }
}

#[test]
fn ghost_aware_lb_preserves_numerics_and_gates() {
    // The μ gate in the real runtime: bit-exact numerics in the shaping
    // regime (tiny μ, migrations proceed) and in the full-gate regime
    // (huge μ: every move's recurring ghost cost dwarfs wall-clock
    // relief, the lopsided ownership freezes) — like the λ test above,
    // but priced by the SD graph's edge-cut delta.
    let parts = ProblemSpec::square(16, 2.0).build();
    let mut serial = SerialSolver::manufactured(&parts);
    serial.run(6);
    let reference = serial.field();
    for (mu, expect_migrations) in [(1e-9, true), (1e9, false)] {
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.net = two_rack_spec();
        cfg.lb = Some(LbConfig::every(2).with_spec(LbSpec::tree(0.0).with_mu(mu)));
        let mut owners = vec![0u32; 16];
        owners[15] = 1;
        cfg.partition = PartitionMethod::Explicit(owners);
        let cluster = cfg.cluster().uniform(2, 1).build();
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, reference, "μ={mu}");
        if expect_migrations {
            assert!(report.migrations > 0, "μ={mu} gate must pass");
            assert!(
                !report.epoch_traces.is_empty(),
                "realized epochs must be traced"
            );
            let t = &report.epoch_traces[0];
            assert!(t.ghost_bytes_before > 0, "real runtime attaches its graph");
        } else {
            assert_eq!(report.migrations, 0, "μ={mu} must gate every migration");
            assert!(report.epoch_traces.is_empty());
        }
    }
}

#[test]
fn sim_epoch_traces_align_with_aggregates_under_mu() {
    // Trace/aggregate consistency through the facade on a ghost-aware
    // run (the μ-lowers-the-cut claim itself is pinned by the engine's
    // own `mu_reduces_steady_state_ghost_cut` test; duplicating its two
    // simulations here would buy nothing). One lopsided 2-rack run with
    // μ active: the recorded per-epoch traces must sum to exactly the
    // run-level counters and carry the ghost columns.
    let sds = SdGrid::tile_mesh(400, 400, 25);
    let mut owners = vec![0u32; sds.count()];
    owners[sds.id(15, 0) as usize] = 1;
    owners[sds.id(0, 15) as usize] = 2;
    owners[sds.id(15, 15) as usize] = 3;
    let nodes: Vec<VirtualNode> = (0..4).map(|_| VirtualNode::with_cores(1)).collect();
    let mut cfg = SimConfig::paper(400, 25, 24, nodes);
    cfg.partition = nonlocalheat::sim::SimPartition::Explicit(owners);
    cfg.net = two_rack_spec();
    cfg.lb = Some(SimLbConfig::every(4).with_spec(LbSpec::tree(0.0).with_mu(0.25)));
    let run = simulate(&cfg);
    assert!(run.migrations > 0, "the lopsided start must redistribute");
    assert_eq!(
        run.epoch_traces.iter().map(|t| t.moves).sum::<usize>(),
        run.migrations
    );
    assert_eq!(
        run.epoch_traces
            .iter()
            .map(|t| t.migration_bytes)
            .sum::<u64>(),
        run.migration_bytes
    );
    for t in &run.epoch_traces {
        assert_eq!(t.policy, "tree");
        assert!(t.ghost_bytes_before > 0, "graph always attached in sim");
    }
}

#[test]
fn crack_workload_rebalances_in_sim() {
    let mut cfg = SimConfig::paper(400, 25, 24, {
        (0..4).map(|_| VirtualNode::with_cores(1)).collect()
    });
    cfg.partition = nonlocalheat::sim::SimPartition::Strip;
    cfg.work = WorkModel::Crack {
        y_cell: 200,
        half_width: 30,
        factor: 0.25,
    };
    cfg.lb = Some(SimLbConfig::every(4));
    let run = simulate(&cfg);
    assert!(run.migrations > 0, "crack imbalance must trigger migration");
    // nodes hosting the cheap band end with more SDs than the others
    let counts = run.final_ownership.counts();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(max > min, "counts should differentiate: {counts:?}");
}
