//! Integration tests of Algorithm 1 across the stack: pure planning,
//! virtual iteration, the DES, and the real distributed runtime.

use nonlocalheat::core::balance::{iterate_rebalance, plan_rebalance};
use nonlocalheat::prelude::*;

/// Busy model for identical nodes: busy ∝ SD count.
fn symmetric_busy(own: &Ownership) -> Vec<f64> {
    own.counts().iter().map(|&c| c.max(1) as f64).collect()
}

#[test]
fn fig14_scenario_full_history() {
    let sds = SdGrid::new(5, 5, 50);
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let own = Ownership::new(sds, owners, 4);

    let history = iterate_rebalance(&own, 3, symmetric_busy);
    assert!(history.len() >= 2, "at least one iteration must act");
    // spread shrinks monotonically across iterations
    let spreads: Vec<usize> = history
        .iter()
        .map(|o| {
            let c = o.counts();
            c.iter().max().unwrap() - c.iter().min().unwrap()
        })
        .collect();
    for w in spreads.windows(2) {
        assert!(w[1] <= w[0], "spread must not grow: {spreads:?}");
    }
    assert!(*spreads.last().unwrap() <= 2, "{spreads:?}");
    // all territories stay contiguous, as Fig. 6 requires
    for state in &history {
        for node in 0..4 {
            assert!(state.is_contiguous(node));
        }
    }
}

#[test]
fn planning_is_idempotent_when_balanced() {
    let sds = SdGrid::new(6, 6, 10);
    let partition = part_mesh_dual(&sds, 4, 3);
    let own = Ownership::from_partition(sds, &partition);
    let plan = plan_rebalance(&own, &symmetric_busy(&own));
    // a partitioner-balanced 36/4 = 9-each distribution needs no moves
    assert!(plan.is_noop(), "moves: {:?}", plan.moves);
}

#[test]
fn power_proportional_distribution_in_sim() {
    // speeds 3:1:1:1 -> fast node should converge to ~3/6 of the SDs
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 3.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
    ];
    let mut cfg = SimConfig::paper(400, 25, 30, nodes);
    cfg.lb = Some(SimLbConfig { period: 3 });
    let run = simulate(&cfg);
    let counts = run.final_ownership.counts();
    let total: usize = counts.iter().sum();
    assert_eq!(total, 256);
    let share = counts[0] as f64 / total as f64;
    assert!(
        (0.35..0.62).contains(&share),
        "fast node share {share}, counts {counts:?}"
    );
}

#[test]
fn sim_busy_fractions_equalize_with_lb() {
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 2.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
        },
    ];
    let mut cfg = SimConfig::paper(400, 25, 40, nodes);
    cfg.lb = None;
    let off = simulate(&cfg);
    cfg.lb = Some(SimLbConfig { period: 4 });
    let on = simulate(&cfg);
    let spread = |fractions: &[f64]| {
        fractions.iter().cloned().fold(0.0, f64::max)
            - fractions.iter().cloned().fold(1.0, f64::min)
    };
    assert!(
        spread(&on.busy_fraction) < spread(&off.busy_fraction),
        "LB must equalize busy fractions: off {:?} on {:?}",
        off.busy_fraction,
        on.busy_fraction
    );
}

#[test]
fn real_runtime_migrations_match_plans() {
    let cluster = ClusterBuilder::new().uniform(2, 1).build();
    let mut cfg = DistConfig::new(16, 2.0, 4, 6);
    cfg.lb = Some(LbConfig { period: 2 });
    let mut owners = vec![0u32; 16];
    owners[15] = 1;
    cfg.partition = PartitionMethod::Explicit(owners);
    let report = run_distributed(&cluster, &cfg);
    // lb_history records the post-epoch counts; the last entry must match
    // the final ownership
    let last = report.lb_history.last().expect("at least one epoch");
    assert_eq!(*last, report.final_ownership.counts());
    assert!(report.migrations > 0);
}

#[test]
fn crack_workload_rebalances_in_sim() {
    let mut cfg = SimConfig::paper(400, 25, 24, {
        (0..4).map(|_| VirtualNode::with_cores(1)).collect()
    });
    cfg.partition = nonlocalheat::sim::SimPartition::Strip;
    cfg.work = WorkModel::Crack {
        y_cell: 200,
        half_width: 30,
        factor: 0.25,
    };
    cfg.lb = Some(SimLbConfig { period: 4 });
    let run = simulate(&cfg);
    assert!(run.migrations > 0, "crack imbalance must trigger migration");
    // nodes hosting the cheap band end with more SDs than the others
    let counts = run.final_ownership.counts();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(max > min, "counts should differentiate: {counts:?}");
}
