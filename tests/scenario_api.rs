//! The declarative `Scenario` API end to end: cross-substrate parity,
//! the scenario library, and the unified `RunReport` invariants.
//!
//! The parity test is the tentpole acceptance criterion: one `Scenario`
//! under `NetSpec::Instant` + an explicit partition + modeled planning
//! input yields **identical** `MigrationPlan` sequences and `lb_history`
//! from both substrates, for every `LbSpec` variant — the two runtimes
//! provably execute the same experiment, not two similar ones.

use nonlocalheat::prelude::*;

/// The Fig.-14-style lopsided start both parity legs redistribute.
fn parity_scenario(spec: LbSpec) -> Scenario {
    let base = Scenario::square(16, 2.0, 4, 8)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(NetSpec::Instant)
        .with_lb_input(LbInput::Modeled);
    let sds = base.sd_grid();
    base.with_partition(PartitionSpec::Explicit(scenarios::lopsided_owners(&sds, 4)))
        .with_lb(LbSchedule::every(2).with_spec(spec))
}

#[test]
fn cross_substrate_parity_for_every_lb_spec() {
    // Under Instant + Modeled, both substrates feed the policies
    // byte-identical planner inputs, so plan sequences, histories,
    // traces, final ownership AND the planner-grade ghost counters must
    // agree exactly — for every policy variant.
    let specs = [
        LbSpec::tree(0.0),
        LbSpec::tree(1.5),
        LbSpec::diffusion(1.0, 8),
        LbSpec::greedy_steal(1),
        LbSpec::adaptive(LbSpec::tree(0.0), 0.1),
        LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2),
    ];
    for spec in specs {
        let scenario = parity_scenario(spec.clone());
        let sim = scenario.run_sim();
        let real = scenario.run_dist();
        sim.check_invariants();
        real.check_invariants();
        assert_eq!(
            sim.lb_plans,
            real.lb_plans,
            "{}: migration plan sequences must be identical",
            spec.name()
        );
        assert_eq!(
            sim.lb_history,
            real.lb_history,
            "{}: lb_history must be identical",
            spec.name()
        );
        assert_eq!(
            sim.epoch_traces,
            real.epoch_traces,
            "{}: epoch traces must be identical",
            spec.name()
        );
        assert_eq!(
            sim.final_ownership.owners(),
            real.final_ownership.owners(),
            "{}: final ownership must be identical",
            spec.name()
        );
        assert_eq!(
            (sim.ghost_bytes, sim.inter_rack_ghost_bytes),
            (real.ghost_bytes, real.inter_rack_ghost_bytes),
            "{}: planner-grade ghost counters must be identical",
            spec.name()
        );
        assert_eq!(
            (sim.migrations, sim.migration_bytes),
            (real.migrations, real.migration_bytes),
            "{}: migration counters must be identical",
            spec.name()
        );
        // the baseline spec must actually exercise the machinery
        if matches!(spec, LbSpec::Tree { lambda, .. } if lambda == 0.0) {
            assert!(sim.migrations > 0, "the lopsided start must migrate");
        }
    }
}

#[test]
fn parity_runs_are_reproducible() {
    // Modeled planning removes every wall-clock input, so repeating the
    // real-runtime leg reproduces the exact plan sequence.
    let scenario = parity_scenario(LbSpec::tree(0.0));
    let a = scenario.run_dist();
    let b = scenario.run_dist();
    assert_eq!(a.lb_plans, b.lb_plans);
    assert_eq!(a.field, b.field);
    assert_eq!(a.ghost_bytes, b.ghost_bytes);
}

#[test]
fn library_scenarios_pass_invariants_on_both_substrates() {
    // The CI smoke contract at test scope: every named scenario runs at
    // toy size on both substrates and the unified report holds its
    // invariants.
    for (name, sc) in scenarios::all(true) {
        let sim = sc.run_sim();
        sim.check_invariants();
        assert_eq!(sim.substrate, "sim", "{name}");
        let real = sc.run_dist();
        real.check_invariants();
        assert_eq!(real.substrate, "dist", "{name}");
        assert!(real.field.is_some(), "{name}: real runs carry the field");
        // migration bytes ≤ cross bytes, stated directly for the sim leg
        let cross = sim.sim_extras().expect("sim extras").cross_bytes;
        assert!(
            sim.migration_bytes <= cross,
            "{name}: migration bytes within cross traffic"
        );
    }
}

#[test]
fn library_scenario_numerics_stay_bit_exact() {
    // Whatever the scenario declares — schedules, nets, policies — the
    // real runtime's numerics must match the serial solver bit for bit.
    for (name, sc) in scenarios::all(true) {
        let parts = sc.problem.build();
        let mut serial = SerialSolver::manufactured(&parts);
        serial.run(sc.steps);
        let report = sc.run_dist();
        assert_eq!(
            report.field.as_deref(),
            Some(serial.field().as_slice()),
            "{name}: numerics must be bit-exact"
        );
    }
}

#[test]
fn propagating_crack_runs_on_both_substrates() {
    // The formerly simulator-only work_schedule, exercised through the
    // library scenario on both substrates.
    let sc = scenarios::propagating_crack(true);
    assert!(!sc.work_schedule.is_empty());
    let sim = sc.run_sim();
    let real = sc.run_dist();
    assert!(sim.migrations > 0, "the moving band must keep LB busy");
    assert!(real.field.is_some());
}

#[test]
fn scenario_validation_rejects_bad_per_sd_vectors() {
    // Satellite: the PerSd length check fires at configuration time.
    let sc = Scenario::square(16, 2.0, 4, 4).with_work(WorkModel::PerSd(vec![1.0; 3]));
    let err = std::panic::catch_unwind(|| sc.validate()).unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("PerSd work model has 3 factors"),
        "unexpected panic message: {msg}"
    );
}
