//! # nonlocalheat — distributed nonlocal models with asynchronous tasking
//!
//! A from-scratch Rust reproduction of *"Load balancing for distributed
//! nonlocal models within asynchronous many-task systems"* (Gadikar, Diehl
//! & Jha, 2021, arXiv:2102.03819): a 2d nonlocal heat-equation solver
//! decomposed into square sub-domains, distributed over simulated compute
//! nodes by a multilevel mesh partitioner, executed on an asynchronous
//! many-task runtime with ghost-exchange hiding, and re-balanced online by
//! the paper's busy-time-driven load balancing algorithm.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`amt`] — the AMT runtime (HPX substitute): work-stealing pools,
//!   future/promise LCOs, performance counters, localities + parcels.
//! * [`mesh`] — grids, ε-ball stencils, sub-domains, halo plans,
//!   case-1/case-2 splits.
//! * [`partition`] — multilevel k-way partitioner (METIS substitute).
//! * [`model`] — the nonlocal diffusion model, manufactured solution and
//!   serial reference solver.
//! * [`core`] — shared-memory and distributed solvers + **Algorithm 1**,
//!   and the declarative **`Scenario` API** (one experiment description,
//!   both substrates, one unified `RunReport`).
//! * [`sim`] — the deterministic discrete-event cluster simulator used for
//!   the scaling figures (`scenario.run_sim()`).
//!
//! ## Quickstart
//!
//! ```
//! use nonlocalheat::prelude::*;
//!
//! // a 16x16 mesh with eps = 2h: one scenario, both substrates
//! let scenario = Scenario::square(16, 2.0, 4, 5)
//!     .on(ClusterSpec::uniform(2, 1))
//!     .with_record_error(true);
//! let real = scenario.run_dist(); // real AMT runtime (bit-exact numerics)
//! let sim = scenario.run_sim(); // discrete-event timing model
//! assert!(real.error.unwrap().total() < 1e-4);
//! assert!(sim.makespan > 0.0);
//! ```

pub use nlheat_amt as amt;
pub use nlheat_core as core;
pub use nlheat_mesh as mesh;
pub use nlheat_model as model;
pub use nlheat_netmodel as netmodel;
pub use nlheat_partition as partition;
pub use nlheat_sim as sim;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use nlheat_amt::prelude::*;
    pub use nlheat_core::balance::{
        iterate_rebalance, plan_rebalance, plan_rebalance_ghost_aware, plan_rebalance_with_cost,
        CostParams, EpochTrace, LbNetwork, LbPolicy, LbSchedule, LbSpec,
    };
    pub use nlheat_core::dist::{run_distributed, DistConfig};
    pub use nlheat_core::ownership::Ownership;
    pub use nlheat_core::scenario::sweep::{
        Axis, FnSink, JsonlSink, MemorySink, RunRecord, ScenarioSweep, SweepSink, SweepSummary,
    };
    pub use nlheat_core::scenario::{
        ClusterEvent, ClusterSpec, DistSubstrate, LbInput, PartitionSpec, RunExtras, RunReport,
        Scenario, Substrate,
    };
    pub use nlheat_core::scenarios;
    pub use nlheat_core::shared::{SharedConfig, SharedSolver};
    pub use nlheat_core::workload::WorkModel;
    pub use nlheat_mesh::{Grid, SdGrid};
    pub use nlheat_model::prelude::*;
    pub use nlheat_partition::{part_mesh_dual, PartitionConfig, SdGraph};
    pub use nlheat_sim::{simulate, RunSim, SimConfig, SimSubstrate, VirtualNode};
}
