//! Fleet-scale experiment sweeps: one base [`Scenario`] × axis grids,
//! executed on a multi-threaded runner, streamed as JSONL.
//!
//! The paper's contribution is empirical — its claims live in ablations
//! over policy × load × topology grids — and the [`Scenario`] API made
//! *one* such run declarative. This module makes *thousands* cheap: a
//! [`ScenarioSweep`] takes a base scenario plus one-or-more [`Axis`]es
//! (each a named field mutator over a value grid), expands the cross
//! product into labeled scenarios, and executes them on a worker pool
//! ([`ScenarioSweep::run`]) that claims runs from a shared queue so
//! stragglers never serialize the tail. Results stream to a
//! [`SweepSink`] as they complete — a [`JsonlSink`] for durable output, a
//! [`MemorySink`] for tests — and tabulate into a [`SweepSummary`]
//! (per-axis-value means/min/max), which subsumes the hand-rolled
//! ablation loops the figure harness used to carry.
//!
//! Parallel execution is **deterministic in content**: every run carries
//! the stable index of its grid cell, the simulator substrate is
//! deterministic, and runs share nothing, so the *set* of records is
//! identical for any worker count — JSONL output canonicalizes by
//! sorting lines. The JSON encoding is hand-rolled (serde-free, like the
//! criterion shim's): strings are escaped, non-finite floats are guarded
//! to `null`, and [`RunRecord::from_json_line`] parses the format back
//! for round-trip tooling.
//!
//! This is the batch-runner shape of dslab-dag's `experiment.rs` /
//! `run_stats.rs` layer, and the bulk what-if evaluation Lifflander et
//! al. (arXiv:2404.16793) motivate for communication/memory-aware
//! balancing: the simulator becomes a planning service, not a script.

use super::{RunReport, Scenario, Substrate};
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// A scenario transformation shared by every run of one axis value.
type Mutator = Arc<dyn Fn(Scenario) -> Scenario + Send + Sync>;

/// One point on an [`Axis`]: a display `label`, a numeric position `x`
/// (for plotting and summaries), and the scenario mutation it applies.
pub struct AxisValue {
    /// Display label (`"0.5"`, `"tree λ=1"`, `"paper-baseline"`).
    pub label: String,
    /// Numeric position on the axis (the value itself for numeric axes,
    /// the value's ordinal for categorical ones).
    pub x: f64,
    mutate: Mutator,
}

impl fmt::Debug for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AxisValue")
            .field("label", &self.label)
            .field("x", &self.x)
            .finish_non_exhaustive()
    }
}

/// One named sweep dimension: a field mutator over a value grid.
///
/// ```
/// use nlheat_core::scenario::sweep::Axis;
/// use nlheat_core::balance::{LbSchedule, LbSpec};
///
/// let lambda = Axis::numeric("lambda", &[0.0, 0.5, 1.0], |sc, l| {
///     sc.with_lb(LbSchedule::every(4).with_spec(LbSpec::tree(l)))
/// });
/// assert_eq!(lambda.len(), 3);
/// ```
#[derive(Debug)]
pub struct Axis {
    /// The axis name records and summaries group by.
    pub name: String,
    values: Vec<AxisValue>,
}

impl Axis {
    /// An empty axis to chain [`Axis::value`] onto.
    pub fn new(name: impl Into<String>) -> Self {
        Axis {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Append one value: `label` + numeric position `x` + the mutation it
    /// applies (chainable).
    pub fn value(
        mut self,
        label: impl Into<String>,
        x: f64,
        mutate: impl Fn(Scenario) -> Scenario + Send + Sync + 'static,
    ) -> Self {
        self.values.push(AxisValue {
            label: label.into(),
            x,
            mutate: Arc::new(mutate),
        });
        self
    }

    /// A numeric grid: one value per entry of `grid`, labeled by its
    /// display form, all applying the same two-argument mutator.
    pub fn numeric(
        name: impl Into<String>,
        grid: &[f64],
        mutate: impl Fn(Scenario, f64) -> Scenario + Send + Sync + 'static,
    ) -> Self {
        let mutate = Arc::new(mutate);
        let mut axis = Axis::new(name);
        for &v in grid {
            let m = mutate.clone();
            axis.values.push(AxisValue {
                label: format!("{v}"),
                x: v,
                mutate: Arc::new(move |sc| m(sc, v)),
            });
        }
        axis
    }

    /// A categorical axis over whole scenarios (each value *replaces* the
    /// base — the shape the named scenario library sweeps with). `x` is
    /// the entry's ordinal.
    pub fn scenarios(name: impl Into<String>, entries: Vec<(impl Into<String>, Scenario)>) -> Self {
        let mut axis = Axis::new(name);
        for (i, (label, scenario)) in entries.into_iter().enumerate() {
            axis.values.push(AxisValue {
                label: label.into(),
                x: i as f64,
                mutate: Arc::new(move |_| scenario.clone()),
            });
        }
        axis
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the axis has no values (rejected by
    /// [`ScenarioSweep::validate`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One realized axis coordinate of a run: which axis, which value.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisPoint {
    /// The axis name.
    pub axis: String,
    /// The value's display label.
    pub label: String,
    /// The value's numeric position.
    pub x: f64,
}

/// One expanded grid cell: a stable index, its axis coordinates, and the
/// fully mutated scenario.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Row-major cell index (first axis slowest) — the stable identity
    /// records carry so parallel output canonicalizes by sort.
    pub index: usize,
    /// The axis coordinates of this cell, in axis order.
    pub axes: Vec<AxisPoint>,
    /// The scenario this cell executes.
    pub scenario: Scenario,
}

/// A base [`Scenario`] crossed with one-or-more [`Axis`]es and a
/// `parallelism` knob, executed by [`ScenarioSweep::run`].
pub struct ScenarioSweep {
    /// The scenario every axis mutation starts from.
    pub base: Scenario,
    axes: Vec<Axis>,
    parallelism: usize,
}

impl ScenarioSweep {
    /// A sweep of `base` with no axes yet (a single run) and
    /// `parallelism = 1`.
    pub fn new(base: Scenario) -> Self {
        ScenarioSweep {
            base,
            axes: Vec::new(),
            parallelism: 1,
        }
    }

    /// Add one sweep dimension (chainable). Axes apply in insertion
    /// order; the last axis varies fastest in the expansion.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Set the worker-pool ceiling of [`ScenarioSweep::run`]. The
    /// effective pool is capped at the host's cores and the grid size;
    /// the result *content* never depends on the worker count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Total grid cells (product of axis sizes; 1 with no axes).
    pub fn runs(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Reject a malformed sweep at build time, before any worker spawns —
    /// mirroring the `LbSpec::validate` / `WorkModel::validate`
    /// conventions.
    ///
    /// # Panics
    /// Panics on zero parallelism, an axis with no values, or two axes
    /// sharing a name (records and summaries group by axis name, so a
    /// duplicate would silently merge two dimensions).
    pub fn validate(&self) {
        assert!(
            self.parallelism >= 1,
            "sweep parallelism must be at least 1 worker"
        );
        for (i, axis) in self.axes.iter().enumerate() {
            assert!(
                !axis.is_empty(),
                "sweep axis {i} ('{}') has no values — an empty axis makes \
                 the whole cross product empty",
                axis.name
            );
            for other in &self.axes[..i] {
                assert!(
                    other.name != axis.name,
                    "duplicate sweep axis name '{}' — records group by axis \
                     name, so every axis needs a distinct one",
                    axis.name
                );
            }
        }
    }

    /// Expand the cross product into labeled runs, in stable row-major
    /// order (first axis slowest, last axis fastest). The returned
    /// scenarios are *not* yet validated — [`ScenarioSweep::run`] does
    /// that up front on the caller's thread.
    ///
    /// # Panics
    /// Panics on a malformed sweep — see [`ScenarioSweep::validate`].
    pub fn expand(&self) -> Vec<SweepRun> {
        self.validate();
        let total = self.runs();
        let mut out = Vec::with_capacity(total);
        for index in 0..total {
            // decode the row-major index into per-axis ordinals
            let mut rest = index;
            let mut ordinals = vec![0usize; self.axes.len()];
            for (slot, axis) in self.axes.iter().enumerate().rev() {
                ordinals[slot] = rest % axis.len();
                rest /= axis.len();
            }
            let mut scenario = self.base.clone();
            let mut axes = Vec::with_capacity(self.axes.len());
            for (axis, &ord) in self.axes.iter().zip(&ordinals) {
                let value = &axis.values[ord];
                scenario = (value.mutate)(scenario);
                axes.push(AxisPoint {
                    axis: axis.name.clone(),
                    label: value.label.clone(),
                    x: value.x,
                });
            }
            out.push(SweepRun {
                index,
                axes,
                scenario,
            });
        }
        out
    }

    /// Execute every grid cell on `substrate` with the configured worker
    /// pool, streaming a [`RunRecord`] (plus the full [`RunReport`]) to
    /// `sink` as each run completes. Workers claim cells from a shared
    /// atomic queue, so a straggler cell never serializes the tail; the
    /// sink runs on the caller's thread, so it needs no synchronization.
    ///
    /// The record *set* is deterministic for a deterministic substrate
    /// (the simulator): only completion order varies with `parallelism`.
    ///
    /// # Panics
    /// Panics on a malformed sweep or an invalid expanded scenario (both
    /// detected on the caller's thread before any worker spawns), and
    /// propagates any panic raised inside a worker's run.
    pub fn run(&self, substrate: &(dyn Substrate + Sync), sink: &mut dyn SweepSink) {
        let runs = self.expand();
        // surface scenario errors here, descriptively, not from a worker
        for run in &runs {
            run.scenario.validate();
        }
        // The knob is an upper bound on concurrency, not a thread quota:
        // cap at the host's cores (oversubscribing a core only adds
        // context switches — on a 1-CPU box a 4-worker sweep would run
        // ~20% *slower* than serial) and at the number of cells.
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = self.parallelism.min(runs.len()).min(hw).max(1);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(RunRecord, RunReport)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let runs = &runs;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = runs.get(i) else { break };
                    let report = substrate.run(&run.scenario);
                    let record = RunRecord::project(run, &report);
                    if tx.send((record, report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // drain on the caller's thread until every worker is done
            while let Ok((record, report)) = rx.recv() {
                sink.record(&record, &report);
            }
        });
    }

    /// Run and collect the records in grid order — the ergonomic path for
    /// summaries and figure tabulation.
    pub fn run_collect(&self, substrate: &(dyn Substrate + Sync)) -> Vec<RunRecord> {
        let mut sink = MemorySink::default();
        self.run(substrate, &mut sink);
        let mut records = sink.records;
        records.sort_by_key(|r| r.index);
        records
    }
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// The flattened, JSONL-ready projection of one run: axis coordinates
/// plus the planner-grade measurements of the unified [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Stable grid-cell index ([`SweepRun::index`]).
    pub index: usize,
    /// Which substrate produced the run (`"dist"` or `"sim"`).
    pub substrate: String,
    /// Axis coordinates, in axis order.
    pub axes: Vec<AxisPoint>,
    /// Seconds from step 0 to the last node finishing.
    pub makespan: f64,
    /// Per-node busy seconds.
    pub busy: Vec<f64>,
    /// Total SDs migrated by load balancing.
    pub migrations: usize,
    /// Planner-grade migration payload bytes.
    pub migration_bytes: u64,
    /// The inter-rack share of `migration_bytes`.
    pub inter_rack_migration_bytes: u64,
    /// Planner-grade ghost-exchange bytes between nodes over the run.
    pub ghost_bytes: u64,
    /// The inter-rack share of `ghost_bytes`.
    pub inter_rack_ghost_bytes: u64,
    /// Realized balancing epochs.
    pub epochs: usize,
    /// The recurring ghost cut (bytes/step) the final realized epoch left
    /// behind; `None` when no epoch realized (or no graph was attached).
    pub final_cut_bytes: Option<u64>,
    /// The inter-rack share of `final_cut_bytes`.
    pub final_inter_rack_cut_bytes: Option<u64>,
    /// Epochs where a drift monitor re-invoked the partitioner
    /// ([`crate::balance::EpochTrace::replan`]); 0 without an
    /// [`crate::balance::LbSpec::Repartition`] in the chain.
    pub replans: usize,
    /// Peak live/fresh cut ratio ([`crate::balance::EpochTrace::cut_drift`])
    /// seen across the run's epochs; 0.0 when no drift monitor ran.
    pub max_cut_drift: f64,
}

impl RunRecord {
    /// Flatten one completed run.
    pub fn project(run: &SweepRun, report: &RunReport) -> Self {
        let last = report.epoch_traces.last();
        RunRecord {
            index: run.index,
            substrate: report.substrate.to_string(),
            axes: run.axes.clone(),
            makespan: report.makespan,
            busy: report.busy.clone(),
            migrations: report.migrations,
            migration_bytes: report.migration_bytes,
            inter_rack_migration_bytes: report.inter_rack_migration_bytes,
            ghost_bytes: report.ghost_bytes,
            inter_rack_ghost_bytes: report.inter_rack_ghost_bytes,
            epochs: report.epoch_traces.len(),
            final_cut_bytes: last.map(|t| t.ghost_bytes_after),
            final_inter_rack_cut_bytes: last.map(|t| t.inter_rack_ghost_bytes_after),
            replans: report.epoch_traces.iter().filter(|t| t.replan).count(),
            max_cut_drift: report
                .epoch_traces
                .iter()
                .map(|t| t.cut_drift)
                .fold(0.0, f64::max),
        }
    }

    /// The label of the named axis, if this record has it.
    pub fn axis_label(&self, axis: &str) -> Option<&str> {
        self.axes
            .iter()
            .find(|p| p.axis == axis)
            .map(|p| p.label.as_str())
    }

    /// The numeric position on the named axis, if this record has it.
    pub fn axis_x(&self, axis: &str) -> Option<f64> {
        self.axes.iter().find(|p| p.axis == axis).map(|p| p.x)
    }

    /// Encode as one JSON line (no trailing newline): hand-rolled,
    /// serde-free, with escaped strings and non-finite floats guarded to
    /// `null` (JSON has no NaN/∞).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        json_uint(&mut s, "run", self.index as u64);
        s.push(',');
        json_str(&mut s, "substrate", &self.substrate);
        s.push_str(",\"axes\":[");
        for (i, p) in self.axes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            json_str(&mut s, "axis", &p.axis);
            s.push(',');
            json_str(&mut s, "label", &p.label);
            s.push(',');
            json_f64(&mut s, "x", p.x);
            s.push('}');
        }
        s.push_str("],");
        json_f64(&mut s, "makespan", self.makespan);
        s.push_str(",\"busy\":[");
        for (i, &b) in self.busy.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_f64(&mut s, b);
        }
        s.push_str("],");
        json_uint(&mut s, "migrations", self.migrations as u64);
        s.push(',');
        json_uint(&mut s, "migration_bytes", self.migration_bytes);
        s.push(',');
        json_uint(
            &mut s,
            "inter_rack_migration_bytes",
            self.inter_rack_migration_bytes,
        );
        s.push(',');
        json_uint(&mut s, "ghost_bytes", self.ghost_bytes);
        s.push(',');
        json_uint(
            &mut s,
            "inter_rack_ghost_bytes",
            self.inter_rack_ghost_bytes,
        );
        s.push(',');
        json_uint(&mut s, "epochs", self.epochs as u64);
        s.push(',');
        json_opt_uint(&mut s, "final_cut_bytes", self.final_cut_bytes);
        s.push(',');
        json_opt_uint(
            &mut s,
            "final_inter_rack_cut_bytes",
            self.final_inter_rack_cut_bytes,
        );
        s.push(',');
        json_uint(&mut s, "replans", self.replans as u64);
        s.push(',');
        json_f64(&mut s, "max_cut_drift", self.max_cut_drift);
        s.push('}');
        s
    }

    /// Parse one JSON line back into a record — the round-trip
    /// counterpart of [`RunRecord::to_json_line`]. Floats encoded as
    /// `null` (non-finite at write time) come back as NaN.
    pub fn from_json_line(line: &str) -> Result<RunRecord, String> {
        let value = json::parse(line)?;
        let obj = value.as_object().ok_or("record line must be an object")?;
        let field = |key: &str| {
            json::get(obj, key).ok_or_else(|| format!("record is missing field '{key}'"))
        };
        let mut axes = Vec::new();
        for entry in field("axes")?.as_array().ok_or("'axes' must be an array")? {
            let p = entry.as_object().ok_or("axis entry must be an object")?;
            let axis_field = |key: &str| {
                json::get(p, key).ok_or_else(|| format!("axis entry is missing '{key}'"))
            };
            axes.push(AxisPoint {
                axis: axis_field("axis")?
                    .as_str()
                    .ok_or("axis name must be a string")?
                    .to_string(),
                label: axis_field("label")?
                    .as_str()
                    .ok_or("axis label must be a string")?
                    .to_string(),
                x: axis_field("x")?.as_f64().ok_or("axis x must be a number")?,
            });
        }
        let uint = |key: &str| -> Result<u64, String> {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("'{key}' must be an unsigned integer"))
        };
        let guarded_f64 = |v: &json::Value, what: &str| -> Result<f64, String> {
            if v.is_null() {
                Ok(f64::NAN)
            } else {
                v.as_f64()
                    .ok_or_else(|| format!("{what} must be a number or null"))
            }
        };
        let opt_uint = |key: &str| -> Result<Option<u64>, String> {
            let v = field(key)?;
            if v.is_null() {
                Ok(None)
            } else {
                v.as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be an unsigned integer or null"))
            }
        };
        let mut busy = Vec::new();
        for (i, v) in field("busy")?
            .as_array()
            .ok_or("'busy' must be an array")?
            .iter()
            .enumerate()
        {
            busy.push(guarded_f64(v, &format!("busy[{i}]"))?);
        }
        Ok(RunRecord {
            index: uint("run")? as usize,
            substrate: field("substrate")?
                .as_str()
                .ok_or("'substrate' must be a string")?
                .to_string(),
            axes,
            makespan: guarded_f64(field("makespan")?, "'makespan'")?,
            busy,
            migrations: uint("migrations")? as usize,
            migration_bytes: uint("migration_bytes")?,
            inter_rack_migration_bytes: uint("inter_rack_migration_bytes")?,
            ghost_bytes: uint("ghost_bytes")?,
            inter_rack_ghost_bytes: uint("inter_rack_ghost_bytes")?,
            epochs: uint("epochs")? as usize,
            final_cut_bytes: opt_uint("final_cut_bytes")?,
            final_inter_rack_cut_bytes: opt_uint("final_inter_rack_cut_bytes")?,
            replans: uint("replans")? as usize,
            max_cut_drift: guarded_f64(field("max_cut_drift")?, "'max_cut_drift'")?,
        })
    }
}

/// Append `"key":<uint>`.
fn json_uint(s: &mut String, key: &str, v: u64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

/// Append `"key":<uint|null>`.
fn json_opt_uint(s: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(v) => json_uint(s, key, v),
        None => {
            s.push('"');
            s.push_str(key);
            s.push_str("\":null");
        }
    }
}

/// Append `"key":<float|null>` with the non-finite guard.
fn json_f64(s: &mut String, key: &str, v: f64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    push_f64(s, v);
}

/// Append a float literal, guarding non-finite values to `null` (JSON has
/// no NaN/∞). Rust's shortest-round-trip `Display` keeps the value exact.
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        s.push_str(&format!("{v}"));
    } else {
        s.push_str("null");
    }
}

/// Append `"key":"escaped"`.
fn json_str(s: &mut String, key: &str, v: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    push_json_string(s, v);
}

/// Append a JSON string literal with full escaping.
fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Minimal recursive-descent JSON reader for the record lines this module
/// writes (objects, arrays, strings with escapes, numbers, null, bool).
mod json {
    /// A parsed JSON value. Numbers keep their raw token so 64-bit
    /// counters never round-trip through f64.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Look a key up in a parsed object.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parse one complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        if raw.is_empty() || raw.parse::<f64>().is_err() {
            return Err(format!("invalid number '{raw}' at byte {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = b.get(*pos) else {
                return Err("unterminated string".into());
            };
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = b.get(*pos) else {
                        return Err("unterminated escape".into());
                    };
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => out.push(parse_unicode_escape(b, pos)?),
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                // multi-byte UTF-8 sequences pass through verbatim
                _ => {
                    let seq_start = *pos - 1;
                    let len = utf8_len(c)?;
                    *pos = seq_start + len;
                    let s = std::str::from_utf8(
                        b.get(seq_start..*pos).ok_or("truncated UTF-8 sequence")?,
                    )
                    .map_err(|e| e.to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn utf8_len(first: u8) -> Result<usize, String> {
        match first {
            0x00..=0x7f => Ok(1),
            0xc0..=0xdf => Ok(2),
            0xe0..=0xef => Ok(3),
            0xf0..=0xf7 => Ok(4),
            _ => Err("invalid UTF-8 lead byte".into()),
        }
    }

    fn parse_unicode_escape(b: &[u8], pos: &mut usize) -> Result<char, String> {
        let unit = parse_hex4(b, pos)?;
        // combine surrogate pairs (😀 etc.)
        if (0xd800..0xdc00).contains(&unit) {
            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                *pos += 2;
                let low = parse_hex4(b, pos)?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| "invalid surrogate pair".into());
                }
            }
            return Err("unpaired high surrogate".into());
        }
        char::from_u32(unit).ok_or_else(|| "invalid \\u escape".into())
    }

    fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
        let hex = b
            .get(*pos..*pos + 4)
            .ok_or("truncated \\u escape")
            .and_then(|h| std::str::from_utf8(h).map_err(|_| "invalid \\u escape"))?;
        *pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            out.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Consumes results as the runner streams them, on the caller's thread.
pub trait SweepSink {
    /// One completed run: the flattened record plus the full report (for
    /// invariant checks and substrate-specific extras).
    fn record(&mut self, record: &RunRecord, report: &RunReport);
}

/// Streams one JSON line per completed run to any [`Write`] target.
/// Completion order varies with the worker count; the `run` index makes
/// the output canonicalizable by sorting lines.
pub struct JsonlSink<W: Write> {
    writer: W,
    rows: usize,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, rows: 0 }
    }

    /// Rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Flush and hand the writer back.
    ///
    /// # Panics
    /// Panics when the underlying writer fails to flush.
    pub fn into_inner(mut self) -> W {
        self.writer.flush().expect("sweep JSONL flush failed");
        self.writer
    }
}

impl<W: Write> SweepSink for JsonlSink<W> {
    fn record(&mut self, record: &RunRecord, _report: &RunReport) {
        let mut line = record.to_json_line();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .expect("sweep JSONL write failed");
        self.rows += 1;
    }
}

/// Collects records in memory (completion order) — the test/summary sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Records in completion order; sort by [`RunRecord::index`] to
    /// canonicalize.
    pub records: Vec<RunRecord>,
}

impl SweepSink for MemorySink {
    fn record(&mut self, record: &RunRecord, _report: &RunReport) {
        self.records.push(record.clone());
    }
}

/// Adapts a closure into a [`SweepSink`] — for inline invariant checks.
pub struct FnSink<F: FnMut(&RunRecord, &RunReport)>(pub F);

impl<F: FnMut(&RunRecord, &RunReport)> SweepSink for FnSink<F> {
    fn record(&mut self, record: &RunRecord, report: &RunReport) {
        (self.0)(record, report);
    }
}

// ---------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------

/// Aggregates for all runs sharing one axis value.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStat {
    /// The axis this group belongs to.
    pub axis: String,
    /// The axis value's label.
    pub label: String,
    /// The axis value's numeric position.
    pub x: f64,
    /// Runs in the group.
    pub runs: usize,
    /// Mean makespan seconds across the group.
    pub makespan_mean: f64,
    /// Fastest run in the group.
    pub makespan_min: f64,
    /// Slowest run in the group.
    pub makespan_max: f64,
    /// Mean migrated-SD count.
    pub migrations_mean: f64,
    /// Mean migration payload bytes.
    pub migration_bytes_mean: f64,
    /// Mean inter-rack migration bytes.
    pub inter_rack_migration_bytes_mean: f64,
    /// Mean ghost-exchange bytes.
    pub ghost_bytes_mean: f64,
    /// Mean inter-rack ghost bytes.
    pub inter_rack_ghost_bytes_mean: f64,
}

/// Per-axis-value aggregate table over a record set — the tabulator that
/// subsumes hand-rolled ablation loops: group means/min/max for every
/// value of every axis.
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    /// Records summarized.
    pub total_runs: usize,
    /// One entry per (axis, value) pair, whole axes together; values
    /// keep first-seen (grid) order within their axis.
    pub groups: Vec<GroupStat>,
}

impl SweepSummary {
    /// Tabulate a record set (order-insensitive: grouping follows axis
    /// order within the records, not record order).
    pub fn from_records(records: &[RunRecord]) -> Self {
        let mut sorted: Vec<&RunRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.index);
        let mut groups: Vec<(GroupStat, usize)> = Vec::new();
        for record in &sorted {
            for point in &record.axes {
                let slot = groups
                    .iter()
                    .position(|(g, _)| g.axis == point.axis && g.label == point.label);
                let (group, count) = match slot {
                    Some(i) => &mut groups[i],
                    None => {
                        groups.push((
                            GroupStat {
                                axis: point.axis.clone(),
                                label: point.label.clone(),
                                x: point.x,
                                runs: 0,
                                makespan_mean: 0.0,
                                makespan_min: f64::INFINITY,
                                makespan_max: f64::NEG_INFINITY,
                                migrations_mean: 0.0,
                                migration_bytes_mean: 0.0,
                                inter_rack_migration_bytes_mean: 0.0,
                                ghost_bytes_mean: 0.0,
                                inter_rack_ghost_bytes_mean: 0.0,
                            },
                            0,
                        ));
                        groups.last_mut().unwrap()
                    }
                };
                *count += 1;
                group.runs += 1;
                group.makespan_mean += record.makespan;
                group.makespan_min = group.makespan_min.min(record.makespan);
                group.makespan_max = group.makespan_max.max(record.makespan);
                group.migrations_mean += record.migrations as f64;
                group.migration_bytes_mean += record.migration_bytes as f64;
                group.inter_rack_migration_bytes_mean += record.inter_rack_migration_bytes as f64;
                group.ghost_bytes_mean += record.ghost_bytes as f64;
                group.inter_rack_ghost_bytes_mean += record.inter_rack_ghost_bytes as f64;
            }
        }
        // present whole axes together (values stay in first-seen order)
        let mut axis_order: Vec<String> = Vec::new();
        for (g, _) in &groups {
            if !axis_order.contains(&g.axis) {
                axis_order.push(g.axis.clone());
            }
        }
        let mut groups: Vec<(GroupStat, usize)> = groups;
        groups.sort_by_key(|(g, _)| axis_order.iter().position(|a| *a == g.axis));
        let groups = groups
            .into_iter()
            .map(|(mut g, n)| {
                let n = n.max(1) as f64;
                g.makespan_mean /= n;
                g.migrations_mean /= n;
                g.migration_bytes_mean /= n;
                g.inter_rack_migration_bytes_mean /= n;
                g.ghost_bytes_mean /= n;
                g.inter_rack_ghost_bytes_mean /= n;
                g
            })
            .collect();
        SweepSummary {
            total_runs: records.len(),
            groups,
        }
    }

    /// The aggregate for one (axis, label) pair.
    pub fn group(&self, axis: &str, label: &str) -> Option<&GroupStat> {
        self.groups
            .iter()
            .find(|g| g.axis == axis && g.label == label)
    }

    /// Every group of one axis, in first-seen (grid) order.
    pub fn axis_groups(&self, axis: &str) -> Vec<&GroupStat> {
        self.groups.iter().filter(|g| g.axis == axis).collect()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("sweep summary over {} runs\n\n", self.total_runs));
        out.push_str(
            "| axis | value | runs | makespan mean (ms) | min | max | migrations | \
             migration KB | ghost KB |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for g in &self.groups {
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.1} | {:.1} | {:.1} |\n",
                g.axis,
                g.label,
                g.runs,
                g.makespan_mean * 1e3,
                g.makespan_min * 1e3,
                g.makespan_max * 1e3,
                g.migrations_mean,
                g.migration_bytes_mean / 1e3,
                g.ghost_bytes_mean / 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{LbSchedule, LbSpec};
    use crate::scenario::{ClusterSpec, DistSubstrate};
    use nlheat_netmodel::NetSpec;

    fn tiny_base() -> Scenario {
        Scenario::square(16, 2.0, 4, 3)
            .on(ClusterSpec::uniform(2, 1))
            .with_net(NetSpec::Instant)
    }

    fn steps_axis() -> Axis {
        Axis::new("steps")
            .value("3", 3.0, |sc: Scenario| sc)
            .value("4", 4.0, |mut sc: Scenario| {
                sc.steps = 4;
                sc
            })
    }

    #[test]
    fn expansion_is_row_major_and_stable() {
        let sweep = ScenarioSweep::new(tiny_base())
            .axis(Axis::numeric("a", &[1.0, 2.0], |sc, _| sc))
            .axis(Axis::numeric("b", &[10.0, 20.0, 30.0], |sc, _| sc));
        assert_eq!(sweep.runs(), 6);
        let runs = sweep.expand();
        assert_eq!(runs.len(), 6);
        // last axis fastest: (a=1,b=10), (a=1,b=20), (a=1,b=30), (a=2,...)
        let coords: Vec<(f64, f64)> = runs.iter().map(|r| (r.axes[0].x, r.axes[1].x)).collect();
        assert_eq!(
            coords,
            vec![
                (1.0, 10.0),
                (1.0, 20.0),
                (1.0, 30.0),
                (2.0, 10.0),
                (2.0, 20.0),
                (2.0, 30.0)
            ]
        );
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.index, i);
        }
    }

    #[test]
    fn axis_mutations_compose_in_axis_order() {
        let sweep = ScenarioSweep::new(tiny_base())
            .axis(Axis::new("steps").value("5", 5.0, |mut sc: Scenario| {
                sc.steps = 5;
                sc
            }))
            .axis(
                Axis::new("double-steps").value("x2", 0.0, |mut sc: Scenario| {
                    sc.steps *= 2;
                    sc
                }),
            );
        let runs = sweep.expand();
        assert_eq!(
            runs[0].scenario.steps, 10,
            "second axis sees the first's edit"
        );
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn empty_axis_rejected() {
        ScenarioSweep::new(tiny_base())
            .axis(Axis::new("empty"))
            .validate();
    }

    #[test]
    #[should_panic(expected = "parallelism must be at least 1")]
    fn zero_parallelism_rejected() {
        ScenarioSweep::new(tiny_base())
            .with_parallelism(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "duplicate sweep axis name 'a'")]
    fn duplicate_axis_names_rejected() {
        ScenarioSweep::new(tiny_base())
            .axis(Axis::numeric("a", &[1.0], |sc, _| sc))
            .axis(Axis::numeric("a", &[2.0], |sc, _| sc))
            .validate();
    }

    #[test]
    fn no_axes_is_a_single_run() {
        let sweep = ScenarioSweep::new(tiny_base());
        sweep.validate();
        assert_eq!(sweep.runs(), 1);
        let records = sweep.run_collect(&DistSubstrate);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].index, 0);
        assert!(records[0].axes.is_empty());
    }

    #[test]
    fn runner_streams_every_cell_with_stable_indices() {
        let sweep = ScenarioSweep::new(tiny_base())
            .axis(steps_axis())
            .axis(Axis::new("lb").value("off", 0.0, |sc: Scenario| sc).value(
                "on",
                1.0,
                |sc: Scenario| sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::greedy_steal(1))),
            ))
            .with_parallelism(3);
        let records = sweep.run_collect(&DistSubstrate);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.substrate, "dist");
            assert_eq!(r.busy.len(), 2);
            assert!(r.makespan > 0.0);
        }
        assert_eq!(records[0].axis_label("lb"), Some("off"));
        assert_eq!(records[1].axis_label("lb"), Some("on"));
        assert_eq!(records[3].axis_x("steps"), Some(4.0));
    }

    #[test]
    fn jsonl_round_trips_escapes_and_non_finite_floats() {
        let record = RunRecord {
            index: 7,
            substrate: "sim".into(),
            axes: vec![AxisPoint {
                axis: "policy \"q\"\\path".into(),
                label: "tree λ=1\n\tπ — ∞ \u{0001}".into(),
                x: 0.5,
            }],
            makespan: f64::NAN,
            busy: vec![1.5e-3, f64::INFINITY, 0.25],
            migrations: 3,
            migration_bytes: u64::MAX,
            inter_rack_migration_bytes: 0,
            ghost_bytes: 1 << 60,
            inter_rack_ghost_bytes: 42,
            epochs: 1,
            final_cut_bytes: Some(99),
            final_inter_rack_cut_bytes: None,
            replans: 2,
            max_cut_drift: f64::INFINITY,
        };
        let line = record.to_json_line();
        assert!(!line.contains('\n'), "one record, one line: {line}");
        assert!(line.contains("\"makespan\":null"), "NaN must guard to null");
        let back = RunRecord::from_json_line(&line).expect("round trip");
        assert_eq!(back.index, 7);
        assert_eq!(back.axes, record.axes);
        assert!(back.makespan.is_nan());
        assert_eq!(back.busy[0], 1.5e-3);
        assert!(back.busy[1].is_nan(), "∞ guards to null, parses as NaN");
        assert_eq!(
            back.migration_bytes,
            u64::MAX,
            "u64 must not round through f64"
        );
        assert_eq!(back.ghost_bytes, 1 << 60);
        assert_eq!(back.final_cut_bytes, Some(99));
        assert_eq!(back.final_inter_rack_cut_bytes, None);
        assert_eq!(back.replans, 2);
        assert!(
            back.max_cut_drift.is_nan(),
            "non-finite drift guards to null, parses as NaN"
        );
    }

    #[test]
    fn from_json_line_reports_descriptive_errors() {
        assert!(RunRecord::from_json_line("[]")
            .unwrap_err()
            .contains("object"));
        assert!(RunRecord::from_json_line("{\"run\":1}")
            .unwrap_err()
            .contains("missing field"));
        assert!(RunRecord::from_json_line("{").unwrap_err().contains("byte"));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_run() {
        let sweep = ScenarioSweep::new(tiny_base()).axis(steps_axis());
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        sweep.run(&DistSubstrate, &mut sink);
        assert_eq!(sink.rows(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let rec = RunRecord::from_json_line(line).expect("parseable row");
            assert_eq!(rec.substrate, "dist");
        }
    }

    #[test]
    fn summary_groups_by_axis_value() {
        let mk = |index, label: &str, x, makespan, migrations| RunRecord {
            index,
            substrate: "sim".into(),
            axes: vec![AxisPoint {
                axis: "lambda".into(),
                label: label.into(),
                x,
            }],
            makespan,
            busy: vec![makespan],
            migrations,
            migration_bytes: 1000 * migrations as u64,
            inter_rack_migration_bytes: 0,
            ghost_bytes: 0,
            inter_rack_ghost_bytes: 0,
            epochs: 0,
            final_cut_bytes: None,
            final_inter_rack_cut_bytes: None,
            replans: 0,
            max_cut_drift: 0.0,
        };
        let records = vec![
            mk(0, "0", 0.0, 1.0, 2),
            mk(1, "0", 0.0, 3.0, 4),
            mk(2, "1", 1.0, 5.0, 0),
        ];
        let summary = SweepSummary::from_records(&records);
        assert_eq!(summary.total_runs, 3);
        let g0 = summary.group("lambda", "0").expect("group 0");
        assert_eq!(g0.runs, 2);
        assert!((g0.makespan_mean - 2.0).abs() < 1e-12);
        assert_eq!(g0.makespan_min, 1.0);
        assert_eq!(g0.makespan_max, 3.0);
        assert!((g0.migrations_mean - 3.0).abs() < 1e-12);
        assert!((g0.migration_bytes_mean - 3000.0).abs() < 1e-9);
        let g1 = summary.group("lambda", "1").expect("group 1");
        assert_eq!(g1.runs, 1);
        assert_eq!(summary.axis_groups("lambda").len(), 2);
        let md = summary.to_markdown();
        assert!(md.contains("| lambda | 0 | 2 |"), "{md}");
    }

    #[test]
    fn scenario_axis_replaces_the_base() {
        let sweep = ScenarioSweep::new(tiny_base()).axis(Axis::scenarios(
            "scenario",
            vec![
                ("tiny", tiny_base()),
                (
                    "bigger",
                    Scenario::square(24, 2.0, 4, 2).on(ClusterSpec::uniform(2, 1)),
                ),
            ],
        ));
        let runs = sweep.expand();
        assert_eq!(runs[0].scenario.problem.n, 16);
        assert_eq!(runs[1].scenario.problem.n, 24);
        assert_eq!(runs[1].axes[0].label, "bigger");
        assert_eq!(runs[1].axes[0].x, 1.0);
    }
}
