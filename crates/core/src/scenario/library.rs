//! Named, parameterized library scenarios — the workloads the ablations,
//! examples and CI smoke runs share instead of hand-building configs.
//!
//! Every entry comes in two sizes: `quick = true` is a toy size that runs
//! on *both* substrates in well under a second (the CI smoke contract);
//! `quick = false` is the paper-scale simulator workload the ablation
//! figures sweep.

use super::{ClusterEvent, ClusterSpec, LbInput, PartitionSpec, Scenario};
use crate::balance::{LbSchedule, LbSpec};
use crate::workload::WorkModel;
use nlheat_mesh::SdGrid;
use nlheat_netmodel::{LinkSpec, NetSpec, TopologySpec};
use nlheat_partition::strip_partition;

/// The canonical two-rack interconnect of ablations A6–A9: 100 µs /
/// 100 MB/s inside a rack, 4× the latency and a quarter of the bandwidth
/// across racks, near-free intra-node links.
pub fn two_rack_net() -> NetSpec {
    NetSpec::Topology(TopologySpec {
        ranks_per_node: 1,
        nodes_per_rack: 2,
        intra_node: LinkSpec::new(1e-7, 5e9),
        intra_rack: LinkSpec::new(1e-4, 1e8),
        inter_rack: LinkSpec::new(4e-4, 2.5e7),
    })
}

/// A Fig.-14-style lopsided explicit start over `n_nodes`: node 0 owns
/// everything except one far-corner seed SD per other node, so every
/// territory is non-empty (all policies can find frontiers) and the
/// balancer must redistribute most of the mesh.
///
/// # Panics
/// Panics when `n_nodes` exceeds the five supported seeds (node 0 plus
/// four corners) or the grid is too small for the seeds to be distinct —
/// a silent collision would leave a territory empty, breaking the
/// non-empty guarantee above.
pub fn lopsided_owners(sds: &SdGrid, n_nodes: u32) -> Vec<u32> {
    let mut owners = vec![0u32; sds.count()];
    let (nsx, nsy) = (sds.nsx, sds.nsy);
    let corners = [
        (nsx - 1, 0),
        (0, nsy - 1),
        (nsx - 1, nsy - 1),
        (nsx / 2, nsy - 1),
    ];
    assert!(
        (n_nodes as usize) <= corners.len() + 1,
        "lopsided_owners seeds at most {} nodes, got {n_nodes}",
        corners.len() + 1
    );
    let mut seeded = std::collections::HashSet::new();
    for node in 1..n_nodes {
        let (x, y) = corners[node as usize - 1];
        let id = sds.id(x, y) as usize;
        assert!(
            id != 0 && seeded.insert(id),
            "grid of {nsx}x{nsy} SDs is too small for {n_nodes} distinct corner seeds"
        );
        owners[id] = node;
    }
    owners
}

/// The paper's baseline distributed experiment: uniform 4-node cluster,
/// METIS-style initial partition, Algorithm-1 balancing.
pub fn paper_baseline(quick: bool) -> Scenario {
    let base = if quick {
        Scenario::square(16, 2.0, 4, 6)
    } else {
        Scenario::square(400, 8.0, 25, 40)
    };
    base.on(ClusterSpec::uniform(4, 1))
        .with_lb(LbSchedule::every(if quick { 2 } else { 4 }))
}

/// The 2-rack lopsided redistribution of ablation A9: a Fig.-14 start on
/// equal-speed nodes over the two-rack interconnect, balanced by the
/// ghost-aware tree planner (μ in the shaping band), so *where* the
/// cross-rack territories grow is the experiment.
pub fn lopsided_two_rack(quick: bool) -> Scenario {
    // The quick size keeps 8-cell SDs and a wider stencil (like the
    // heterogeneous entry) so per-SD busy relief clears the ~100 µs link
    // estimates μ weighs it against — at 4-cell SDs any practical μ gated
    // the whole redistribution (the old A9 smoke-scale caveat) and the
    // quick variant had to plan ghost-blind. μ stays small because the
    // modeled planning input sees one step of busy, not a whole epoch
    // window; 0.01 shapes plans without gating them in either mode.
    let base = if quick {
        Scenario::square(48, 4.0, 8, 8)
    } else {
        Scenario::square(400, 8.0, 25, 48)
    };
    let sds = base.sd_grid();
    let mu = if quick { 0.01 } else { 0.25 };
    base.on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net())
        .with_partition(PartitionSpec::Explicit(lopsided_owners(&sds, 4)))
        .with_lb(
            LbSchedule::every(if quick { 2 } else { 4 }).with_spec(LbSpec::tree(0.0).with_mu(mu)),
        )
}

/// A *propagating* crack (the paper's §9 outlook toward fracture): the
/// quarter-work band jumps mid-run, so the balancer must keep chasing the
/// cheap region. Runs on both substrates — the real runtime executes the
/// same `work_schedule` the simulator models.
pub fn propagating_crack(quick: bool) -> Scenario {
    let (base, y0, dy, half_width, jump_step) = if quick {
        (Scenario::square(16, 2.0, 4, 8), 4i64, 8i64, 2i64, 4usize)
    } else {
        (Scenario::square(400, 8.0, 25, 32), 200, 100, 30, 16)
    };
    base.on(ClusterSpec::uniform(4, 1))
        .with_partition(PartitionSpec::Strip)
        .with_work_schedule(vec![
            (
                0,
                WorkModel::Crack {
                    y_cell: y0,
                    half_width,
                    factor: 0.25,
                },
            ),
            (
                jump_step,
                WorkModel::Crack {
                    y_cell: y0 + dy,
                    half_width,
                    factor: 0.25,
                },
            ),
        ])
        .with_lb(LbSchedule::every(if quick { 2 } else { 4 }))
}

/// The heterogeneous cluster of ablation A4 / the example: speeds
/// 2 : 1 : 1 : 0.5, so without balancing the slow node drags every step.
pub fn heterogeneous_cluster(quick: bool) -> Scenario {
    // The quick size keeps 8-cell SDs and a wider stencil so per-SD
    // compute dominates the (speed-independent) spawn overhead in the
    // simulator's cost model — otherwise the virtual busy times barely
    // differentiate and the toy run never migrates.
    let base = if quick {
        Scenario::square(32, 4.0, 8, 8)
    } else {
        Scenario::square(400, 8.0, 25, 40)
    };
    base.on(ClusterSpec::speeds(&[2.0, 1.0, 1.0, 0.5]))
        .with_lb(LbSchedule::every(if quick { 2 } else { 4 }))
}

/// Incast over the duplex model: a strip distribution on a
/// receiver-ingress-serialized network ([`NetSpec::duplex`]), the only
/// model where many senders converging on one receiver queue at its NIC.
pub fn incast_duplex(quick: bool) -> Scenario {
    let base = if quick {
        Scenario::square(16, 2.0, 4, 4)
    } else {
        Scenario::square(400, 8.0, 25, 20)
    };
    base.on(ClusterSpec::uniform(4, 1))
        .with_partition(PartitionSpec::Strip)
        .with_net(NetSpec::duplex(1e-4, 1e8))
}

/// Memory pressure (the Lifflander-et-al. motivation): node 3 is twice as
/// fast as its peers, so a capacity-blind planner funnels SDs onto it —
/// but its memory holds only ~1.5 SD footprints beyond its strip start.
/// The hierarchical planner's capacity gate must stop exactly at the cap
/// while still shedding load toward the other under-loaded nodes;
/// [`super::RunReport::check_invariants`] replays every recorded plan
/// against the declared capacity.
pub fn memory_pressure(quick: bool) -> Scenario {
    // Same sizing rationale as the heterogeneous entry: 8-cell SDs and a
    // wider stencil so the speed contrast actually shows up in the
    // modeled busy times at toy scale.
    let base = if quick {
        Scenario::square(32, 4.0, 8, 8)
    } else {
        Scenario::square(400, 8.0, 25, 32)
    };
    let sds = base.sd_grid();
    let owners = PartitionSpec::Strip.initial_owners(&sds, 4);
    let footprints = base.sd_footprints();
    let mut usage = [0u64; 4];
    for (sd, &o) in owners.iter().enumerate() {
        usage[o as usize] += footprints[sd];
    }
    // headroom for ~1.5 of the largest footprints on top of the strip
    // start — far less than the fast node's fair share wants
    let cap = usage[3] + 3 * footprints.iter().copied().max().unwrap_or(0) / 2;
    base.on(ClusterSpec::speeds(&[1.0, 1.0, 1.0, 2.0]).with_node_memory(3, cap))
        .with_net(two_rack_net())
        .with_partition(PartitionSpec::Strip)
        .with_lb(
            LbSchedule::every(if quick { 2 } else { 4 })
                .with_spec(LbSpec::hierarchical(LbSpec::tree(0.0), 0.0)),
        )
}

/// A deliberately decayed ownership over `n_nodes`: node 0 holds a
/// lopsided majority while the other nodes own single-SD islands
/// interleaved through its territory — the kind of map a long run of
/// purely incremental balancing leaves behind (ragged frontiers, high
/// recurring cut, skewed counts). Every node owns at least one SD as
/// long as the grid has `2·n_nodes` SDs.
pub fn drifted_owners(sds: &SdGrid, n_nodes: u32) -> Vec<u32> {
    assert!(n_nodes >= 2, "drift needs somebody to drift against");
    (0..sds.count() as u32)
        .map(|sd| {
            let slot = sd % (2 * n_nodes);
            if slot % 2 == 1 {
                (slot / 2) % (n_nodes - 1) + 1
            } else {
                0
            }
        })
        .collect()
}

/// Cut drift on the two-rack cluster (ablation A12): the run starts from
/// [`drifted_owners`] — a lopsided, island-riddled map whose recurring
/// ghost cut is far above a fresh k-way partition's — and a propagating
/// crack keeps the balancer working. Incremental policies can fix the
/// count skew but never heal the islands; the [`LbSpec::Repartition`]
/// decorator's drift monitor compares the live cut against a fresh
/// partition each epoch and re-invokes the multilevel partitioner once
/// the ratio passes the threshold. A12 swaps the spec to compare
/// repartitioning, the incremental policies alone, and the composed
/// decorator. Modeled planning input, so both substrates produce
/// identical plan sequences.
pub fn cut_drift(quick: bool) -> Scenario {
    let base = if quick {
        Scenario::square(48, 4.0, 8, 10)
    } else {
        Scenario::square(400, 8.0, 25, 48)
    };
    let sds = base.sd_grid();
    let (y0, dy, half_width, jump_step) = if quick {
        (12i64, 24i64, 6i64, 4usize)
    } else {
        (100, 200, 30, 16)
    };
    base.on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net())
        .with_partition(PartitionSpec::Explicit(drifted_owners(&sds, 4)))
        .with_work_schedule(vec![
            (
                0,
                WorkModel::Crack {
                    y_cell: y0,
                    half_width,
                    factor: 0.25,
                },
            ),
            (
                jump_step,
                WorkModel::Crack {
                    y_cell: y0 + dy,
                    half_width,
                    factor: 0.25,
                },
            ),
        ])
        .with_lb(
            LbSchedule::every(if quick { 2 } else { 4 }).with_spec(LbSpec::repartition(
                LbSpec::tree(0.0),
                1.15,
                1,
                u64::MAX,
            )),
        )
        .with_lb_input(LbInput::Modeled)
}

/// Elastic scale-out: the run starts on half the declared cluster (ranks
/// 2 and 3 are declared but unjoined), then the spare ranks join mid-run
/// and the replanner spreads load onto the fresh capacity. The ∞ drift
/// threshold makes membership changes the *only* replan trigger, so the
/// timeline is the whole experiment. Modeled planning input — both
/// substrates must realize identical plan sequences.
pub fn elastic_scale_out(quick: bool) -> Scenario {
    let base = if quick {
        Scenario::square(32, 4.0, 8, 10)
    } else {
        Scenario::square(400, 8.0, 25, 32)
    };
    let sds = base.sd_grid();
    let (joins, period) = if quick {
        (vec![3usize, 5usize], 2)
    } else {
        (vec![8, 16], 4)
    };
    base.on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net())
        .with_partition(PartitionSpec::Explicit(strip_partition(&sds, 2)))
        .with_cluster_events(vec![
            (joins[0], ClusterEvent::Join { rank: 2 }),
            (joins[1], ClusterEvent::Join { rank: 3 }),
        ])
        .with_lb(LbSchedule::every(period).with_spec(LbSpec::repartition(
            LbSpec::greedy_steal(1),
            f64::INFINITY,
            1,
            u64::MAX,
        )))
        .with_lb_input(LbInput::Modeled)
}

/// Rank failure: rank 3 fail-stops mid-run. The replanner must evacuate
/// it at the next epoch (it keeps computing its SDs until then — the
/// membership timeline is a planner-level fact, so the numerics stay
/// bit-exact), and its in-flight ghost contributions are dropped from the
/// planner-grade counters for the steps it spends failed.
pub fn rank_failure(quick: bool) -> Scenario {
    let (base, fail_step, period) = if quick {
        (Scenario::square(32, 4.0, 8, 10), 5, 2)
    } else {
        (Scenario::square(400, 8.0, 25, 32), 16, 4)
    };
    base.on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net())
        .with_cluster_events(vec![(fail_step, ClusterEvent::Fail { rank: 3 })])
        .with_lb(LbSchedule::every(period).with_spec(LbSpec::repartition(
            LbSpec::greedy_steal(1),
            f64::INFINITY,
            1,
            u64::MAX,
        )))
        .with_lb_input(LbInput::Modeled)
}

/// Synthetic planning-scale harness for the hierarchical planner: ~100
/// SDs per rank on a square SD grid, four ranks per node, 25 nodes per
/// rack, and a deterministic 7-period speed skew so the strip start is
/// genuinely imbalanced at every scale. One declared timestep — this
/// scenario exists to be *planned*, not run: drive it through
/// [`super::PlanSubstrate`] (the plan-time sweeps and the
/// `plan/hier_10k` bench), which is why it is not in [`all`].
pub fn plan_scale(n_ranks: usize) -> Scenario {
    plan_scale_with_density(n_ranks, 100)
}

/// [`plan_scale`] at an explicit SDs-per-rank density. The `plan/flat_1k`
/// bench plans 1000 ranks at 10 SDs/rank: dense enough that the flat
/// planner's global walk dominates, sparse enough to fit a bench budget.
pub fn plan_scale_with_density(n_ranks: usize, sds_per_rank: usize) -> Scenario {
    assert!(n_ranks >= 2, "plan_scale needs at least two ranks");
    let sd_size = 5usize;
    // `sds_per_rank` SDs per rank, squared up (the count bends to the square)
    let side = (((n_ranks * sds_per_rank) as f64).sqrt().round() as usize).max(2);
    let speeds: Vec<f64> = (0..n_ranks).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    Scenario::square(side * sd_size, 2.0, sd_size, 1)
        .on(ClusterSpec::speeds(&speeds))
        .with_net(NetSpec::Topology(TopologySpec {
            ranks_per_node: 4,
            nodes_per_rack: 25,
            intra_node: LinkSpec::new(1e-7, 5e9),
            intra_rack: LinkSpec::new(1e-4, 1e8),
            inter_rack: LinkSpec::new(4e-4, 2.5e7),
        }))
        .with_partition(PartitionSpec::Strip)
        .with_lb(LbSchedule::every(2).with_spec(LbSpec::hierarchical(LbSpec::tree(0.0), 0.0)))
}

/// Every named library scenario at the chosen scale, in a stable order.
pub fn all(quick: bool) -> Vec<(&'static str, Scenario)> {
    vec![
        ("paper-baseline", paper_baseline(quick)),
        ("lopsided-two-rack", lopsided_two_rack(quick)),
        ("propagating-crack", propagating_crack(quick)),
        ("heterogeneous-cluster", heterogeneous_cluster(quick)),
        ("incast-duplex", incast_duplex(quick)),
        ("memory-pressure", memory_pressure(quick)),
        ("cut-drift", cut_drift(quick)),
        ("elastic-scale-out", elastic_scale_out(quick)),
        ("rank-failure", rank_failure(quick)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_library_scenario_validates_at_both_scales() {
        for quick in [true, false] {
            for (name, sc) in all(quick) {
                sc.validate();
                assert!(sc.cluster.len() >= 2, "{name}: multi-node by design");
            }
        }
    }

    #[test]
    fn quick_scenarios_run_on_the_real_runtime() {
        // the CI smoke contract at unit scope: the real-runtime leg of
        // every library scenario completes at toy size with a sane report
        for (name, sc) in all(true) {
            let report = sc.run_dist();
            report.check_invariants();
            assert!(report.field.is_some(), "{name}");
        }
    }

    #[test]
    fn quick_imbalanced_scenarios_produce_non_empty_plans() {
        // The A9 smoke-scale caveat is fixed: every quick scenario that
        // *starts* imbalanced must actually redistribute, with its real
        // μ/λ spec, under the deterministic modeled planning input (the
        // quick lopsided entry used to need a ghost-blind μ = 0 to move
        // at all). paper-baseline (already balanced) and incast-duplex
        // (no balancer) legitimately plan nothing.
        for name in [
            "lopsided-two-rack",
            "propagating-crack",
            "heterogeneous-cluster",
        ] {
            let (_, sc) = all(true)
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("library entry");
            let report = sc.with_lb_input(super::super::LbInput::Modeled).run_dist();
            report.check_invariants();
            assert!(
                !report.lb_plans.is_empty() && report.migrations > 0,
                "{name}: quick variant must produce non-empty plans \
                 (got {} plans, {} migrations)",
                report.lb_plans.len(),
                report.migrations
            );
        }
    }

    #[test]
    fn cut_drift_scenario_replans_at_least_once() {
        // The A12 smoke contract: the drifting quick scenario must
        // trigger the drift monitor (≥ 1 replanned epoch) on the real
        // runtime, and the drift column must be populated.
        let report = cut_drift(true).run_dist();
        report.check_invariants();
        assert!(
            report.epoch_traces.iter().any(|t| t.replan),
            "drift monitor must fire at least once: {:?}",
            report
                .epoch_traces
                .iter()
                .map(|t| (t.step, t.cut_drift, t.replan))
                .collect::<Vec<_>>()
        );
        assert!(
            report.epoch_traces.iter().any(|t| t.cut_drift > 0.0),
            "monitored epochs must record the measured drift"
        );
    }

    #[test]
    fn elastic_scale_out_spreads_onto_joined_ranks() {
        let report = elastic_scale_out(true).run_dist();
        report.check_invariants();
        let counts = report.final_ownership.counts();
        assert!(
            counts[2] > 0 && counts[3] > 0,
            "joined ranks must receive work: {counts:?}"
        );
        assert!(report.epoch_traces.iter().any(|t| t.replan));
    }

    #[test]
    fn rank_failure_evacuates_the_failed_rank() {
        let report = rank_failure(true).run_dist();
        report.check_invariants();
        let counts = report.final_ownership.counts();
        assert_eq!(counts[3], 0, "failed rank must end empty: {counts:?}");
        assert!(report.migrations > 0);
    }

    #[test]
    fn lopsided_owners_leave_no_empty_territory() {
        let sds = SdGrid::new(4, 4, 4);
        for n_nodes in 2..=5u32 {
            let owners = lopsided_owners(&sds, n_nodes);
            for node in 0..n_nodes {
                assert!(owners.contains(&node), "node {node} must own a seed");
            }
            assert_eq!(
                owners.iter().filter(|&&o| o == 0).count(),
                16 - (n_nodes as usize - 1)
            );
        }
    }

    #[test]
    #[should_panic(expected = "seeds at most 5 nodes")]
    fn lopsided_owners_reject_too_many_nodes() {
        let sds = SdGrid::new(4, 4, 4);
        let _ = lopsided_owners(&sds, 6);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn lopsided_owners_reject_colliding_seeds() {
        // a 2x1 grid cannot host four distinct corner seeds
        let sds = SdGrid::new(2, 1, 4);
        let _ = lopsided_owners(&sds, 4);
    }
}
