//! Plan-only execution: measure *planning*, not the run it would steer.
//!
//! The hierarchical planner's claim is about plan **time** at cluster
//! scale — 10k ranks over a million SDs — where actually timestepping the
//! mesh (on either substrate) would swamp the measurement and the memory
//! of a CI box. [`PlanSubstrate`] realizes a [`Scenario`] as exactly one
//! load-balancing epoch: it derives the deterministic modeled busy times
//! the [`super::LbInput::Modeled`] parity mode uses, builds the same
//! [`LbNetwork`] view both real substrates hand their policies (SD graph,
//! memory capacities, per-SD footprints), runs the configured policy's
//! `plan` once under a wall clock, and reports the plan itself — through
//! the same [`RunReport`] shape, so [`super::sweep::ScenarioSweep`] can
//! sweep plan time over rank counts like any other measurement.
//!
//! `makespan` is the planning wall time in seconds (the quantity the
//! near-linearity benches regress); `lb_plans`/`epoch_traces` carry the
//! single emitted plan, so [`RunReport::check_invariants`] replays it
//! against the scenario's memory capacities exactly as it does for full
//! runs.

use super::{modeled_busy, work_at, RunExtras, RunReport, Scenario, Substrate};
use crate::balance::{compute_metrics, EpochTrace, LbNetwork};
use crate::ownership::Ownership;
use std::sync::Arc;
use std::time::Instant;

/// What only a plan-only run can measure.
#[derive(Debug, Clone)]
pub struct PlanExtras {
    /// Wall seconds of the single `plan` call (same value as `makespan`).
    pub plan_seconds: f64,
    /// Ranks planned over.
    pub n_ranks: usize,
    /// SDs planned over.
    pub n_sds: usize,
}

/// The planning phase as a [`Substrate`]: one policy invocation, timed.
pub struct PlanSubstrate;

impl Substrate for PlanSubstrate {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        scenario.validate();
        let lb = scenario
            .lb
            .as_ref()
            .expect("PlanSubstrate needs an LB schedule: there is nothing to time without one");
        let sds = scenario.sd_grid();
        let n_nodes = scenario.cluster.len() as u32;
        let owners = scenario.partition.initial_owners(&sds, n_nodes);
        // The deterministic modeled planning input (the cross-substrate
        // parity mode's busy times) at the first balancing step.
        let busy = modeled_busy(
            &sds,
            &owners,
            n_nodes,
            work_at(&scenario.work, &scenario.work_schedule, 0),
            &scenario.cluster.speed_factors(),
            scenario.sec_per_dp(),
        );
        let ownership = Ownership::new(sds, owners.clone(), n_nodes);
        let metrics = compute_metrics(&ownership.counts(), &busy);
        let sd_graph = Arc::new(scenario.sd_graph());
        let mut net = LbNetwork::for_sd_tiles(&scenario.net, sds.cells_per_sd())
            .with_sd_graph(sd_graph.clone());
        if scenario.cluster.has_memory_caps() {
            net = net.with_memory(
                Arc::new(scenario.cluster.memory_capacities()),
                Arc::new(sd_graph.footprints()),
            );
        }
        let mut policy = lb.spec.build();

        // Everything above is setup either real substrate would amortize
        // over a whole run; the measured quantity is the planning call.
        let t0 = Instant::now();
        let plan = policy.plan(&ownership, &metrics, &net);
        let plan_seconds = t0.elapsed().as_secs_f64();

        let mut final_owners = owners;
        for m in &plan.moves {
            final_owners[m.sd as usize] = m.to;
        }
        let realized = !plan.moves.is_empty();
        let trace =
            realized.then(|| EpochTrace::record(lb.period, policy.name(), &plan, &ownership, &net));
        let final_ownership = Ownership::new(sds, final_owners, n_nodes);
        RunReport {
            substrate: "plan",
            makespan: plan_seconds,
            busy,
            migrations: plan.moves.len(),
            migration_bytes: trace.as_ref().map_or(0, |t| t.migration_bytes),
            inter_rack_migration_bytes: trace.as_ref().map_or(0, |t| t.inter_rack_migration_bytes),
            ghost_bytes: 0,
            inter_rack_ghost_bytes: 0,
            lb_history: if realized {
                vec![final_ownership.counts()]
            } else {
                Vec::new()
            },
            lb_plans: if realized {
                vec![plan.moves]
            } else {
                Vec::new()
            },
            epoch_traces: trace.into_iter().collect(),
            final_ownership,
            field: None,
            error: None,
            memory_bytes: None,
            sd_footprint: None,
            extras: RunExtras::Plan(PlanExtras {
                plan_seconds,
                n_ranks: n_nodes as usize,
                n_sds: sds.count(),
            }),
        }
        .with_scenario_memory(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::LbSchedule;
    use crate::scenario::library;
    use crate::scenario::{ClusterSpec, PartitionSpec};

    #[test]
    fn plan_substrate_reports_one_epoch() {
        let sds_owners = {
            let mut o = vec![0u32; 16];
            o[15] = 1;
            o
        };
        let sc = Scenario::square(16, 2.0, 4, 4)
            .on(ClusterSpec::uniform(2, 1))
            .with_partition(PartitionSpec::Explicit(sds_owners))
            .with_lb(LbSchedule::every(2));
        let report = PlanSubstrate.run(&sc);
        report.check_invariants();
        assert_eq!(report.substrate, "plan");
        assert!(report.migrations > 0, "the 15/1 start must plan moves");
        assert_eq!(report.lb_plans.len(), 1, "exactly one epoch");
        assert!(report.field.is_none());
        let extras = report.plan_extras().expect("plan extras");
        assert_eq!(extras.n_ranks, 2);
        assert_eq!(extras.n_sds, 16);
        assert!(extras.plan_seconds >= 0.0);
        assert_eq!(report.makespan, extras.plan_seconds);
        // the plan moved SDs off the overloaded rank
        let counts = report.final_ownership.counts();
        assert!(counts[0] < 15 && counts[1] > 1, "counts {counts:?}");
    }

    #[test]
    fn balanced_start_plans_nothing() {
        let sc = Scenario::square(16, 2.0, 4, 4)
            .on(ClusterSpec::uniform(2, 1))
            .with_partition(PartitionSpec::Strip)
            .with_lb(LbSchedule::every(2));
        let report = PlanSubstrate.run(&sc);
        report.check_invariants();
        assert_eq!(report.migrations, 0);
        assert!(report.lb_plans.is_empty(), "no realized epoch");
        assert!(report.epoch_traces.is_empty());
    }

    #[test]
    fn memory_tables_ride_along_and_replay() {
        let sc = library::memory_pressure(true);
        let report = PlanSubstrate.run(&sc);
        assert!(
            report.memory_bytes.is_some() && report.sd_footprint.is_some(),
            "memory scenario must attach its tables"
        );
        // replays the emitted plan against the declared capacities
        report.check_invariants();
    }

    #[test]
    #[should_panic(expected = "needs an LB schedule")]
    fn missing_lb_schedule_rejected() {
        let sc = Scenario::square(16, 2.0, 4, 4).on(ClusterSpec::uniform(2, 1));
        let _ = PlanSubstrate.run(&sc);
    }

    #[test]
    fn hierarchical_scale_scenario_plans_under_a_budget() {
        // tiny instance of the plan-scale harness: exercises the
        // hierarchical policy through the plan-only substrate end to end
        let sc = library::plan_scale(100);
        let report = PlanSubstrate.run(&sc);
        report.check_invariants();
        assert_eq!(report.plan_extras().unwrap().n_ranks, 100);
        assert!(
            report.migrations > 0,
            "the skewed speed profile must imbalance the strip start"
        );
    }
}
