//! The declarative experiment surface: one [`Scenario`] drives both
//! execution substrates.
//!
//! The paper's whole argument rests on running the *same* experiment on
//! the real AMT runtime and on the discrete-event simulator. Before this
//! module the two substrates were configured through diverging structs
//! (`DistConfig` vs `SimConfig`, two partition enums, simulator-only
//! `work_schedule`) and compared through two report shapes, so every
//! ablation and test hand-built two configs. A [`Scenario`] declares the
//! experiment once — problem, decomposition, cluster shape, network,
//! initial partition, workload (possibly time-varying), overlap mode and
//! load-balancing schedule — and is *executed* through the [`Substrate`]
//! abstraction: [`Scenario::run_dist`] on the real runtime, and
//! `Scenario::run_sim` (provided by `nlheat-sim`) on the simulator. Both
//! return the same [`RunReport`], with substrate-specific measurements
//! nested in [`RunExtras`] instead of forked into parallel types.
//!
//! `DistConfig` and `SimConfig` remain as the low-level per-substrate
//! execution configs a scenario compiles into (`Scenario::dist_config`,
//! `SimConfig::from(&scenario)`) — the compatibility layer — but
//! everything above them (ablations, examples, integration tests, the
//! scenario [`library`]) describes experiments declaratively.
//!
//! Declarative scenario/phase descriptions are what let one harness sweep
//! many workloads across heterogeneous backends (cf. Lifflander et al.,
//! arXiv:2404.16793, and the adaptive work-stealing evaluation of
//! arXiv:2401.04494).

pub mod library;
pub mod plan;
pub mod sweep;

pub use plan::{PlanExtras, PlanSubstrate};

use crate::balance::{EpochTrace, LbSchedule, Move};
use crate::dist::{run_distributed, DistConfig, DistReport};
use crate::ownership::Ownership;
use crate::workload::WorkModel;
use nlheat_amt::cluster::{Cluster, ClusterBuilder};
use nlheat_mesh::{Grid, SdGrid, Stencil};
use nlheat_model::{ErrorAccumulator, ProblemSpec};
use nlheat_netmodel::NetSpec;
use nlheat_partition::{part_mesh_dual, strip_partition};
use std::time::Duration;

/// The declared shape of one cluster node: `cores` workers at relative
/// `speed`. The simulator realizes it as a virtual node; the real runtime
/// as a locality with `cores` worker threads and the same speed factor —
/// [`ClusterSpec`] is the one source of truth both substrates consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualNode {
    /// Worker cores.
    pub cores: usize,
    /// Relative speed (1.0 = nominal).
    pub speed: f64,
    /// Memory capacity in bytes; `None` = unbounded (the historical
    /// behaviour). A capped node's resident footprint — its SD tiles plus
    /// their ghost buffers ([`nlheat_partition::SdGraph::resident_bytes`])
    /// — must never exceed this: memory-aware planners reject
    /// overflowing migrations, and [`Scenario::validate`] rejects initial
    /// partitions that already overflow.
    pub memory_bytes: Option<u64>,
}

impl VirtualNode {
    /// `n` nominal-speed cores, unbounded memory.
    pub fn with_cores(cores: usize) -> Self {
        VirtualNode {
            cores,
            speed: 1.0,
            memory_bytes: None,
        }
    }

    /// Cap this node's memory at `bytes` (chainable).
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }
}

/// The declared cluster: how many nodes, how many cores each, and their
/// relative speed factors. Rack structure is declared by the scenario's
/// [`NetSpec`] (a `Topology` spec assigns nodes to racks), so one
/// `ClusterSpec` + `NetSpec` pair fully describes the machine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterSpec {
    /// Per-node shapes, in node-id order.
    pub nodes: Vec<VirtualNode>,
}

impl ClusterSpec {
    /// An empty spec to chain [`ClusterSpec::node`] onto.
    pub fn new() -> Self {
        ClusterSpec::default()
    }

    /// `n` identical nominal-speed nodes of `cores` cores each.
    pub fn uniform(n: usize, cores: usize) -> Self {
        ClusterSpec {
            nodes: vec![VirtualNode::with_cores(cores); n],
        }
    }

    /// Single-core nodes with the given relative speeds.
    pub fn speeds(speeds: &[f64]) -> Self {
        ClusterSpec {
            nodes: speeds
                .iter()
                .map(|&speed| VirtualNode {
                    cores: 1,
                    speed,
                    memory_bytes: None,
                })
                .collect(),
        }
    }

    /// Append one node (chainable).
    pub fn node(mut self, cores: usize, speed: f64) -> Self {
        self.nodes.push(VirtualNode {
            cores,
            speed,
            memory_bytes: None,
        });
        self
    }

    /// Cap the memory of node `idx` at `bytes` (chainable).
    ///
    /// # Panics
    /// Panics when `idx` names no declared node.
    pub fn with_node_memory(mut self, idx: usize, bytes: u64) -> Self {
        assert!(idx < self.nodes.len(), "node {idx} is not declared");
        self.nodes[idx].memory_bytes = Some(bytes);
        self
    }

    /// Per-node memory capacities with `u64::MAX` for unbounded nodes —
    /// the table memory-aware planners consume ([`crate::balance::LbNetwork`]).
    pub fn memory_capacities(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.memory_bytes.unwrap_or(u64::MAX))
            .collect()
    }

    /// True when any node declares a memory cap — the gate for building
    /// footprint tables (memory-blind scenarios skip that work entirely).
    pub fn has_memory_caps(&self) -> bool {
        self.nodes.iter().any(|n| n.memory_bytes.is_some())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are declared.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The per-node speed factors, in node-id order.
    pub fn speed_factors(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.speed).collect()
    }

    /// A [`ClusterBuilder`] realizing this spec over the given network
    /// model — the real-runtime leg of the cluster seam.
    pub fn builder(&self, net: NetSpec) -> ClusterBuilder {
        let mut b = ClusterBuilder::new().net(net);
        for n in &self.nodes {
            b = b.node(n.cores, n.speed);
        }
        b
    }

    /// Reject a degenerate cluster at configuration time (mirroring
    /// `WorkModel::validate`: every declared number must be usable before
    /// a driver thread could trip over it mid-run).
    ///
    /// # Panics
    /// Panics on an empty spec, a zero-core node, a non-finite or
    /// non-positive speed factor, or a zero memory capacity (a rank that
    /// can hold nothing cannot host any partition; capacities are `u64`,
    /// so NaN/negative spellings cannot be constructed).
    pub fn validate(&self) {
        assert!(!self.nodes.is_empty(), "cluster needs at least one node");
        for (i, n) in self.nodes.iter().enumerate() {
            assert!(n.cores >= 1, "node {i} needs at least one core");
            assert!(
                n.speed.is_finite() && n.speed > 0.0,
                "node {i} speed must be finite and positive, got {}",
                n.speed
            );
            if let Some(cap) = n.memory_bytes {
                assert!(cap > 0, "node {i} memory capacity must be positive");
            }
        }
    }
}

/// One elastic cluster-membership change, scheduled by step like
/// `work_schedule` entries. Events change what the *planner* sees — the
/// active-rank mask on its [`crate::balance::LbNetwork`] — never the
/// numerics: a drained or failed rank keeps computing the SDs it still
/// owns until the [`Repartition`](crate::balance::LbSpec::Repartition)
/// policy has evacuated them, so the field stays bit-exact through any
/// membership timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// The rank becomes available for work from this step on. A rank
    /// whose *first* event is a `Join` starts the run inactive (it is
    /// declared in the [`ClusterSpec`] but holds nothing until it joins);
    /// the next replan spreads load onto it.
    Join {
        /// The joining rank.
        rank: u32,
    },
    /// The rank is gracefully decommissioned: its capacity drops to zero
    /// and the replanner evacuates its SDs (under the migration budget),
    /// but its in-flight ghost contributions still count.
    Drain {
        /// The draining rank.
        rank: u32,
    },
    /// The rank fail-stops: like [`ClusterEvent::Drain`], plus its
    /// in-flight ghost contributions are dropped from the planner-grade
    /// traffic counters for the steps it spends failed.
    Fail {
        /// The failing rank.
        rank: u32,
    },
}

impl ClusterEvent {
    /// The rank this event concerns.
    pub fn rank(&self) -> u32 {
        match self {
            ClusterEvent::Join { rank }
            | ClusterEvent::Drain { rank }
            | ClusterEvent::Fail { rank } => *rank,
        }
    }
}

/// The active-rank mask *before* any event fires: every declared rank is
/// active except those whose earliest event is a [`ClusterEvent::Join`]
/// (they are declared but have not joined yet).
pub fn initial_active(n_nodes: usize, events: &[(usize, ClusterEvent)]) -> Vec<bool> {
    let mut active = vec![true; n_nodes];
    let mut seen = vec![false; n_nodes];
    for (_, ev) in events {
        let r = ev.rank() as usize;
        if !seen[r] {
            seen[r] = true;
            if matches!(ev, ClusterEvent::Join { .. }) {
                active[r] = false;
            }
        }
    }
    active
}

/// The active-rank mask in effect at `step`: [`initial_active`] with every
/// event scheduled at or before `step` applied in order — shared by both
/// substrates (like [`work_at`]) so they can never disagree on the
/// membership timeline.
pub fn active_at(n_nodes: usize, events: &[(usize, ClusterEvent)], step: usize) -> Vec<bool> {
    let mut active = initial_active(n_nodes, events);
    for (from, ev) in events {
        if *from <= step {
            active[ev.rank() as usize] = matches!(ev, ClusterEvent::Join { .. });
        }
    }
    active
}

/// The failed-rank mask in effect at `step`: ranks whose latest applied
/// event is a [`ClusterEvent::Fail`]. Both substrates drop ghost
/// contributions touching these ranks from the planner-grade counters (a
/// fail-stopped rank's parcels are lost to the application even though
/// the solver keeps its numerics alive underneath).
pub fn failed_at(n_nodes: usize, events: &[(usize, ClusterEvent)], step: usize) -> Vec<bool> {
    let mut failed = vec![false; n_nodes];
    for (from, ev) in events {
        if *from <= step {
            failed[ev.rank() as usize] = matches!(ev, ClusterEvent::Fail { .. });
        }
    }
    failed
}

/// How the initial SD → node distribution is produced — the one partition
/// selection both substrates consume (it merges the former
/// `PartitionMethod` and `SimPartition` enums).
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpec {
    /// The multilevel dual-mesh partitioner (the paper's METIS path).
    Metis { seed: u64 },
    /// Row-major strips (naive baseline, ablation A1).
    Strip,
    /// An explicit assignment (used by Fig.-14-style experiments to start
    /// from a deliberately imbalanced state).
    Explicit(Vec<u32>),
}

impl PartitionSpec {
    /// Realize the initial owners over `sds` for `n_nodes` — the single
    /// implementation both substrates call, so they can never diverge on
    /// what an initial distribution means.
    ///
    /// # Panics
    /// Panics when an explicit assignment's length does not match the SD
    /// grid or names a node outside the cluster.
    pub fn initial_owners(&self, sds: &SdGrid, n_nodes: u32) -> Vec<u32> {
        match self {
            PartitionSpec::Metis { seed } => part_mesh_dual(sds, n_nodes, *seed).parts,
            PartitionSpec::Strip => strip_partition(sds, n_nodes),
            PartitionSpec::Explicit(owners) => {
                assert_eq!(owners.len(), sds.count(), "explicit ownership length");
                assert!(
                    owners.iter().all(|&o| o < n_nodes),
                    "explicit ownership names a node outside the cluster"
                );
                owners.clone()
            }
        }
    }
}

/// What the load-balancing policies plan from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LbInput {
    /// Measured busy times — wall-clock counters on the real runtime,
    /// virtual-time windows in the simulator — plus the substrate's
    /// stall/ghost-stall feedback to adaptive policies. The paper's mode.
    #[default]
    Measured,
    /// Deterministic busy times derived from the declared [`WorkModel`]
    /// and speed factors ([`modeled_busy`]), with runtime feedback
    /// disabled. Both substrates then see byte-identical planner inputs,
    /// so one scenario yields *identical* migration-plan sequences on the
    /// simulator and the real runtime — the cross-substrate parity mode.
    Modeled,
}

/// The nominal per-DP compute cost used by modeled planning inputs and by
/// the simulator's calibrated [`CostModel`](../../nlheat_sim/struct.CostModel.html):
/// roughly 2 ns per neighbour interaction.
pub fn nominal_sec_per_dp(stencil_points: usize) -> f64 {
    stencil_points.max(1) as f64 * 2e-9
}

/// Deterministic per-node busy seconds derived from the declared work
/// model: each owned SD contributes `cells · factor / speed · sec_per_dp`.
/// Shared by both substrates under [`LbInput::Modeled`], so their planner
/// inputs are byte-identical by construction.
pub fn modeled_busy(
    sds: &SdGrid,
    owners: &[u32],
    n_nodes: u32,
    work: &WorkModel,
    speeds: &[f64],
    sec_per_dp: f64,
) -> Vec<f64> {
    let mut busy = vec![0.0f64; n_nodes as usize];
    let cells = sds.cells_per_sd() as f64;
    for sd in sds.ids() {
        let node = owners[sd as usize] as usize;
        busy[node] += cells * work.factor(sds, sd) * sec_per_dp / speeds[node];
    }
    for b in &mut busy {
        *b = b.max(1e-12);
    }
    busy
}

/// One declarative experiment, runnable on either substrate.
///
/// Build with [`Scenario::square`] and the chainable `with_*` methods;
/// execute with [`Scenario::run_dist`] (real runtime) or `run_sim`
/// (simulator, provided by `nlheat-sim`); compare the unified
/// [`RunReport`]s.
///
/// ```
/// use nlheat_core::scenario::{ClusterSpec, Scenario};
/// use nlheat_core::balance::LbSchedule;
///
/// let report = Scenario::square(16, 2.0, 4, 5)
///     .on(ClusterSpec::uniform(2, 1))
///     .with_lb(LbSchedule::every(2))
///     .run_dist();
/// assert!(!report.busy.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The physical problem (manufactured source and initial condition).
    pub problem: ProblemSpec,
    /// Decomposition: SD side length in cells.
    pub sd_size: usize,
    /// Timesteps.
    pub steps: usize,
    /// The declared cluster (node count, cores, speed factors).
    pub cluster: ClusterSpec,
    /// Network cost model — drives the real fabric's delivery delays and
    /// the simulator's virtual time identically, and declares the rack
    /// structure cost-aware balancing prices.
    pub net: NetSpec,
    /// Initial SD distribution.
    pub partition: PartitionSpec,
    /// Per-SD work factors (crack scenario etc.).
    pub work: WorkModel,
    /// Time-varying workload: `(from_step, model)` switch points, sorted
    /// by step. At step `s` the last entry with `from_step ≤ s` overrides
    /// `work` — a *propagating* crack. Runs on both substrates.
    pub work_schedule: Vec<(usize, WorkModel)>,
    /// Elastic cluster-membership timeline: `(from_step, event)` entries
    /// sorted by step, applied by both substrates ([`active_at`]). Events
    /// require an [`LbSpec::Repartition`](crate::balance::LbSpec::Repartition)
    /// policy in the LB chain — only the replanner evacuates drained and
    /// failed ranks or spreads load onto joiners.
    pub cluster_events: Vec<(usize, ClusterEvent)>,
    /// Case-1/case-2 overlap (§6.3); `false` waits for all ghosts before
    /// computing anything (ablation A2).
    pub overlap: bool,
    /// Optional load balancing (one schedule, both substrates).
    pub lb: Option<LbSchedule>,
    /// Record the eq.-7 error every step (real runtime only; the
    /// simulator carries no field).
    pub record_error: bool,
    /// What the balancing policies plan from (measured or modeled busy).
    pub lb_input: LbInput,
    /// Intra-step tile-task work stealing (real runtime only): decompose
    /// each SD's step update into row-band tasks so idle pool workers
    /// steal pieces of a straggler SD *within* a timestep. Orthogonal to
    /// `lb` — stealing absorbs transients inside a node, migration fixes
    /// persistent skew across nodes. Numerics are bit-identical either
    /// way. The simulator's cost model ignores it.
    pub intra_step_stealing: bool,
}

impl Scenario {
    /// A square `n`×`n` mesh with horizon `eps_mult`·h, `sd_size`-cell
    /// SDs, `steps` timesteps, on one nominal single-core node over the
    /// default cluster interconnect ([`NetSpec::cluster`]). Chain `with_*`
    /// builders to declare the rest.
    pub fn square(n: usize, eps_mult: f64, sd_size: usize, steps: usize) -> Self {
        Scenario {
            problem: ProblemSpec::square(n, eps_mult),
            sd_size,
            steps,
            cluster: ClusterSpec::uniform(1, 1),
            net: NetSpec::cluster(),
            partition: PartitionSpec::Metis { seed: 1 },
            work: WorkModel::Uniform,
            work_schedule: Vec::new(),
            cluster_events: Vec::new(),
            overlap: true,
            lb: None,
            record_error: false,
            lb_input: LbInput::Measured,
            intra_step_stealing: false,
        }
    }

    /// Declare the cluster.
    pub fn on(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Declare the network model.
    pub fn with_net(mut self, net: NetSpec) -> Self {
        self.net = net;
        self
    }

    /// Declare the initial partition.
    pub fn with_partition(mut self, partition: PartitionSpec) -> Self {
        self.partition = partition;
        self
    }

    /// Declare the (static) workload.
    pub fn with_work(mut self, work: WorkModel) -> Self {
        self.work = work;
        self
    }

    /// Declare a time-varying workload (switch points sorted by step).
    pub fn with_work_schedule(mut self, schedule: Vec<(usize, WorkModel)>) -> Self {
        self.work_schedule = schedule;
        self
    }

    /// Declare the elastic cluster-membership timeline (events sorted by
    /// step). Requires a `Repartition` LB policy — see
    /// [`Scenario::validate`].
    pub fn with_cluster_events(mut self, events: Vec<(usize, ClusterEvent)>) -> Self {
        self.cluster_events = events;
        self
    }

    /// Toggle case-1/case-2 overlap.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Schedule load balancing.
    pub fn with_lb(mut self, lb: LbSchedule) -> Self {
        self.lb = Some(lb);
        self
    }

    /// Disable load balancing (the off leg of an LB on/off comparison —
    /// library scenarios ship with their schedule set).
    pub fn without_lb(mut self) -> Self {
        self.lb = None;
        self
    }

    /// Record the eq.-7 error every step (real runtime).
    pub fn with_record_error(mut self, record: bool) -> Self {
        self.record_error = record;
        self
    }

    /// Select what the balancer plans from.
    pub fn with_lb_input(mut self, input: LbInput) -> Self {
        self.lb_input = input;
        self
    }

    /// Toggle intra-step tile-task work stealing (real runtime only).
    pub fn with_intra_step_stealing(mut self, on: bool) -> Self {
        self.intra_step_stealing = on;
        self
    }

    /// The workload in effect at `step`.
    pub fn work_at(&self, step: usize) -> &WorkModel {
        work_at(&self.work, &self.work_schedule, step)
    }

    /// The SD grid this scenario decomposes into.
    pub fn sd_grid(&self) -> SdGrid {
        SdGrid::tile_mesh(self.problem.n, self.problem.n, self.sd_size)
    }

    /// The nominal per-DP seconds of this scenario's stencil — the scale
    /// [`modeled_busy`] and the simulator's calibrated cost model share.
    pub fn sec_per_dp(&self) -> f64 {
        let grid = Grid::square(self.problem.n, self.problem.eps_mult);
        nominal_sec_per_dp(Stencil::build(grid.h, grid.eps).len())
    }

    /// The SD adjacency / halo-volume graph of this scenario's
    /// decomposition — the same graph both substrates attach to their
    /// planners, built from geometry alone.
    pub fn sd_graph(&self) -> nlheat_partition::SdGraph {
        let grid = Grid::square(self.problem.n, self.problem.eps_mult);
        nlheat_partition::SdGraph::build(&self.sd_grid(), grid.halo)
    }

    /// Per-SD resident memory footprints (tile + ghost buffers), indexed
    /// by SD id — what each node's `memory_bytes` capacity is balanced
    /// against ([`nlheat_partition::SdGraph::footprints`]).
    pub fn sd_footprints(&self) -> Vec<u64> {
        self.sd_graph().footprints()
    }

    /// Reject an internally inconsistent scenario at configuration time,
    /// on the caller's thread — before any driver thread could panic
    /// mid-run and deadlock a cluster.
    ///
    /// # Panics
    /// Panics on: a mesh that does not tile into `sd_size` SDs; zero
    /// steps; a degenerate cluster ([`ClusterSpec::validate`]); an invalid
    /// network spec; an explicit partition of the wrong length; an invalid
    /// work model ([`WorkModel::validate`]) in `work` or any schedule
    /// entry; an unsorted `work_schedule`; or an invalid LB schedule.
    pub fn validate(&self) {
        assert!(self.steps >= 1, "scenario needs at least one timestep");
        assert!(
            self.sd_size >= 1 && self.problem.n.is_multiple_of(self.sd_size),
            "mesh of {} cells does not tile into {}-cell SDs",
            self.problem.n,
            self.sd_size
        );
        self.cluster.validate();
        self.net.validate();
        let sds = self.sd_grid();
        if let PartitionSpec::Explicit(owners) = &self.partition {
            assert_eq!(owners.len(), sds.count(), "explicit ownership length");
            assert!(
                owners.iter().all(|&o| (o as usize) < self.cluster.len()),
                "explicit ownership names a node outside the cluster"
            );
        }
        self.work.validate(&sds);
        let mut prev = 0usize;
        for (i, (from, model)) in self.work_schedule.iter().enumerate() {
            assert!(
                i == 0 || *from >= prev,
                "work_schedule must be sorted by step"
            );
            prev = *from;
            model.validate(&sds);
        }
        if let Some(lb) = &self.lb {
            lb.validate();
        }
        // Elastic-membership checks: the timeline must be well-formed and
        // the run must be able to react to it.
        if !self.cluster_events.is_empty() {
            assert!(
                self.lb
                    .as_ref()
                    .is_some_and(|lb| lb.spec.chain_has_repartition()),
                "cluster events require an LbSpec::Repartition policy in the \
                 LB chain (only the replanner evacuates drained/failed ranks \
                 and spreads load onto joiners)"
            );
            let n = self.cluster.len();
            let mut prev = 0usize;
            for (i, (from, ev)) in self.cluster_events.iter().enumerate() {
                assert!(
                    *from >= 1,
                    "cluster events take effect from step 1 (step 0 is the \
                     initial condition — declare late joiners by making Join \
                     their first event)"
                );
                assert!(
                    i == 0 || *from >= prev,
                    "cluster_events must be sorted by step"
                );
                prev = *from;
                assert!(
                    (ev.rank() as usize) < n,
                    "cluster event names rank {} outside the {n}-rank cluster",
                    ev.rank()
                );
            }
            // The cluster may never go fully inactive — walk the timeline.
            let mut active = initial_active(n, &self.cluster_events);
            assert!(
                active.iter().any(|&a| a),
                "cluster events leave no initially active rank"
            );
            for (_, ev) in &self.cluster_events {
                active[ev.rank() as usize] = matches!(ev, ClusterEvent::Join { .. });
                assert!(
                    active.iter().any(|&a| a),
                    "cluster events leave the cluster with no active rank"
                );
            }
            // Initial SDs must sit on initially-active ranks (a rank that
            // has not joined yet cannot own anything).
            let init = initial_active(n, &self.cluster_events);
            let owners = self.partition.initial_owners(&sds, n as u32);
            for (sd, &o) in owners.iter().enumerate() {
                assert!(
                    init[o as usize],
                    "initial partition places SD {sd} on rank {o}, which \
                     only joins later"
                );
            }
        }
        // Memory-aware configuration checks, skipped entirely for
        // memory-blind clusters (no footprint table to build).
        if self.cluster.has_memory_caps() {
            let footprints = self.sd_footprints();
            let total: u64 = footprints.iter().sum();
            let capacity = self
                .cluster
                .nodes
                .iter()
                .try_fold(0u64, |acc, n| acc.checked_add(n.memory_bytes?))
                .unwrap_or(u64::MAX);
            assert!(
                capacity >= total,
                "cluster capacity ({capacity} B) cannot hold the mesh's \
                 resident footprint ({total} B)"
            );
            let owners = self
                .partition
                .initial_owners(&sds, self.cluster.len() as u32);
            let mut usage = vec![0u64; self.cluster.len()];
            for (sd, &o) in owners.iter().enumerate() {
                usage[o as usize] += footprints[sd];
            }
            for (i, n) in self.cluster.nodes.iter().enumerate() {
                if let Some(cap) = n.memory_bytes {
                    assert!(
                        usage[i] <= cap,
                        "node {i}'s initial partition ({} B) overflows its \
                         memory capacity ({cap} B)",
                        usage[i]
                    );
                }
            }
        }
    }

    /// Compile into the real runtime's low-level execution config (the
    /// compatibility layer).
    pub fn dist_config(&self) -> DistConfig {
        DistConfig {
            spec: self.problem,
            sd_size: self.sd_size,
            n_steps: self.steps,
            partition: self.partition.clone(),
            overlap: self.overlap,
            lb: self.lb.clone(),
            record_error: self.record_error,
            work: self.work.clone(),
            work_schedule: self.work_schedule.clone(),
            cluster_events: self.cluster_events.clone(),
            net: self.net,
            lb_input: self.lb_input,
            intra_step_stealing: self.intra_step_stealing,
            memory_bytes: if self.cluster.has_memory_caps() {
                self.cluster.nodes.iter().map(|n| n.memory_bytes).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Build the real cluster this scenario declares (localities with the
    /// declared cores and speed factors over the declared network model).
    pub fn build_cluster(&self) -> Cluster {
        self.cluster.builder(self.net).build()
    }

    /// Execute on the real AMT runtime.
    ///
    /// # Panics
    /// Panics on an invalid scenario — see [`Scenario::validate`].
    pub fn run_dist(&self) -> RunReport {
        DistSubstrate.run(self)
    }

    /// Execute on a substrate chosen at runtime.
    pub fn run_on(&self, substrate: &dyn Substrate) -> RunReport {
        substrate.run(self)
    }
}

/// The workload in effect at `step` under a base model + switch schedule —
/// shared by [`Scenario`], `DistConfig` and `SimConfig` so the substrates
/// cannot disagree on what a schedule means.
pub fn work_at<'a>(
    base: &'a WorkModel,
    schedule: &'a [(usize, WorkModel)],
    step: usize,
) -> &'a WorkModel {
    schedule
        .iter()
        .rev()
        .find(|&&(from, _)| from <= step)
        .map(|(_, m)| m)
        .unwrap_or(base)
}

/// An execution substrate: anything that can realize a [`Scenario`] and
/// measure it into a [`RunReport`]. `nlheat-core` ships the real runtime
/// ([`DistSubstrate`]); `nlheat-sim` ships the discrete-event simulator.
pub trait Substrate {
    /// Short label for tables and report tagging.
    fn name(&self) -> &'static str;

    /// Execute the scenario.
    fn run(&self, scenario: &Scenario) -> RunReport;
}

/// The real AMT runtime as a [`Substrate`].
pub struct DistSubstrate;

impl Substrate for DistSubstrate {
    fn name(&self) -> &'static str {
        "dist"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        scenario.validate();
        let cluster = scenario.build_cluster();
        let cfg = scenario.dist_config();
        let report = run_distributed(&cluster, &cfg);
        let stats = cluster.net_stats();
        RunReport::from_dist(report, stats.messages(), stats.cross_bytes())
            .with_scenario_memory(scenario)
    }
}

/// Substrate-specific measurements of a run — nested in the unified
/// [`RunReport`] instead of forked into parallel report types.
#[derive(Debug, Clone)]
pub enum RunExtras {
    /// Real-runtime extras.
    Dist(DistExtras),
    /// Simulator extras.
    Sim(SimExtras),
    /// Plan-only extras ([`PlanSubstrate`]: one planning call, no
    /// execution).
    Plan(PlanExtras),
}

/// What only the real runtime can measure.
#[derive(Debug, Clone)]
pub struct DistExtras {
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Per-locality busy nanoseconds (raw counter values).
    pub busy_ns: Vec<u64>,
    /// Messages the fabric actually carried (ghosts + LB protocol +
    /// migrations).
    pub wire_messages: u64,
    /// Bytes that actually crossed localities on the wire (includes codec
    /// framing and the LB protocol, unlike the planner-grade counters).
    pub wire_cross_bytes: u64,
    /// Per-locality successful task steals in the worker pools over the
    /// whole run (injector grabs plus peer-to-peer deque steals — the
    /// intra-step stealing observability signal).
    pub pool_steals: Vec<u64>,
    /// Per-locality dry victim scans (steal attempts that found nothing).
    pub pool_steal_fails: Vec<u64>,
    /// Per-locality worker park events.
    pub pool_parks: Vec<u64>,
}

/// What only the simulator can measure.
#[derive(Debug, Clone)]
pub struct SimExtras {
    /// Per-node busy fraction: busy / (cores · makespan).
    pub busy_fraction: Vec<f64>,
    /// Bytes crossing node boundaries in virtual time (ghosts +
    /// migrations).
    pub cross_bytes: u64,
    /// Messages crossing node boundaries.
    pub messages: u64,
}

/// The unified outcome of running one [`Scenario`] on either substrate.
///
/// The shared fields mean the same thing on both sides: `makespan` and
/// `busy` are seconds (wall-clock on the real runtime, virtual time in
/// the simulator); the ghost/migration byte counters are planner-grade
/// wire estimates (`patch_wire_bytes`: payload + framing word) counted by
/// the same formula on both substrates, so identical plans produce
/// identical counters; `lb_history`/`lb_plans`/`epoch_traces` record one
/// entry per *realized* balancing epoch.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which substrate produced this report (`"dist"` or `"sim"`).
    pub substrate: &'static str,
    /// Seconds from step 0 to the last node finishing.
    pub makespan: f64,
    /// Per-node busy seconds.
    pub busy: Vec<f64>,
    /// Total SDs migrated by load balancing.
    pub migrations: usize,
    /// Planner-grade migration payload bytes (sum over realized epochs).
    pub migration_bytes: u64,
    /// The inter-rack share of `migration_bytes`.
    pub inter_rack_migration_bytes: u64,
    /// Planner-grade ghost-exchange bytes between nodes over the whole
    /// run.
    pub ghost_bytes: u64,
    /// The inter-rack share of `ghost_bytes`.
    pub inter_rack_ghost_bytes: u64,
    /// Per-node SD counts after each realized balancing epoch.
    pub lb_history: Vec<Vec<usize>>,
    /// The realized migration plan of each epoch, in epoch order.
    pub lb_plans: Vec<Vec<Move>>,
    /// One [`EpochTrace`] per realized balancing epoch.
    pub epoch_traces: Vec<EpochTrace>,
    /// Final SD ownership.
    pub final_ownership: Ownership,
    /// Final interior field, row-major over the global mesh (real runtime
    /// only; the simulator carries no numerics).
    pub field: Option<Vec<f64>>,
    /// Summed per-step errors when requested (real runtime only).
    pub error: Option<ErrorAccumulator>,
    /// Per-node memory capacities (`u64::MAX` = unbounded) when the
    /// scenario declared any — what [`RunReport::check_invariants`]
    /// replays the recorded plans against.
    pub memory_bytes: Option<Vec<u64>>,
    /// Per-SD resident footprints paired with `memory_bytes`.
    pub sd_footprint: Option<Vec<u64>>,
    /// Substrate-specific measurements.
    pub extras: RunExtras,
}

impl RunReport {
    /// Wrap a real-runtime report (with the fabric's wire statistics).
    pub fn from_dist(report: DistReport, wire_messages: u64, wire_cross_bytes: u64) -> Self {
        RunReport {
            substrate: "dist",
            makespan: report.elapsed.as_secs_f64(),
            busy: report.busy_ns.iter().map(|&ns| ns as f64 * 1e-9).collect(),
            migrations: report.migrations,
            migration_bytes: report.migration_bytes,
            inter_rack_migration_bytes: report.inter_rack_migration_bytes,
            ghost_bytes: report.ghost_bytes,
            inter_rack_ghost_bytes: report.inter_rack_ghost_bytes,
            lb_history: report.lb_history,
            lb_plans: report.lb_plans,
            epoch_traces: report.epoch_traces,
            final_ownership: report.final_ownership,
            field: Some(report.field),
            error: report.error,
            memory_bytes: None,
            sd_footprint: None,
            extras: RunExtras::Dist(DistExtras {
                elapsed: report.elapsed,
                busy_ns: report.busy_ns,
                wire_messages,
                wire_cross_bytes,
                pool_steals: report.pool_steals,
                pool_steal_fails: report.pool_steal_fails,
                pool_parks: report.pool_parks,
            }),
        }
    }

    /// Attach the scenario's memory-aware planning tables (when it
    /// declared any capacity), so [`RunReport::check_invariants`] can
    /// replay the recorded plans against them. Every substrate calls this
    /// on the report it assembles.
    pub fn with_scenario_memory(mut self, scenario: &Scenario) -> Self {
        if scenario.cluster.has_memory_caps() {
            self.memory_bytes = Some(scenario.cluster.memory_capacities());
            self.sd_footprint = Some(scenario.sd_footprints());
        }
        self
    }

    /// The real-runtime extras, if this report came from the real runtime.
    pub fn dist_extras(&self) -> Option<&DistExtras> {
        match &self.extras {
            RunExtras::Dist(d) => Some(d),
            _ => None,
        }
    }

    /// The simulator extras, if this report came from the simulator.
    pub fn sim_extras(&self) -> Option<&SimExtras> {
        match &self.extras {
            RunExtras::Sim(s) => Some(s),
            _ => None,
        }
    }

    /// The plan-only extras, if this report came from [`PlanSubstrate`].
    pub fn plan_extras(&self) -> Option<&PlanExtras> {
        match &self.extras {
            RunExtras::Plan(p) => Some(p),
            _ => None,
        }
    }

    /// Assert the cross-substrate report invariants — what the scenario
    /// smoke suite checks for every library scenario on both substrates.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        assert!(
            !self.busy.is_empty(),
            "{}: empty busy vector",
            self.substrate
        );
        assert!(
            self.busy.iter().all(|b| b.is_finite() && *b >= 0.0),
            "{}: busy vector must be finite and non-negative: {:?}",
            self.substrate,
            self.busy
        );
        assert!(
            self.makespan.is_finite() && self.makespan >= 0.0,
            "{}: makespan {} must be finite",
            self.substrate,
            self.makespan
        );
        assert_eq!(
            self.lb_history.len(),
            self.epoch_traces.len(),
            "{}: one history entry per realized epoch",
            self.substrate
        );
        assert_eq!(
            self.lb_history.len(),
            self.lb_plans.len(),
            "{}: one recorded plan per realized epoch",
            self.substrate
        );
        assert_eq!(
            self.migrations,
            self.epoch_traces.iter().map(|t| t.moves).sum::<usize>(),
            "{}: traces must cover every migration",
            self.substrate
        );
        assert_eq!(
            self.migrations,
            self.lb_plans.iter().map(Vec::len).sum::<usize>(),
            "{}: recorded plans must cover every migration",
            self.substrate
        );
        assert_eq!(
            self.migration_bytes,
            self.epoch_traces
                .iter()
                .map(|t| t.migration_bytes)
                .sum::<u64>(),
            "{}: migration bytes must equal the trace sum",
            self.substrate
        );
        assert!(
            self.inter_rack_migration_bytes <= self.migration_bytes,
            "{}: inter-rack migration share exceeds the total",
            self.substrate
        );
        assert!(
            self.inter_rack_ghost_bytes <= self.ghost_bytes,
            "{}: inter-rack ghost share exceeds the total",
            self.substrate
        );
        match &self.extras {
            RunExtras::Sim(s) => {
                assert_eq!(
                    self.ghost_bytes + self.migration_bytes,
                    s.cross_bytes,
                    "sim: ghost + migration bytes must partition the cross traffic"
                );
            }
            RunExtras::Dist(d) => {
                // wire bytes carry codec framing and the LB protocol on
                // top of the planner-grade counters
                assert!(
                    self.ghost_bytes + self.migration_bytes <= d.wire_cross_bytes,
                    "dist: planner-grade bytes ({} + {}) exceed the wire ({})",
                    self.ghost_bytes,
                    self.migration_bytes,
                    d.wire_cross_bytes
                );
            }
            // a plan-only run carries no traffic counters to cross-check
            RunExtras::Plan(_) => {}
        }
        // Memory invariant: with the scenario's capacity/footprint tables
        // attached, no ownership the run ever passed through may overflow
        // a node's capacity. Plans are single-hop and each SD moves at
        // most once per epoch, so replaying the recorded plans *backward*
        // from the final ownership visits exactly the post-epoch states
        // down to the initial partition.
        if let (Some(caps), Some(fp)) = (&self.memory_bytes, &self.sd_footprint) {
            let mut owners = self.final_ownership.owners().to_vec();
            assert_eq!(
                fp.len(),
                owners.len(),
                "{}: footprint table must cover every SD",
                self.substrate
            );
            let check = |owners: &[u32], when: &str| {
                let mut usage = vec![0u64; caps.len()];
                for (sd, &o) in owners.iter().enumerate() {
                    usage[o as usize] = usage[o as usize].saturating_add(fp[sd]);
                }
                for (node, (&used, &cap)) in usage.iter().zip(caps.iter()).enumerate() {
                    assert!(
                        used <= cap,
                        "{}: node {node} holds {used} B {when}, over its {cap} B capacity",
                        self.substrate
                    );
                }
            };
            check(&owners, "at the end of the run");
            for (epoch, moves) in self.lb_plans.iter().enumerate().rev() {
                for m in moves {
                    owners[m.sd as usize] = m.from;
                }
                check(&owners, &format!("before epoch {epoch}'s plan"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::LbSpec;

    #[test]
    fn cluster_spec_builders() {
        let u = ClusterSpec::uniform(3, 2);
        assert_eq!(u.len(), 3);
        assert!(u.nodes.iter().all(|n| n.cores == 2 && n.speed == 1.0));
        let s = ClusterSpec::speeds(&[2.0, 1.0, 0.5]);
        assert_eq!(s.speed_factors(), vec![2.0, 1.0, 0.5]);
        let chained = ClusterSpec::new().node(1, 2.0).node(4, 1.0);
        assert_eq!(chained.len(), 2);
        assert_eq!(chained.nodes[1].cores, 4);
        let cluster = chained.builder(NetSpec::Instant).build();
        assert_eq!(cluster.len(), 2);
        assert_eq!(cluster.locality(0).speed(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        ClusterSpec::new().validate();
    }

    #[test]
    #[should_panic(expected = "speed must be finite and positive")]
    fn bad_speed_rejected() {
        ClusterSpec::new().node(1, 0.0).validate();
    }

    #[test]
    #[should_panic(expected = "memory capacity must be positive")]
    fn zero_memory_capacity_rejected() {
        ClusterSpec::uniform(2, 1).with_node_memory(1, 0).validate();
    }

    #[test]
    fn memory_capacity_table_defaults_to_unbounded() {
        let spec = ClusterSpec::uniform(3, 1).with_node_memory(1, 1 << 20);
        assert!(spec.has_memory_caps());
        assert_eq!(spec.memory_capacities(), vec![u64::MAX, 1 << 20, u64::MAX]);
        assert!(!ClusterSpec::uniform(2, 1).has_memory_caps());
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "overflows its memory capacity")]
    fn initially_overflowing_partition_rejected() {
        // node 0 owns everything but is capped below one SD's footprint
        Scenario::square(16, 2.0, 4, 4)
            .on(ClusterSpec::uniform(2, 1).with_node_memory(0, 64))
            .with_partition(PartitionSpec::Explicit(vec![0; 16]))
            .validate();
    }

    #[test]
    #[should_panic(expected = "cannot hold the mesh's resident footprint")]
    fn undersized_total_capacity_rejected() {
        let sc = Scenario::square(16, 2.0, 4, 4).on(ClusterSpec::uniform(2, 1)
            .with_node_memory(0, 64)
            .with_node_memory(1, 64));
        sc.validate();
    }

    #[test]
    fn memory_aware_scenario_with_room_validates() {
        let sc = Scenario::square(16, 2.0, 4, 4)
            .on(ClusterSpec::uniform(2, 1).with_node_memory(0, 1 << 30));
        sc.validate();
        // footprints cover every SD and are at least the tile payload
        let fp = sc.sd_footprints();
        assert_eq!(fp.len(), sc.sd_grid().count());
        assert!(fp.iter().all(|&f| f >= 4 * 4 * 8));
    }

    #[test]
    fn partition_spec_realizes_all_variants() {
        let sds = SdGrid::new(4, 4, 4);
        let metis = PartitionSpec::Metis { seed: 1 }.initial_owners(&sds, 2);
        let strip = PartitionSpec::Strip.initial_owners(&sds, 2);
        assert_eq!(metis.len(), 16);
        assert_eq!(strip.len(), 16);
        let explicit = PartitionSpec::Explicit(vec![0; 16]).initial_owners(&sds, 2);
        assert_eq!(explicit, vec![0; 16]);
    }

    #[test]
    #[should_panic(expected = "outside the cluster")]
    fn explicit_partition_checks_node_range() {
        let sds = SdGrid::new(2, 2, 4);
        let _ = PartitionSpec::Explicit(vec![0, 0, 0, 7]).initial_owners(&sds, 2);
    }

    #[test]
    fn scenario_defaults_and_builders() {
        let sc = Scenario::square(16, 2.0, 4, 5)
            .on(ClusterSpec::uniform(2, 1))
            .with_net(NetSpec::Instant)
            .with_partition(PartitionSpec::Strip)
            .with_lb(LbSchedule::every(2).with_spec(LbSpec::greedy_steal(1)))
            .with_overlap(false)
            .with_record_error(true)
            .with_lb_input(LbInput::Modeled);
        sc.validate();
        assert_eq!(sc.cluster.len(), 2);
        assert!(!sc.overlap);
        assert!(sc.record_error);
        assert_eq!(sc.lb_input, LbInput::Modeled);
        let cfg = sc.dist_config();
        assert_eq!(cfg.n_steps, 5);
        assert_eq!(cfg.partition, PartitionSpec::Strip);
        assert_eq!(cfg.lb_input, LbInput::Modeled);
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn untileable_scenario_rejected() {
        Scenario::square(16, 2.0, 5, 4).validate();
    }

    #[test]
    #[should_panic(expected = "work_schedule must be sorted")]
    fn unsorted_schedule_rejected() {
        Scenario::square(16, 2.0, 4, 4)
            .with_work_schedule(vec![(4, WorkModel::Uniform), (2, WorkModel::Uniform)])
            .validate();
    }

    #[test]
    fn work_at_follows_the_schedule() {
        let sc = Scenario::square(16, 2.0, 4, 8).with_work_schedule(vec![
            (
                2,
                WorkModel::Crack {
                    y_cell: 8,
                    half_width: 2,
                    factor: 0.5,
                },
            ),
            (5, WorkModel::Uniform),
        ]);
        assert_eq!(sc.work_at(0), &WorkModel::Uniform);
        assert!(matches!(sc.work_at(3), WorkModel::Crack { .. }));
        assert_eq!(sc.work_at(6), &WorkModel::Uniform);
    }

    #[test]
    fn membership_masks_follow_the_event_timeline() {
        let events = vec![
            (2, ClusterEvent::Join { rank: 3 }),
            (4, ClusterEvent::Drain { rank: 1 }),
            (6, ClusterEvent::Fail { rank: 0 }),
        ];
        // rank 3's first event is Join: it starts inactive
        assert_eq!(initial_active(4, &events), vec![true, true, true, false]);
        assert_eq!(active_at(4, &events, 1), vec![true, true, true, false]);
        assert_eq!(active_at(4, &events, 2), vec![true, true, true, true]);
        assert_eq!(active_at(4, &events, 5), vec![true, false, true, true]);
        assert_eq!(active_at(4, &events, 6), vec![false, false, true, true]);
        // only Fail marks a rank failed; Drain does not
        assert_eq!(failed_at(4, &events, 5), vec![false; 4]);
        assert_eq!(failed_at(4, &events, 6), vec![true, false, false, false]);
        // a later Join clears the failed state (elastic replacement)
        let rejoin = vec![
            (2, ClusterEvent::Fail { rank: 0 }),
            (5, ClusterEvent::Join { rank: 0 }),
        ];
        assert_eq!(initial_active(2, &rejoin), vec![true, true]);
        assert_eq!(active_at(2, &rejoin, 3), vec![false, true]);
        assert_eq!(active_at(2, &rejoin, 5), vec![true, true]);
        assert_eq!(failed_at(2, &rejoin, 3), vec![true, false]);
        assert_eq!(failed_at(2, &rejoin, 5), vec![false, false]);
    }

    fn elastic_scenario() -> Scenario {
        Scenario::square(16, 2.0, 4, 8)
            .on(ClusterSpec::uniform(2, 1))
            .with_lb(LbSchedule::every(2).with_spec(LbSpec::repartition(
                LbSpec::greedy_steal(1),
                f64::INFINITY,
                1,
                u64::MAX,
            )))
            .with_cluster_events(vec![(3, ClusterEvent::Drain { rank: 1 })])
    }

    #[test]
    fn elastic_scenario_validates() {
        elastic_scenario().validate();
    }

    #[test]
    #[should_panic(expected = "require an LbSpec::Repartition policy")]
    fn cluster_events_require_a_repartition_policy() {
        elastic_scenario()
            .with_lb(LbSchedule::every(2).with_spec(LbSpec::greedy_steal(1)))
            .validate();
    }

    #[test]
    #[should_panic(expected = "must be sorted by step")]
    fn unsorted_cluster_events_rejected() {
        elastic_scenario()
            .with_cluster_events(vec![
                (4, ClusterEvent::Drain { rank: 1 }),
                (2, ClusterEvent::Join { rank: 1 }),
            ])
            .validate();
    }

    #[test]
    #[should_panic(expected = "outside the 2-rank cluster")]
    fn cluster_event_rank_range_checked() {
        elastic_scenario()
            .with_cluster_events(vec![(3, ClusterEvent::Fail { rank: 7 })])
            .validate();
    }

    #[test]
    #[should_panic(expected = "take effect from step 1")]
    fn cluster_event_at_step_zero_rejected() {
        elastic_scenario()
            .with_cluster_events(vec![(0, ClusterEvent::Drain { rank: 1 })])
            .validate();
    }

    #[test]
    #[should_panic(expected = "no active rank")]
    fn fully_draining_the_cluster_rejected() {
        elastic_scenario()
            .with_cluster_events(vec![
                (3, ClusterEvent::Drain { rank: 0 }),
                (3, ClusterEvent::Drain { rank: 1 }),
            ])
            .validate();
    }

    #[test]
    #[should_panic(expected = "which only joins later")]
    fn initial_partition_must_avoid_unjoined_ranks() {
        // Metis over 2 ranks places SDs on rank 1, but rank 1 only joins
        // at step 3.
        elastic_scenario()
            .with_cluster_events(vec![(3, ClusterEvent::Join { rank: 1 })])
            .validate();
    }

    #[test]
    fn modeled_busy_is_deterministic_and_speed_scaled() {
        let sds = SdGrid::new(4, 1, 4);
        let owners = vec![0u32, 0, 1, 1];
        let busy = modeled_busy(&sds, &owners, 2, &WorkModel::Uniform, &[2.0, 1.0], 1e-9);
        // node 0 is twice as fast over the same two SDs
        assert!((busy[1] / busy[0] - 2.0).abs() < 1e-12);
        let again = modeled_busy(&sds, &owners, 2, &WorkModel::Uniform, &[2.0, 1.0], 1e-9);
        assert_eq!(busy, again);
    }

    #[test]
    fn scenario_runs_on_the_real_substrate() {
        let report = Scenario::square(16, 2.0, 4, 3)
            .on(ClusterSpec::uniform(2, 1))
            .with_net(NetSpec::Instant)
            .run_dist();
        report.check_invariants();
        assert_eq!(report.substrate, "dist");
        assert_eq!(report.busy.len(), 2);
        assert!(report.field.is_some());
        assert!(report.ghost_bytes > 0, "two nodes must exchange ghosts");
        let extras = report.dist_extras().expect("dist extras");
        assert!(extras.wire_messages > 0);
    }
}
