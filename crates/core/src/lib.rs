//! # nlheat-core — distributed nonlocal solver + load balancing
//!
//! The primary contribution of Gadikar, Diehl & Jha 2021, rebuilt in Rust:
//!
//! * [`shared`] — the shared-memory asynchronous solver (§8.2): SDs as unit
//!   tasks futurized over a work-stealing pool.
//! * [`dist`] — the fully distributed solver (§6): per-locality drivers,
//!   ghost-zone parcels, case-2 computation overlapped with communication
//!   and case-1 computation gated on ghost futures (§6.3), plus online load
//!   balancing epochs.
//! * [`balance`] — **Algorithm 1**: busy-time-derived node power (eq. 8),
//!   expected SD counts (eq. 10), load imbalance (eq. 9), the
//!   data-dependency tree with topological ordering (Fig. 7), and
//!   contiguity-preserving uniform SD borrowing (Fig. 6) — one strategy
//!   behind the pluggable `LbPolicy`/`LbSpec` layer that also ships
//!   diffusion, greedy-steal and adaptive-λ policies.
//! * [`ownership`] — the SD→node ownership map shared by all of the above.
//! * [`workload`] — heterogeneity models (per-node speed, per-SD work
//!   factors such as the crack scenario of §7).

pub mod balance;
pub mod dist;
pub mod ownership;
pub mod scenario;
pub mod shared;
pub mod workload;

/// The named library scenarios (`scenario::library` under its working
/// name): paper baseline, lopsided two-rack redistribution, propagating
/// crack, heterogeneous cluster, incast duplex.
pub use scenario::library as scenarios;

pub use balance::{
    plan_rebalance, LbNetwork, LbPolicy, LbSchedule, LbSpec, LoadMetrics, MigrationPlan, Move,
};
pub use dist::{run_distributed, DistConfig, DistReport};
pub use ownership::Ownership;
pub use scenario::sweep::{
    Axis, JsonlSink, MemorySink, RunRecord, ScenarioSweep, SweepSink, SweepSummary,
};
pub use scenario::{
    ClusterSpec, DistSubstrate, LbInput, PartitionSpec, RunExtras, RunReport, Scenario, Substrate,
    VirtualNode,
};
pub use shared::{SharedConfig, SharedReport, SharedSolver};
pub use workload::WorkModel;
