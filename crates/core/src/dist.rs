//! Fully distributed asynchronous solver with online load balancing.
//!
//! Implements §6 of the paper end to end: SDs distributed over localities
//! by the mesh partitioner (§6.2), ghost zones exchanged as parcels, the
//! case-2 (foreign-independent) computation launched immediately while
//! case-1 computation is a dataflow continuation on the ghost futures
//! (§6.3, Fig. 5) — so communication hides behind computation — and, every
//! [`LbSchedule::period`] steps, a full load-balancing epoch: busy-time
//! gather, plan on locality 0 via the configured [`LbSpec`] policy
//! (Algorithm 1 by default), broadcast, SD migration, counter reset (§7).
//!
//! There is deliberately **no global barrier between timesteps**: tags
//! carry the step index, so a fast node may run ahead and its messages are
//! stashed by the receiver's rendezvous table until expected — the
//! asynchronous pipelining an AMT runtime buys.

pub use crate::balance::LbSpec;
use crate::balance::{compute_metrics, EpochTrace, LbNetwork, LbSchedule, Move, SdGraph};
use crate::ownership::Ownership;
use crate::scenario::{
    active_at, failed_at, modeled_busy, nominal_sec_per_dp, LbInput, PartitionSpec,
};
use crate::workload::WorkModel;
use bytes::{Bytes, BytesMut};
use nlheat_amt::cluster::{Cluster, ClusterBuilder};
use nlheat_amt::codec::{decode_f64_rows, encode_f64_rows, Wire};
use nlheat_amt::future::{when_all, Future};
use nlheat_amt::locality::Locality;
use nlheat_amt::parcel::tag;
use nlheat_mesh::{
    build_halo_plan, split_cases, CaseSplit, HaloPlan, PatchSource, Rect, SdGrid, SdId, Stencil,
    Tile,
};
use nlheat_model::{ErrorAccumulator, ProblemParts, ProblemSpec};
use nlheat_netmodel::{LinkClass, NetSpec};
use nlheat_partition::patch_wire_bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parcel tag classes of the solver protocol.
const CLASS_GHOST: u8 = 1;
const CLASS_LBSTAT: u8 = 2;
const CLASS_LBPLAN: u8 = 3;
const CLASS_MIGRATE: u8 = 4;

/// Configuration of a distributed run — the low-level execution config of
/// the real runtime. Prefer describing experiments with
/// [`crate::scenario::Scenario`] (which compiles into this via
/// [`crate::scenario::Scenario::dist_config`]); `DistConfig` remains the
/// compatibility layer for code that drives the runtime directly.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// The physical problem (manufactured source and initial condition).
    pub spec: ProblemSpec,
    /// SD side length in cells.
    pub sd_size: usize,
    /// Timesteps.
    pub n_steps: usize,
    /// Initial distribution method (shared with the simulator).
    pub partition: PartitionSpec,
    /// Case-1/case-2 overlap (§6.3); `false` waits for all ghosts before
    /// computing anything (ablation A2).
    pub overlap: bool,
    /// Optional load balancing.
    pub lb: Option<LbSchedule>,
    /// Record the eq.-7 error every step.
    pub record_error: bool,
    /// Per-SD work factors (crack scenario etc.).
    pub work: WorkModel,
    /// Time-varying workload: `(from_step, model)` switch points, sorted
    /// by step; the last entry with `from_step ≤ s` overrides `work` at
    /// step `s`. The same propagating-crack schedule the simulator
    /// executes — the work factor is emulated by kernel repetition, so
    /// the numerics stay bit-exact while the busy times shift.
    pub work_schedule: Vec<(usize, WorkModel)>,
    /// Elastic cluster-membership timeline (`(from_step, event)`, sorted
    /// by step; see [`crate::scenario::ClusterEvent`]). Events change the
    /// planner's view — the active-rank mask on locality 0's
    /// [`LbNetwork`] and the failure mask the ghost counters honour —
    /// never the execution: every locality keeps computing the SDs it
    /// owns until a replan evacuates them, so the field stays bit-exact.
    pub cluster_events: Vec<(usize, crate::scenario::ClusterEvent)>,
    /// Network cost model for the cluster fabric — the same [`NetSpec`]
    /// the simulator consumes, so one configuration describes both
    /// substrates. Applied by [`DistConfig::cluster`]; a cluster built
    /// directly via `ClusterBuilder` keeps whatever model it was given.
    pub net: NetSpec,
    /// What the balancing policies plan from: measured wall-clock busy
    /// times (the paper's mode) or deterministic modeled busy times
    /// ([`LbInput::Modeled`], the cross-substrate parity mode).
    pub lb_input: LbInput,
    /// Decompose each SD's per-step compute into row-band tile tasks on
    /// the worker pool so idle workers steal pieces of a straggler SD
    /// *within* a timestep (intra-epoch balancing; the LB policies only
    /// move SD ownership *between* epochs). The row-band split is
    /// deterministic and every cell is written exactly once from `curr`,
    /// so the field stays bit-identical to the unchunked path.
    pub intra_step_stealing: bool,
    /// Per-locality memory capacities in bytes (`None` = unbounded),
    /// indexed by locality id. Empty = memory-blind planning (the
    /// historical behaviour). When any cap is set the driver attaches the
    /// capacities and the per-SD resident footprints to its [`LbNetwork`]
    /// so memory-aware policies gate destinations on them.
    pub memory_bytes: Vec<Option<u64>>,
}

impl DistConfig {
    /// Defaults mirroring the paper's distributed experiments.
    pub fn new(n: usize, eps_mult: f64, sd_size: usize, n_steps: usize) -> Self {
        DistConfig {
            spec: ProblemSpec::square(n, eps_mult),
            sd_size,
            n_steps,
            partition: PartitionSpec::Metis { seed: 1 },
            overlap: true,
            lb: None,
            record_error: false,
            work: WorkModel::Uniform,
            work_schedule: Vec::new(),
            cluster_events: Vec::new(),
            net: NetSpec::Instant,
            lb_input: LbInput::Measured,
            intra_step_stealing: false,
            memory_bytes: Vec::new(),
        }
    }

    /// The workload in effect at `step`.
    pub fn work_at(&self, step: usize) -> &WorkModel {
        crate::scenario::work_at(&self.work, &self.work_schedule, step)
    }

    /// A [`ClusterBuilder`] pre-configured with this config's network
    /// model, so examples and tests select the transport in one place:
    ///
    /// ```
    /// use nlheat_core::dist::{run_distributed, DistConfig};
    /// use nlheat_netmodel::NetSpec;
    ///
    /// let mut cfg = DistConfig::new(16, 2.0, 4, 2);
    /// cfg.net = NetSpec::shared(1e-6, 10e9);
    /// let cluster = cfg.cluster().uniform(2, 1).build();
    /// let _report = run_distributed(&cluster, &cfg);
    /// ```
    pub fn cluster(&self) -> ClusterBuilder {
        ClusterBuilder::new().net(self.net)
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Wall time of the whole run (all localities).
    pub elapsed: Duration,
    /// Summed per-step errors when requested.
    pub error: Option<ErrorAccumulator>,
    /// Final interior field, row-major over the global mesh.
    pub field: Vec<f64>,
    /// Final SD ownership.
    pub final_ownership: Ownership,
    /// Per-locality busy nanoseconds (since the last counter reset).
    pub busy_ns: Vec<u64>,
    /// Total SDs migrated by load balancing.
    pub migrations: usize,
    /// Planner-grade migration payload bytes (sum of the realized plans'
    /// [`EpochTrace::migration_bytes`] — the same `patch_wire_bytes`
    /// accounting the simulator charges, so identical plans produce
    /// identical counters on both substrates).
    pub migration_bytes: u64,
    /// The inter-rack share of `migration_bytes` (per the configured
    /// [`NetSpec`]'s link classes; 0 for rack-less models).
    pub inter_rack_migration_bytes: u64,
    /// Planner-grade ghost-exchange bytes between localities over the
    /// whole run, counted per foreign halo patch with the same
    /// `patch_wire_bytes` formula the simulator charges (the wire
    /// additionally carries an 8-byte codec length per parcel).
    pub ghost_bytes: u64,
    /// The inter-rack share of `ghost_bytes`.
    pub inter_rack_ghost_bytes: u64,
    /// Per-node SD counts after each balancing epoch.
    pub lb_history: Vec<Vec<usize>>,
    /// The realized migration plan of each epoch, in epoch order (empty
    /// plans are skipped, matching `lb_history`).
    pub lb_plans: Vec<Vec<Move>>,
    /// One [`EpochTrace`] per realized balancing epoch (recorded on
    /// locality 0, in epoch order): plan size, migration bytes, and the
    /// recurring ghost-traffic cut before/after — the per-epoch data
    /// A8/A9-style plots are drawn from.
    pub epoch_traces: Vec<EpochTrace>,
    /// Per-locality successful task steals in the worker pools (includes
    /// injector grabs; peer-to-peer steals are what intra-step stealing
    /// adds on a straggler step).
    pub pool_steals: Vec<u64>,
    /// Per-locality dry victim scans (steal attempts that found nothing).
    pub pool_steal_fails: Vec<u64>,
    /// Per-locality worker park events (idle workers going to sleep).
    pub pool_parks: Vec<u64>,
}

/// Memory-aware planning tables: per-locality capacities (`u64::MAX` =
/// unbounded) and per-SD resident footprints.
type MemoryTables = (Arc<Vec<u64>>, Arc<Vec<u64>>);

/// Ownership-independent, cluster-wide setup shared by all drivers.
struct Setup {
    cfg: DistConfig,
    parts: ProblemParts,
    sds: SdGrid,
    /// Halo plan per SD (geometry only — never changes).
    plans: Vec<HaloPlan>,
    /// Reverse index: for each source SD, the `(destination SD, patch
    /// index)` pairs that read from it.
    reverse: Vec<Vec<(SdId, u16)>>,
    /// The SD adjacency / halo-volume graph derived from `plans` — the
    /// planner's view of the recurring ghost traffic the real parcels
    /// produce.
    sd_graph: Arc<SdGraph>,
    initial_owners: Vec<u32>,
    /// Memory-aware planning tables, built once when any locality declares
    /// a cap.
    memory: Option<MemoryTables>,
    n_nodes: u32,
    /// Per-locality speed factors (from the cluster), for modeled busy.
    speeds: Vec<f64>,
    /// Nominal per-DP seconds of this problem's stencil — the scale the
    /// modeled planning inputs share with the simulator's calibrated cost
    /// model.
    sec_per_dp: f64,
}

impl Setup {
    fn build(cfg: DistConfig, n_nodes: u32, speeds: Vec<f64>) -> Self {
        let parts = cfg.spec.build();
        let grid = parts.grid;
        let sds = SdGrid::tile_mesh(grid.nx as usize, grid.ny as usize, cfg.sd_size);
        // Reject an unpriceable work model on the caller's thread, not on
        // a driver thread mid-run (where the panic would deadlock the
        // other localities).
        cfg.work.validate(&sds);
        for (_, model) in &cfg.work_schedule {
            model.validate(&sds);
        }
        let plans: Vec<HaloPlan> = sds
            .ids()
            .map(|id| build_halo_plan(&sds, grid.halo, id))
            .collect();
        let mut reverse: Vec<Vec<(SdId, u16)>> = vec![Vec::new(); sds.count()];
        for plan in &plans {
            for (idx, patch) in plan.patches.iter().enumerate() {
                if let PatchSource::Sd(src) = patch.source {
                    reverse[src as usize].push((plan.sd, idx as u16));
                }
            }
        }
        let initial_owners = cfg.partition.initial_owners(&sds, n_nodes);
        let sd_graph = Arc::new(SdGraph::from_plans(&sds, &plans));
        let sec_per_dp = nominal_sec_per_dp(Stencil::build(grid.h, grid.eps).len());
        let memory = cfg.memory_bytes.iter().any(Option::is_some).then(|| {
            assert_eq!(
                cfg.memory_bytes.len(),
                n_nodes as usize,
                "memory_bytes must name every locality"
            );
            let caps: Vec<u64> = cfg
                .memory_bytes
                .iter()
                .map(|c| c.unwrap_or(u64::MAX))
                .collect();
            (Arc::new(caps), Arc::new(sd_graph.footprints()))
        });
        Setup {
            cfg,
            parts,
            sds,
            plans,
            reverse,
            sd_graph,
            initial_owners,
            memory,
            n_nodes,
            speeds,
            sec_per_dp,
        }
    }
}

/// Double-buffered SD storage shared between the driver and its tasks.
struct SdCell {
    curr: RwLock<Tile>,
    next: Mutex<Tile>,
}

/// Raw pointer into an SD's `next` buffer, captured once per step so the
/// intra-step row-band tasks can write their pairwise-disjoint rows
/// without serializing on the tile lock. The safety argument lives at the
/// capture site in the step loop.
#[derive(Clone, Copy)]
struct NextPtr(*mut f64);
// SAFETY: the pointer is only dereferenced by chunk tasks writing
// pairwise-disjoint regions, all of which complete before the step
// barrier releases the buffer for the swap.
unsafe impl Send for NextPtr {}
unsafe impl Sync for NextPtr {}

/// Split `rect` into horizontal bands of height ≤ `band`, top to bottom.
/// Deterministic in the inputs and an exact cover of `rect`, so chunked
/// execution visits every cell exactly once in a schedule-independent
/// decomposition.
fn row_bands(rect: &Rect, band: i64) -> Vec<Rect> {
    debug_assert!(band >= 1);
    let mut out = Vec::with_capacity(((rect.h + band - 1) / band).max(0) as usize);
    let mut y = rect.y0;
    while y < rect.y1() {
        let h = band.min(rect.y1() - y);
        out.push(Rect::new(rect.x0, y, rect.w, h));
        y += h;
    }
    out
}

/// One owned SD with its task-facing state.
struct NodeSd {
    origin: (i64, i64),
    cell: Arc<SdCell>,
}

/// Ownership-dependent per-SD communication info (rebuilt after LB).
struct SdComm {
    /// `(patch index, destination rect)` of foreign-sourced halo patches.
    foreign: Vec<(u16, Rect)>,
    split: CaseSplit,
}

/// One outgoing ghost parcel, precomputed when ownership changes so the
/// per-step send loop just replays the list (records are grouped by
/// ascending source SD; the per-step loop holds one read lock per group).
struct SendRec {
    /// Source SD on this locality.
    src_sd: SdId,
    /// Owner of the destination SD.
    dst_owner: u32,
    dst_sd: SdId,
    /// Patch index within the destination's halo plan.
    pidx: u16,
    /// The patch in the source SD's local coordinates.
    src_rect: Rect,
    /// Planner-grade wire bytes of the patch.
    wire: u64,
    /// Whether the link to `dst_owner` crosses a rack boundary.
    inter_rack: bool,
}

/// Per-node report returned by each driver.
struct NodeReport {
    sd_fields: Vec<(SdId, Vec<f64>)>,
    error_partials: Vec<f64>,
    busy_ns: u64,
    in_migrations: usize,
    /// Planner-grade ghost bytes this locality *sent* to other localities.
    ghost_bytes: u64,
    inter_rack_ghost_bytes: u64,
    lb_counts: Vec<Vec<usize>>,
    lb_plans: Vec<Vec<Move>>,
    lb_traces: Vec<EpochTrace>,
    /// Worker-pool steal counters of this locality over the whole run.
    pool_steals: u64,
    pool_steal_fails: u64,
    pool_parks: u64,
}

/// Run the distributed solver on `cluster`.
///
/// # Panics
/// Panics if the mesh does not tile into SDs or the configuration is
/// internally inconsistent.
pub fn run_distributed(cluster: &Cluster, cfg: &DistConfig) -> DistReport {
    // Guard the config/cluster seam: if the config names a non-default
    // network model, the cluster must actually have been built with it
    // (via `cfg.cluster()`), or the run would silently measure a
    // different transport than the paired simulation.
    assert!(
        cfg.net == NetSpec::Instant || cluster.net_spec() == &cfg.net,
        "DistConfig.net is {:?} but the cluster was built with {:?}; \
         build the cluster with DistConfig::cluster() so both agree",
        cfg.net,
        cluster.net_spec()
    );
    // Reject a degenerate policy parameter here (covers direct field
    // assignment that bypassed `with_spec`): a panic inside the locality-0
    // driver at the first LB epoch would leave the other localities
    // blocked on the plan rendezvous forever.
    if let Some(lb) = &cfg.lb {
        lb.validate();
    }
    let n_nodes = cluster.len() as u32;
    let speeds: Vec<f64> = cluster.localities().iter().map(|l| l.speed()).collect();
    let setup = Arc::new(Setup::build(cfg.clone(), n_nodes, speeds));
    let t0 = Instant::now();
    let reports = cluster.run(|loc| driver(loc, setup.clone()));
    let elapsed = t0.elapsed();

    // Assemble the global field.
    let (nx, ny) = setup.sds.mesh_extent();
    let mut field = vec![0.0; (nx * ny) as usize];
    let mut final_owners = vec![0u32; setup.sds.count()];
    for (node, report) in reports.iter().enumerate() {
        for (sd, values) in &report.sd_fields {
            final_owners[*sd as usize] = node as u32;
            let origin = setup.sds.origin(*sd);
            let mut it = values.iter();
            for lj in 0..setup.sds.sd {
                for li in 0..setup.sds.sd {
                    field[((origin.1 + lj) * nx + origin.0 + li) as usize] =
                        *it.next().expect("field size");
                }
            }
        }
    }
    // Sum error partials across nodes per step.
    let error = cfg.record_error.then(|| {
        let mut acc = ErrorAccumulator::new();
        for k in 0..cfg.n_steps {
            acc.push(reports.iter().map(|r| r.error_partials[k]).sum());
        }
        acc
    });
    let migrations = reports.iter().map(|r| r.in_migrations).sum();
    let lb_history = reports
        .iter()
        .map(|r| r.lb_counts.clone())
        .find(|h| !h.is_empty())
        .unwrap_or_default();
    let epoch_traces = reports
        .iter()
        .map(|r| r.lb_traces.clone())
        .find(|t| !t.is_empty())
        .unwrap_or_default();
    let lb_plans = reports
        .iter()
        .map(|r| r.lb_plans.clone())
        .find(|p| !p.is_empty())
        .unwrap_or_default();
    DistReport {
        elapsed,
        error,
        field,
        final_ownership: Ownership::new(setup.sds, final_owners, n_nodes),
        busy_ns: reports.iter().map(|r| r.busy_ns).collect(),
        migrations,
        migration_bytes: epoch_traces.iter().map(|t| t.migration_bytes).sum(),
        inter_rack_migration_bytes: epoch_traces
            .iter()
            .map(|t| t.inter_rack_migration_bytes)
            .sum(),
        ghost_bytes: reports.iter().map(|r| r.ghost_bytes).sum(),
        inter_rack_ghost_bytes: reports.iter().map(|r| r.inter_rack_ghost_bytes).sum(),
        lb_history,
        lb_plans,
        epoch_traces,
        pool_steals: reports.iter().map(|r| r.pool_steals).collect(),
        pool_steal_fails: reports.iter().map(|r| r.pool_steal_fails).collect(),
        pool_parks: reports.iter().map(|r| r.pool_parks).collect(),
    }
}

/// Serialize `rect` of `tile` into a wire payload, streaming the strided
/// rows straight into the buffer (no intermediate `Vec<f64>`). The buffer
/// is sized exactly, so encoding is one allocation and `rect.h + 1`
/// memcpys.
fn pack_tile_rect(tile: &Tile, rect: &Rect) -> Bytes {
    let mut buf = BytesMut::with_capacity(rect.area() as usize * 8 + 8);
    encode_f64_rows(rect.area() as usize, tile.rect_rows(rect), &mut buf);
    buf.freeze()
}

#[allow(clippy::too_many_lines)]
fn driver(loc: Arc<Locality>, setup: Arc<Setup>) -> NodeReport {
    let me = loc.id();
    let cfg = &setup.cfg;
    let sds = setup.sds;
    let halo = setup.parts.grid.halo;
    let dt = setup.parts.dt;
    let kernel = Arc::new(setup.parts.kernel.clone());
    let kernel_plan = Arc::new(kernel.plan(sds.sd + 2 * halo));
    let source = setup.parts.manufactured.source_fn();
    let manufactured = setup.parts.manufactured.clone();

    let mut owners = setup.initial_owners.clone();
    let mut states: HashMap<SdId, NodeSd> = HashMap::new();
    for sd in sds.ids() {
        if owners[sd as usize] != me {
            continue;
        }
        let origin = sds.origin(sd);
        let mut curr = Tile::new(sds.sd, halo);
        for lj in 0..sds.sd {
            for li in 0..sds.sd {
                curr.set(li, lj, manufactured.initial(origin.0 + li, origin.1 + lj));
            }
        }
        states.insert(
            sd,
            NodeSd {
                origin,
                cell: Arc::new(SdCell {
                    curr: RwLock::new(curr),
                    next: Mutex::new(Tile::new(sds.sd, halo)),
                }),
            },
        );
    }

    let mut comm: HashMap<SdId, SdComm> = HashMap::new();
    let mut comm_dirty = true;
    // Tiles reclaimed from migrated-away SDs, reused (zeroed) for incoming
    // migrations so steady-state balancing stops allocating tile pairs.
    let mut tile_pool: Vec<Tile> = Vec::new();
    let mut error_partials = Vec::with_capacity(cfg.n_steps);
    let mut in_migrations = 0usize;
    let mut lb_counts: Vec<Vec<usize>> = Vec::new();
    let mut lb_plans: Vec<Vec<Move>> = Vec::new();
    let mut lb_traces: Vec<EpochTrace> = Vec::new();
    // Planner-grade ghost-traffic counters (what this locality sends):
    // per foreign patch the same `patch_wire_bytes` the simulator charges
    // and the SdGraph weighs, so both substrates' counters agree under
    // identical ownership sequences.
    let mut ghost_bytes = 0u64;
    let mut inter_rack_ghost_bytes = 0u64;
    // Ghost-stall accounting: each step's worst ghost-arrival delay
    // (wall time from task spawn to the case-1 continuation firing),
    // accumulated per balancing window — the adaptive-μ feedback signal.
    let step_ghost_wait = Arc::new(AtomicU64::new(0));
    let mut window_ghost_ns = 0u64;
    let spawner = loc.spawner();

    // Locality 0 plans every epoch through one policy instance, kept
    // alive across epochs so stateful policies (the adaptive-λ decorator)
    // can learn from the measured migration stalls.
    let mut policy = if me == 0 {
        cfg.lb.as_ref().map(|lb| lb.spec.build())
    } else {
        None
    };
    // The planning view: the fabric's CommCost plus the SD adjacency /
    // halo-volume graph of the *real* halo plans, so μ-weighted policies
    // price the recurring parcels this driver sends every step (to within
    // the constant framing word `patch_wire_bytes` documents).
    let mut lb_net =
        LbNetwork::for_sd_tiles(&cfg.net, sds.cells_per_sd()).with_sd_graph(setup.sd_graph.clone());
    if let Some((caps, footprints)) = &setup.memory {
        lb_net = lb_net.with_memory(caps.clone(), footprints.clone());
    }
    // Wall time this locality spent in the previous epoch's migration
    // exchange (gathered with the busy times as the adaptive-λ stall
    // signal) and, on locality 0, the length of the previous window.
    let mut prev_stall_ns = 0u64;
    let mut prev_window_secs: Option<f64> = None;
    let mut window_t0 = Instant::now();

    // The owned-SD list and outgoing send records change only when a
    // migration epoch rewrites ownership, so they are rebuilt together
    // with the per-SD comm info under the `comm_dirty` flag instead of
    // being rederived every step.
    let mut owned: Vec<SdId> = Vec::new();
    let mut send_recs: Vec<SendRec> = Vec::new();
    for step in 0..cfg.n_steps {
        if comm_dirty {
            comm.clear();
            owned = states.keys().copied().collect();
            owned.sort_unstable();
            for &sd in &owned {
                let plan = &setup.plans[sd as usize];
                let foreign: Vec<(u16, Rect)> = plan
                    .patches
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, p)| match p.source {
                        PatchSource::Sd(src) if owners[src as usize] != me => {
                            Some((idx as u16, p.dst_rect))
                        }
                        _ => None,
                    })
                    .collect();
                let split = split_cases(sds.sd, halo, plan, |n| owners[n as usize] != me);
                comm.insert(sd, SdComm { foreign, split });
            }
            send_recs.clear();
            for &sd in &owned {
                for &(dst_sd, pidx) in &setup.reverse[sd as usize] {
                    let dst_owner = owners[dst_sd as usize];
                    if dst_owner == me {
                        continue;
                    }
                    let patch = &setup.plans[dst_sd as usize].patches[pidx as usize];
                    send_recs.push(SendRec {
                        src_sd: sd,
                        dst_owner,
                        dst_sd,
                        pidx,
                        src_rect: patch.src_rect,
                        wire: patch_wire_bytes(patch.dst_rect.area()),
                        inter_rack: lb_net.comm.link_class(me, dst_owner) == LinkClass::InterRack,
                    });
                }
            }
            comm_dirty = false;
        }

        // --- 1. local halo fill (same-node neighbours: plain copies) ---
        for &sd in &owned {
            let dst_cell = states[&sd].cell.clone();
            let mut dst = dst_cell.curr.write();
            for patch in &setup.plans[sd as usize].patches {
                if let PatchSource::Sd(src) = patch.source {
                    if owners[src as usize] == me {
                        let src_cell = states[&src].cell.clone();
                        let src_tile = src_cell.curr.read();
                        dst.copy_rect_from(&src_tile, &patch.src_rect, &patch.dst_rect);
                    }
                }
            }
        }

        // --- 2. sends: scatter ghost data to foreign-owned readers ---
        // (replays the precomputed records; one curr read lock per source
        // SD, exactly like the per-step scan this replaces)
        //
        // Failure mask of this step: parcels to or from a fail-stopped
        // rank still flow (the solver's numerics are sacred) but stop
        // counting toward the planner-grade ghost counters — a failed
        // rank's in-flight contributions are lost to the application.
        let failed_now = (!cfg.cluster_events.is_empty())
            .then(|| failed_at(setup.n_nodes as usize, &cfg.cluster_events, step));
        let mut rec_i = 0;
        while rec_i < send_recs.len() {
            let src_sd = send_recs[rec_i].src_sd;
            let src_tile = states[&src_sd].cell.curr.read();
            while let Some(rec) = send_recs.get(rec_i).filter(|r| r.src_sd == src_sd) {
                let counted = failed_now
                    .as_ref()
                    .is_none_or(|f| !f[me as usize] && !f[rec.dst_owner as usize]);
                if counted {
                    ghost_bytes += rec.wire;
                    if rec.inter_rack {
                        inter_rack_ghost_bytes += rec.wire;
                    }
                }
                let payload = pack_tile_rect(&src_tile, &rec.src_rect);
                loc.send(
                    rec.dst_owner,
                    tag(CLASS_GHOST, step as u64, rec.dst_sd as u64, rec.pidx as u64),
                    payload,
                );
                rec_i += 1;
            }
        }

        // --- 3. spawn compute tasks (case 2 immediately, case 1 gated) ---
        let t = step as f64 * dt;
        let ghost_t0 = Instant::now();
        let work_now = cfg.work_at(step);
        let mut step_futures: Vec<Future<()>> = Vec::new();
        // Intra-step stealing: chop each SD's compute into row bands of
        // this height and spawn every band as its own pool task, so idle
        // workers steal pieces of a straggler SD *within* the timestep.
        // The band height is a function of the config alone (never of
        // timing), the bands partition the same cell set, and each cell
        // is computed from the same `curr` snapshot with identical
        // arithmetic — so the field is bit-identical to the unchunked
        // path no matter which worker runs which band.
        let band = (sds.sd / (2 * loc.pool().n_workers() as i64)).max(1);
        // Futures of ghost-gated band tasks. Those are spawned from
        // inside parcel continuations — after `step_futures` is sealed —
        // so they are collected here and drained for a second barrier
        // once `when_all(step_futures)` guarantees every continuation
        // (and thus every spawn) has run.
        let deferred_futs: Arc<Mutex<Vec<Future<()>>>> = Arc::new(Mutex::new(Vec::new()));
        for &sd in &owned {
            let unit = &states[&sd];
            let info = &comm[&sd];
            let ghost_futs: Vec<Future<Bytes>> = info
                .foreign
                .iter()
                .map(|&(pidx, _)| loc.expect(tag(CLASS_GHOST, step as u64, sd as u64, pidx as u64)))
                .collect();
            // The work factor in effect *now* (the schedule may have
            // switched models): emulated by kernel repetition, so the
            // numerics stay bit-exact while the busy time shifts.
            let repeats = work_now.repeats(&sds, sd, loc.speed());
            if cfg.intra_step_stealing {
                // One raw pointer to this SD's next buffer per step (the
                // swap below rotates the tiles between the lock slots, so
                // the pointer cannot be cached across steps). Band tasks
                // write through it lock-free; holding the mutex per band
                // would serialize exactly the compute we are splitting.
                let next_ptr = NextPtr(unit.cell.next.lock().data_mut().as_mut_ptr());
                let make_chunk = |rect: Rect| {
                    let cell = unit.cell.clone();
                    let kernel = kernel.clone();
                    let plan = kernel_plan.clone();
                    let source = source.clone();
                    let origin = unit.origin;
                    move || {
                        // bind the wrapper, not its field: edition-2021
                        // disjoint capture would otherwise move the bare
                        // `*mut f64` into the closure, which is !Send
                        let next = next_ptr;
                        let curr = cell.curr.read();
                        // SAFETY: the bands of one step are pairwise
                        // disjoint, `next` shares `curr`'s geometry, and
                        // the step barriers below complete before the
                        // swap reads the written cells.
                        unsafe {
                            kernel.apply_region_blocked_raw(
                                &curr, next.0, &rect, &plan, origin, t, dt, &source, repeats,
                            );
                        }
                    }
                };
                if info.foreign.is_empty() {
                    for r in row_bands(&Rect::new(0, 0, sds.sd, sds.sd), band) {
                        step_futures.push(spawner.async_call(make_chunk(r)));
                    }
                    continue;
                }
                let dst_rects: Vec<Rect> = info.foreign.iter().map(|&(_, r)| r).collect();
                let cell_for_unpack = unit.cell.clone();
                let unpack = move |payloads: Vec<Bytes>| {
                    let mut curr = cell_for_unpack.curr.write();
                    for (mut payload, rect) in payloads.into_iter().zip(dst_rects) {
                        decode_f64_rows(&mut payload, curr.rect_rows_mut(&rect))
                            .expect("corrupt ghost payload");
                    }
                };
                let ghost_wait = step_ghost_wait.clone();
                let gated: Vec<Rect> = if cfg.overlap {
                    if !info.split.case2.is_empty() {
                        for r in row_bands(&info.split.case2, band) {
                            step_futures.push(spawner.async_call(make_chunk(r)));
                        }
                    }
                    info.split
                        .case1
                        .iter()
                        .flat_map(|r| row_bands(r, band))
                        .collect()
                } else {
                    row_bands(&Rect::new(0, 0, sds.sd, sds.sd), band)
                };
                let chunk_tasks: Vec<_> = gated.into_iter().map(&make_chunk).collect();
                let deferred = deferred_futs.clone();
                let spawn_in = spawner.clone();
                step_futures.push(when_all(ghost_futs).then(&spawner, move |payloads| {
                    ghost_wait.fetch_max(ghost_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    unpack(payloads);
                    let mut futs = deferred.lock();
                    for task in chunk_tasks {
                        futs.push(spawn_in.async_call(task));
                    }
                }));
                continue;
            }
            let make_task = |rects: Vec<Rect>| {
                let cell = unit.cell.clone();
                let kernel = kernel.clone();
                let plan = kernel_plan.clone();
                let source = source.clone();
                let origin = unit.origin;
                move || {
                    let curr = cell.curr.read();
                    let mut next = cell.next.lock();
                    for rect in &rects {
                        kernel.apply_region_blocked(
                            &curr, &mut next, rect, &plan, origin, t, dt, &source, repeats,
                        );
                    }
                }
            };
            if info.foreign.is_empty() {
                // fully local SD: one immediate task over the interior
                let task = make_task(vec![Rect::new(0, 0, sds.sd, sds.sd)]);
                step_futures.push(spawner.async_call(task));
                continue;
            }
            let dst_rects: Vec<Rect> = info.foreign.iter().map(|&(_, r)| r).collect();
            let cell_for_unpack = unit.cell.clone();
            let unpack = move |payloads: Vec<Bytes>| {
                let mut curr = cell_for_unpack.curr.write();
                for (mut payload, rect) in payloads.into_iter().zip(dst_rects) {
                    // straight into the padded tile: no intermediate Vec
                    decode_f64_rows(&mut payload, curr.rect_rows_mut(&rect))
                        .expect("corrupt ghost payload");
                }
            };
            // Record the worst ghost-arrival delay of the step (wall time
            // until the gated continuation fires) — the μ feedback signal.
            let ghost_wait = step_ghost_wait.clone();
            if cfg.overlap {
                // case 2 now, case 1 when the ghosts are in
                if !info.split.case2.is_empty() {
                    let task = make_task(vec![info.split.case2]);
                    step_futures.push(spawner.async_call(task));
                }
                let case1_task = make_task(info.split.case1.clone());
                step_futures.push(when_all(ghost_futs).then(&spawner, move |payloads| {
                    ghost_wait.fetch_max(ghost_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    unpack(payloads);
                    case1_task();
                }));
            } else {
                // ablation: everything waits for the ghosts
                let task = make_task(vec![Rect::new(0, 0, sds.sd, sds.sd)]);
                step_futures.push(when_all(ghost_futs).then(&spawner, move |payloads| {
                    ghost_wait.fetch_max(ghost_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    unpack(payloads);
                    task();
                }));
            }
        }
        when_all(step_futures).get();
        // Second barrier for stealing mode: every ghost continuation has
        // now run, so `deferred_futs` holds the complete set of gated
        // band-task futures (empty when stealing is off or all SDs were
        // fully local — `when_all` of nothing is immediately ready).
        let deferred = std::mem::take(&mut *deferred_futs.lock());
        when_all(deferred).get();
        window_ghost_ns += step_ghost_wait.swap(0, Ordering::Relaxed);

        // --- 4. swap buffers ---
        for &sd in &owned {
            let cell = &states[&sd].cell;
            let mut curr = cell.curr.write();
            let mut next = cell.next.lock();
            std::mem::swap(&mut *curr, &mut *next);
        }

        // --- 5. error recording ---
        if cfg.record_error {
            let t_now = (step + 1) as f64 * dt;
            let h = setup.parts.grid.h;
            let mut sum = 0.0;
            for &sd in &owned {
                let unit = &states[&sd];
                let curr = unit.cell.curr.read();
                for lj in 0..sds.sd {
                    for li in 0..sds.sd {
                        let (gi, gj) = (unit.origin.0 + li, unit.origin.1 + lj);
                        let d = manufactured.exact(t_now, gi, gj) - curr.get(li, lj);
                        sum += d * d;
                    }
                }
            }
            error_partials.push(h * h * sum);
        } else {
            error_partials.push(0.0);
        }

        // --- 6. load-balancing epoch (the configured LbSpec policy) ---
        let do_lb = cfg
            .lb
            .as_ref()
            .is_some_and(|lb| (step + 1) % lb.period == 0 && step + 1 < cfg.n_steps);
        if do_lb {
            let lb_cfg = cfg.lb.as_ref().unwrap();
            let epoch = ((step + 1) / lb_cfg.period) as u64;
            // gather busy times on locality 0, piggybacking the wall time
            // each locality spent in the *previous* epoch's migration
            // exchange — the cluster-wide stall signal adaptive policies
            // feed on (locality 0's own exchange alone would miss
            // migrations flowing entirely between other localities)
            let busy = loc.busy_time_ns();
            loc.send(
                0,
                tag(CLASS_LBSTAT, epoch, me as u64, 0),
                (busy, states.len() as u64, prev_stall_ns, window_ghost_ns).to_bytes(),
            );
            let plan_fut = loc.expect(tag(CLASS_LBPLAN, epoch, me as u64, 0));
            if me == 0 {
                let stat_futs: Vec<Future<Bytes>> = (0..setup.n_nodes)
                    .map(|n| loc.expect(tag(CLASS_LBSTAT, epoch, n as u64, 0)))
                    .collect();
                let mut measured_busy = Vec::with_capacity(setup.n_nodes as usize);
                let mut max_stall_ns = 0u64;
                let mut max_ghost_ns = 0u64;
                for fut in stat_futs {
                    let (busy_ns, _count, stall_ns, ghost_ns) =
                        <(u64, u64, u64, u64)>::from_bytes(fut.get()).expect("corrupt LB stat");
                    // seconds, so relief is commensurable with the
                    // CommCost transfer estimates the planner weighs in
                    measured_busy.push((busy_ns as f64 * 1e-9).max(1e-12));
                    max_stall_ns = max_stall_ns.max(stall_ns);
                    max_ghost_ns = max_ghost_ns.max(ghost_ns);
                }
                let policy = policy.as_mut().expect("locality 0 holds the policy");
                if cfg.lb_input == LbInput::Measured {
                    // Controller updates before planning: the previous
                    // epoch's measured migration stall (worst locality)
                    // over the previous window, and this window's worst
                    // ghost stall, so the nudged λ/μ steer *this* epoch's
                    // plan. Modeled planning disables runtime feedback —
                    // determinism is the point of that mode.
                    if let Some(window) = prev_window_secs {
                        policy.observe_stall((max_stall_ns as f64 * 1e-9) / window.max(1e-9));
                    }
                    let window_now = window_t0.elapsed().as_secs_f64().max(1e-9);
                    policy.observe_ghost_stall((max_ghost_ns as f64 * 1e-9) / window_now);
                }
                let busy_vec = match cfg.lb_input {
                    LbInput::Measured => measured_busy,
                    // Deterministic planner input derived from the
                    // declared work model — byte-identical to what the
                    // simulator computes for the same scenario.
                    LbInput::Modeled => modeled_busy(
                        &sds,
                        &owners,
                        setup.n_nodes,
                        cfg.work_at(step),
                        &setup.speeds,
                        setup.sec_per_dp,
                    ),
                };
                let ownership = Ownership::new(sds, owners.clone(), setup.n_nodes);
                // The policy sees the same network the fabric was built
                // with: locality 0 derives the LbNetwork cost estimate
                // from the config's NetSpec — plus, under an elastic
                // timeline, the membership mask in effect at this epoch
                // (shared `active_at`, so both substrates see the same
                // mask for the same scenario).
                if !cfg.cluster_events.is_empty() {
                    lb_net.active = Some(Arc::new(active_at(
                        setup.n_nodes as usize,
                        &cfg.cluster_events,
                        step + 1,
                    )));
                }
                let metrics = compute_metrics(&ownership.counts(), &busy_vec);
                let plan = policy.plan(&ownership, &metrics, &lb_net);
                let wire: Vec<(u64, u32, u32)> = plan
                    .moves
                    .iter()
                    .map(|m| (m.sd as u64, m.from, m.to))
                    .collect();
                if !plan.moves.is_empty() {
                    lb_traces.push(
                        EpochTrace::record(step + 1, policy.name(), &plan, &ownership, &lb_net)
                            .with_drift(policy.drift_info()),
                    );
                    // take the move list instead of cloning it
                    lb_plans.push(plan.moves);
                }
                let payload = wire.to_bytes();
                for n in 0..setup.n_nodes {
                    loc.send(n, tag(CLASS_LBPLAN, epoch, n as u64, 0), payload.clone());
                }
            }
            let moves: Vec<(u64, u32, u32)> =
                Wire::from_bytes(plan_fut.get()).expect("corrupt LB plan");
            let migrate_t0 = Instant::now();
            // send outgoing SDs first, then collect incoming; tiles of
            // migrated-away SDs go back to the pool (all step tasks have
            // completed, so the Arc is uniquely held) and incoming SDs
            // draw from it, so repeated epochs stop allocating tile pairs
            let mut incoming: Vec<(SdId, Future<Bytes>)> = Vec::new();
            for &(sd64, from, to) in &moves {
                let sd = sd64 as SdId;
                if from == me {
                    let unit = states.remove(&sd).expect("migrating unowned SD");
                    {
                        let curr = unit.cell.curr.read();
                        let payload = pack_tile_rect(&curr, &curr.interior_rect());
                        loc.send(to, tag(CLASS_MIGRATE, epoch, sd as u64, 0), payload);
                    }
                    if let Ok(cell) = Arc::try_unwrap(unit.cell) {
                        tile_pool.push(cell.curr.into_inner());
                        tile_pool.push(cell.next.into_inner());
                    }
                }
                if to == me {
                    incoming.push((sd, loc.expect(tag(CLASS_MIGRATE, epoch, sd as u64, 0))));
                }
                owners[sd as usize] = to;
            }
            let fresh_tile = |pool: &mut Vec<Tile>| {
                pool.pop()
                    .map(|mut t| {
                        // pooled tiles must look newly constructed
                        t.data_mut().fill(0.0);
                        t
                    })
                    .unwrap_or_else(|| Tile::new(sds.sd, halo))
            };
            for (sd, fut) in incoming {
                let mut payload = fut.get();
                let origin = sds.origin(sd);
                let mut curr = fresh_tile(&mut tile_pool);
                decode_f64_rows(
                    &mut payload,
                    curr.rect_rows_mut(&Rect::new(0, 0, sds.sd, sds.sd)),
                )
                .expect("corrupt migration");
                let next = fresh_tile(&mut tile_pool);
                states.insert(
                    sd,
                    NodeSd {
                        origin,
                        cell: Arc::new(SdCell {
                            curr: RwLock::new(curr),
                            next: Mutex::new(next),
                        }),
                    },
                );
                in_migrations += 1;
            }
            comm_dirty = true;
            // Record this locality's migration-exchange time for the next
            // epoch's LBSTAT gather (0 for an empty plan — nothing
            // shipped, nothing stalled).
            prev_stall_ns = if moves.is_empty() {
                0
            } else {
                migrate_t0.elapsed().as_nanos() as u64
            };
            // The ghost-stall window restarts with the busy window.
            window_ghost_ns = 0;
            // Algorithm 1 line 35: reset the busy-time counters so the next
            // epoch measures a fresh interval.
            loc.busy_counter().reset();
            if me == 0 {
                prev_window_secs = Some(window_t0.elapsed().as_secs_f64());
                window_t0 = Instant::now();
                // Metrics emission is skipped for empty plans so
                // idle-policy runs don't record no-op epochs.
                if !moves.is_empty() {
                    let mut counts = vec![0usize; setup.n_nodes as usize];
                    for &o in &owners {
                        counts[o as usize] += 1;
                    }
                    lb_counts.push(counts);
                }
            }
        }
    }

    // final per-SD fields
    let mut sd_fields: Vec<(SdId, Vec<f64>)> = states
        .iter()
        .map(|(&sd, unit)| {
            let curr = unit.cell.curr.read();
            (sd, curr.pack(&Rect::new(0, 0, sds.sd, sds.sd)))
        })
        .collect();
    sd_fields.sort_by_key(|(sd, _)| *sd);
    NodeReport {
        sd_fields,
        error_partials,
        busy_ns: loc.busy_time_ns(),
        in_migrations,
        ghost_bytes,
        inter_rack_ghost_bytes,
        lb_counts,
        lb_plans,
        lb_traces,
        pool_steals: loc.pool().steals_total(),
        pool_steal_fails: loc.pool().steal_fails_total(),
        pool_parks: loc.pool().parks_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlheat_amt::cluster::ClusterBuilder;
    use nlheat_model::SerialSolver;

    fn serial_field(n: usize, eps_mult: f64, steps: usize) -> Vec<f64> {
        let parts = ProblemSpec::square(n, eps_mult).build();
        let mut s = SerialSolver::manufactured(&parts);
        s.run(steps);
        s.field()
    }

    #[test]
    fn two_nodes_match_serial_bitwise() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let cfg = DistConfig::new(16, 2.0, 4, 5);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 5));
    }

    #[test]
    fn four_nodes_match_serial_bitwise() {
        let cluster = ClusterBuilder::new().uniform(4, 1).build();
        let cfg = DistConfig::new(16, 2.0, 4, 5);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 5));
    }

    #[test]
    fn intra_step_stealing_matches_serial_bitwise() {
        // Multi-core localities so the row-band tasks really execute on
        // several workers — the decomposition must not perturb a bit.
        let cluster = ClusterBuilder::new().uniform(2, 4).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 5);
        cfg.intra_step_stealing = true;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 5));
        assert!(
            report.pool_steals.iter().sum::<u64>() > 0,
            "band tasks should move through the work-stealing scheduler"
        );
    }

    #[test]
    fn intra_step_stealing_straggler_sd_matches_serial_bitwise() {
        // One 8x-slow SD on a single 4-worker locality: idle workers
        // steal the straggler's bands, numerics stay pinned.
        let cluster = ClusterBuilder::new().uniform(1, 4).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        let mut work = vec![1.0; 16];
        work[0] = 8.0;
        cfg.work = WorkModel::PerSd(work);
        cfg.intra_step_stealing = true;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 4));
    }

    #[test]
    fn intra_step_stealing_composes_with_lb() {
        // Stealing within steps + migration between epochs: both on, the
        // field still matches the serial solver bitwise.
        let cluster = ClusterBuilder::new().uniform(2, 2).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.lb = Some(LbSchedule::every(2));
        cfg.intra_step_stealing = true;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 6));
    }

    #[test]
    fn intra_step_stealing_overlap_off_matches_serial_bitwise() {
        // The non-overlap ablation gates *all* bands on the ghosts; the
        // deferred-futures barrier must still cover them.
        let cluster = ClusterBuilder::new().uniform(3, 2).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        cfg.overlap = false;
        cfg.intra_step_stealing = true;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 4));
    }

    #[test]
    fn overlap_off_same_numerics() {
        let cluster = ClusterBuilder::new().uniform(3, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        cfg.overlap = false;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 4));
    }

    #[test]
    fn strip_partition_same_numerics() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        cfg.partition = PartitionSpec::Strip;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 4));
    }

    #[test]
    fn multi_ring_halo_across_nodes() {
        // sd=4 with eps=6h: halo 6 > sd, ghosts come from two rings away.
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let cfg = DistConfig::new(16, 6.0, 4, 3);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 6.0, 3));
    }

    #[test]
    fn error_recorded_and_small() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.record_error = true;
        let report = run_distributed(&cluster, &cfg);
        let total = report.error.unwrap().total();
        assert!(total < 1e-4, "distributed error {total}");
    }

    #[test]
    fn load_balancing_epoch_preserves_numerics() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.lb = Some(LbSchedule::every(2));
        // start from a deliberately imbalanced explicit assignment:
        // node 0 owns everything except one SD
        let mut owners = vec![0u32; 16];
        owners[15] = 1;
        cfg.partition = PartitionSpec::Explicit(owners);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 6));
        assert!(report.migrations > 0, "imbalanced start must migrate");
        // final distribution is more even than 15/1
        let counts = report.final_ownership.counts();
        assert!(
            counts.iter().all(|&c| (4..=12).contains(&c)),
            "final counts {counts:?}"
        );
    }

    #[test]
    fn heterogeneous_cluster_balances_toward_fast_node() {
        // node 0 is 4x faster; with LB it should end up with more SDs.
        // The balance outcome rests on *measured* busy time, so on an
        // oversubscribed machine (CI running many thread-spawning tests
        // at once) a single run can see scheduling noise swamp the 4x
        // speed contrast; numerics must hold every time, the timing-based
        // migration direction gets a couple of attempts.
        let mut counts = Vec::new();
        for _ in 0..3 {
            let cluster = ClusterBuilder::new().node(1, 1.0).node(1, 0.25).build();
            let mut cfg = DistConfig::new(16, 2.0, 4, 8);
            cfg.lb = Some(LbSchedule::every(2));
            let report = run_distributed(&cluster, &cfg);
            assert_eq!(report.field, serial_field(16, 2.0, 8));
            counts = report.final_ownership.counts();
            if counts[0] > counts[1] {
                return;
            }
        }
        panic!("fast node should own more SDs in at least one of 3 runs: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn degenerate_lambda_rejected_before_the_run() {
        // Even a spec written directly into the struct (bypassing
        // `with_spec`) must fail up front on the caller's thread, not
        // inside the locality-0 driver where a panic at the first LB
        // epoch would deadlock the other localities.
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        cfg.lb = Some(LbSchedule {
            period: 2,
            spec: LbSpec::Tree {
                lambda: -1.0,
                mu: 0.0,
            },
        });
        let _ = run_distributed(&cluster, &cfg);
    }

    #[test]
    fn diffusion_policy_preserves_numerics_and_migrates() {
        // Numerics and migration must hold every time; the final-counts
        // range rests on *measured* busy times, which scheduling noise on
        // an oversubscribed test runner can skew (same caveat and retry
        // pattern as `heterogeneous_cluster_balances_toward_fast_node`).
        let mut counts = Vec::new();
        for _ in 0..3 {
            let cluster = ClusterBuilder::new().uniform(2, 1).build();
            let mut cfg = DistConfig::new(16, 2.0, 4, 6);
            cfg.lb = Some(LbSchedule::every(2).with_spec(LbSpec::diffusion(1.0, 8)));
            let mut owners = vec![0u32; 16];
            owners[15] = 1;
            cfg.partition = PartitionSpec::Explicit(owners);
            let report = run_distributed(&cluster, &cfg);
            assert_eq!(report.field, serial_field(16, 2.0, 6));
            assert!(report.migrations > 0, "15/1 start must diffuse");
            counts = report.final_ownership.counts();
            if counts.iter().all(|&c| (4..=12).contains(&c)) {
                return;
            }
        }
        panic!("diffusion should settle the 15/1 split in at least one of 3 runs: {counts:?}");
    }

    #[test]
    fn greedy_steal_policy_preserves_numerics_and_migrates() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.lb = Some(LbSchedule::every(2).with_spec(LbSpec::greedy_steal(1)));
        let mut owners = vec![0u32; 16];
        owners[15] = 1;
        cfg.partition = PartitionSpec::Explicit(owners);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 6));
        assert!(report.migrations > 0, "15/1 start must shed work");
    }

    #[test]
    fn adaptive_policy_preserves_numerics() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.lb = Some(LbSchedule::every(2).with_spec(LbSpec::adaptive(LbSpec::tree(0.0), 0.2)));
        let mut owners = vec![0u32; 16];
        owners[15] = 1;
        cfg.partition = PartitionSpec::Explicit(owners);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 6));
    }

    #[test]
    fn noop_epochs_emit_no_lb_history() {
        // A single-node cluster plans a no-op every epoch: the history
        // must stay empty instead of recording unchanged counts.
        let cluster = ClusterBuilder::new().uniform(1, 2).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.lb = Some(LbSchedule::every(2));
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 6));
        assert_eq!(report.migrations, 0);
        assert!(
            report.lb_history.is_empty(),
            "no-op epochs must not emit metrics: {:?}",
            report.lb_history
        );
        assert!(
            report.epoch_traces.is_empty(),
            "no-op epochs must not emit traces: {:?}",
            report.epoch_traces
        );
    }

    #[test]
    fn epoch_traces_record_realized_epochs() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.lb = Some(LbSchedule::every(2));
        let mut owners = vec![0u32; 16];
        owners[15] = 1;
        cfg.partition = PartitionSpec::Explicit(owners);
        let report = run_distributed(&cluster, &cfg);
        assert!(report.migrations > 0);
        // one trace per realized epoch, aligned with lb_history
        assert_eq!(report.epoch_traces.len(), report.lb_history.len());
        let total_moves: usize = report.epoch_traces.iter().map(|t| t.moves).sum();
        assert_eq!(
            total_moves, report.migrations,
            "traces must cover all moves"
        );
        for t in &report.epoch_traces {
            assert_eq!(t.policy, "tree");
            assert!(t.step >= 2 && t.step % 2 == 0, "schedule steps: {}", t.step);
            assert!(
                t.ghost_bytes_before > 0,
                "the real runtime always attaches its SdGraph"
            );
        }
        // the 15/1 start has a tiny cut; balancing toward 8/8 must grow it
        // (more boundary), which the recorded cut reflects
        let first = &report.epoch_traces[0];
        assert!(first.ghost_bytes_after != first.ghost_bytes_before);
    }

    #[test]
    fn no_rendezvous_leaks() {
        let cluster = ClusterBuilder::new().uniform(3, 1).build();
        let cfg = DistConfig::new(16, 2.0, 4, 4);
        let _ = run_distributed(&cluster, &cfg);
        for i in 0..cluster.len() {
            assert_eq!(
                cluster.locality(i).rendezvous().outstanding(),
                0,
                "locality {i} leaked rendezvous entries"
            );
        }
    }

    #[test]
    fn single_node_cluster_works() {
        let cluster = ClusterBuilder::new().uniform(1, 2).build();
        let cfg = DistConfig::new(16, 2.0, 4, 4);
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 4));
    }

    #[test]
    fn work_schedule_runs_on_the_real_runtime_bit_exact() {
        // The propagating crack on real hardware: the schedule switches
        // the work model mid-run (kernel repetition emulates the factor),
        // so the numerics must stay bit-exact while only timing shifts.
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 6);
        cfg.work_schedule = vec![
            (
                0,
                WorkModel::Crack {
                    y_cell: 4,
                    half_width: 2,
                    factor: 2.0,
                },
            ),
            (
                3,
                WorkModel::Crack {
                    y_cell: 12,
                    half_width: 2,
                    factor: 2.0,
                },
            ),
        ];
        cfg.lb = Some(LbSchedule::every(2));
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 6));
        assert_eq!(cfg.work_at(0), &cfg.work_schedule[0].1);
        assert_eq!(cfg.work_at(4), &cfg.work_schedule[1].1);
    }

    #[test]
    #[should_panic(expected = "PerSd work model has 3 factors")]
    fn per_sd_length_mismatch_fails_before_the_run() {
        // Satellite contract: the bad factor vector must fail on the
        // caller's thread at configuration time, not by out-of-bounds
        // indexing inside a driver mid-run.
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 4);
        cfg.work = WorkModel::PerSd(vec![1.0, 1.0, 1.0]); // grid has 16 SDs
        let _ = run_distributed(&cluster, &cfg);
    }

    #[test]
    fn ghost_byte_counters_match_the_planner_grade_formula() {
        // LB-free run on 2 nodes: every cross parcel is a ghost patch, so
        // the planner-grade counter must equal patches x patch_wire_bytes,
        // which is also what the simulator charges for this scenario.
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 3);
        cfg.partition = PartitionSpec::Strip;
        let report = run_distributed(&cluster, &cfg);
        assert!(report.ghost_bytes > 0);
        assert_eq!(report.migration_bytes, 0);
        // rack-less model: no inter-rack share
        assert_eq!(report.inter_rack_ghost_bytes, 0);
        // the wire carries the same parcels plus an 8-byte codec length
        // word each: planner-grade + 8 * messages == wire bytes
        let msgs = cluster.net_stats().messages();
        assert_eq!(
            report.ghost_bytes + 8 * msgs,
            cluster.net_stats().cross_bytes()
        );
    }

    #[test]
    fn failed_rank_is_evacuated_and_numerics_hold() {
        // Fail-stop at step 3: the repartition policy must evacuate the
        // rank at the next epoch, the solver's numerics must stay
        // bit-exact throughout (the rank keeps computing until its SDs
        // are gone — membership is a planner-level fact), and nothing
        // may move back afterwards.
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let mut cfg = DistConfig::new(16, 2.0, 4, 8);
        cfg.lb = Some(LbSchedule::every(2).with_spec(LbSpec::repartition(
            LbSpec::greedy_steal(1),
            f64::INFINITY,
            1,
            u64::MAX,
        )));
        cfg.cluster_events = vec![(3, crate::scenario::ClusterEvent::Fail { rank: 1 })];
        cfg.lb_input = LbInput::Modeled;
        let report = run_distributed(&cluster, &cfg);
        assert_eq!(report.field, serial_field(16, 2.0, 8));
        assert!(report.migrations > 0, "the failed rank must be evacuated");
        let counts = report.final_ownership.counts();
        assert_eq!(counts[1], 0, "failed rank must end empty: {counts:?}");
        assert_eq!(counts[0], 16);
        // the evacuation epoch is recorded as a replan
        assert!(
            report.epoch_traces.iter().any(|t| t.replan),
            "the evacuation must be flagged as a replan: {:?}",
            report.epoch_traces
        );
    }

    #[test]
    fn modeled_lb_input_is_deterministic_and_preserves_numerics() {
        // Parity mode: plans derive from the declared work model, so two
        // runs produce identical plan sequences (wall clock never enters)
        // and the numerics stay bit-exact.
        let run = || {
            let cluster = ClusterBuilder::new().uniform(2, 1).build();
            let mut cfg = DistConfig::new(16, 2.0, 4, 6);
            cfg.lb = Some(LbSchedule::every(2));
            cfg.lb_input = LbInput::Modeled;
            let mut owners = vec![0u32; 16];
            owners[15] = 1;
            cfg.partition = PartitionSpec::Explicit(owners);
            run_distributed(&cluster, &cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a.field, serial_field(16, 2.0, 6));
        assert!(a.migrations > 0, "lopsided start must migrate");
        assert_eq!(a.lb_plans, b.lb_plans, "modeled plans are deterministic");
        assert_eq!(a.lb_history, b.lb_history);
        assert_eq!(a.ghost_bytes, b.ghost_bytes);
    }
}
