//! Workload heterogeneity models (paper §7).
//!
//! Two sources of imbalance motivate the load balancer:
//!
//! * **Node heterogeneity** — a node's compute capacity varies (other jobs
//!   scheduled on it, different hardware). Modeled by the locality speed
//!   factor of the AMT cluster.
//! * **Model-intrinsic imbalance** — in nonlocal *fracture* models the SDs
//!   containing the crack do less bond work than intact SDs (points across
//!   the crack stop interacting). [`WorkModel::Crack`] reproduces that
//!   shape for the heat substrate: a horizontal band of SDs with a reduced
//!   work factor, optionally moving over time like a propagating crack.

use nlheat_mesh::{SdGrid, SdId};

/// Per-SD relative work factor (1.0 = nominal cost per DP).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkModel {
    /// Every SD costs the same.
    Uniform,
    /// SDs intersecting the horizontal cell band
    /// `[y_cell − half_width, y_cell + half_width]` cost `factor` (< 1 for
    /// the crack's reduced bond work; > 1 models refinement hot spots).
    Crack {
        y_cell: i64,
        half_width: i64,
        factor: f64,
    },
    /// Arbitrary per-SD factors.
    PerSd(Vec<f64>),
}

impl WorkModel {
    /// Reject a model that cannot price every SD of `sds` — at
    /// configuration time, on the caller's thread, instead of panicking on
    /// out-of-bounds indexing inside a driver mid-run (where it would
    /// deadlock the rest of the cluster).
    ///
    /// # Panics
    /// Panics when a [`WorkModel::PerSd`] factor vector does not match the
    /// SD grid, or any factor is non-finite or negative.
    pub fn validate(&self, sds: &SdGrid) {
        match self {
            WorkModel::Uniform => {}
            WorkModel::Crack { factor, .. } => {
                assert!(
                    factor.is_finite() && *factor >= 0.0,
                    "crack work factor must be finite and non-negative, got {factor}"
                );
            }
            WorkModel::PerSd(factors) => {
                assert_eq!(
                    factors.len(),
                    sds.count(),
                    "PerSd work model has {} factors but the grid has {} SDs",
                    factors.len(),
                    sds.count()
                );
                for (sd, f) in factors.iter().enumerate() {
                    assert!(
                        f.is_finite() && *f >= 0.0,
                        "PerSd factor for SD {sd} must be finite and non-negative, got {f}"
                    );
                }
            }
        }
    }

    /// The work factor of `sd`.
    pub fn factor(&self, sds: &SdGrid, sd: SdId) -> f64 {
        match self {
            WorkModel::Uniform => 1.0,
            WorkModel::Crack {
                y_cell,
                half_width,
                factor,
            } => {
                let rect = sds.rect(sd);
                let band_lo = y_cell - half_width;
                let band_hi = y_cell + half_width;
                if rect.y0 <= band_hi && rect.y1() > band_lo {
                    *factor
                } else {
                    1.0
                }
            }
            WorkModel::PerSd(f) => f[sd as usize],
        }
    }

    /// Kernel repetition count emulating `factor/speed` on the real
    /// runtime (≥ 1; the emulation is quantized to whole repeats).
    pub fn repeats(&self, sds: &SdGrid, sd: SdId, node_speed: f64) -> u32 {
        let f = self.factor(sds, sd) / node_speed;
        f.round().max(1.0) as u32
    }

    /// Exact relative cost for the discrete-event simulator.
    pub fn cost(&self, sds: &SdGrid, sd: SdId, node_speed: f64) -> f64 {
        self.factor(sds, sd) / node_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_one_everywhere() {
        let sds = SdGrid::new(4, 4, 5);
        for sd in sds.ids() {
            assert_eq!(WorkModel::Uniform.factor(&sds, sd), 1.0);
        }
    }

    #[test]
    fn crack_band_hits_expected_rows() {
        let sds = SdGrid::new(4, 4, 5); // 20 cells per side
        let crack = WorkModel::Crack {
            y_cell: 10,
            half_width: 1,
            factor: 0.25,
        };
        for sd in sds.ids() {
            let (_, sy) = sds.coords(sd);
            let expected = if sy == 1 || sy == 2 { 0.25 } else { 1.0 };
            assert_eq!(crack.factor(&sds, sd), expected, "sd row {sy}");
        }
    }

    #[test]
    fn crack_at_grid_edge() {
        let sds = SdGrid::new(2, 2, 4);
        let crack = WorkModel::Crack {
            y_cell: 0,
            half_width: 0,
            factor: 0.5,
        };
        assert_eq!(crack.factor(&sds, sds.id(0, 0)), 0.5);
        assert_eq!(crack.factor(&sds, sds.id(0, 1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "PerSd work model has 3 factors but the grid has 2 SDs")]
    fn per_sd_length_mismatch_rejected_at_configuration() {
        let sds = SdGrid::new(2, 1, 4);
        WorkModel::PerSd(vec![1.0, 2.0, 3.0]).validate(&sds);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn per_sd_nan_factor_rejected() {
        let sds = SdGrid::new(2, 1, 4);
        WorkModel::PerSd(vec![1.0, f64::NAN]).validate(&sds);
    }

    #[test]
    fn valid_models_pass_validation() {
        let sds = SdGrid::new(2, 2, 4);
        WorkModel::Uniform.validate(&sds);
        WorkModel::PerSd(vec![1.0; 4]).validate(&sds);
        WorkModel::Crack {
            y_cell: 4,
            half_width: 1,
            factor: 0.25,
        }
        .validate(&sds);
    }

    #[test]
    fn per_sd_lookup() {
        let sds = SdGrid::new(2, 1, 4);
        let m = WorkModel::PerSd(vec![1.0, 2.5]);
        assert_eq!(m.factor(&sds, 1), 2.5);
    }

    #[test]
    fn repeats_quantize_and_floor_at_one() {
        let sds = SdGrid::new(2, 1, 4);
        let m = WorkModel::Uniform;
        assert_eq!(m.repeats(&sds, 0, 1.0), 1);
        assert_eq!(m.repeats(&sds, 0, 0.5), 2);
        assert_eq!(m.repeats(&sds, 0, 0.25), 4);
        assert_eq!(m.repeats(&sds, 0, 4.0), 1, "fast nodes floor at 1");
    }

    #[test]
    fn cost_is_exact_ratio() {
        let sds = SdGrid::new(2, 1, 4);
        let m = WorkModel::PerSd(vec![0.5, 1.0]);
        assert_eq!(m.cost(&sds, 0, 2.0), 0.25);
    }
}
