//! The SD → computational-node ownership map.
//!
//! A sub-problem (SP, §4 of the paper) is exactly the set of SDs a node
//! owns; this module tracks that assignment and answers the geometric
//! queries the load balancer and the solvers need: per-node counts, node
//! adjacency (who exchanges ghosts with whom), frontiers, and contiguity.

use nlheat_mesh::{SdGrid, SdId};
use nlheat_partition::Partition;

/// Node id within a cluster (mirrors `nlheat_amt::LocalityId`).
pub type NodeId = u32;

/// Assignment of every SD to an owning node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ownership {
    sds: SdGrid,
    owners: Vec<NodeId>,
    n_nodes: u32,
}

impl Ownership {
    /// Wrap an explicit assignment.
    ///
    /// # Panics
    /// Panics if the vector length mismatches the SD count or any owner id
    /// is out of range.
    pub fn new(sds: SdGrid, owners: Vec<NodeId>, n_nodes: u32) -> Self {
        assert_eq!(owners.len(), sds.count(), "one owner per SD");
        assert!(n_nodes > 0);
        assert!(owners.iter().all(|&o| o < n_nodes), "owner id out of range");
        Ownership {
            sds,
            owners,
            n_nodes,
        }
    }

    /// Adopt a partitioner result (the `METIS_PartMeshDual` output).
    pub fn from_partition(sds: SdGrid, partition: &Partition) -> Self {
        Ownership::new(sds, partition.parts.clone(), partition.k)
    }

    /// All SDs on node 0 (the single-node baseline).
    pub fn single_node(sds: SdGrid) -> Self {
        let n = sds.count();
        Ownership::new(sds, vec![0; n], 1)
    }

    /// The SD grid this ownership refers to.
    pub fn sds(&self) -> &SdGrid {
        &self.sds
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Owner of `sd`.
    pub fn owner(&self, sd: SdId) -> NodeId {
        self.owners[sd as usize]
    }

    /// Reassign `sd` to `node`.
    pub fn set_owner(&mut self, sd: SdId, node: NodeId) {
        assert!(node < self.n_nodes);
        self.owners[sd as usize] = node;
    }

    /// The raw owner table.
    pub fn owners(&self) -> &[NodeId] {
        &self.owners
    }

    /// SDs owned per node — SD̄(N_i) of eq. 8.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_nodes as usize];
        for &o in &self.owners {
            counts[o as usize] += 1;
        }
        counts
    }

    /// SDs owned by `node`, ascending.
    pub fn owned_by(&self, node: NodeId) -> Vec<SdId> {
        (0..self.owners.len() as SdId)
            .filter(|&sd| self.owners[sd as usize] == node)
            .collect()
    }

    /// Node adjacency lists: `u` and `v` are adjacent when some SD of `u`
    /// is edge-adjacent to some SD of `v` — the edges of the
    /// data-dependency tree (paper Fig. 7).
    pub fn node_adjacency(&self) -> Vec<Vec<NodeId>> {
        let mut adj = vec![std::collections::BTreeSet::new(); self.n_nodes as usize];
        for sd in self.sds.ids() {
            let o = self.owner(sd);
            for nb in self.sds.adjacent4(sd) {
                let on = self.owner(nb);
                if on != o {
                    adj[o as usize].insert(on);
                    adj[on as usize].insert(o);
                }
            }
        }
        adj.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    /// SDs owned by `from` that are edge-adjacent to territory of `to` —
    /// the borrowing frontier of the load balancer.
    pub fn frontier(&self, from: NodeId, to: NodeId) -> Vec<SdId> {
        self.owned_by(from)
            .into_iter()
            .filter(|&sd| {
                self.sds
                    .adjacent4(sd)
                    .iter()
                    .any(|&nb| self.owner(nb) == to)
            })
            .collect()
    }

    /// Whether `node`'s territory is connected under 4-adjacency (empty
    /// territories count as contiguous).
    pub fn is_contiguous(&self, node: NodeId) -> bool {
        let owned = self.owned_by(node);
        if owned.is_empty() {
            return true;
        }
        let set: std::collections::HashSet<SdId> = owned.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![owned[0]];
        seen.insert(owned[0]);
        while let Some(sd) = stack.pop() {
            for nb in self.sds.adjacent4(sd) {
                if set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == owned.len()
    }

    /// ASCII rendering of the ownership grid (row y printed top-down), the
    /// format used to report the Fig. 14 redistribution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for sy in (0..self.sds.nsy).rev() {
            for sx in 0..self.sds.nsx {
                let o = self.owner(self.sds.id(sx, sy));
                out.push_str(&format!("{o:>3}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5x5 SD grid split into quadrant-ish blocks of 4 nodes
    /// (the paper's Fig. 2 shape).
    fn quad_ownership() -> Ownership {
        let sds = SdGrid::new(5, 5, 4);
        let mut owners = vec![0u32; 25];
        for sy in 0..5i64 {
            for sx in 0..5i64 {
                let o = match (sx >= 3, sy >= 3) {
                    (false, false) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (true, true) => 3,
                };
                owners[sds.id(sx, sy) as usize] = o;
            }
        }
        Ownership::new(sds, owners, 4)
    }

    #[test]
    fn counts_per_node() {
        let own = quad_ownership();
        assert_eq!(own.counts(), vec![9, 6, 6, 4]);
        assert_eq!(own.counts().iter().sum::<usize>(), 25);
    }

    #[test]
    fn owned_by_sorted_and_disjoint() {
        let own = quad_ownership();
        let mut all: Vec<SdId> = (0..4).flat_map(|n| own.owned_by(n)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn node_adjacency_of_quadrants() {
        let own = quad_ownership();
        let adj = own.node_adjacency();
        assert_eq!(adj[0], vec![1, 2]);
        assert_eq!(adj[1], vec![0, 3]);
        assert_eq!(adj[2], vec![0, 3]);
        assert_eq!(adj[3], vec![1, 2]);
    }

    #[test]
    fn frontier_lists_border_sds() {
        let own = quad_ownership();
        // node 1's SDs adjacent to node 0: column sx=3, sy 0..3
        let f = own.frontier(1, 0);
        let sds = *own.sds();
        let expected: Vec<SdId> = (0..3).map(|sy| sds.id(3, sy)).collect();
        assert_eq!(f, expected);
    }

    #[test]
    fn contiguity_detection() {
        let mut own = quad_ownership();
        assert!((0..4).all(|n| own.is_contiguous(n)));
        // teleport a node-0 SD into node-3 territory: node 0 stays
        // contiguous only if we pick a non-articulating cell; give SD (4,4)
        // to node 0 -> disconnected.
        let far = own.sds().id(4, 4);
        own.set_owner(far, 0);
        assert!(!own.is_contiguous(0));
    }

    #[test]
    fn empty_territory_is_contiguous() {
        let sds = SdGrid::new(2, 2, 4);
        let own = Ownership::new(sds, vec![0, 0, 0, 0], 2);
        assert!(own.is_contiguous(1));
    }

    #[test]
    fn render_shape() {
        let own = quad_ownership();
        let s = own.render();
        assert_eq!(s.lines().count(), 5);
        // top row printed first: sy=4 is nodes 2,2,2,3,3
        assert_eq!(s.lines().next().unwrap().trim(), "2  2  2  3  3");
    }

    #[test]
    #[should_panic(expected = "one owner per SD")]
    fn wrong_length_rejected() {
        Ownership::new(SdGrid::new(2, 2, 4), vec![0; 3], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_owner_rejected() {
        Ownership::new(SdGrid::new(2, 2, 4), vec![0, 0, 0, 5], 2);
    }
}
