//! Realizing a transfer: uniform ring growth along the shared frontier.
//!
//! When node `to` borrows `count` SDs from node `from`, the paper requires
//! the borrowed SDs to be taken "uniformly in all the directions" so the
//! contiguous locality produced by the mesh partitioner is preserved
//! (Fig. 6). We realize that as breadth-first ring growth: the borrower's
//! territory expands into the lender's ring by ring; within the final
//! partial ring, cells with the most contact to the borrower (and the
//! least entanglement with the lender) are preferred.

use crate::ownership::{NodeId, Ownership};
use nlheat_mesh::SdId;
use std::collections::HashSet;

/// Choose up to `count` SDs currently owned by `from` for transfer to
/// `to`, growing `to`'s territory uniformly. Returns fewer than `count`
/// ids when the lender's reachable territory is exhausted. Equivalent to
/// [`select_transfer_scored`] with a uniform zero score.
pub fn select_transfer(own: &Ownership, from: NodeId, to: NodeId, count: usize) -> Vec<SdId> {
    select_transfer_scored(own, from, to, count, |_| 0.0)
}

/// [`select_transfer`] with a per-SD migration score: `score(sd)` is the
/// estimated net gain of moving `sd` — for the cost-aware balancer,
/// busy-time relief minus λ·(migration bytes × link cost), in seconds.
/// SDs with a negative score are never selected (their migration would
/// cost more than it relieves), and within a partial ring higher-scoring
/// SDs are preferred before the uniform-growth tie-breaks. A score that is
/// constant and non-negative (e.g. the zero score of [`select_transfer`])
/// reproduces the count-based selection exactly; with per-SD tile sizes a
/// future caller can differentiate within one frontier.
pub fn select_transfer_scored(
    own: &Ownership,
    from: NodeId,
    to: NodeId,
    count: usize,
    score: impl Fn(SdId) -> f64,
) -> Vec<SdId> {
    assert_ne!(from, to);
    let sds = own.sds();
    let mut selected: Vec<SdId> = Vec::with_capacity(count);
    let mut selected_set: HashSet<SdId> = HashSet::new();
    // `to`'s territory including what we have taken so far.
    let mut region: HashSet<SdId> = own.owned_by(to).into_iter().collect();
    if region.is_empty() && count > 0 {
        // The borrower owns nothing yet (can happen when more nodes than
        // SDs existed at some point): seed its territory with the lender's
        // most peripheral SD so ring growth has somewhere to start.
        let seed = own
            .owned_by(from)
            .into_iter()
            .filter(|&sd| score(sd) >= 0.0)
            .min_by_key(|&sd| {
                let lender_neighbors = sds
                    .adjacent4(sd)
                    .iter()
                    .filter(|&&nb| own.owner(nb) == from)
                    .count();
                (lender_neighbors, sd)
            });
        if let Some(sd) = seed {
            selected.push(sd);
            selected_set.insert(sd);
            region.insert(sd);
        }
    }
    while selected.len() < count {
        // the ring: `from`-owned SDs adjacent to the current region whose
        // migration is worth its communication cost
        let mut ring: Vec<SdId> = own
            .owned_by(from)
            .into_iter()
            .filter(|sd| !selected_set.contains(sd))
            .filter(|&sd| sds.adjacent4(sd).iter().any(|nb| region.contains(nb)))
            .filter(|&sd| score(sd) >= 0.0)
            .collect();
        if ring.is_empty() {
            break;
        }
        let remaining = count - selected.len();
        if ring.len() > remaining {
            // partial ring: prefer the highest migration score, then
            // maximal contact with the borrower and minimal remaining
            // contact with the lender (keeps the lender compact); ties by
            // id for determinism.
            let mut keyed: Vec<(SdId, f64, i64, i64)> = ring
                .iter()
                .map(|&sd| {
                    let nbs = sds.adjacent4(sd);
                    let contact = nbs.iter().filter(|nb| region.contains(nb)).count() as i64;
                    let lender_ties = nbs
                        .iter()
                        .filter(|&&nb| own.owner(nb) == from && !selected_set.contains(&nb))
                        .count() as i64;
                    (sd, score(sd), -contact, lender_ties)
                })
                .collect();
            keyed.sort_by(|a, b| {
                b.1.total_cmp(&a.1)
                    .then(a.2.cmp(&b.2))
                    .then(a.3.cmp(&b.3))
                    .then(a.0.cmp(&b.0))
            });
            ring = keyed.into_iter().take(remaining).map(|k| k.0).collect();
        }
        for sd in ring {
            selected.push(sd);
            selected_set.insert(sd);
            region.insert(sd);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlheat_mesh::SdGrid;

    /// 6x6 grid: left half node 0, right half node 1.
    fn halves() -> Ownership {
        let sds = SdGrid::new(6, 6, 4);
        let mut owners = vec![0u32; 36];
        for sy in 0..6i64 {
            for sx in 3..6i64 {
                owners[sds.id(sx, sy) as usize] = 1;
            }
        }
        Ownership::new(sds, owners, 2)
    }

    #[test]
    fn takes_frontier_first() {
        let own = halves();
        let sds = *own.sds();
        // node 0 borrows a full ring (6) from node 1: must be column sx=3
        let taken = select_transfer(&own, 1, 0, 6);
        assert_eq!(taken.len(), 6);
        for sd in &taken {
            let (sx, _) = sds.coords(*sd);
            assert_eq!(sx, 3, "first ring is the boundary column");
        }
    }

    #[test]
    fn grows_ring_by_ring() {
        let own = halves();
        let sds = *own.sds();
        let taken = select_transfer(&own, 1, 0, 12);
        assert_eq!(taken.len(), 12);
        // two full columns: sx=3 and sx=4
        let mut cols: Vec<i64> = taken.iter().map(|&sd| sds.coords(sd).0).collect();
        cols.sort_unstable();
        assert_eq!(&cols[..6], &[3; 6]);
        assert_eq!(&cols[6..], &[4; 6]);
    }

    #[test]
    fn partial_ring_preserves_contiguity() {
        let own = halves();
        let taken = select_transfer(&own, 1, 0, 3);
        assert_eq!(taken.len(), 3);
        let mut working = own.clone();
        for &sd in &taken {
            working.set_owner(sd, 0);
        }
        assert!(working.is_contiguous(0), "borrower stays contiguous");
        assert!(working.is_contiguous(1), "lender stays contiguous");
    }

    #[test]
    fn caps_at_available_reachable_sds() {
        let own = halves();
        let taken = select_transfer(&own, 1, 0, 100);
        assert_eq!(taken.len(), 18, "lender only has 18 SDs");
    }

    #[test]
    fn no_adjacency_no_transfer() {
        // three columns: 0 | 2 | 1 — nodes 0 and 1 are not adjacent
        let sds = SdGrid::new(3, 1, 4);
        let own = Ownership::new(sds, vec![0, 2, 1], 3);
        assert!(select_transfer(&own, 1, 0, 1).is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let own = halves();
        assert_eq!(
            select_transfer(&own, 1, 0, 7),
            select_transfer(&own, 1, 0, 7)
        );
    }

    #[test]
    fn scored_zero_matches_unscored() {
        let own = halves();
        for count in [1, 3, 6, 9, 18, 100] {
            assert_eq!(
                select_transfer(&own, 1, 0, count),
                select_transfer_scored(&own, 1, 0, count, |_| 0.0)
            );
        }
    }

    #[test]
    fn negative_score_blocks_selection() {
        let own = halves();
        // a transfer whose migration cost exceeds its relief moves nothing
        assert!(select_transfer_scored(&own, 1, 0, 6, |_| -1e-3).is_empty());
        // per-SD gating: only bottom-half rows are worth moving
        let sds = *own.sds();
        let taken = select_transfer_scored(&own, 1, 0, 18, |sd| {
            if sds.coords(sd).1 < 3 {
                1.0
            } else {
                -1.0
            }
        });
        assert_eq!(taken.len(), 9, "3 selectable rows x 3 lender columns");
        assert!(taken.iter().all(|&sd| sds.coords(sd).1 < 3), "{taken:?}");
    }

    #[test]
    fn higher_score_picked_first_in_partial_ring() {
        let own = halves();
        let sds = *own.sds();
        // boundary column sx=3 has six candidates; score favours high sy,
        // overriding the contact/id tie-breaks that normally spread picks
        let taken = select_transfer_scored(&own, 1, 0, 2, |sd| sds.coords(sd).1 as f64);
        assert_eq!(taken.len(), 2);
        let mut ys: Vec<i64> = taken.iter().map(|&sd| sds.coords(sd).1).collect();
        ys.sort_unstable();
        assert_eq!(ys, vec![4, 5], "top-scoring rows win: {taken:?}");
    }

    #[test]
    fn uniform_growth_spreads_over_frontier() {
        // Borrow 2 from a 6-cell frontier: the two picks must not be the
        // same corner twice — contact ranking spreads them.
        let own = halves();
        let sds = *own.sds();
        let taken = select_transfer(&own, 1, 0, 2);
        assert_eq!(taken.len(), 2);
        let ys: Vec<i64> = taken.iter().map(|&sd| sds.coords(sd).1).collect();
        assert_ne!(ys[0], ys[1]);
    }
}
