//! Realizing a transfer: uniform ring growth along the shared frontier.
//!
//! When node `to` borrows `count` SDs from node `from`, the paper requires
//! the borrowed SDs to be taken "uniformly in all the directions" so the
//! contiguous locality produced by the mesh partitioner is preserved
//! (Fig. 6). We realize that as breadth-first ring growth: the borrower's
//! territory expands into the lender's ring by ring; within the final
//! partial ring, cells with the most contact to the borrower (and the
//! least entanglement with the lender) are preferred.

use crate::ownership::{NodeId, Ownership};
use nlheat_mesh::SdId;
use std::collections::HashSet;

/// Choose up to `count` SDs currently owned by `from` for transfer to
/// `to`, growing `to`'s territory uniformly. Returns fewer than `count`
/// ids when the lender's reachable territory is exhausted.
pub fn select_transfer(own: &Ownership, from: NodeId, to: NodeId, count: usize) -> Vec<SdId> {
    assert_ne!(from, to);
    let sds = own.sds();
    let mut selected: Vec<SdId> = Vec::with_capacity(count);
    let mut selected_set: HashSet<SdId> = HashSet::new();
    // `to`'s territory including what we have taken so far.
    let mut region: HashSet<SdId> = own.owned_by(to).into_iter().collect();
    if region.is_empty() && count > 0 {
        // The borrower owns nothing yet (can happen when more nodes than
        // SDs existed at some point): seed its territory with the lender's
        // most peripheral SD so ring growth has somewhere to start.
        let seed = own.owned_by(from).into_iter().min_by_key(|&sd| {
            let lender_neighbors = sds
                .adjacent4(sd)
                .iter()
                .filter(|&&nb| own.owner(nb) == from)
                .count();
            (lender_neighbors, sd)
        });
        if let Some(sd) = seed {
            selected.push(sd);
            selected_set.insert(sd);
            region.insert(sd);
        }
    }
    while selected.len() < count {
        // the ring: `from`-owned SDs adjacent to the current region
        let mut ring: Vec<SdId> = own
            .owned_by(from)
            .into_iter()
            .filter(|sd| !selected_set.contains(sd))
            .filter(|&sd| sds.adjacent4(sd).iter().any(|nb| region.contains(nb)))
            .collect();
        if ring.is_empty() {
            break;
        }
        let remaining = count - selected.len();
        if ring.len() > remaining {
            // partial ring: prefer maximal contact with the borrower and
            // minimal remaining contact with the lender (keeps the lender
            // compact); ties by id for determinism.
            ring.sort_by_key(|&sd| {
                let nbs = sds.adjacent4(sd);
                let contact = nbs.iter().filter(|nb| region.contains(nb)).count() as i64;
                let lender_ties = nbs
                    .iter()
                    .filter(|&&nb| own.owner(nb) == from && !selected_set.contains(&nb))
                    .count() as i64;
                (-contact, lender_ties, sd)
            });
            ring.truncate(remaining);
        }
        for sd in ring {
            selected.push(sd);
            selected_set.insert(sd);
            region.insert(sd);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlheat_mesh::SdGrid;

    /// 6x6 grid: left half node 0, right half node 1.
    fn halves() -> Ownership {
        let sds = SdGrid::new(6, 6, 4);
        let mut owners = vec![0u32; 36];
        for sy in 0..6i64 {
            for sx in 3..6i64 {
                owners[sds.id(sx, sy) as usize] = 1;
            }
        }
        Ownership::new(sds, owners, 2)
    }

    #[test]
    fn takes_frontier_first() {
        let own = halves();
        let sds = *own.sds();
        // node 0 borrows a full ring (6) from node 1: must be column sx=3
        let taken = select_transfer(&own, 1, 0, 6);
        assert_eq!(taken.len(), 6);
        for sd in &taken {
            let (sx, _) = sds.coords(*sd);
            assert_eq!(sx, 3, "first ring is the boundary column");
        }
    }

    #[test]
    fn grows_ring_by_ring() {
        let own = halves();
        let sds = *own.sds();
        let taken = select_transfer(&own, 1, 0, 12);
        assert_eq!(taken.len(), 12);
        // two full columns: sx=3 and sx=4
        let mut cols: Vec<i64> = taken.iter().map(|&sd| sds.coords(sd).0).collect();
        cols.sort_unstable();
        assert_eq!(&cols[..6], &[3; 6]);
        assert_eq!(&cols[6..], &[4; 6]);
    }

    #[test]
    fn partial_ring_preserves_contiguity() {
        let own = halves();
        let taken = select_transfer(&own, 1, 0, 3);
        assert_eq!(taken.len(), 3);
        let mut working = own.clone();
        for &sd in &taken {
            working.set_owner(sd, 0);
        }
        assert!(working.is_contiguous(0), "borrower stays contiguous");
        assert!(working.is_contiguous(1), "lender stays contiguous");
    }

    #[test]
    fn caps_at_available_reachable_sds() {
        let own = halves();
        let taken = select_transfer(&own, 1, 0, 100);
        assert_eq!(taken.len(), 18, "lender only has 18 SDs");
    }

    #[test]
    fn no_adjacency_no_transfer() {
        // three columns: 0 | 2 | 1 — nodes 0 and 1 are not adjacent
        let sds = SdGrid::new(3, 1, 4);
        let own = Ownership::new(sds, vec![0, 2, 1], 3);
        assert!(select_transfer(&own, 1, 0, 1).is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let own = halves();
        assert_eq!(
            select_transfer(&own, 1, 0, 7),
            select_transfer(&own, 1, 0, 7)
        );
    }

    #[test]
    fn uniform_growth_spreads_over_frontier() {
        // Borrow 2 from a 6-cell frontier: the two picks must not be the
        // same corner twice — contact ranking spreads them.
        let own = halves();
        let sds = *own.sds();
        let taken = select_transfer(&own, 1, 0, 2);
        assert_eq!(taken.len(), 2);
        let ys: Vec<i64> = taken.iter().map(|&sd| sds.coords(sd).1).collect();
        assert_ne!(ys[0], ys[1]);
    }
}
