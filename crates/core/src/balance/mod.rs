//! **Algorithm 1** — the paper's novel load balancing algorithm (§7).
//!
//! The pipeline per balancing iteration:
//!
//! 1. read the per-node `busy_time` performance counters;
//! 2. compute node *power* `Power(N_i) = SD̄(N_i)/Busy(N_i)` (eq. 8),
//!    *expected* SD counts `E(N_i) = total·Power_i/ΣPower` (eq. 10) and the
//!    *load imbalance* `E(N_i) − SD̄(N_i)` (eq. 9) — [`power`];
//! 3. build the data-dependency tree over node adjacency, rooted at the
//!    node of minimum imbalance, and order nodes topologically
//!    (BFS preorder, Fig. 7) — [`tree`];
//! 4. in that order, each node borrows/lends SDs from its not-yet-visited
//!    adjacent nodes, `LoadImbalance/L` per neighbour, realized by uniform
//!    ring growth along the shared frontier to preserve the contiguity the
//!    mesh partitioner established (Fig. 6) — [`transfer`];
//! 5. emit the migration plan and reset the busy-time counters
//!    (Algorithm 1 line 35) — [`algorithm`].
//!
//! The stack is **communication-aware** end to end: every step can weigh
//! *where* bytes would go, not just how many SDs move. A
//! [`CostParams`] (λ plus a [`nlheat_netmodel::CommCost`] derived from the
//! active `NetSpec`) makes the dependency forest prefer cheap links, the
//! remainder distribution favour cheap neighbours, and the frontier
//! selection gate transfers whose busy-time relief does not cover
//! `λ · migration bytes × link cost`. With `λ = 0` the whole stack
//! degenerates — byte-identically — to the paper's count-based planner.
//!
//! It is also **ghost-traffic-aware**: migration bytes are paid once, but
//! an ownership's edge cut over the SD adjacency / halo-volume graph
//! ([`SdGraph`], built from the same halo plans the runtimes execute) is
//! paid *every timestep*. A second weight μ prices each candidate move's
//! cut delta ([`ghost_delta_seconds`]) so the balancer can refuse — or
//! favour — moves by the recurring traffic they leave behind (cf.
//! Lifflander et al., arXiv:2404.16793). `μ = 0` is pinned
//! byte-identical to the ghost-blind planner, and every realized epoch is
//! recorded as an [`EpochTrace`] (plan size, migration bytes, cut
//! before/after) by both substrates.
//!
//! The tree planner is one strategy behind the pluggable [`policy`] layer:
//! both substrates select an [`policy::LbPolicy`] via
//! [`policy::LbSpec`]/[`policy::LbSchedule`] (tree, diffusion,
//! greedy-steal, the hierarchical memory-aware planner of [`hier`], or
//! the adaptive-λ/μ decorators), and every policy emits the same
//! single-hop [`MigrationPlan`] contract.
//!
//! Incremental policies only ever nudge ownership; [`repart`] adds the
//! global escape hatch: a cut-drift monitor that re-invokes the
//! multilevel partitioner on the live [`SdGraph`] when the live cut
//! decays past a threshold (or the cluster membership changes) and
//! stages the old→new diff as budgeted single-hop plans.

pub mod algorithm;
pub mod hier;
pub mod policy;
pub mod power;
pub mod repart;
pub mod trace;
pub mod transfer;
pub mod tree;

pub use algorithm::{
    ghost_delta_seconds, iterate_rebalance, plan_rebalance, plan_rebalance_from_metrics,
    plan_rebalance_ghost_aware, plan_rebalance_with_cost, CostParams, MigrationPlan, Move,
    PlanComm, SdBytes,
};
pub use hier::{hierarchy_is_degenerate, plan_hierarchical, HierPolicy};
pub use nlheat_partition::SdGraph;
pub use policy::{
    AdaptiveLambdaPolicy, AdaptiveMuPolicy, DiffusionPolicy, GreedyStealPolicy, LbNetwork,
    LbPolicy, LbSchedule, LbSpec, TreePolicy,
};
pub use power::{compute_metrics, LoadMetrics};
pub use repart::{DriftInfo, RepartitionPolicy};
pub use trace::EpochTrace;
pub use transfer::{select_transfer, select_transfer_scored};
pub use tree::{build_forest, build_forest_weighted, DependencyTree};
