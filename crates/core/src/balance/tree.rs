//! The data-dependency tree and its topological ordering (Fig. 7).
//!
//! Nodes of the tree are computational nodes; an edge exists where SDs of
//! one node border SDs of the other. The tree is a BFS spanning tree rooted
//! at the node of minimum load imbalance (Algorithm 1, line 14), and the
//! processing order is its BFS preorder — each node is processed before the
//! neighbours it will borrow from ("least data-dependency first").

use crate::ownership::NodeId;

/// A spanning tree over one connected component of the node-adjacency
/// graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyTree {
    /// Root: the component's node with minimum imbalance.
    pub root: NodeId,
    /// BFS preorder starting at `root` — the topological processing order.
    pub order: Vec<NodeId>,
    /// Tree children per node (indexed by node id; nodes outside the
    /// component have empty lists).
    pub children: Vec<Vec<NodeId>>,
    /// Tree parent per node (`None` for the root and for nodes outside
    /// the component).
    pub parent: Vec<Option<NodeId>>,
}

/// Build one [`DependencyTree`] per connected component of `adjacency`.
/// Each component is rooted at its node of minimum `imbalance`
/// (ties: lowest id). Neighbours are expanded in adjacency order — the
/// uniform-weight case of [`build_forest_weighted`].
pub fn build_forest(adjacency: &[Vec<NodeId>], imbalance: &[i64]) -> Vec<DependencyTree> {
    build_forest_weighted(adjacency, imbalance, |_, _| 0.0)
}

/// [`build_forest`] with edge weights: at each BFS expansion the frontier
/// node enqueues its unassigned neighbours cheapest-link first (ties by
/// lowest id), so the topological processing order settles imbalance over
/// cheap links before expensive ones. `weight(u, v)` is the cost of the
/// `u`→`v` edge (for the cost-aware balancer: the λ-weighted estimated
/// seconds of migrating one SD — see `CostParams::edge_weight`). A
/// constant weight reproduces `build_forest` exactly, because adjacency
/// lists are already sorted by id.
pub fn build_forest_weighted(
    adjacency: &[Vec<NodeId>],
    imbalance: &[i64],
    weight: impl Fn(NodeId, NodeId) -> f64,
) -> Vec<DependencyTree> {
    let n = adjacency.len();
    assert_eq!(imbalance.len(), n);
    let mut assigned = vec![false; n];
    let mut forest = Vec::new();
    // next unassigned node with minimum imbalance roots the next component
    while let Some(root) = (0..n)
        .filter(|&i| !assigned[i])
        .min_by_key(|&i| (imbalance[i], i))
        .map(|r| r as NodeId)
    {
        let mut order = Vec::new();
        let mut children = vec![Vec::new(); n];
        let mut parent = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        assigned[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut frontier: Vec<NodeId> = adjacency[v as usize]
                .iter()
                .copied()
                .filter(|&u| !assigned[u as usize])
                .collect();
            frontier.sort_by(|&a, &b| weight(v, a).total_cmp(&weight(v, b)).then(a.cmp(&b)));
            for u in frontier {
                assigned[u as usize] = true;
                parent[u as usize] = Some(v);
                children[v as usize].push(u);
                queue.push_back(u);
            }
        }
        forest.push(DependencyTree {
            root,
            order,
            children,
            parent,
        });
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 2x2 quadrant adjacency of the paper's Figs. 6/7:
    /// 1-2, 1-4, 2-3, 3-4 (0-indexed: 0-1, 0-3, 1-2, 2-3).
    fn quad_adjacency() -> Vec<Vec<NodeId>> {
        vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![0, 2]]
    }

    #[test]
    fn root_is_min_imbalance() {
        let forest = build_forest(&quad_adjacency(), &[-15, 5, 5, 5]);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].root, 0);
    }

    #[test]
    fn order_is_bfs_preorder() {
        let forest = build_forest(&quad_adjacency(), &[-15, 5, 5, 5]);
        let t = &forest[0];
        assert_eq!(t.order[0], 0);
        assert_eq!(t.order.len(), 4);
        // BFS from 0 visits 1 and 3 before 2
        let pos = |x: NodeId| t.order.iter().position(|&v| v == x).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(3) < pos(2));
    }

    #[test]
    fn parents_consistent_with_children() {
        let forest = build_forest(&quad_adjacency(), &[0, 0, 0, 0]);
        let t = &forest[0];
        for v in 0..4u32 {
            for &c in &t.children[v as usize] {
                assert_eq!(t.parent[c as usize], Some(v));
            }
        }
        assert_eq!(t.parent[t.root as usize], None);
    }

    #[test]
    fn every_node_in_exactly_one_order() {
        let forest = build_forest(&quad_adjacency(), &[3, -1, 2, -1]);
        let mut seen = std::collections::HashSet::new();
        for t in &forest {
            for &v in &t.order {
                assert!(seen.insert(v), "node {v} appears twice");
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        // two components: {0,1} and {2}
        let adj = vec![vec![1], vec![0], vec![]];
        let forest = build_forest(&adj, &[5, -5, 0]);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].root, 1, "min imbalance in its component");
        assert_eq!(forest[1].root, 2);
    }

    #[test]
    fn tie_breaks_by_lowest_id() {
        let forest = build_forest(&quad_adjacency(), &[7, 7, 7, 7]);
        assert_eq!(forest[0].root, 0);
    }

    #[test]
    fn weighted_expansion_prefers_cheap_links() {
        // From root 0, neighbour 3 is cheap and 1 expensive: the BFS
        // preorder must visit 3 before 1.
        let imb = [-15, 5, 5, 5];
        let forest = build_forest_weighted(&quad_adjacency(), &imb, |u, v| {
            if (u, v) == (0, 1) || (v, u) == (0, 1) {
                10.0
            } else {
                1.0
            }
        });
        let t = &forest[0];
        let pos = |x: NodeId| t.order.iter().position(|&v| v == x).unwrap();
        assert!(pos(3) < pos(1), "cheap link first: {:?}", t.order);
        assert_eq!(t.children[0], vec![3, 1]);
    }

    #[test]
    fn uniform_weight_matches_unweighted_forest() {
        for imb in [[-15i64, 5, 5, 5], [3, -1, 2, -1], [7, 7, 7, 7]] {
            let plain = build_forest(&quad_adjacency(), &imb);
            let weighted = build_forest_weighted(&quad_adjacency(), &imb, |_, _| 0.123);
            assert_eq!(plain, weighted, "constant weight must change nothing");
        }
    }

    #[test]
    fn paper_figure7_ordering_shape() {
        // Fig. 7 reports the ordering 1 -> 4 -> 3 -> 2 (1-indexed) for a
        // tree rooted at node 1. In 0-indexed terms with our BFS: root 0,
        // then its neighbours, then the rest — the root borrows first,
        // exactly the "least data-dependency first" property.
        let forest = build_forest(&quad_adjacency(), &[-10, 3, 4, 3]);
        let t = &forest[0];
        assert_eq!(t.order[0], 0);
        assert!(!t.children[t.root as usize].is_empty());
    }
}
