//! The pluggable load-balancing policy layer.
//!
//! The paper contributes *one* rebalancing strategy — the Algorithm-1
//! dependency-tree planner — but which strategy wins depends on the
//! workload and the interconnect, so both execution substrates select the
//! strategy through the same seam they already use for network models
//! (`NetSpec`): an [`LbSpec`] configuration enum instantiating an
//! [`LbPolicy`] trait object. A policy maps one epoch's measured state
//! ([`LoadMetrics`] + [`Ownership`] + the planning-grade network view in
//! [`LbNetwork`]) to a [`MigrationPlan`]; stateful policies (adaptive λ)
//! additionally receive post-epoch feedback through
//! [`LbPolicy::observe_stall`].
//!
//! Every policy emits **single-hop plans**: within one plan no SD appears
//! twice and every move's `from` is the SD's pre-epoch owner. The
//! distributed fabric ships all migrating tiles concurrently and would
//! deadlock on a chained plan, so every implementation routes its raw
//! transfer trace through the same collapse
//! (`balance::algorithm::finish_plan`) the tree planner uses — the
//! invariant is earned structurally, not per policy, and is property-tested
//! over every variant.
//!
//! Shipped policies:
//!
//! * [`LbSpec::Tree`] — the paper's Algorithm 1 with the λ-weighted
//!   communication-cost gate of `plan_rebalance_with_cost`; byte-identical
//!   to the pre-policy-layer planner by construction (it delegates to it).
//! * [`LbSpec::Diffusion`] — first-order pairwise load exchange
//!   (dimension-exchange diffusion, cf. Cybenko 1989 and Demirel &
//!   Sbalzarini, arXiv:1308.0148) over the neighbour graph induced by the
//!   link classes, cheap links swept first.
//! * [`LbSpec::GreedySteal`] — work-stealing-style greedy offload
//!   (cf. Fernandes et al., arXiv:2401.04494): the most overloaded rank
//!   repeatedly sheds one SD to its cheapest underloaded neighbour.
//! * [`LbSpec::AdaptiveLambda`] — a decorator closing the "λ adapts
//!   online" loop: wraps any inner policy and nudges its cost weight from
//!   the measured migration-stall fraction of previous epochs.
//! * [`LbSpec::AdaptiveMu`] — the μ analogue: nudges the inner policy's
//!   ghost weight from the measured ghost-stall fraction
//!   ([`LbPolicy::observe_ghost_stall`]), so the recurring-traffic gate is
//!   steered online instead of hand-picked.
//! * [`LbSpec::Hierarchical`] — the three-level (racks → nodes → ranks)
//!   memory-aware planner of [`crate::balance::hier`], near-linear plan
//!   time at 10k-rank scale; on a degenerate hierarchy without memory
//!   capacities it delegates wholesale to its inner leaf policy.

use crate::balance::algorithm::{
    finish_plan, ghost_delta_seconds, mu_active, plan_rebalance_ghost_aware, realize_ghost_aware,
    CostParams, MigrationPlan, Move, SdBytes,
};
use crate::balance::power::LoadMetrics;
use crate::balance::transfer::select_transfer_scored;
use crate::ownership::{NodeId, Ownership};
use nlheat_netmodel::{CommCost, NetSpec};
use nlheat_partition::SdGraph;
use std::sync::Arc;

/// The planning-grade network view handed to every policy: the same
/// [`CommCost`] the tree planner already consumed, the wire size of one
/// migrating SD tile, and (when the substrate attaches it) the SD
/// adjacency / halo-volume graph whose ownership edge cut is the
/// recurring ghost traffic a plan leaves behind. Derived from the active
/// [`NetSpec`] and halo geometry by both substrates, so planner and
/// transport agree on what the network looks like by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct LbNetwork {
    /// Transfer-cost estimate derived from the active network spec.
    pub comm: CommCost,
    /// Wire bytes of each migrating SD tile (payload + framing). The
    /// [`SdBytes::Uniform`] case is the historical scalar.
    pub sd_bytes: SdBytes,
    /// The SD adjacency / halo-volume graph ([`SdGraph`]), shared with
    /// the substrate that built it. `None` = ghost-blind planning (every
    /// μ term is inert), the pre-ghost-aware behaviour.
    pub sd_graph: Option<Arc<SdGraph>>,
    /// Per-rank memory capacity in bytes (`u64::MAX` = unbounded), the
    /// `VirtualNode::memory_bytes` knob. `None` = memory-blind planning:
    /// capacity gates are inert everywhere.
    pub memory_bytes: Option<Arc<Vec<u64>>>,
    /// Per-SD resident footprint in bytes (tile + incident ghost
    /// buffers), what a destination's memory actually pays to host the
    /// SD. Required whenever `memory_bytes` is set.
    pub sd_footprint: Option<Arc<Vec<u64>>>,
    /// Elastic-membership mask: `active[r]` is false once rank `r` has
    /// drained, failed, or not yet joined ([`crate::scenario::ClusterEvent`]
    /// timeline). `None` = every rank is a legal destination, the
    /// fixed-membership behaviour. Only [`LbSpec::Repartition`] evacuates
    /// inactive ranks; for every other policy the mask merely filters
    /// destinations.
    pub active: Option<Arc<Vec<bool>>>,
}

impl LbNetwork {
    pub fn new(comm: CommCost, sd_bytes: impl Into<SdBytes>) -> Self {
        LbNetwork {
            comm,
            sd_bytes: sd_bytes.into(),
            sd_graph: None,
            memory_bytes: None,
            sd_footprint: None,
            active: None,
        }
    }

    /// Free network: every cost term vanishes, λ/μ gates are inert.
    pub fn free() -> Self {
        LbNetwork::new(CommCost::free(), 0u64)
    }

    /// Attach the SD adjacency / halo-volume graph, enabling μ-weighted
    /// ghost-traffic terms in every policy.
    pub fn with_sd_graph(mut self, graph: Arc<SdGraph>) -> Self {
        self.sd_graph = Some(graph);
        self
    }

    /// Attach per-rank memory capacities (`u64::MAX` = unbounded) and the
    /// per-SD resident footprints they are balanced against, enabling the
    /// capacity gate in memory-aware policies.
    ///
    /// # Panics
    /// Panics on a zero capacity — a rank that can hold nothing cannot
    /// host the partition it already owns ([`crate::scenario::ClusterSpec`]
    /// validation rejects it at config time; this is the planner-side
    /// backstop).
    pub fn with_memory(mut self, capacities: Arc<Vec<u64>>, footprints: Arc<Vec<u64>>) -> Self {
        assert!(
            capacities.iter().all(|&c| c > 0),
            "memory capacities must be positive"
        );
        self.memory_bytes = Some(capacities);
        self.sd_footprint = Some(footprints);
        self
    }

    /// Attach the elastic-membership mask (one flag per rank; `false` =
    /// drained / failed / not yet joined).
    pub fn with_active(mut self, active: Arc<Vec<bool>>) -> Self {
        self.active = Some(active);
        self
    }

    /// Derive the view from a network spec (what `DistConfig`/`SimConfig`
    /// do with their configured `net`).
    pub fn from_spec(spec: &NetSpec, sd_bytes: impl Into<SdBytes>) -> Self {
        LbNetwork::new(spec.comm_cost(), sd_bytes)
    }

    /// The view for migrating SD tiles of `cells_per_sd` cells: the wire
    /// size both substrates actually ship per tile (8-byte f64 payload per
    /// cell plus the codec's length/framing overhead). `core::dist` and
    /// `sim::engine` both call it, and it shares the per-message formula
    /// with the [`SdGraph`] edge weights
    /// ([`nlheat_partition::patch_wire_bytes`]), so their planners can
    /// never disagree on `sd_bytes`.
    pub fn for_sd_tiles(spec: &NetSpec, cells_per_sd: usize) -> Self {
        LbNetwork::from_spec(
            spec,
            nlheat_partition::patch_wire_bytes(cells_per_sd as i64),
        )
    }

    /// The ghost graph iff a μ term of weight `mu` can affect plans
    /// (graph attached, `mu > 0`, non-free network — the same
    /// `mu_active` predicate the tree planner's [`CostParams`] gates on)
    /// — `None` otherwise, so degenerate cases take exactly the
    /// ghost-blind code path.
    pub fn ghost_graph(&self, mu: f64) -> Option<&SdGraph> {
        if mu_active(mu, &self.comm) {
            self.sd_graph.as_deref()
        } else {
            None
        }
    }

    /// The node neighbour graph a policy exchanges load over, each list
    /// ordered cheapest link class first (ties by id).
    ///
    /// With an active ghost term (`mu > 0` and an attached [`SdGraph`])
    /// this is the *real* exchange adjacency: node pairs whose
    /// territories trade ghost patches under `own`, projected from the SD
    /// graph — the same adjacency the partitioner's edge cut counts — plus
    /// every pair involving an empty territory (which has no ghost edges
    /// but still needs bootstrap seeding). Ghost-blind (`mu = 0` or no
    /// graph) it falls back to [`CommCost::neighbour_graph`]'s complete
    /// graph, keeping μ = 0 plans byte-identical to the pre-ghost-aware
    /// planner: a policy may discover mid-plan that two initially
    /// non-adjacent territories became adjacent, which a fixed projected
    /// adjacency cannot represent, so the degenerate case must not use it.
    /// For μ > 0 that mid-plan emergence is deliberately ignored — a
    /// transfer between non-adjacent territories cannot be realized
    /// anyway (no shared frontier), and any adjacency a plan creates is
    /// in the projection of the *next* epoch, so restricting the edge set
    /// costs at most extra epochs, never reachability.
    pub fn neighbour_graph(&self, own: &Ownership, mu: f64) -> Vec<Vec<NodeId>> {
        let Some(graph) = self.ghost_graph(mu) else {
            return self.comm.neighbour_graph(own.n_nodes());
        };
        let n = own.n_nodes() as usize;
        let owners = own.owners();
        let counts = own.counts();
        let mut adj = vec![std::collections::BTreeSet::new(); n];
        for sd in 0..graph.n_sds() as u32 {
            let a = owners[sd as usize];
            for (nb, _) in graph.neighbours(sd) {
                let b = owners[nb as usize];
                if a != b {
                    adj[a as usize].insert(b);
                    adj[b as usize].insert(a);
                }
            }
        }
        for i in 0..n {
            if counts[i] == 0 {
                for j in 0..n {
                    if i != j {
                        adj[i].insert(j as NodeId);
                        adj[j].insert(i as NodeId);
                    }
                }
            }
        }
        adj.into_iter()
            .enumerate()
            .map(|(i, set)| {
                let mut list: Vec<NodeId> = set.into_iter().collect();
                list.sort_by(|&a, &b| {
                    self.comm
                        .link_class(i as NodeId, a)
                        .cmp(&self.comm.link_class(i as NodeId, b))
                        .then(a.cmp(&b))
                });
                list
            })
            .collect()
    }
}

/// A load-balancing policy: one epoch's measured state in, a single-hop
/// [`MigrationPlan`] out.
///
/// Policies may be stateful across epochs (the adaptive-λ decorator is),
/// so the substrate builds one instance per run via [`LbSpec::build`] and
/// keeps it alive between epochs.
pub trait LbPolicy: Send {
    /// Short label for ablation tables and logs.
    fn name(&self) -> &'static str;

    /// Plan one epoch. `metrics` are the eqs. 8–10 metrics computed from
    /// the measured busy times (seconds, so relief is commensurable with
    /// the [`LbNetwork`] transfer estimates); `own` is the pre-epoch
    /// ownership the emitted moves' `from` fields must match.
    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan;

    /// Post-epoch feedback: the fraction of the last balancing window the
    /// substrate spent stalled on migration traffic (0 when the plan was
    /// empty). Default: ignored.
    fn observe_stall(&mut self, stall_frac: f64) {
        let _ = stall_frac;
    }

    /// Pre-plan feedback: the fraction of the last balancing window the
    /// substrate spent stalled waiting for ghost-zone arrivals (the
    /// recurring cost an ownership's edge cut causes, as actually
    /// experienced by the runtime). Default: ignored — the adaptive-μ
    /// decorator is the consumer.
    fn observe_ghost_stall(&mut self, ghost_frac: f64) {
        let _ = ghost_frac;
    }

    /// Override the policy's communication-cost weight λ (used by the
    /// adaptive-λ decorator to steer its inner policy). Default: ignored —
    /// a policy without a cost gate has nothing to set.
    fn set_cost_weight(&mut self, lambda: f64) {
        let _ = lambda;
    }

    /// The policy's current communication-cost weight λ (0 for policies
    /// without a cost gate).
    fn cost_weight(&self) -> f64 {
        0.0
    }

    /// Override the policy's ghost-traffic weight μ. Default: ignored — a
    /// policy without a ghost gate has nothing to set.
    fn set_ghost_weight(&mut self, mu: f64) {
        let _ = mu;
    }

    /// The policy's current ghost-traffic weight μ (0 for policies
    /// without a ghost gate).
    fn ghost_weight(&self) -> f64 {
        0.0
    }

    /// What the cut-drift monitor saw at the last epoch. `None` for every
    /// policy without one — only [`LbSpec::Repartition`] (and decorators
    /// forwarding to it) reports, and the substrates copy it into
    /// [`EpochTrace`](crate::balance::EpochTrace) for the A12 plots.
    fn drift_info(&self) -> Option<crate::balance::repart::DriftInfo> {
        None
    }
}

/// Serde-free policy selection shared by `DistConfig` and `SimConfig`
/// (via [`LbSchedule`]), mirroring how `NetSpec` selects a `NetModel`.
#[derive(Debug, Clone, PartialEq)]
pub enum LbSpec {
    /// The paper's Algorithm-1 dependency-tree planner with the λ-weighted
    /// communication-cost gate and the μ-weighted ghost-traffic gate;
    /// `lambda = mu = 0` is the count-based paper algorithm,
    /// byte-identical to the pre-policy-layer planner.
    Tree { lambda: f64, mu: f64 },
    /// First-order diffusion: sweep the neighbour graph (cheap edges
    /// first) and settle half of each pair's imbalance difference, for at
    /// most `max_rounds` rounds or until every node is within `tolerance`
    /// SDs of its expected share. `mu > 0` additionally charges each
    /// candidate SD its ghost-traffic delta.
    Diffusion {
        tolerance: f64,
        max_rounds: usize,
        mu: f64,
    },
    /// Greedy offload: while some rank's overload is at least `threshold`
    /// SDs, the most overloaded rank sheds one SD to its cheapest
    /// underloaded neighbour. `mu > 0` additionally charges each candidate
    /// SD its ghost-traffic delta.
    GreedySteal { threshold: usize, mu: f64 },
    /// Decorator: run `inner`, and after each epoch nudge its cost weight
    /// λ so the measured migration-stall fraction approaches
    /// `target_stall_frac` (doubling λ when migrations stall more than
    /// the target, halving it when they stall less than half of it).
    AdaptiveLambda {
        inner: Box<LbSpec>,
        target_stall_frac: f64,
    },
    /// Decorator: run `inner`, and before each epoch nudge its ghost
    /// weight μ so the measured ghost-stall fraction approaches
    /// `target_ghost_frac` — the μ analogue of [`LbSpec::AdaptiveLambda`],
    /// driving the [`LbPolicy::set_ghost_weight`] hook from the substrate's
    /// [`LbPolicy::observe_ghost_stall`] feedback instead of hand-picking
    /// a constant.
    AdaptiveMu {
        inner: Box<LbSpec>,
        target_ghost_frac: f64,
    },
    /// The hierarchical, memory-aware planner
    /// ([`crate::balance::hier::plan_hierarchical`]): settle imbalance
    /// between racks, then between the nodes of each rack, then between
    /// the ranks of each node, each level over its own coarse group
    /// graph — near-linear plan time where the flat planner goes
    /// superlinear. When the [`LbNetwork`] carries memory capacities,
    /// every level refuses destination-overflowing moves. On a
    /// degenerate hierarchy (no [`nlheat_netmodel::TopologySpec`], or a
    /// single rack of single-rank nodes) without capacities it delegates
    /// wholesale to `inner` — a concrete leaf policy, not a decorator —
    /// with its λ/μ synced, so plans are byte-identical to running the
    /// leaf standalone.
    Hierarchical {
        inner: Box<LbSpec>,
        lambda: f64,
        mu: f64,
    },
    /// Decorator: run `inner` while the live ownership's ghost cut stays
    /// within `drift_threshold` of a freshly computed capacity-aware
    /// k-way cut (recomputed every `period` balancing epochs); past the
    /// threshold — or on any [`crate::scenario::ClusterEvent`] membership
    /// change — globally repartition the live [`SdGraph`] and stage the
    /// old→new diff as single-hop plans under `max_bytes_per_epoch`
    /// migration bytes per epoch ([`crate::balance::repart`]).
    Repartition {
        inner: Box<LbSpec>,
        /// Replan once `live_cut / fresh_cut` exceeds this (`f64::INFINITY`
        /// = never: the decorator is transparent absent membership events).
        drift_threshold: f64,
        /// Recompute the fresh cut every this many balancing epochs.
        period: usize,
        /// Per-epoch migration-payload budget for staged diffs
        /// (`u64::MAX` = ship the whole diff at once).
        max_bytes_per_epoch: u64,
    },
}

impl Default for LbSpec {
    /// The paper's count-based Algorithm 1.
    fn default() -> Self {
        LbSpec::Tree {
            lambda: 0.0,
            mu: 0.0,
        }
    }
}

impl LbSpec {
    /// Algorithm 1 weighing migration traffic by `lambda` (ghost-blind:
    /// `mu = 0`).
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn tree(lambda: f64) -> Self {
        let spec = LbSpec::Tree { lambda, mu: 0.0 };
        spec.validate();
        spec
    }

    /// Diffusion with the given stop condition (ghost-blind: `mu = 0`).
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn diffusion(tolerance: f64, max_rounds: usize) -> Self {
        let spec = LbSpec::Diffusion {
            tolerance,
            max_rounds,
            mu: 0.0,
        };
        spec.validate();
        spec
    }

    /// Greedy stealing with the given overload threshold (ghost-blind:
    /// `mu = 0`).
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn greedy_steal(threshold: usize) -> Self {
        let spec = LbSpec::GreedySteal { threshold, mu: 0.0 };
        spec.validate();
        spec
    }

    /// Weigh each candidate move's recurring ghost-traffic delta by `mu`
    /// (applied to the inner policy of an adaptive decorator). The term
    /// only bites when the substrate attaches an [`SdGraph`] to its
    /// [`LbNetwork`]; both execution substrates always do.
    ///
    /// # Panics
    /// Panics on negative or non-finite `mu`.
    pub fn with_mu(mut self, mu: f64) -> Self {
        crate::balance::algorithm::validate_mu(mu);
        match &mut self {
            LbSpec::Tree { mu: m, .. }
            | LbSpec::Diffusion { mu: m, .. }
            | LbSpec::GreedySteal { mu: m, .. } => *m = mu,
            LbSpec::AdaptiveLambda { inner, .. }
            | LbSpec::AdaptiveMu { inner, .. }
            | LbSpec::Repartition { inner, .. } => {
                let updated = std::mem::take(inner.as_mut()).with_mu(mu);
                **inner = updated;
            }
            // the hierarchical machinery has its own μ AND keeps the
            // degenerate-case delegate in lockstep
            LbSpec::Hierarchical { inner, mu: m, .. } => {
                *m = mu;
                let updated = std::mem::take(inner.as_mut()).with_mu(mu);
                **inner = updated;
            }
        }
        self
    }

    /// The hierarchical planner, weighing migration traffic by `lambda`
    /// (ghost-blind: `mu = 0` — add it via [`LbSpec::with_mu`]). `inner`
    /// is the leaf policy the degenerate case delegates to.
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn hierarchical(inner: LbSpec, lambda: f64) -> Self {
        let spec = LbSpec::Hierarchical {
            inner: Box::new(inner),
            lambda,
            mu: 0.0,
        };
        spec.validate();
        spec
    }

    /// Wrap `inner` in the adaptive-λ decorator.
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn adaptive(inner: LbSpec, target_stall_frac: f64) -> Self {
        let spec = LbSpec::AdaptiveLambda {
            inner: Box::new(inner),
            target_stall_frac,
        };
        spec.validate();
        spec
    }

    /// Wrap `inner` in the adaptive-μ decorator.
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn adaptive_mu(inner: LbSpec, target_ghost_frac: f64) -> Self {
        let spec = LbSpec::AdaptiveMu {
            inner: Box::new(inner),
            target_ghost_frac,
        };
        spec.validate();
        spec
    }

    /// Wrap `inner` in the cut-aware repartitioning decorator
    /// ([`crate::balance::repart::RepartitionPolicy`]).
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn repartition(
        inner: LbSpec,
        drift_threshold: f64,
        period: usize,
        max_bytes_per_epoch: u64,
    ) -> Self {
        let spec = LbSpec::Repartition {
            inner: Box::new(inner),
            drift_threshold,
            period,
            max_bytes_per_epoch,
        };
        spec.validate();
        spec
    }

    /// True when the spec's decorator chain contains an adaptive-λ
    /// decorator (used to reject silently-inert nesting).
    fn chain_has_adaptive_lambda(&self) -> bool {
        match self {
            LbSpec::AdaptiveLambda { .. } => true,
            LbSpec::AdaptiveMu { inner, .. }
            | LbSpec::Hierarchical { inner, .. }
            | LbSpec::Repartition { inner, .. } => inner.chain_has_adaptive_lambda(),
            _ => false,
        }
    }

    /// True when the spec's decorator chain contains an adaptive-μ
    /// decorator.
    fn chain_has_adaptive_mu(&self) -> bool {
        match self {
            LbSpec::AdaptiveMu { .. } => true,
            LbSpec::AdaptiveLambda { inner, .. }
            | LbSpec::Hierarchical { inner, .. }
            | LbSpec::Repartition { inner, .. } => inner.chain_has_adaptive_mu(),
            _ => false,
        }
    }

    /// True when the spec's decorator chain contains a repartition
    /// decorator (nesting one would double-replan the same drift;
    /// elastic-membership scenarios *require* one — see
    /// [`crate::scenario::Scenario::validate`]).
    pub(crate) fn chain_has_repartition(&self) -> bool {
        match self {
            LbSpec::Repartition { .. } => true,
            LbSpec::AdaptiveLambda { inner, .. }
            | LbSpec::AdaptiveMu { inner, .. }
            | LbSpec::Hierarchical { inner, .. } => inner.chain_has_repartition(),
            _ => false,
        }
    }

    /// The policy's ablation label.
    pub fn name(&self) -> &'static str {
        match self {
            LbSpec::Tree { .. } => "tree",
            LbSpec::Diffusion { .. } => "diffusion",
            LbSpec::GreedySteal { .. } => "greedy-steal",
            LbSpec::AdaptiveLambda { .. } => "adaptive-lambda",
            LbSpec::AdaptiveMu { .. } => "adaptive-mu",
            LbSpec::Hierarchical { .. } => "hierarchical",
            LbSpec::Repartition { .. } => "repartition",
        }
    }

    /// Reject degenerate parameters at configuration time — like a bad
    /// `NetSpec`, a bad policy parameter must fail on the caller's thread,
    /// not on a driver thread mid-run (where a panic at the first LB epoch
    /// deadlocks the cluster).
    ///
    /// # Panics
    /// Panics on: non-finite or negative `lambda` or `mu`; non-finite or
    /// non-positive `tolerance`; `max_rounds` of 0; `threshold` of 0;
    /// `target_stall_frac` outside `(0, 1)`; or an invalid inner spec.
    pub fn validate(&self) {
        let check_mu = |mu: &f64| crate::balance::algorithm::validate_mu(*mu);
        match self {
            LbSpec::Tree { lambda, mu } => {
                assert!(
                    *lambda >= 0.0 && lambda.is_finite(),
                    "lambda must be finite and non-negative, got {lambda}"
                );
                check_mu(mu);
            }
            LbSpec::Diffusion {
                tolerance,
                max_rounds,
                mu,
            } => {
                assert!(
                    *tolerance > 0.0 && tolerance.is_finite(),
                    "diffusion tolerance must be finite and positive, got {tolerance}"
                );
                assert!(*max_rounds >= 1, "diffusion max_rounds must be at least 1");
                check_mu(mu);
            }
            LbSpec::GreedySteal { threshold, mu } => {
                assert!(*threshold >= 1, "greedy-steal threshold must be at least 1");
                check_mu(mu);
            }
            LbSpec::AdaptiveLambda {
                inner,
                target_stall_frac,
            } => {
                assert!(
                    *target_stall_frac > 0.0
                        && *target_stall_frac < 1.0
                        && target_stall_frac.is_finite(),
                    "target_stall_frac must be in (0, 1), got {target_stall_frac}"
                );
                // A nested same-kind decorator would be silently inert:
                // the outer one keeps the feedback to itself and clobbers
                // the inner's weight every epoch — anywhere in the chain,
                // including through an adaptive-μ layer in between.
                assert!(
                    !inner.chain_has_adaptive_lambda(),
                    "AdaptiveLambda cannot wrap another AdaptiveLambda"
                );
                inner.validate();
            }
            LbSpec::AdaptiveMu {
                inner,
                target_ghost_frac,
            } => {
                assert!(
                    *target_ghost_frac > 0.0
                        && *target_ghost_frac < 1.0
                        && target_ghost_frac.is_finite(),
                    "target_ghost_frac must be in (0, 1), got {target_ghost_frac}"
                );
                assert!(
                    !inner.chain_has_adaptive_mu(),
                    "AdaptiveMu cannot wrap another AdaptiveMu"
                );
                inner.validate();
            }
            LbSpec::Hierarchical { inner, lambda, mu } => {
                assert!(
                    *lambda >= 0.0 && lambda.is_finite(),
                    "lambda must be finite and non-negative, got {lambda}"
                );
                check_mu(mu);
                // The inner spec is the degenerate-case delegate, planning
                // whole epochs on its own: a decorator there would never
                // receive the substrate feedback it adapts on, and a
                // nested hierarchy is meaningless — demand a leaf.
                assert!(
                    matches!(
                        **inner,
                        LbSpec::Tree { .. } | LbSpec::Diffusion { .. } | LbSpec::GreedySteal { .. }
                    ),
                    "Hierarchical requires a leaf policy (tree, diffusion, greedy-steal) as inner"
                );
                inner.validate();
            }
            LbSpec::Repartition {
                inner,
                drift_threshold,
                period,
                max_bytes_per_epoch,
            } => {
                assert!(
                    *drift_threshold > 0.0 && !drift_threshold.is_nan(),
                    "drift_threshold must be positive (infinity = never replan), \
                     got {drift_threshold}"
                );
                assert!(*period >= 1, "repartition period must be at least 1 epoch");
                assert!(
                    *max_bytes_per_epoch >= 1,
                    "max_bytes_per_epoch must be positive (u64::MAX = unbounded)"
                );
                assert!(
                    !inner.chain_has_repartition(),
                    "Repartition cannot wrap another Repartition"
                );
                inner.validate();
            }
        }
    }

    /// Instantiate the policy object for one run.
    ///
    /// # Panics
    /// Panics on invalid parameters — see [`LbSpec::validate`].
    pub fn build(&self) -> Box<dyn LbPolicy> {
        self.validate();
        match self {
            LbSpec::Tree { lambda, mu } => Box::new(TreePolicy {
                lambda: *lambda,
                mu: *mu,
            }),
            LbSpec::Diffusion {
                tolerance,
                max_rounds,
                mu,
            } => Box::new(DiffusionPolicy {
                tolerance: *tolerance,
                max_rounds: *max_rounds,
                cost_weight: 0.0,
                ghost_weight: *mu,
            }),
            LbSpec::GreedySteal { threshold, mu } => Box::new(GreedyStealPolicy {
                threshold: *threshold,
                cost_weight: 0.0,
                ghost_weight: *mu,
            }),
            LbSpec::AdaptiveLambda {
                inner,
                target_stall_frac,
            } => {
                let inner = inner.build();
                // start from the inner policy's configured weight so the
                // decorator nudges rather than resets
                let lambda = inner.cost_weight();
                Box::new(AdaptiveLambdaPolicy {
                    inner,
                    target_stall_frac: *target_stall_frac,
                    lambda,
                })
            }
            LbSpec::AdaptiveMu {
                inner,
                target_ghost_frac,
            } => {
                let inner = inner.build();
                let mu = inner.ghost_weight();
                Box::new(AdaptiveMuPolicy {
                    inner,
                    target_ghost_frac: *target_ghost_frac,
                    mu,
                })
            }
            LbSpec::Hierarchical { inner, lambda, mu } => {
                let mut leaf = inner.build();
                // keep the delegate's gates in lockstep from the start
                leaf.set_cost_weight(*lambda);
                leaf.set_ghost_weight(*mu);
                Box::new(crate::balance::hier::HierPolicy::new(leaf, *lambda, *mu))
            }
            LbSpec::Repartition {
                inner,
                drift_threshold,
                period,
                max_bytes_per_epoch,
            } => Box::new(crate::balance::repart::RepartitionPolicy::new(
                inner.build(),
                *drift_threshold,
                *period,
                *max_bytes_per_epoch,
            )),
        }
    }
}

/// When to balance and how — the one load-balancing configuration shared
/// by `Scenario`, `DistConfig` and `SimConfig` alike, replacing the
/// duplicated per-substrate structs.
#[derive(Debug, Clone, PartialEq)]
pub struct LbSchedule {
    /// Run the policy every `period` (simulated or real) timesteps.
    pub period: usize,
    /// Which policy plans the epochs.
    pub spec: LbSpec,
}

impl LbSchedule {
    /// The paper's count-based Algorithm 1 every `period` timesteps.
    ///
    /// # Panics
    /// Panics on a zero period.
    pub fn every(period: usize) -> Self {
        assert!(period >= 1, "LB period must be at least 1 step");
        LbSchedule {
            period,
            spec: LbSpec::default(),
        }
    }

    /// Select the balancing policy.
    ///
    /// # Panics
    /// Panics on invalid policy parameters — see [`LbSpec::validate`].
    pub fn with_spec(mut self, spec: LbSpec) -> Self {
        spec.validate();
        self.spec = spec;
        self
    }

    /// Validate the whole schedule (covers direct field assignment that
    /// bypassed the builders).
    ///
    /// # Panics
    /// Panics on a zero period or invalid policy parameters.
    pub fn validate(&self) {
        assert!(self.period >= 1, "LB period must be at least 1 step");
        self.spec.validate();
    }
}

// ---------------------------------------------------------------------
// Policy implementations
// ---------------------------------------------------------------------

/// [`LbSpec::Tree`]: delegates to the Algorithm-1 planner.
pub struct TreePolicy {
    lambda: f64,
    mu: f64,
}

impl LbPolicy for TreePolicy {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        let cost = CostParams::new(net.comm, self.lambda, net.sd_bytes.clone()).with_mu(self.mu);
        plan_rebalance_ghost_aware(own, metrics.clone(), &cost, net.sd_graph.as_deref())
    }

    fn set_cost_weight(&mut self, lambda: f64) {
        self.lambda = lambda;
    }

    fn cost_weight(&self) -> f64 {
        self.lambda
    }

    fn set_ghost_weight(&mut self, mu: f64) {
        self.mu = mu;
    }

    fn ghost_weight(&self) -> f64 {
        self.mu
    }
}

/// [`LbSpec::Diffusion`]: first-order pairwise load exchange.
pub struct DiffusionPolicy {
    tolerance: f64,
    max_rounds: usize,
    /// λ gate on realizations; 0 unless set by the adaptive decorator.
    cost_weight: f64,
    /// μ gate on each candidate SD's ghost-traffic delta.
    ghost_weight: f64,
}

impl LbPolicy for DiffusionPolicy {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        let mut imbalance = metrics.imbalance.clone();
        let mut working = own.clone();
        let mut raw: Vec<Move> = Vec::new();
        let ghost = net.ghost_graph(self.ghost_weight);
        // Undirected exchange edges from the neighbour graph (the real
        // ghost-exchange adjacency when μ is active, the complete
        // link-class graph otherwise), cheapest class first (ties by ids)
        // so imbalance settles within racks before any of it crosses them.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, nbs) in net
            .neighbour_graph(own, self.ghost_weight)
            .iter()
            .enumerate()
        {
            for &j in nbs {
                if (j as usize) > i {
                    edges.push((i as NodeId, j));
                }
            }
        }
        edges.sort_by(|&(a, b), &(c, d)| {
            net.comm
                .link_class(a, b)
                .cmp(&net.comm.link_class(c, d))
                .then(a.cmp(&c))
                .then(b.cmp(&d))
        });
        for _round in 0..self.max_rounds {
            let worst = imbalance.iter().map(|v| v.abs()).max().unwrap_or(0);
            if (worst as f64) <= self.tolerance {
                break;
            }
            let mut progressed = false;
            for &(i, j) in &edges {
                // settle half the pair's difference toward the needier end
                let flow = (imbalance[j as usize] - imbalance[i as usize]) / 2;
                if flow == 0 {
                    continue;
                }
                let (src, dst, amount) = if flow > 0 {
                    (i, j, flow as usize)
                } else {
                    (j, i, (-flow) as usize)
                };
                let relief = metrics.relief_per_sd(src as usize);
                let gain = |sd| {
                    relief - self.cost_weight * net.comm.seconds(src, dst, net.sd_bytes.get(sd))
                };
                let realized = match ghost {
                    Some(g) => {
                        // one SD at a time so every delta is exact against
                        // the evolving ownership (see realize_ghost_aware)
                        realize_ghost_aware(&mut working, &mut raw, src, dst, amount, |o, sd| {
                            gain(sd)
                                - self.ghost_weight * ghost_delta_seconds(&net.comm, g, o, sd, dst)
                        })
                    }
                    None => {
                        let chosen = select_transfer_scored(&working, src, dst, amount, gain);
                        for &sd in &chosen {
                            working.set_owner(sd, dst);
                            raw.push(Move {
                                sd,
                                from: src,
                                to: dst,
                            });
                        }
                        chosen.len() as i64
                    }
                };
                if realized == 0 {
                    continue;
                }
                imbalance[dst as usize] -= realized;
                imbalance[src as usize] += realized;
                progressed = true;
            }
            // exhausted frontiers or fully gated: residual imbalance stays
            // for the next epoch, like the tree planner's residuals
            if !progressed {
                break;
            }
        }
        finish_plan(metrics.clone(), working, raw, &net.comm, &net.sd_bytes)
    }

    fn set_cost_weight(&mut self, lambda: f64) {
        self.cost_weight = lambda;
    }

    fn cost_weight(&self) -> f64 {
        self.cost_weight
    }

    fn set_ghost_weight(&mut self, mu: f64) {
        self.ghost_weight = mu;
    }

    fn ghost_weight(&self) -> f64 {
        self.ghost_weight
    }
}

/// [`LbSpec::GreedySteal`]: max-loaded rank sheds to its cheapest
/// underloaded neighbour, one SD at a time.
pub struct GreedyStealPolicy {
    threshold: usize,
    /// λ gate on steals; 0 unless set by the adaptive decorator.
    cost_weight: f64,
    /// μ gate on each candidate SD's ghost-traffic delta.
    ghost_weight: f64,
}

impl LbPolicy for GreedyStealPolicy {
    fn name(&self) -> &'static str {
        "greedy-steal"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        let n = own.n_nodes() as usize;
        let mut imbalance = metrics.imbalance.clone();
        let mut working = own.clone();
        let mut raw: Vec<Move> = Vec::new();
        let ghost = net.ghost_graph(self.ghost_weight);
        let graph = net.neighbour_graph(own, self.ghost_weight);
        // A rank whose every candidate fails (no reachable frontier, or
        // fully λ-gated) is parked so the loop always terminates: each
        // iteration either realizes a move (shrinking Σ|imbalance|) or
        // parks one rank.
        let mut parked = vec![false; n];
        while let Some(src) = (0..n)
            .filter(|&i| !parked[i] && -imbalance[i] >= self.threshold as i64)
            .min_by_key(|&i| (imbalance[i], i))
        {
            let mut moved = false;
            for &dst in &graph[src] {
                if imbalance[dst as usize] <= 0 {
                    continue;
                }
                let relief = metrics.relief_per_sd(src);
                let gain = |sd| {
                    relief
                        - self.cost_weight
                            * net.comm.seconds(src as NodeId, dst, net.sd_bytes.get(sd))
                };
                let chosen = match ghost {
                    Some(g) => select_transfer_scored(&working, src as NodeId, dst, 1, |sd| {
                        gain(sd)
                            - self.ghost_weight
                                * ghost_delta_seconds(&net.comm, g, working.owners(), sd, dst)
                    }),
                    None => select_transfer_scored(&working, src as NodeId, dst, 1, gain),
                };
                if let Some(&sd) = chosen.first() {
                    working.set_owner(sd, dst);
                    raw.push(Move {
                        sd,
                        from: src as NodeId,
                        to: dst,
                    });
                    imbalance[dst as usize] -= 1;
                    imbalance[src] += 1;
                    moved = true;
                    break;
                }
            }
            if !moved {
                parked[src] = true;
            }
        }
        finish_plan(metrics.clone(), working, raw, &net.comm, &net.sd_bytes)
    }

    fn set_cost_weight(&mut self, lambda: f64) {
        self.cost_weight = lambda;
    }

    fn cost_weight(&self) -> f64 {
        self.cost_weight
    }

    fn set_ghost_weight(&mut self, mu: f64) {
        self.ghost_weight = mu;
    }

    fn ghost_weight(&self) -> f64 {
        self.ghost_weight
    }
}

/// [`LbSpec::AdaptiveLambda`]: closes the λ feedback loop. Doubles the
/// inner policy's cost weight when migrations stalled the last window more
/// than the target fraction, halves it when they stalled less than half
/// the target (the dead band in between holds λ steady, avoiding
/// oscillation around the setpoint).
pub struct AdaptiveLambdaPolicy {
    inner: Box<dyn LbPolicy>,
    target_stall_frac: f64,
    lambda: f64,
}

impl AdaptiveLambdaPolicy {
    /// λ is clamped here so `CostParams::new` can never see a non-finite
    /// weight, no matter how many stalled epochs pile up.
    const LAMBDA_MAX: f64 = 1e9;
    /// Below this, λ snaps to exactly 0 so the inner policy degenerates to
    /// its count-based behaviour instead of carrying float dust.
    const LAMBDA_MIN: f64 = 1e-6;
}

impl LbPolicy for AdaptiveLambdaPolicy {
    fn name(&self) -> &'static str {
        "adaptive-lambda"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        self.inner.set_cost_weight(self.lambda);
        self.inner.plan(own, metrics, net)
    }

    fn observe_stall(&mut self, stall_frac: f64) {
        if !stall_frac.is_finite() || stall_frac < 0.0 {
            return;
        }
        if stall_frac > self.target_stall_frac {
            self.lambda = if self.lambda <= 0.0 {
                1.0
            } else {
                (self.lambda * 2.0).min(Self::LAMBDA_MAX)
            };
        } else if stall_frac < self.target_stall_frac * 0.5 {
            self.lambda *= 0.5;
            if self.lambda < Self::LAMBDA_MIN {
                self.lambda = 0.0;
            }
        }
    }

    fn set_cost_weight(&mut self, lambda: f64) {
        self.lambda = lambda;
    }

    fn cost_weight(&self) -> f64 {
        self.lambda
    }

    /// The ghost gate is orthogonal to the adapted λ: forward it to the
    /// inner policy untouched.
    fn set_ghost_weight(&mut self, mu: f64) {
        self.inner.set_ghost_weight(mu);
    }

    fn ghost_weight(&self) -> f64 {
        self.inner.ghost_weight()
    }

    /// Ghost-stall feedback is the μ decorator's signal: forward it so an
    /// inner adaptive-μ layer keeps learning through this decorator.
    fn observe_ghost_stall(&mut self, ghost_frac: f64) {
        self.inner.observe_ghost_stall(ghost_frac);
    }

    fn drift_info(&self) -> Option<crate::balance::repart::DriftInfo> {
        self.inner.drift_info()
    }
}

/// [`LbSpec::AdaptiveMu`]: closes the μ feedback loop. Doubles the inner
/// policy's ghost weight when the measured ghost-stall fraction of the
/// last window exceeded the target, halves it when it stayed under half
/// the target (the dead band in between holds μ steady). The engaged
/// weight starts at the bottom of the shaping band (≈ 0.05 with
/// seconds-scaled busy times) so the first correction shapes plans
/// instead of freezing them.
pub struct AdaptiveMuPolicy {
    inner: Box<dyn LbPolicy>,
    target_ghost_frac: f64,
    mu: f64,
}

impl AdaptiveMuPolicy {
    /// μ is clamped so `CostParams` can never see a non-finite weight.
    const MU_MAX: f64 = 1e9;
    /// Below this, μ snaps to exactly 0 so the inner policy degenerates to
    /// its ghost-blind behaviour instead of carrying float dust.
    const MU_MIN: f64 = 1e-6;
    /// The weight the first engagement starts from — the bottom of the
    /// A9 shaping band.
    const MU_ENGAGE: f64 = 0.05;
}

impl LbPolicy for AdaptiveMuPolicy {
    fn name(&self) -> &'static str {
        "adaptive-mu"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        self.inner.set_ghost_weight(self.mu);
        self.inner.plan(own, metrics, net)
    }

    fn observe_ghost_stall(&mut self, ghost_frac: f64) {
        if !ghost_frac.is_finite() || ghost_frac < 0.0 {
            return;
        }
        if ghost_frac > self.target_ghost_frac {
            self.mu = if self.mu <= 0.0 {
                Self::MU_ENGAGE
            } else {
                (self.mu * 2.0).min(Self::MU_MAX)
            };
        } else if ghost_frac < self.target_ghost_frac * 0.5 {
            self.mu *= 0.5;
            if self.mu < Self::MU_MIN {
                self.mu = 0.0;
            }
        }
    }

    /// The migration-stall signal belongs to an inner λ decorator (if
    /// any): forward it untouched.
    fn observe_stall(&mut self, stall_frac: f64) {
        self.inner.observe_stall(stall_frac);
    }

    /// The cost gate is orthogonal to the adapted μ: forward it.
    fn set_cost_weight(&mut self, lambda: f64) {
        self.inner.set_cost_weight(lambda);
    }

    fn cost_weight(&self) -> f64 {
        self.inner.cost_weight()
    }

    fn set_ghost_weight(&mut self, mu: f64) {
        self.mu = mu;
    }

    fn ghost_weight(&self) -> f64 {
        self.mu
    }

    fn drift_info(&self) -> Option<crate::balance::repart::DriftInfo> {
        self.inner.drift_info()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::algorithm::{plan_rebalance, plan_rebalance_with_cost};
    use crate::balance::power::compute_metrics;
    use nlheat_mesh::{SdGrid, SdId};
    use nlheat_netmodel::{LinkSpec, TopologySpec};

    fn symmetric_busy(own: &Ownership) -> Vec<f64> {
        own.counts().iter().map(|&c| c.max(1) as f64).collect()
    }

    fn metrics_for(own: &Ownership, busy: &[f64]) -> LoadMetrics {
        compute_metrics(&own.counts(), busy)
    }

    /// The Fig. 14 imbalanced start: 5x5 SDs, 4 symmetric nodes.
    fn fig14_initial() -> Ownership {
        let sds = SdGrid::new(5, 5, 4);
        let mut owners = vec![0u32; 25];
        owners[sds.id(4, 0) as usize] = 1;
        owners[sds.id(4, 4) as usize] = 3;
        owners[sds.id(0, 4) as usize] = 2;
        Ownership::new(sds, owners, 4)
    }

    fn two_rack_net(sd_bytes: u64) -> LbNetwork {
        LbNetwork::from_spec(
            &NetSpec::Topology(TopologySpec {
                ranks_per_node: 1,
                nodes_per_rack: 2,
                intra_node: LinkSpec::new(0.0, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-9, f64::INFINITY),
                inter_rack: LinkSpec::new(10.0, 1.0),
            }),
            sd_bytes,
        )
    }

    /// Sweep of skewed ownerships/busy vectors shared by the invariant
    /// tests (same family as `moves_are_single_hop_per_sd`).
    fn sweep(mut check: impl FnMut(&Ownership, &[f64])) {
        let sds = SdGrid::new(6, 6, 4);
        for pattern in 0..8u32 {
            let owners: Vec<u32> = (0..36u32)
                .map(|sd| {
                    let (sx, sy) = sds.coords(sd);
                    ((sx as u32 + pattern) / 2 + 2 * (sy as u32 / 3)) % 4
                })
                .collect();
            let own = Ownership::new(sds, owners, 4);
            for skew in 0..4 {
                let busy: Vec<f64> = (0..4)
                    .map(|n| 1.0 + ((n + skew) % 4) as f64 * 1.7)
                    .collect();
                check(&own, &busy);
            }
        }
    }

    fn all_specs() -> Vec<LbSpec> {
        vec![
            LbSpec::tree(0.0),
            LbSpec::tree(1.0),
            LbSpec::diffusion(1.0, 8),
            LbSpec::greedy_steal(1),
            LbSpec::adaptive(LbSpec::tree(0.5), 0.1),
            LbSpec::adaptive(LbSpec::greedy_steal(1), 0.1),
            LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2),
            LbSpec::adaptive_mu(LbSpec::diffusion(1.0, 8), 0.2),
            LbSpec::hierarchical(LbSpec::tree(0.0), 0.0),
            LbSpec::hierarchical(LbSpec::greedy_steal(1), 0.5).with_mu(0.25),
            // ∞ threshold: the decorator is transparent, so it satisfies
            // the roster's "graph attachment changes nothing at μ=0"
            // pins; active repartitioning is pinned in `repart::tests`
            // and `tests/properties.rs`.
            LbSpec::repartition(LbSpec::tree(0.0), f64::INFINITY, 1, u64::MAX),
            LbSpec::repartition(
                LbSpec::hierarchical(LbSpec::tree(0.0), 0.0),
                f64::INFINITY,
                2,
                1 << 20,
            ),
        ]
    }

    #[test]
    fn tree_policy_is_byte_identical_to_planner() {
        // The tentpole acceptance criterion: routing Algorithm 1 through
        // the policy layer must not change a single move, at λ = 0 and
        // λ > 0 alike.
        let net = two_rack_net(1 << 12);
        for lambda in [0.0, 0.5, 2.0] {
            let mut policy = LbSpec::tree(lambda).build();
            sweep(|own, busy| {
                let direct = plan_rebalance_with_cost(
                    own,
                    busy,
                    &CostParams::new(net.comm, lambda, net.sd_bytes.clone()),
                );
                let via_policy = policy.plan(own, &metrics_for(own, busy), &net);
                assert_eq!(direct.moves, via_policy.moves, "λ={lambda}");
                assert_eq!(direct.new_ownership, via_policy.new_ownership);
                assert_eq!(direct.comm, via_policy.comm);
            });
        }
        // and with a free network the λ=0 tree matches the seed planner
        let mut policy = LbSpec::tree(0.0).build();
        sweep(|own, busy| {
            let seed = plan_rebalance(own, busy);
            let via_policy = policy.plan(own, &metrics_for(own, busy), &LbNetwork::free());
            assert_eq!(seed.moves, via_policy.moves);
        });
    }

    #[test]
    fn every_policy_emits_single_hop_plans() {
        // No SD moves twice, no move targets the SD's current owner, and
        // the moves land exactly on the claimed ownership — for every
        // variant over the skewed sweep.
        let net = two_rack_net(4 * 4 * 8 + 24);
        for spec in all_specs() {
            let mut policy = spec.build();
            sweep(|own, busy| {
                let plan = policy.plan(own, &metrics_for(own, busy), &net);
                let mut seen = std::collections::HashSet::new();
                for m in &plan.moves {
                    assert!(
                        seen.insert(m.sd),
                        "{}: SD {} moved twice",
                        spec.name(),
                        m.sd
                    );
                    assert_eq!(own.owner(m.sd), m.from, "{}: stale source", spec.name());
                    assert_ne!(m.from, m.to, "{}: no-op move", spec.name());
                }
                let mut check = own.clone();
                for m in &plan.moves {
                    check.set_owner(m.sd, m.to);
                }
                assert_eq!(check, plan.new_ownership, "{}", spec.name());
            });
        }
    }

    #[test]
    fn diffusion_balances_fig14() {
        let own = fig14_initial();
        let mut policy = LbSpec::diffusion(1.0, 16).build();
        let plan = policy.plan(
            &own,
            &metrics_for(&own, &symmetric_busy(&own)),
            &LbNetwork::free(),
        );
        assert!(!plan.is_noop());
        let counts = plan.new_ownership.counts();
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(
            spread < 21,
            "diffusion must shrink the 22/1/1/1 spread: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 25);
    }

    #[test]
    fn diffusion_tolerance_gates_small_imbalance() {
        // 13/12 split on two nodes: |imbalance| <= 1, within tolerance 1.
        let sds = SdGrid::new(5, 5, 4);
        let owners: Vec<u32> = (0..25).map(|i| u32::from(i >= 13)).collect();
        let own = Ownership::new(sds, owners, 2);
        let mut policy = LbSpec::diffusion(1.0, 8).build();
        let plan = policy.plan(
            &own,
            &metrics_for(&own, &symmetric_busy(&own)),
            &LbNetwork::free(),
        );
        assert!(plan.is_noop(), "within tolerance: {:?}", plan.moves);
    }

    #[test]
    fn greedy_steal_balances_two_nodes() {
        // 1x6 row, 5/1 split: greedy sheds frontier SDs one at a time.
        let sds = SdGrid::new(6, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 0, 0, 0, 1], 2);
        let mut policy = LbSpec::greedy_steal(1).build();
        let plan = policy.plan(
            &own,
            &metrics_for(&own, &symmetric_busy(&own)),
            &LbNetwork::free(),
        );
        assert_eq!(plan.new_ownership.counts(), vec![3, 3]);
        let moved: Vec<SdId> = plan.moves.iter().map(|m| m.sd).collect();
        assert_eq!(moved, vec![4, 3], "frontier first, ring by ring");
    }

    #[test]
    fn greedy_steal_threshold_parks_small_overloads() {
        let sds = SdGrid::new(6, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 0, 0, 1, 1], 2);
        // overload is 1; threshold 2 must not act
        let mut policy = LbSpec::greedy_steal(2).build();
        let plan = policy.plan(
            &own,
            &metrics_for(&own, &symmetric_busy(&own)),
            &LbNetwork::free(),
        );
        assert!(plan.is_noop(), "{:?}", plan.moves);
    }

    #[test]
    fn greedy_steal_prefers_cheap_neighbours() {
        // 8x1 row, racks {0,1} and {2,3}: node 1 holds 5 of 8 SDs while
        // its rack peer 0 and the inter-rack nodes 2, 3 are each one SD
        // under their share. Greedy must satisfy the rack peer first, even
        // though the inter-rack candidates are equally underloaded.
        let sds = SdGrid::new(8, 1, 4);
        let own = Ownership::new(sds, vec![0, 1, 1, 1, 1, 1, 2, 3], 4);
        let net = two_rack_net(1000);
        let mut policy = LbSpec::greedy_steal(1).build();
        let plan = policy.plan(&own, &metrics_for(&own, &symmetric_busy(&own)), &net);
        assert!(!plan.is_noop());
        let first = plan.moves[0];
        assert_eq!(
            (first.from, first.to),
            (1, 0),
            "rack peer must be served first: {:?}",
            plan.moves
        );
        assert_eq!(plan.new_ownership.counts()[0], 2, "peer topped up");
    }

    #[test]
    fn adaptive_lambda_tracks_stall_feedback() {
        let mut policy = LbSpec::adaptive(LbSpec::tree(0.0), 0.1).build();
        assert_eq!(policy.cost_weight(), 0.0, "starts from the inner λ");
        policy.observe_stall(0.5); // stalled well above target: engage gate
        assert_eq!(policy.cost_weight(), 1.0);
        policy.observe_stall(0.5);
        assert_eq!(policy.cost_weight(), 2.0, "doubles while stalling");
        policy.observe_stall(0.07); // inside the dead band: hold
        assert_eq!(policy.cost_weight(), 2.0);
        policy.observe_stall(0.01); // below half target: relax
        assert_eq!(policy.cost_weight(), 1.0);
        for _ in 0..40 {
            policy.observe_stall(0.0);
        }
        assert_eq!(policy.cost_weight(), 0.0, "λ decays to exactly 0");
        // garbage feedback is ignored
        policy.observe_stall(f64::NAN);
        policy.observe_stall(-1.0);
        assert_eq!(policy.cost_weight(), 0.0);
    }

    #[test]
    fn adaptive_lambda_steers_its_inner_tree() {
        // Same 8x1 two-rack fixture as the planner's gating test: with a
        // raised λ the wrapped tree must stop crossing racks.
        let sds = SdGrid::new(8, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 1, 1, 1, 1, 2, 3], 4);
        let busy = symmetric_busy(&own);
        let net = two_rack_net(1000);
        let mut policy = LbSpec::adaptive(LbSpec::tree(0.0), 0.05).build();
        let free_plan = policy.plan(&own, &metrics_for(&own, &busy), &net);
        assert!(
            free_plan.comm.inter_rack_bytes() > 0,
            "λ=0 must cross racks: {:?}",
            free_plan.moves
        );
        policy.observe_stall(0.9); // λ -> 1: inter-rack cost >> relief
        let gated = policy.plan(&own, &metrics_for(&own, &busy), &net);
        assert_eq!(
            gated.comm.inter_rack_bytes(),
            0,
            "raised λ must gate the uplink: {:?}",
            gated.moves
        );
        assert!(!gated.is_noop(), "intra-rack settlement must survive");
    }

    #[test]
    fn schedule_builders() {
        let sched = LbSchedule::every(4).with_spec(LbSpec::greedy_steal(2));
        assert_eq!(sched.period, 4);
        assert_eq!(
            sched.spec,
            LbSpec::GreedySteal {
                threshold: 2,
                mu: 0.0
            }
        );
        assert_eq!(
            LbSchedule::every(3).spec,
            LbSpec::Tree {
                lambda: 0.0,
                mu: 0.0
            }
        );
        // with_mu reaches the variant's μ field, through decorators too
        assert_eq!(
            LbSpec::tree(1.0).with_mu(0.5),
            LbSpec::Tree {
                lambda: 1.0,
                mu: 0.5
            }
        );
        match LbSpec::adaptive(LbSpec::greedy_steal(1), 0.1).with_mu(2.0) {
            LbSpec::AdaptiveLambda { inner, .. } => {
                assert_eq!(
                    *inner,
                    LbSpec::GreedySteal {
                        threshold: 1,
                        mu: 2.0
                    }
                );
            }
            other => panic!("decorator shape lost: {other:?}"),
        }
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(LbSpec::tree(0.0).name(), "tree");
        assert_eq!(LbSpec::diffusion(1.0, 4).name(), "diffusion");
        assert_eq!(LbSpec::greedy_steal(1).name(), "greedy-steal");
        let spec = LbSpec::adaptive(LbSpec::diffusion(1.0, 4), 0.2);
        assert_eq!(spec.name(), "adaptive-lambda");
        assert_eq!(spec.build().name(), "adaptive-lambda");
        let spec = LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2);
        assert_eq!(spec.name(), "adaptive-mu");
        assert_eq!(spec.build().name(), "adaptive-mu");
        let spec = LbSpec::hierarchical(LbSpec::tree(0.0), 0.0);
        assert_eq!(spec.name(), "hierarchical");
        assert_eq!(spec.build().name(), "hierarchical");
        let spec = LbSpec::repartition(LbSpec::tree(0.0), 2.0, 4, u64::MAX);
        assert_eq!(spec.name(), "repartition");
        assert_eq!(spec.build().name(), "repartition");
    }

    #[test]
    #[should_panic(expected = "Repartition cannot wrap another Repartition")]
    fn nested_repartition_is_rejected() {
        LbSpec::repartition(
            LbSpec::adaptive_mu(
                LbSpec::repartition(LbSpec::tree(0.0), 2.0, 1, u64::MAX),
                0.2,
            ),
            2.0,
            1,
            u64::MAX,
        );
    }

    #[test]
    fn repartition_forwards_weights_and_drift_through_decorators() {
        let spec = LbSpec::repartition(LbSpec::tree(0.5), 2.0, 1, u64::MAX).with_mu(0.25);
        match &spec {
            LbSpec::Repartition { inner, .. } => {
                assert_eq!(
                    **inner,
                    LbSpec::Tree {
                        lambda: 0.5,
                        mu: 0.25
                    }
                );
            }
            other => panic!("shape lost: {other:?}"),
        }
        let policy = spec.build();
        assert_eq!(policy.cost_weight(), 0.5);
        assert_eq!(policy.ghost_weight(), 0.25);
        assert!(policy.drift_info().is_some(), "monitor must report");
        // an adaptive decorator over Repartition surfaces the drift info
        let wrapped = LbSpec::adaptive(
            LbSpec::repartition(LbSpec::tree(0.0), 2.0, 1, u64::MAX),
            0.1,
        )
        .build();
        assert!(wrapped.drift_info().is_some());
        // …and plain policies report none
        assert!(LbSpec::tree(0.0).build().drift_info().is_none());
    }

    #[test]
    fn hierarchical_spec_round_trips_weights() {
        // with_mu reaches both the machinery's μ and the delegate's
        let spec = LbSpec::hierarchical(LbSpec::tree(0.0), 2.0).with_mu(0.5);
        match &spec {
            LbSpec::Hierarchical { inner, lambda, mu } => {
                assert_eq!((*lambda, *mu), (2.0, 0.5));
                assert_eq!(
                    **inner,
                    LbSpec::Tree {
                        lambda: 0.0,
                        mu: 0.5
                    }
                );
            }
            other => panic!("shape lost: {other:?}"),
        }
        let policy = spec.build();
        assert_eq!(policy.cost_weight(), 2.0);
        assert_eq!(policy.ghost_weight(), 0.5);
    }

    #[test]
    #[should_panic(expected = "requires a leaf policy")]
    fn hierarchical_rejects_decorator_inner() {
        let _ = LbSpec::hierarchical(LbSpec::adaptive(LbSpec::tree(0.0), 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "requires a leaf policy")]
    fn hierarchical_rejects_nested_hierarchy() {
        let _ = LbSpec::hierarchical(LbSpec::hierarchical(LbSpec::tree(0.0), 0.0), 0.0);
    }

    #[test]
    fn adaptive_decorator_can_wrap_hierarchical() {
        // the decorators adapt λ/μ through set_*_weight, which the
        // hierarchical policy forwards — wrapping it IS allowed
        let spec = LbSpec::adaptive(LbSpec::hierarchical(LbSpec::tree(0.0), 0.0), 0.1);
        spec.validate();
        let mut policy = spec.build();
        policy.observe_stall(0.9);
        assert_eq!(policy.cost_weight(), 1.0, "outer λ engaged");
    }

    #[test]
    fn adaptive_mu_tracks_ghost_stall_feedback() {
        let mut policy = LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2).build();
        assert_eq!(policy.ghost_weight(), 0.0, "starts from the inner μ");
        policy.observe_ghost_stall(0.5); // well above target: engage gate
        assert_eq!(policy.ghost_weight(), 0.05, "engages at the shaping band");
        policy.observe_ghost_stall(0.5);
        assert_eq!(policy.ghost_weight(), 0.1, "doubles while stalling");
        policy.observe_ghost_stall(0.15); // inside the dead band: hold
        assert_eq!(policy.ghost_weight(), 0.1);
        policy.observe_ghost_stall(0.05); // below half target: relax
        assert_eq!(policy.ghost_weight(), 0.05);
        for _ in 0..40 {
            policy.observe_ghost_stall(0.0);
        }
        assert_eq!(policy.ghost_weight(), 0.0, "μ decays to exactly 0");
        // garbage feedback is ignored
        policy.observe_ghost_stall(f64::NAN);
        policy.observe_ghost_stall(-1.0);
        assert_eq!(policy.ghost_weight(), 0.0);
    }

    #[test]
    fn adaptive_mu_steers_its_inner_tree() {
        // The huge-μ gating fixture, but with μ learned from feedback
        // instead of configured: after enough ghost-stalled windows the
        // decorator's μ must gate the cut-worsening plan.
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36).map(|sd| u32::from(sds.coords(sd).0 >= 3)).collect();
        let own = Ownership::new(sds, owners, 2);
        let busy = vec![9.0, 1.0];
        let graph = std::sync::Arc::new(nlheat_partition::SdGraph::build(&sds, 1));
        let net = LbNetwork::from_spec(&NetSpec::cluster(), 1000).with_sd_graph(graph);
        let mut policy = LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.05).build();
        assert!(
            !policy.plan(&own, &metrics_for(&own, &busy), &net).is_noop(),
            "μ=0 must balance the skew"
        );
        for _ in 0..60 {
            policy.observe_ghost_stall(1.0); // every window fully stalled
        }
        assert!(
            policy.plan(&own, &metrics_for(&own, &busy), &net).is_noop(),
            "learned μ={} must refuse cut-worsening moves",
            policy.ghost_weight()
        );
    }

    #[test]
    fn adaptive_decorators_compose_both_ways() {
        // λ(μ(tree)) and μ(λ(tree)) both validate, build, and route each
        // feedback signal to its owning layer.
        let both = LbSpec::adaptive(LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.2), 0.1);
        both.validate();
        let mut policy = both.build();
        policy.observe_stall(0.9);
        policy.observe_ghost_stall(0.9);
        assert_eq!(policy.cost_weight(), 1.0, "outer λ engaged");
        assert_eq!(policy.ghost_weight(), 0.05, "inner μ engaged through λ");
        let other = LbSpec::adaptive_mu(LbSpec::adaptive(LbSpec::tree(0.0), 0.1), 0.2);
        other.validate();
        let mut policy = other.build();
        policy.observe_stall(0.9);
        policy.observe_ghost_stall(0.9);
        assert_eq!(policy.cost_weight(), 1.0, "inner λ engaged through μ");
        assert_eq!(policy.ghost_weight(), 0.05, "outer μ engaged");
    }

    #[test]
    #[should_panic(expected = "AdaptiveMu cannot wrap another AdaptiveMu")]
    fn nested_adaptive_mu_rejected() {
        let _ = LbSpec::adaptive_mu(LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.1), 0.1);
    }

    #[test]
    #[should_panic(expected = "AdaptiveLambda cannot wrap another AdaptiveLambda")]
    fn nested_adaptive_lambda_through_mu_rejected() {
        // the inert nesting must be caught through an interposed μ layer
        let _ = LbSpec::adaptive(
            LbSpec::adaptive_mu(LbSpec::adaptive(LbSpec::tree(0.0), 0.1), 0.2),
            0.1,
        );
    }

    #[test]
    #[should_panic(expected = "target_ghost_frac must be in (0, 1)")]
    fn adaptive_mu_rejects_bad_target() {
        let _ = LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn tree_rejects_negative_lambda() {
        let _ = LbSpec::tree(-1.0);
    }

    #[test]
    #[should_panic(expected = "tolerance must be finite and positive")]
    fn diffusion_rejects_zero_tolerance() {
        let _ = LbSpec::diffusion(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "max_rounds must be at least 1")]
    fn diffusion_rejects_zero_rounds() {
        let _ = LbSpec::diffusion(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn greedy_rejects_zero_threshold() {
        let _ = LbSpec::greedy_steal(0);
    }

    #[test]
    #[should_panic(expected = "target_stall_frac must be in (0, 1)")]
    fn adaptive_rejects_bad_target() {
        let _ = LbSpec::adaptive(LbSpec::tree(0.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot wrap another AdaptiveLambda")]
    fn nested_adaptive_rejected() {
        // would be silently inert (outer λ clobbers inner every epoch)
        let _ = LbSpec::adaptive(LbSpec::adaptive(LbSpec::tree(0.0), 0.1), 0.1);
    }

    #[test]
    fn mu_zero_with_graph_attached_is_byte_identical() {
        // The tentpole acceptance criterion at unit scale: attaching the
        // SdGraph must not change a single move while μ = 0, for every
        // policy variant — the ghost machinery is pinned inert.
        let sds = SdGrid::new(6, 6, 4);
        let graph = std::sync::Arc::new(nlheat_partition::SdGraph::build(&sds, 2));
        let plain = two_rack_net(4 * 4 * 8 + 24);
        let with_graph = plain.clone().with_sd_graph(graph);
        for spec in all_specs() {
            let mut a = spec.build();
            let mut b = spec.build();
            sweep(|own, busy| {
                let m = metrics_for(own, busy);
                let pa = a.plan(own, &m, &plain);
                let pb = b.plan(own, &m, &with_graph);
                assert_eq!(pa.moves, pb.moves, "{}", spec.name());
                assert_eq!(pa.new_ownership, pb.new_ownership, "{}", spec.name());
            });
        }
    }

    #[test]
    fn huge_mu_gates_cut_worsening_moves() {
        // 6x6 halves: every borrowing move roughens the straight column
        // boundary, i.e. adds recurring ghost traffic. An enormous μ must
        // therefore gate the whole plan; μ = 0 keeps balancing.
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36).map(|sd| u32::from(sds.coords(sd).0 >= 3)).collect();
        let own = Ownership::new(sds, owners, 2);
        let busy = vec![9.0, 1.0];
        let graph = std::sync::Arc::new(nlheat_partition::SdGraph::build(&sds, 1));
        let net = LbNetwork::from_spec(&NetSpec::cluster(), 1000).with_sd_graph(graph);
        let mut free = LbSpec::tree(0.0).build();
        assert!(
            !free.plan(&own, &metrics_for(&own, &busy), &net).is_noop(),
            "μ=0 must balance the skew"
        );
        let mut gated = LbSpec::tree(0.0).with_mu(1e12).build();
        assert!(
            gated.plan(&own, &metrics_for(&own, &busy), &net).is_noop(),
            "huge μ must refuse cut-worsening moves"
        );
    }

    #[test]
    fn ghost_weight_hooks_round_trip_and_steer_plans() {
        // The μ feedback seam (the future AdaptiveMu decorator's handle):
        // every concrete policy round-trips set_ghost_weight, the
        // decorator forwards to its inner policy, and a raised μ actually
        // changes planning — the same gate as the spec-level field.
        for spec in [
            LbSpec::tree(0.0),
            LbSpec::diffusion(1.0, 8),
            LbSpec::greedy_steal(1),
            LbSpec::adaptive(LbSpec::tree(0.0), 0.1),
            LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.1),
        ] {
            let mut policy = spec.with_mu(0.75).build();
            assert_eq!(policy.ghost_weight(), 0.75, "{}: spec μ", policy.name());
            policy.set_ghost_weight(2.5);
            assert_eq!(policy.ghost_weight(), 2.5, "{}: round trip", policy.name());
        }
        // steering: the huge_mu fixture, but with μ injected through the
        // hook after build instead of the spec
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36).map(|sd| u32::from(sds.coords(sd).0 >= 3)).collect();
        let own = Ownership::new(sds, owners, 2);
        let busy = vec![9.0, 1.0];
        let graph = std::sync::Arc::new(nlheat_partition::SdGraph::build(&sds, 1));
        let net = LbNetwork::from_spec(&NetSpec::cluster(), 1000).with_sd_graph(graph);
        let mut policy = LbSpec::tree(0.0).build();
        assert!(!policy.plan(&own, &metrics_for(&own, &busy), &net).is_noop());
        policy.set_ghost_weight(1e12);
        assert!(
            policy.plan(&own, &metrics_for(&own, &busy), &net).is_noop(),
            "hook-injected μ must gate like the spec field"
        );
    }

    #[test]
    fn neighbour_graph_projects_real_adjacency_when_ghost_active() {
        // 8x1 row over 4 nodes in 2 racks: territory adjacency is the
        // chain 0-1-2-3. Ghost-active policies see exactly that chain
        // (cheapest class first); ghost-blind ones see the complete graph.
        let sds = SdGrid::new(8, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let graph = std::sync::Arc::new(nlheat_partition::SdGraph::build(&sds, 1));
        let net = two_rack_net(1000).with_sd_graph(graph);
        let projected = net.neighbour_graph(&own, 1.0);
        assert_eq!(projected[0], vec![1]);
        assert_eq!(projected[1], vec![0, 2], "intra-rack peer first");
        assert_eq!(projected[2], vec![3, 1]);
        assert_eq!(projected[3], vec![2]);
        // μ = 0 falls back to the complete link-class graph
        assert_eq!(
            net.neighbour_graph(&own, 0.0),
            net.comm.neighbour_graph(4),
            "ghost-blind path must stay the PR-3 complete graph"
        );
        // an empty territory keeps every partner (bootstrap seeding)
        let lopsided = Ownership::new(sds, vec![0, 0, 0, 0, 0, 0, 1, 1], 3);
        let boot = net.neighbour_graph(&lopsided, 1.0);
        assert_eq!(boot[2], vec![0, 1], "empty node 2 reaches everyone");
        assert!(boot[0].contains(&2) && boot[1].contains(&2));
    }

    #[test]
    fn sd_tile_view_is_the_shared_wire_formula() {
        // both substrates derive sd_bytes through this one constructor
        let net = LbNetwork::for_sd_tiles(&NetSpec::cluster(), 25 * 25);
        assert_eq!(net.sd_bytes, SdBytes::Uniform(25 * 25 * 8 + 24));
        assert_eq!(net.sd_bytes.get(0), 25 * 25 * 8 + 24);
        assert!(!net.comm.is_free());
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn adaptive_validates_its_inner_spec() {
        // constructed via the struct literal so only validate() can catch it
        let spec = LbSpec::AdaptiveLambda {
            inner: Box::new(LbSpec::Tree {
                lambda: f64::NAN,
                mu: 0.0,
            }),
            target_stall_frac: 0.1,
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "mu must be finite")]
    fn negative_mu_rejected() {
        let _ = LbSpec::tree(0.0).with_mu(-0.5);
    }

    #[test]
    #[should_panic(expected = "mu must be finite")]
    fn nan_mu_rejected_by_validate() {
        let spec = LbSpec::GreedySteal {
            threshold: 1,
            mu: f64::NAN,
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "period must be at least 1")]
    fn zero_period_rejected() {
        let _ = LbSchedule::every(0);
    }
}
