//! The hierarchical, memory-aware planner: settle load imbalance between
//! racks first, then between the nodes of each rack, then between the
//! ranks of each node — each level over its own coarse group graph — so a
//! 10k-rank cluster plans in near-linear time where the flat planner's
//! per-node `node_adjacency()` recomputation and `owned_by()` frontier
//! scans go superlinear.
//!
//! Each level runs the same Algorithm-1 shape the flat planner uses
//! (power-proportional expected shares, dependency forest rooted at the
//! minimum imbalance, topological `imbalance/L` settlement), but over
//! *groups* (racks, nodes, ranks) instead of ranks, with transfers
//! realized along the SD frontier between the two groups:
//!
//! 1. one O(`n_sds`) boundary pass builds the group adjacency and the
//!    per-ordered-pair frontier SD sets;
//! 2. group power is the sum of the member ranks' measured power
//!    (eq. 8), so expected shares (eq. 10) aggregate consistently;
//! 3. a transfer `src → dst` pops frontier SDs in id order, assigns each
//!    to the lowest-id adjacent rank of the destination group, and grows
//!    the frontier incrementally as territory recedes — no per-move
//!    rescans.
//!
//! The planner is **memory-aware** end to end: when the [`LbNetwork`]
//! carries per-rank capacities and per-SD resident footprints, every
//! level rejects a destination whose memory the move would overflow, and
//! the running usage advances with each realized move. λ gates each move
//! by its migration cost and μ by its recurring ghost-traffic delta,
//! exactly like the flat planner ([`ghost_delta_seconds`]); residual
//! imbalance that the frontier, the gates, or the capacities refuse
//! simply stays for the next epoch — the algorithm is iterative by
//! design.
//!
//! The rank → node → rack hierarchy comes from the
//! [`TopologySpec`](nlheat_netmodel::TopologySpec) behind the active
//! [`CommCost`]; on a degenerate hierarchy (no topology, or a single
//! rack of single-rank nodes) [`HierPolicy`] delegates to its configured
//! inner leaf policy wholesale — byte-identical plans by construction —
//! unless memory capacities are attached, in which case the capacity-
//! gated machinery runs even flat.

use crate::balance::algorithm::{finish_plan, ghost_delta_seconds, MigrationPlan, Move};
use crate::balance::policy::{LbNetwork, LbPolicy};
use crate::balance::power::{largest_remainder_round, LoadMetrics};
use crate::balance::tree::build_forest_weighted;
use crate::ownership::{NodeId, Ownership};
use nlheat_mesh::SdId;
use nlheat_netmodel::CommCost;
use nlheat_partition::SdGraph;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// One granularity of the hierarchy: ranks aggregated into groups
/// (racks, nodes, or the ranks themselves), groups partitioned into
/// scopes balanced independently (the whole cluster, one rack, one
/// node).
struct Level {
    /// Group of each rank (indexed by rank id).
    group_of: Vec<u32>,
    /// Scope of each group (indexed by group id). Imbalance settles only
    /// between groups of the same scope — cross-scope imbalance belongs
    /// to the coarser level.
    scope_of: Vec<u32>,
    n_groups: usize,
}

/// Per-rank memory bookkeeping: capacities, per-SD resident footprints,
/// and the running usage the plan's realized moves advance.
struct MemoryState {
    caps: Arc<Vec<u64>>,
    footprints: Arc<Vec<u64>>,
    usage: Vec<u64>,
}

impl MemoryState {
    /// Whether `rank` can host `sd` without overflowing its capacity.
    fn fits(&self, rank: NodeId, sd: SdId) -> bool {
        let cap = self.caps.get(rank as usize).copied().unwrap_or(u64::MAX);
        self.usage[rank as usize].saturating_add(self.footprints[sd as usize]) <= cap
    }

    fn apply(&mut self, sd: SdId, from: NodeId, to: NodeId) {
        let fp = self.footprints[sd as usize];
        self.usage[from as usize] -= fp;
        self.usage[to as usize] += fp;
    }
}

/// The planning knobs shared by every level.
struct PlanCtx<'a> {
    metrics: &'a LoadMetrics,
    net: &'a LbNetwork,
    lambda: f64,
    mu: f64,
    /// `sd_bytes.nominal()`, computed once — the per-SD mean is O(n_sds).
    nominal: u64,
    /// λ terms can affect the plan (λ > 0 over a non-free network).
    lambda_active: bool,
}

impl PlanCtx<'_> {
    /// λ-weighted seconds of migrating one nominal tile between the
    /// groups' representative ranks — the group-graph ordering weight;
    /// exactly 0 when inactive.
    fn edge_weight(&self, rep_src: NodeId, rep_dst: NodeId) -> f64 {
        if self.lambda_active {
            self.lambda * self.net.comm.seconds(rep_src, rep_dst, self.nominal)
        } else {
            0.0
        }
    }
}

/// True when the comm hierarchy offers nothing coarser than ranks: no
/// topology at all, or a single rack of single-rank nodes. [`HierPolicy`]
/// then delegates to its inner leaf policy (byte-identical plans) unless
/// memory capacities force the gated machinery to run anyway.
pub fn hierarchy_is_degenerate(n_ranks: u32, comm: &CommCost) -> bool {
    match comm.topology_spec() {
        None => true,
        Some(t) => t.ranks_per_node <= 1 && (n_ranks == 0 || t.rack_of(n_ranks - 1) == 0),
    }
}

/// Plan one epoch hierarchically: racks, then nodes within each rack,
/// then ranks within each node (a flat single level when the network has
/// no [`TopologySpec`](nlheat_netmodel::TopologySpec)). Emits the same
/// single-hop [`MigrationPlan`] contract as every other policy, via the
/// shared `finish_plan` collapse.
pub fn plan_hierarchical(
    own: &Ownership,
    metrics: &LoadMetrics,
    net: &LbNetwork,
    lambda: f64,
    mu: f64,
) -> MigrationPlan {
    let n_ranks = own.n_nodes() as usize;
    assert_eq!(metrics.counts.len(), n_ranks, "metrics cover every rank");
    let ghost = net.ghost_graph(mu);
    if let Some(g) = ghost {
        assert_eq!(g.n_sds(), own.sds().count(), "ghost graph covers the grid");
    }

    let levels: Vec<Level> = match net.comm.topology_spec() {
        Some(t) => {
            let node_of: Vec<u32> = (0..n_ranks).map(|r| t.node_of(r as u32) as u32).collect();
            let rack_of: Vec<u32> = (0..n_ranks).map(|r| t.rack_of(r as u32) as u32).collect();
            // node/rack ids are monotone in the rank id
            let n_nodes = node_of.last().map_or(0, |&v| v as usize + 1);
            let n_racks = rack_of.last().map_or(0, |&v| v as usize + 1);
            let node_scope: Vec<u32> = (0..n_nodes)
                .map(|nd| (nd / t.nodes_per_rack) as u32)
                .collect();
            vec![
                Level {
                    group_of: rack_of,
                    scope_of: vec![0; n_racks],
                    n_groups: n_racks,
                },
                Level {
                    group_of: node_of.clone(),
                    scope_of: node_scope,
                    n_groups: n_nodes,
                },
                Level {
                    group_of: (0..n_ranks as u32).collect(),
                    scope_of: node_of,
                    n_groups: n_ranks,
                },
            ]
        }
        // no hierarchy: one flat level (reached when memory capacities
        // demand the gated machinery on a topology-less network)
        None => vec![Level {
            group_of: (0..n_ranks as u32).collect(),
            scope_of: vec![0; n_ranks],
            n_groups: n_ranks,
        }],
    };

    let mut mem = match (&net.memory_bytes, &net.sd_footprint) {
        (Some(caps), Some(fps)) => {
            assert_eq!(fps.len(), own.sds().count(), "one footprint per SD");
            let mut usage = vec![0u64; n_ranks];
            for (sd, &o) in own.owners().iter().enumerate() {
                usage[o as usize] += fps[sd];
            }
            Some(MemoryState {
                caps: caps.clone(),
                footprints: fps.clone(),
                usage,
            })
        }
        _ => None,
    };

    let ctx = PlanCtx {
        metrics,
        net,
        lambda,
        mu,
        nominal: net.sd_bytes.nominal(),
        lambda_active: lambda > 0.0 && !net.comm.is_free(),
    };
    let mut working = own.clone();
    let mut raw: Vec<Move> = Vec::new();
    for level in &levels {
        balance_level(&ctx, &mut working, &mut raw, &mut mem, ghost, level);
    }
    finish_plan(metrics.clone(), working, raw, &net.comm, &net.sd_bytes)
}

/// Settle the imbalance between the groups of one level, scope by scope.
fn balance_level(
    ctx: &PlanCtx<'_>,
    working: &mut Ownership,
    raw: &mut Vec<Move>,
    mem: &mut Option<MemoryState>,
    ghost: Option<&SdGraph>,
    level: &Level,
) {
    let n_groups = level.n_groups;
    if n_groups <= 1 {
        return;
    }
    let n_scopes = level
        .scope_of
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    if n_scopes == n_groups {
        // every scope is a singleton (e.g. the rank level of single-rank
        // nodes): nothing can settle here
        return;
    }

    let n_ranks = working.n_nodes() as usize;
    // Current group counts (earlier levels moved SDs), aggregate measured
    // power (eq. 8 is per rank; powers of parallel workers add), and the
    // representative (lowest) rank of each group for link-class lookups.
    let mut counts = vec![0usize; n_groups];
    for &o in working.owners() {
        counts[level.group_of[o as usize] as usize] += 1;
    }
    let mut power = vec![0.0f64; n_groups];
    let mut rep = vec![u32::MAX; n_groups];
    for rank in 0..n_ranks {
        let g = level.group_of[rank] as usize;
        power[g] += ctx.metrics.power[rank];
        if rep[g] == u32::MAX {
            rep[g] = rank as u32;
        }
    }

    // One boundary pass: group adjacency (within scopes) plus the frontier
    // SD set of every ordered adjacent group pair.
    let sds = *working.sds();
    let (nsx, nsy) = (sds.nsx, sds.nsy);
    let mut adjacency: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n_groups];
    let mut frontier: HashMap<(u32, u32), BTreeSet<SdId>> = HashMap::new();
    {
        let owners = working.owners();
        for sd in 0..owners.len() as SdId {
            let ga = level.group_of[owners[sd as usize] as usize];
            let (sx, sy) = sds.coords(sd);
            // east and north suffice: each adjacent pair is seen once
            for (nx, ny) in [(sx + 1, sy), (sx, sy + 1)] {
                if nx >= nsx || ny >= nsy {
                    continue;
                }
                let nb = sds.id(nx, ny);
                let gb = level.group_of[owners[nb as usize] as usize];
                if ga == gb || level.scope_of[ga as usize] != level.scope_of[gb as usize] {
                    continue;
                }
                adjacency[ga as usize].insert(gb);
                adjacency[gb as usize].insert(ga);
                frontier.entry((ga, gb)).or_default().insert(sd);
                frontier.entry((gb, ga)).or_default().insert(nb);
            }
        }
    }

    // Groups of each scope, ascending (so local ids preserve group order
    // and the uniform-weight tie-breaks match the flat planner's).
    let mut scope_groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for g in 0..n_groups as u32 {
        scope_groups
            .entry(level.scope_of[g as usize])
            .or_default()
            .push(g);
    }

    // A group that owns nothing has no boundary and would never appear in
    // the adjacency: wire it to every peer of its scope so settlement can
    // bootstrap-seed it (cf. `LbNetwork::neighbour_graph`'s
    // empty-territory handling).
    for g in 0..n_groups as u32 {
        if counts[g as usize] > 0 {
            continue;
        }
        for &h in &scope_groups[&level.scope_of[g as usize]] {
            if h != g {
                adjacency[g as usize].insert(h);
                adjacency[h as usize].insert(g);
            }
        }
    }

    for groups in scope_groups.values() {
        if groups.len() < 2 {
            continue;
        }
        let local_counts: Vec<usize> = groups.iter().map(|&g| counts[g as usize]).collect();
        let total: usize = local_counts.iter().sum();
        if total == 0 {
            continue;
        }
        // Expected shares (eq. 10) from aggregated power, rounded to sum
        // exactly; imbalance (eq. 9) against the current counts.
        let local_power: Vec<f64> = groups.iter().map(|&g| power[g as usize]).collect();
        let sum_power: f64 = local_power.iter().sum();
        let shares: Vec<f64> = local_power
            .iter()
            .map(|p| total as f64 * p / sum_power)
            .collect();
        let expected = largest_remainder_round(&shares, total as i64);
        let mut imbalance: Vec<i64> = expected
            .iter()
            .zip(&local_counts)
            .map(|(&e, &c)| e - c as i64)
            .collect();
        if imbalance.iter().all(|&v| v == 0) {
            continue;
        }

        let local_adj: Vec<Vec<NodeId>> = {
            let lidx: HashMap<u32, NodeId> = groups
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, i as NodeId))
                .collect();
            groups
                .iter()
                .map(|&g| adjacency[g as usize].iter().map(|n| lidx[n]).collect())
                .collect()
        };
        let weight = |u: NodeId, v: NodeId| {
            ctx.edge_weight(
                rep[groups[u as usize] as usize],
                rep[groups[v as usize] as usize],
            )
        };
        let forest = build_forest_weighted(&local_adj, &imbalance, weight);
        let mut visited = vec![false; groups.len()];
        for tree in &forest {
            for &i in &tree.order {
                visited[i as usize] = true;
                if imbalance[i as usize] == 0 {
                    continue;
                }
                // Unvisited graph neighbours, cheapest links first (the
                // level-start adjacency is kept static — near-linearity —
                // so adjacency created mid-level waits an epoch).
                let mut neighbors: Vec<NodeId> = local_adj[i as usize]
                    .iter()
                    .copied()
                    .filter(|&m| !visited[m as usize])
                    .collect();
                neighbors.sort_by(|&a, &b| weight(i, a).total_cmp(&weight(i, b)).then(a.cmp(&b)));
                let l = neighbors.len() as i64;
                if l == 0 {
                    continue;
                }
                let want = imbalance[i as usize];
                let base = want / l;
                let mut rem = want - base * l;
                for &m in &neighbors {
                    let mut x = base;
                    if rem != 0 {
                        x += rem.signum();
                        rem -= rem.signum();
                    }
                    if x == 0 {
                        continue;
                    }
                    let (src, dst, amount) = if x > 0 {
                        (m, i, x as usize) // i borrows from m
                    } else {
                        (i, m, (-x) as usize) // i lends to m
                    };
                    let (src_g, dst_g) = (groups[src as usize], groups[dst as usize]);
                    let realized = realize_group_transfer(
                        ctx,
                        working,
                        raw,
                        mem,
                        ghost,
                        level,
                        &rep,
                        src_g,
                        dst_g,
                        counts[dst_g as usize] == 0,
                        amount,
                        &mut frontier,
                    );
                    imbalance[dst as usize] -= realized;
                    imbalance[src as usize] += realized;
                    counts[src_g as usize] -= realized as usize;
                    counts[dst_g as usize] += realized as usize;
                }
            }
        }
    }
}

/// Realize up to `amount` SD moves from `src_g` to `dst_g` along their
/// shared frontier, in ascending SD id order, growing the frontier
/// incrementally as the source territory recedes. Every candidate passes
/// the λ/μ gates and (when attached) the destination's memory capacity;
/// a refused candidate is dropped, not retried — residuals wait for the
/// next epoch. Returns the number of SDs actually moved.
#[allow(clippy::too_many_arguments)]
fn realize_group_transfer(
    ctx: &PlanCtx<'_>,
    working: &mut Ownership,
    raw: &mut Vec<Move>,
    mem: &mut Option<MemoryState>,
    ghost: Option<&SdGraph>,
    level: &Level,
    rep: &[u32],
    src_g: u32,
    dst_g: u32,
    dst_empty: bool,
    amount: usize,
    frontier: &mut HashMap<(u32, u32), BTreeSet<SdId>>,
) -> i64 {
    // Each ordered pair settles at most once per level, so consuming the
    // set is safe.
    let mut set = frontier.remove(&(src_g, dst_g)).unwrap_or_default();
    let sds = *working.sds();
    let (nsx, nsy) = (sds.nsx, sds.nsy);
    if set.is_empty() && dst_empty && amount > 0 {
        // The destination owns nothing, so no shared frontier exists:
        // seed its territory with the source's most peripheral SD (the
        // flat planner's empty-borrower seeding), then grow normally.
        let owners = working.owners();
        let mut seed: Option<(usize, SdId)> = None;
        for sd in 0..owners.len() as SdId {
            if level.group_of[owners[sd as usize] as usize] != src_g {
                continue;
            }
            let (sx, sy) = sds.coords(sd);
            let mut same = 0usize;
            for (nx, ny) in [(sx - 1, sy), (sx + 1, sy), (sx, sy - 1), (sx, sy + 1)] {
                if nx >= 0
                    && ny >= 0
                    && nx < nsx
                    && ny < nsy
                    && level.group_of[owners[sds.id(nx, ny) as usize] as usize] == src_g
                {
                    same += 1;
                }
            }
            if seed.is_none_or(|best| (same, sd) < best) {
                seed = Some((same, sd));
            }
        }
        if let Some((_, sd)) = seed {
            set.insert(sd);
        }
    }
    let mut realized = 0i64;
    while realized < amount as i64 {
        let Some(&sd) = set.iter().next() else { break };
        set.remove(&sd);
        let src_rank = working.owner(sd);
        if level.group_of[src_rank as usize] != src_g {
            continue; // stale: an earlier transfer took this SD
        }
        // Destination rank: the lowest-id adjacent rank of the target
        // group whose memory can host the SD.
        let (sx, sy) = sds.coords(sd);
        let mut dst_rank: Option<NodeId> = None;
        for (nx, ny) in [(sx - 1, sy), (sx + 1, sy), (sx, sy - 1), (sx, sy + 1)] {
            if nx < 0 || ny < 0 || nx >= nsx || ny >= nsy {
                continue;
            }
            let r = working.owner(sds.id(nx, ny));
            if level.group_of[r as usize] != dst_g {
                continue;
            }
            if let Some(m) = mem {
                if !m.fits(r, sd) {
                    continue;
                }
            }
            dst_rank = Some(dst_rank.map_or(r, |cur| cur.min(r)));
        }
        if dst_rank.is_none() && dst_empty {
            // bootstrap: no destination territory to be adjacent to — the
            // lowest member rank of the group with room hosts the seed
            let mut r = rep[dst_g as usize];
            while (r as usize) < level.group_of.len() && level.group_of[r as usize] == dst_g {
                if mem.as_ref().is_none_or(|m| m.fits(r, sd)) {
                    dst_rank = Some(r);
                    break;
                }
                r += 1;
            }
        }
        let Some(dst_rank) = dst_rank else { continue };
        // λ/μ gate: the move's busy-time relief must cover its one-off
        // migration cost and its μ-weighted recurring ghost delta.
        let mut score = ctx.metrics.relief_per_sd(src_rank as usize);
        if ctx.lambda_active {
            score -= ctx.lambda
                * ctx
                    .net
                    .comm
                    .seconds(src_rank, dst_rank, ctx.net.sd_bytes.get(sd));
        }
        if let Some(g) = ghost {
            score -= ctx.mu * ghost_delta_seconds(&ctx.net.comm, g, working.owners(), sd, dst_rank);
        }
        if score < 0.0 {
            continue;
        }
        working.set_owner(sd, dst_rank);
        raw.push(Move {
            sd,
            from: src_rank,
            to: dst_rank,
        });
        if let Some(m) = mem {
            m.apply(sd, src_rank, dst_rank);
        }
        realized += 1;
        // the frontier recedes: the moved SD's still-src neighbours are
        // now boundary candidates
        for (nx, ny) in [(sx - 1, sy), (sx + 1, sy), (sx, sy - 1), (sx, sy + 1)] {
            if nx < 0 || ny < 0 || nx >= nsx || ny >= nsy {
                continue;
            }
            let nb = sds.id(nx, ny);
            if level.group_of[working.owner(nb) as usize] == src_g {
                set.insert(nb);
            }
        }
    }
    realized
}

/// `LbSpec::Hierarchical`: the three-level planner, delegating wholesale
/// to its inner leaf policy when the hierarchy is degenerate and no
/// memory capacities are attached.
pub struct HierPolicy {
    inner: Box<dyn LbPolicy>,
    lambda: f64,
    mu: f64,
}

impl HierPolicy {
    /// Wrap the already-built leaf policy `inner` (the degenerate-case
    /// delegate) with the hierarchical machinery's own λ/μ.
    pub fn new(inner: Box<dyn LbPolicy>, lambda: f64, mu: f64) -> Self {
        HierPolicy { inner, lambda, mu }
    }
}

impl LbPolicy for HierPolicy {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        if hierarchy_is_degenerate(own.n_nodes(), &net.comm) && net.memory_bytes.is_none() {
            // keep the delegate's gates in lockstep with ours, so the
            // degenerate case is byte-identical to the leaf policy run
            // standalone at the same weights
            self.inner.set_cost_weight(self.lambda);
            self.inner.set_ghost_weight(self.mu);
            return self.inner.plan(own, metrics, net);
        }
        plan_hierarchical(own, metrics, net, self.lambda, self.mu)
    }

    fn set_cost_weight(&mut self, lambda: f64) {
        self.lambda = lambda;
        self.inner.set_cost_weight(lambda);
    }

    fn cost_weight(&self) -> f64 {
        self.lambda
    }

    fn set_ghost_weight(&mut self, mu: f64) {
        self.mu = mu;
        self.inner.set_ghost_weight(mu);
    }

    fn ghost_weight(&self) -> f64 {
        self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::policy::LbSpec;
    use crate::balance::power::compute_metrics;
    use nlheat_mesh::SdGrid;
    use nlheat_netmodel::{LinkSpec, NetSpec, TopologySpec};

    fn three_tier_net(ranks_per_node: usize, nodes_per_rack: usize) -> LbNetwork {
        LbNetwork::from_spec(
            &NetSpec::Topology(TopologySpec {
                ranks_per_node,
                nodes_per_rack,
                intra_node: LinkSpec::new(1e-7, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-6, 1e10),
                inter_rack: LinkSpec::new(1e-4, 1e9),
            }),
            1000u64,
        )
    }

    fn metrics_for(own: &Ownership, busy: &[f64]) -> LoadMetrics {
        compute_metrics(&own.counts(), busy)
    }

    /// 8x8 grid over 8 ranks (2 per node, 2 nodes per rack = 2 racks),
    /// striped so rank 0 owns far more than its share.
    fn skewed_eight_ranks() -> (Ownership, Vec<f64>) {
        let sds = SdGrid::new(8, 8, 4);
        let mut owners = vec![0u32; 64];
        for sd in 0..64u32 {
            let (sx, _) = sds.coords(sd);
            // columns 0..4 -> rank 0; remaining columns one rank each
            owners[sd as usize] = if sx < 4 { 0 } else { (sx - 3) as u32 * 2 - 1 };
        }
        let own = Ownership::new(sds, owners, 8);
        let busy: Vec<f64> = own.counts().iter().map(|&c| c.max(1) as f64).collect();
        (own, busy)
    }

    #[test]
    fn hierarchical_plan_is_single_hop_and_balances() {
        let (own, busy) = skewed_eight_ranks();
        let net = three_tier_net(2, 2);
        let metrics = metrics_for(&own, &busy);
        let plan = plan_hierarchical(&own, &metrics, &net, 0.0, 0.0);
        assert!(!plan.is_noop(), "the 32/…/0 skew must move work");
        let mut seen = std::collections::HashSet::new();
        let mut check = own.clone();
        for m in &plan.moves {
            assert!(seen.insert(m.sd), "SD {} moved twice", m.sd);
            assert_eq!(own.owner(m.sd), m.from, "stale source");
            assert_ne!(m.from, m.to);
            check.set_owner(m.sd, m.to);
        }
        assert_eq!(check, plan.new_ownership);
        let before: usize = own.counts().iter().max().copied().unwrap();
        let after: usize = plan.new_ownership.counts().iter().max().copied().unwrap();
        assert!(
            after < before,
            "worst rank must shrink: {before} -> {after}"
        );
    }

    #[test]
    fn iterated_hierarchical_converges_near_balance() {
        let (own, _) = skewed_eight_ranks();
        let net = three_tier_net(2, 2);
        let mut current = own;
        for _ in 0..8 {
            let busy: Vec<f64> = current.counts().iter().map(|&c| c.max(1) as f64).collect();
            let metrics = metrics_for(&current, &busy);
            let plan = plan_hierarchical(&current, &metrics, &net, 0.0, 0.0);
            if plan.is_noop() {
                break;
            }
            current = plan.new_ownership;
        }
        let counts = current.counts();
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(
            spread <= 3,
            "64 SDs over 8 ranks must settle near 8 each: {counts:?}"
        );
    }

    #[test]
    fn degenerate_hierarchy_detection() {
        // no topology at all
        assert!(hierarchy_is_degenerate(4, &CommCost::free()));
        // one rack of single-rank nodes
        let flat = NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 8,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(1e-6, f64::INFINITY),
            inter_rack: LinkSpec::new(1e-3, 1e8),
        });
        assert!(hierarchy_is_degenerate(4, &flat.comm_cost()));
        // two racks: the rack level is real
        assert!(!hierarchy_is_degenerate(4, &three_tier_net(1, 2).comm));
        // multi-rank nodes: the rank level is real even in one rack
        assert!(!hierarchy_is_degenerate(4, &three_tier_net(2, 4).comm));
    }

    #[test]
    fn degenerate_policy_delegates_byte_identically() {
        // single rack, one rank per node: HierPolicy must produce the
        // inner tree policy's plans exactly, at λ = 0 and λ > 0 alike.
        let sds = SdGrid::new(6, 6, 4);
        let flat = LbNetwork::from_spec(
            &NetSpec::Topology(TopologySpec {
                ranks_per_node: 1,
                nodes_per_rack: 4,
                intra_node: LinkSpec::new(0.0, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-6, 1e9),
                inter_rack: LinkSpec::new(1e-3, 1e8),
            }),
            1000u64,
        );
        for lambda in [0.0, 1.0] {
            let mut hier = LbSpec::hierarchical(LbSpec::tree(0.0), lambda).build();
            let mut tree = LbSpec::tree(lambda).build();
            for pattern in 0..4u32 {
                let owners: Vec<u32> = (0..36u32)
                    .map(|sd| {
                        let (sx, sy) = sds.coords(sd);
                        ((sx as u32 + pattern) / 2 + 2 * (sy as u32 / 3)) % 4
                    })
                    .collect();
                let own = Ownership::new(sds, owners, 4);
                let busy: Vec<f64> = (0..4).map(|n| 1.0 + (n % 4) as f64 * 1.7).collect();
                let m = metrics_for(&own, &busy);
                let a = hier.plan(&own, &m, &flat);
                let b = tree.plan(&own, &m, &flat);
                assert_eq!(a.moves, b.moves, "λ={lambda} pattern {pattern}");
                assert_eq!(a.new_ownership, b.new_ownership);
            }
        }
    }

    #[test]
    fn memory_gate_refuses_overflowing_destinations() {
        // 1x6 row, two ranks (one node each, one rack — degenerate
        // hierarchy, but capacities force the gated machinery): rank 1
        // owns one SD and is far too slow, so work should flow to rank 0 —
        // but rank 0's capacity only fits one more footprint.
        let sds = SdGrid::new(6, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 1, 1, 1, 1], 2);
        let fp = vec![100u64; 6];
        let net = three_tier_net(1, 1).with_memory(Arc::new(vec![300, 10_000]), Arc::new(fp));
        let busy = vec![1.0, 20.0];
        let metrics = metrics_for(&own, &busy);
        let plan = plan_hierarchical(&own, &metrics, &net, 0.0, 0.0);
        // rank 0 would take 2-3 SDs unconstrained; the cap admits one
        assert_eq!(
            plan.moves.len(),
            1,
            "capacity admits one move: {:?}",
            plan.moves
        );
        let mut usage = vec![0u64; 2];
        for (sd, &o) in plan.new_ownership.owners().iter().enumerate() {
            usage[o as usize] += 100;
            let _ = sd;
        }
        assert!(usage[0] <= 300, "rank 0 overflowed: {usage:?}");
    }

    #[test]
    fn unbounded_capacities_change_nothing() {
        let (own, busy) = skewed_eight_ranks();
        let net = three_tier_net(2, 2);
        let roomy = net
            .clone()
            .with_memory(Arc::new(vec![u64::MAX; 8]), Arc::new(vec![1u64; 64]));
        let metrics = metrics_for(&own, &busy);
        let a = plan_hierarchical(&own, &metrics, &net, 0.0, 0.0);
        let b = plan_hierarchical(&own, &metrics, &roomy, 0.0, 0.0);
        assert_eq!(a.moves, b.moves, "unbounded caps must be inert");
        assert_eq!(a.new_ownership, b.new_ownership);
    }

    #[test]
    fn lambda_gates_expensive_transfers() {
        // with a brutal inter-rack link and λ engaged, the rack level must
        // refuse to cross racks while intra-rack settlement survives
        let (own, busy) = skewed_eight_ranks();
        let net = LbNetwork::from_spec(
            &NetSpec::Topology(TopologySpec {
                ranks_per_node: 2,
                nodes_per_rack: 2,
                intra_node: LinkSpec::new(0.0, f64::INFINITY),
                intra_rack: LinkSpec::new(1e-9, f64::INFINITY),
                inter_rack: LinkSpec::new(10.0, 1.0),
            }),
            1000u64,
        );
        let metrics = metrics_for(&own, &busy);
        let free = plan_hierarchical(&own, &metrics, &net, 0.0, 0.0);
        assert!(
            free.comm.inter_rack_bytes() > 0,
            "λ=0 must cross racks here: {:?}",
            free.moves
        );
        let gated = plan_hierarchical(&own, &metrics, &net, 1.0, 0.0);
        assert_eq!(
            gated.comm.inter_rack_bytes(),
            0,
            "λ=1 must gate the uplink: {:?}",
            gated.moves
        );
        assert!(!gated.is_noop(), "intra-rack settlement must survive");
    }

    #[test]
    fn huge_mu_gates_cut_worsening_moves() {
        // 6x6 halves over 2 ranks in 2 racks: every borrowing move
        // roughens the straight boundary; an enormous μ refuses the plan
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36).map(|sd| u32::from(sds.coords(sd).0 >= 3)).collect();
        let own = Ownership::new(sds, owners, 2);
        let busy = vec![9.0, 1.0];
        let graph = Arc::new(SdGraph::build(&sds, 1));
        let net = three_tier_net(1, 1).with_sd_graph(graph);
        let metrics = metrics_for(&own, &busy);
        let plain = plan_hierarchical(&own, &metrics, &net, 0.0, 0.0);
        assert!(!plain.is_noop(), "μ=0 must balance the skew");
        let gated = plan_hierarchical(&own, &metrics, &net, 0.0, 1e12);
        assert!(gated.is_noop(), "huge μ must refuse cut-worsening moves");
    }
}
