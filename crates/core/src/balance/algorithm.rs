//! The Algorithm 1 driver: metrics → tree → ordered transfers → plan.

use crate::balance::power::{compute_metrics, LoadMetrics};
use crate::balance::transfer::select_transfer_scored;
use crate::balance::tree::build_forest_weighted;
use crate::ownership::{NodeId, Ownership};
use nlheat_mesh::SdId;
use nlheat_netmodel::{CommCost, N_LINK_CLASSES};
use nlheat_partition::SdGraph;

/// Per-SD migration payload sizes (wire bytes, payload + framing).
///
/// The historical planner carried one scalar `sd_bytes` — every tile the
/// same size — which kept costs constant across a transfer frontier. A
/// per-SD lookup lets costs and memory footprints differentiate *within*
/// one frontier (heterogeneous tiles, refined meshes); the
/// [`SdBytes::Uniform`] variant preserves the scalar behaviour exactly,
/// so `u64` call sites (via `From`) stay byte-identical by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdBytes {
    /// Every SD tile ships the same number of wire bytes.
    Uniform(u64),
    /// Per-SD wire bytes, indexed by [`SdId`]. Shared, not copied — the
    /// substrate builds the table once per run.
    PerSd(std::sync::Arc<Vec<u64>>),
}

impl SdBytes {
    /// Wire bytes of `sd`'s migrating tile.
    ///
    /// # Panics
    /// Panics when a [`SdBytes::PerSd`] table does not cover `sd`.
    pub fn get(&self, sd: SdId) -> u64 {
        match self {
            SdBytes::Uniform(b) => *b,
            SdBytes::PerSd(table) => table[sd as usize],
        }
    }

    /// A representative per-tile size for SD-independent estimates (node
    /// ordering weights, neighbour sorts): the uniform value, or the mean
    /// of the per-SD table. Never used where an exact per-SD size is
    /// available.
    pub fn nominal(&self) -> u64 {
        match self {
            SdBytes::Uniform(b) => *b,
            SdBytes::PerSd(table) if table.is_empty() => 0,
            SdBytes::PerSd(table) => table.iter().sum::<u64>() / table.len() as u64,
        }
    }

    /// Per-SD sizes from an owned table.
    pub fn per_sd(table: Vec<u64>) -> Self {
        SdBytes::PerSd(std::sync::Arc::new(table))
    }
}

impl From<u64> for SdBytes {
    fn from(b: u64) -> Self {
        SdBytes::Uniform(b)
    }
}

impl From<Vec<u64>> for SdBytes {
    fn from(table: Vec<u64>) -> Self {
        SdBytes::per_sd(table)
    }
}

/// One SD migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The migrating sub-domain.
    pub sd: SdId,
    /// Current owner.
    pub from: NodeId,
    /// New owner.
    pub to: NodeId,
}

/// Communication-cost parameters of a cost-aware planning pass.
///
/// `λ = 0` (or a free [`CommCost`]) degenerates to the paper's count-based
/// Algorithm 1 — byte-identical plans, because every cost term vanishes
/// and every cost-aware ordering falls back to the count-based
/// tie-breaks. With `λ > 0` a candidate transfer only happens when its
/// per-SD busy-time relief (in seconds) exceeds `λ ×` the estimated
/// transfer seconds of one SD tile over the `src → dst` link, so
/// imbalance settles over cheap links and expensive (e.g. inter-rack)
/// migrations need to earn their bytes. Busy times must be in **seconds**
/// for the comparison to be meaningful.
///
/// `μ` weighs the **recurring** cost of a move — the change in
/// steady-state ghost-exchange seconds per timestep that reassigning the
/// SD causes (its edge-cut delta over the [`SdGraph`], each cut edge
/// priced by its link class). λ prices the one-off migration, μ prices
/// what the ownership costs *every step afterwards*; `μ = 0` (the
/// default, and any plan without an [`SdGraph`]) is pinned byte-identical
/// to the μ-less planner.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Transfer-cost estimate derived from the active network spec.
    pub comm: CommCost,
    /// Weight of communication cost against busy-time relief.
    pub lambda: f64,
    /// Wire bytes of each migrating SD tile (payload + framing).
    pub sd_bytes: SdBytes,
    /// Weight of the per-SD ghost-traffic (edge-cut) delta against
    /// busy-time relief; 0 disables the term.
    pub mu: f64,
}

impl CostParams {
    /// Free network, λ = μ = 0: the count-based planner.
    pub fn free() -> Self {
        CostParams {
            comm: CommCost::free(),
            lambda: 0.0,
            sd_bytes: SdBytes::Uniform(0),
            mu: 0.0,
        }
    }

    pub fn new(comm: CommCost, lambda: f64, sd_bytes: impl Into<SdBytes>) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be finite and non-negative, got {lambda}"
        );
        CostParams {
            comm,
            lambda,
            sd_bytes: sd_bytes.into(),
            mu: 0.0,
        }
    }

    /// Weigh the steady-state ghost-traffic delta of each candidate move
    /// by `mu`.
    ///
    /// # Panics
    /// Panics on negative or non-finite `mu`.
    pub fn with_mu(mut self, mu: f64) -> Self {
        validate_mu(mu);
        self.mu = mu;
        self
    }

    /// True when λ-weighted cost terms can affect the plan.
    fn is_active(&self) -> bool {
        self.lambda > 0.0 && !self.comm.is_free()
    }

    /// The ghost graph, iff the μ term can affect the plan — `None`
    /// otherwise, so the degenerate case takes exactly the μ-less code
    /// path (byte-identical plans, no float dust).
    fn ghost_graph<'g>(&self, ghost: Option<&'g SdGraph>) -> Option<&'g SdGraph> {
        if mu_active(self.mu, &self.comm) {
            ghost
        } else {
            None
        }
    }

    /// λ-weighted cost (seconds) of migrating one *nominal* SD tile
    /// `src` → `dst` — the SD-independent estimate used for node ordering
    /// (forest growth, neighbour sorts); exactly 0 when inactive so the
    /// degenerate case cannot drift from the count-based planner through
    /// float noise. With uniform tiles this equals [`Self::move_cost`]
    /// for every SD.
    fn edge_weight(&self, src: NodeId, dst: NodeId) -> f64 {
        if self.is_active() {
            self.lambda * self.comm.seconds(src, dst, self.sd_bytes.nominal())
        } else {
            0.0
        }
    }

    /// λ-weighted cost (seconds) of migrating `sd`'s actual tile
    /// `src` → `dst`; exactly 0 when inactive (see [`Self::edge_weight`]).
    fn move_cost(&self, src: NodeId, dst: NodeId, sd: SdId) -> f64 {
        if self.is_active() {
            self.lambda * self.comm.seconds(src, dst, self.sd_bytes.get(sd))
        } else {
            0.0
        }
    }
}

/// The one copy of the μ invariant, shared by [`CostParams::with_mu`]
/// and the `LbSpec` builders/validation in [`crate::balance::policy`].
///
/// # Panics
/// Panics on negative or non-finite `mu`.
pub(crate) fn validate_mu(mu: f64) {
    assert!(
        mu >= 0.0 && mu.is_finite(),
        "mu must be finite and non-negative, got {mu}"
    );
}

/// The one copy of the μ-activity predicate: the ghost term can affect a
/// plan only with a positive weight over a non-free network. Shared by
/// [`CostParams`] (the tree planner's gate) and `LbNetwork::ghost_graph`
/// (every other policy's gate), so the policies can never disagree on
/// when ghost machinery engages.
pub(crate) fn mu_active(mu: f64, comm: &CommCost) -> bool {
    mu > 0.0 && !comm.is_free()
}

/// Change in steady-state ghost-exchange seconds per timestep if `sd`
/// were reassigned from its current owner to `to` — the [`SdGraph`]
/// edge-cut delta of the move, each affected edge priced by the link
/// class of its (new or vanished) owner pair. Same-node exchanges cost
/// nothing: no message is sent, exactly as both substrates behave.
/// Positive: the move adds recurring traffic; negative: the move heals
/// the partition (the SD moves toward its ghost neighbours).
pub fn ghost_delta_seconds(
    comm: &CommCost,
    graph: &SdGraph,
    owners: &[NodeId],
    sd: SdId,
    to: NodeId,
) -> f64 {
    let from = owners[sd as usize];
    if from == to {
        return 0.0;
    }
    let mut delta = 0.0;
    for (nb, bytes) in graph.neighbours(sd) {
        let o = owners[nb as usize];
        if o != from {
            delta -= comm.seconds(from, o, bytes); // this cut edge vanishes
        }
        if o != to {
            delta += comm.seconds(to, o, bytes); // this cut edge appears
        }
    }
    delta
}

/// Communication summary of a [`MigrationPlan`]: what shipping it costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanComm {
    /// Total migration payload bytes.
    pub total_bytes: u64,
    /// Migration bytes by [`nlheat_netmodel::LinkClass`] (indexed by the
    /// enum discriminant: intra-node, intra-rack, inter-rack).
    pub bytes_by_class: [u64; N_LINK_CLASSES],
}

impl PlanComm {
    /// Bytes crossing rack boundaries — the traffic cost-aware planning
    /// exists to shrink.
    pub fn inter_rack_bytes(&self) -> u64 {
        self.bytes_by_class[nlheat_netmodel::LinkClass::InterRack as usize]
    }
}

/// The outcome of one load-balancing iteration.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// SD migrations in application order.
    pub moves: Vec<Move>,
    /// The metrics (eqs. 8–10) the plan was derived from.
    pub metrics: LoadMetrics,
    /// The ownership after applying `moves`.
    pub new_ownership: Ownership,
    /// Migration traffic summary (all zero when planned with
    /// [`CostParams::free`], whose `sd_bytes` is 0).
    pub comm: PlanComm,
    /// Estimated seconds to ship the plan's tiles, per [`CommCost`].
    pub est_migration_seconds: f64,
}

impl MigrationPlan {
    /// True when the iteration found nothing to move.
    pub fn is_noop(&self) -> bool {
        self.moves.is_empty()
    }
}

/// One iteration of Algorithm 1 — the count-based planner, i.e.
/// [`plan_rebalance_with_cost`] with a free network.
///
/// `busy` are the per-node busy times (any consistent unit) accumulated
/// since the previous iteration's counter reset.
pub fn plan_rebalance(own: &Ownership, busy: &[f64]) -> MigrationPlan {
    plan_rebalance_with_cost(own, busy, &CostParams::free())
}

/// One iteration of Algorithm 1, weighing migrations by network cost.
///
/// Sign conventions follow eq. 9 (`imbalance = expected − count`, positive
/// = node should *gain* SDs). Each node in topological order settles its
/// imbalance against its not-yet-visited adjacent nodes, `imbalance/L`
/// each with the remainder spread deterministically; transfers are
/// realized immediately by frontier ring growth, and unrealizable
/// residuals (exhausted frontiers) simply remain for the next iteration —
/// the algorithm is iterative by design (the paper's Fig. 14 converges in
/// three iterations).
///
/// Communication awareness enters at three points, all degenerating to
/// the count-based behaviour at `λ = 0`:
/// * the dependency forest expands cheap links first, so the topological
///   order settles imbalance within racks before crossing them;
/// * within one node's settlement, the remainder of `imbalance/L` is
///   given to the cheapest-linked neighbours first;
/// * a transfer is realized only when its per-SD busy-time relief
///   (`busy[src]/count[src]`, seconds) exceeds the λ-weighted estimated
///   transfer seconds of one tile — gated via the per-SD score of
///   [`select_transfer_scored`]. Gated imbalance stays put and is settled
///   over cheaper links on later iterations.
pub fn plan_rebalance_with_cost(own: &Ownership, busy: &[f64], cost: &CostParams) -> MigrationPlan {
    let n = own.n_nodes() as usize;
    assert_eq!(busy.len(), n, "one busy time per node");
    plan_rebalance_from_metrics(own, compute_metrics(&own.counts(), busy), cost)
}

/// [`plan_rebalance_with_cost`] from precomputed eqs. 8–10 metrics — the
/// entry point of the tree policy in the pluggable [`crate::balance::policy`]
/// layer, where every policy receives the same [`LoadMetrics`] and the
/// caller computed them once. Ghost-blind: [`plan_rebalance_ghost_aware`]
/// with no [`SdGraph`].
pub fn plan_rebalance_from_metrics(
    own: &Ownership,
    metrics: LoadMetrics,
    cost: &CostParams,
) -> MigrationPlan {
    plan_rebalance_ghost_aware(own, metrics, cost, None)
}

/// [`plan_rebalance_from_metrics`] with the SD adjacency / halo-volume
/// graph attached: every candidate transfer is scored
/// `relief − λ·migration_seconds − μ·Δghost_seconds`, where the last term
/// is the move's [`SdGraph`] edge-cut delta priced by link class
/// ([`ghost_delta_seconds`]) against the *working* ownership at the time
/// the frontier is settled. The μ term both gates transfers (negative
/// score ⇒ the move's recurring traffic outweighs its relief) and shapes
/// partial-ring growth (cut-healing SDs are picked first). With `μ = 0`,
/// a free network, or no graph, the closure collapses to the constant
/// λ-gated score — byte-identical to the μ-less planner by construction.
pub fn plan_rebalance_ghost_aware(
    own: &Ownership,
    metrics: LoadMetrics,
    cost: &CostParams,
    ghost: Option<&SdGraph>,
) -> MigrationPlan {
    let n = own.n_nodes() as usize;
    assert_eq!(metrics.counts.len(), n, "metrics cover every node");
    let ghost = cost.ghost_graph(ghost);
    if let Some(g) = ghost {
        assert_eq!(g.n_sds(), own.sds().count(), "ghost graph covers the grid");
    }
    let adjacency = own.node_adjacency();
    let forest = build_forest_weighted(&adjacency, &metrics.imbalance, |u, v| {
        cost.edge_weight(u, v)
    });

    let mut imbalance = metrics.imbalance.clone();
    let mut working = own.clone();
    let mut visited = vec![false; n];

    // Raw transfers in tree order; may route one SD through several owners.
    let mut raw: Vec<Move> = Vec::new();

    for tree in &forest {
        for &i in &tree.order {
            visited[i as usize] = true;
            if imbalance[i as usize] == 0 {
                continue;
            }
            // Non-visited adjacent nodes (graph adjacency; the tree only
            // fixes the ordering). Recompute from the *working* ownership:
            // earlier transfers may have created or removed borders.
            // Cheapest links first so the remainder lands there; at λ = 0
            // all weights tie and the id order is the count-based one.
            let mut neighbors: Vec<NodeId> = working.node_adjacency()[i as usize]
                .iter()
                .copied()
                .filter(|&m| !visited[m as usize])
                .collect();
            neighbors.sort_by(|&a, &b| {
                cost.edge_weight(i, a)
                    .total_cmp(&cost.edge_weight(i, b))
                    .then(a.cmp(&b))
            });
            let l = neighbors.len() as i64;
            if l == 0 {
                continue;
            }
            let want = imbalance[i as usize];
            let base = want / l;
            let mut rem = want - base * l;
            for &m in &neighbors {
                let mut x = base;
                if rem != 0 {
                    x += rem.signum();
                    rem -= rem.signum();
                }
                if x == 0 {
                    continue;
                }
                let (src, dst, amount) = if x > 0 {
                    (m, i, x as usize) // i borrows from m
                } else {
                    (i, m, (-x) as usize) // i lends to m
                };
                // Per-SD migration score: busy-time relief minus the
                // λ-weighted transfer cost of *that* SD's tile. Uniform
                // tiles make it constant across this frontier, so it acts
                // as a transfer gate — per-SD sizes differentiate within
                // the frontier, and an active μ additionally charges each
                // SD its ghost-traffic delta.
                let relief = metrics.relief_per_sd(src as usize);
                let realized = match ghost {
                    Some(g) => realize_ghost_aware(
                        &mut working,
                        &mut raw,
                        src,
                        dst,
                        amount,
                        |owners, sd| {
                            relief
                                - cost.move_cost(src, dst, sd)
                                - cost.mu * ghost_delta_seconds(&cost.comm, g, owners, sd, dst)
                        },
                    ),
                    None => {
                        let chosen = select_transfer_scored(&working, src, dst, amount, |sd| {
                            relief - cost.move_cost(src, dst, sd)
                        });
                        for &sd in &chosen {
                            working.set_owner(sd, dst);
                            raw.push(Move {
                                sd,
                                from: src,
                                to: dst,
                            });
                        }
                        chosen.len() as i64
                    }
                };
                // bookkeeping: dst gained `realized`, src lost them
                imbalance[dst as usize] -= realized;
                imbalance[src as usize] += realized;
            }
        }
    }
    finish_plan(metrics, working, raw, &cost.comm, &cost.sd_bytes)
}

/// Realize a ghost-aware transfer of up to `amount` SDs `src` → `dst`,
/// **one SD at a time**: after every pick the working ownership advances,
/// so the next SD's ghost-traffic delta is exact — a batch selection
/// would price every ring SD as if its ring-mates stayed behind,
/// systematically overcharging contiguous block moves (the common case)
/// and mis-ordering partial rings. Returns the number of SDs realized.
/// Only the μ-active path pays this cost; the μ-less planner keeps the
/// batch selection, whose plans are pinned byte-identical.
pub(crate) fn realize_ghost_aware(
    working: &mut Ownership,
    raw: &mut Vec<Move>,
    src: NodeId,
    dst: NodeId,
    amount: usize,
    score: impl Fn(&[NodeId], SdId) -> f64,
) -> i64 {
    let mut realized = 0i64;
    for _ in 0..amount {
        let chosen = select_transfer_scored(working, src, dst, 1, |sd| score(working.owners(), sd));
        let Some(&sd) = chosen.first() else { break };
        working.set_owner(sd, dst);
        raw.push(Move {
            sd,
            from: src,
            to: dst,
        });
        realized += 1;
    }
    realized
}

/// Turn a policy's raw transfer trace into the emitted [`MigrationPlan`]:
/// collapse per-SD chains (A→B, then B→C later in the same plan) into net
/// single-hop moves (A→C) and summarize the migration traffic. The runtime
/// ships each migrating tile exactly once per epoch, directly from the
/// owner that actually holds it; a chained plan would ask the intermediate
/// owner to forward a tile it never received. Collapsing also drops
/// A→…→A round trips — this is where *every* [`crate::balance::policy`]
/// implementation earns the single-hop invariant the fabric relies on.
pub(crate) fn finish_plan(
    metrics: LoadMetrics,
    working: Ownership,
    raw: Vec<Move>,
    comm_cost: &CommCost,
    sd_bytes: &SdBytes,
) -> MigrationPlan {
    let mut moves: Vec<Move> = Vec::new();
    let mut slot: std::collections::HashMap<SdId, usize> = std::collections::HashMap::new();
    for mv in raw {
        match slot.entry(mv.sd) {
            std::collections::hash_map::Entry::Occupied(e) => moves[*e.get()].to = mv.to,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(moves.len());
                moves.push(mv);
            }
        }
    }
    moves.retain(|m| m.from != m.to);

    // Traffic summary over the collapsed (actually shipped) moves.
    let mut comm = PlanComm::default();
    let mut est_migration_seconds = 0.0;
    for m in &moves {
        let bytes = sd_bytes.get(m.sd);
        comm.total_bytes += bytes;
        comm.bytes_by_class[comm_cost.link_class(m.from, m.to) as usize] += bytes;
        est_migration_seconds += comm_cost.seconds(m.from, m.to, bytes);
    }

    MigrationPlan {
        moves,
        metrics,
        new_ownership: working,
        comm,
        est_migration_seconds,
    }
}

/// Run `plan_rebalance` repeatedly (at most `max_iters` times) with busy
/// times supplied by `busy_model` (a function of the current ownership —
/// e.g. virtual busy times for a known node-speed vector). Returns the
/// ownership history including the initial state.
pub fn iterate_rebalance(
    own: &Ownership,
    max_iters: usize,
    mut busy_model: impl FnMut(&Ownership) -> Vec<f64>,
) -> Vec<Ownership> {
    let mut history = vec![own.clone()];
    let mut current = own.clone();
    for _ in 0..max_iters {
        let busy = busy_model(&current);
        let plan = plan_rebalance(&current, &busy);
        if plan.is_noop() {
            break;
        }
        current = plan.new_ownership;
        history.push(current.clone());
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlheat_mesh::SdGrid;

    /// Busy time proportional to SD count over identical nodes.
    fn symmetric_busy(own: &Ownership) -> Vec<f64> {
        own.counts().iter().map(|&c| c.max(1) as f64).collect()
    }

    /// Busy time for nodes with given speeds: count / speed.
    fn busy_for_speeds(own: &Ownership, speeds: &[f64]) -> Vec<f64> {
        own.counts()
            .iter()
            .zip(speeds)
            .map(|(&c, &s)| c as f64 / s)
            .collect()
    }

    /// The paper's Fig. 14 initial state: 5x5 SDs, 4 symmetric nodes,
    /// highly imbalanced — node 0 owns almost everything.
    fn fig14_initial() -> Ownership {
        let sds = SdGrid::new(5, 5, 4);
        let mut owners = vec![0u32; 25];
        owners[sds.id(4, 0) as usize] = 1;
        owners[sds.id(4, 4) as usize] = 3;
        owners[sds.id(0, 4) as usize] = 2;
        Ownership::new(sds, owners, 4)
    }

    #[test]
    fn balanced_input_is_noop() {
        let sds = SdGrid::new(4, 4, 5);
        let mut owners = vec![0u32; 16];
        for sd in 0..16 {
            let (sx, sy) = sds.coords(sd);
            owners[sd as usize] = (sy / 2 * 2 + sx / 2) as u32;
        }
        let own = Ownership::new(sds, owners, 4);
        let plan = plan_rebalance(&own, &symmetric_busy(&own));
        assert!(plan.is_noop(), "already balanced quadrants");
    }

    #[test]
    fn moves_preserve_sd_conservation() {
        let own = fig14_initial();
        let plan = plan_rebalance(&own, &symmetric_busy(&own));
        let before: usize = own.counts().iter().sum();
        let after: usize = plan.new_ownership.counts().iter().sum();
        assert_eq!(before, after);
        // every move's `from` owned the SD at its time of application
        let mut check = own.clone();
        for m in &plan.moves {
            assert_eq!(check.owner(m.sd), m.from, "stale move source");
            check.set_owner(m.sd, m.to);
        }
        assert_eq!(check, plan.new_ownership);
    }

    #[test]
    fn fig14_converges_within_three_iterations() {
        // The paper's validation: highly imbalanced start, symmetric
        // nodes; within 3 iterations the distribution is near-balanced.
        let own = fig14_initial();
        let history = iterate_rebalance(&own, 3, symmetric_busy);
        let final_counts = history.last().unwrap().counts();
        let max = *final_counts.iter().max().unwrap();
        let min = *final_counts.iter().min().unwrap();
        assert!(
            max - min <= 2,
            "counts after 3 iterations too uneven: {final_counts:?}"
        );
    }

    #[test]
    fn heterogeneous_speeds_get_proportional_shares() {
        // Node 0 twice as fast as the others: it should end up with about
        // twice the SDs.
        let sds = SdGrid::new(6, 6, 4);
        let mut owners = vec![0u32; 36];
        for sd in 0..36u32 {
            let (sx, _) = sds.coords(sd);
            owners[sd as usize] = (sx / 2) as u32; // vertical thirds
        }
        let own = Ownership::new(sds, owners, 3);
        let speeds = [2.0, 1.0, 1.0];
        let history = iterate_rebalance(&own, 5, |o| busy_for_speeds(o, &speeds));
        let counts = history.last().unwrap().counts();
        // expectation: 36 * 2/4 = 18 vs 9 and 9
        assert!(
            (16..=20).contains(&counts[0]),
            "fast node share: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 36);
    }

    #[test]
    fn contiguity_preserved_through_iterations() {
        let own = fig14_initial();
        let history = iterate_rebalance(&own, 3, symmetric_busy);
        for (it, state) in history.iter().enumerate() {
            for node in 0..4 {
                assert!(
                    state.is_contiguous(node),
                    "node {node} fragmented at iteration {it}:\n{}",
                    state.render()
                );
            }
        }
    }

    #[test]
    fn single_node_cluster_is_trivially_balanced() {
        let own = Ownership::single_node(SdGrid::new(4, 4, 5));
        let plan = plan_rebalance(&own, &[1.0]);
        assert!(plan.is_noop());
    }

    #[test]
    fn two_nodes_direct_exchange() {
        // 1x6 row: node 0 owns 5, node 1 owns 1; symmetric busy.
        let sds = SdGrid::new(6, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 0, 0, 0, 1], 2);
        let plan = plan_rebalance(&own, &symmetric_busy(&own));
        let counts = plan.new_ownership.counts();
        assert_eq!(counts, vec![3, 3]);
        // the moved SDs are the ones bordering node 1 (ids 4 then 3)
        let moved: Vec<SdId> = plan.moves.iter().map(|m| m.sd).collect();
        assert_eq!(moved, vec![4, 3]);
    }

    #[test]
    fn moves_are_single_hop_per_sd() {
        // Regression: a plan may internally route an SD through several
        // owners (node i borrows X from m, a later node borrows X from i).
        // The emitted plan must collapse that to one move per SD whose
        // `from` is the SD's owner *before* the epoch — the distributed
        // driver ships every migrating tile concurrently and would panic
        // ("migrating unowned SD") on a chained plan. Sweep skewed busy
        // vectors over several imbalanced ownerships to cover many tree
        // shapes and transfer orders.
        let sds = SdGrid::new(6, 6, 4);
        for pattern in 0..16u32 {
            let owners: Vec<u32> = (0..36u32)
                .map(|sd| {
                    let (sx, sy) = sds.coords(sd);
                    ((sx as u32 + pattern) / 2 + 2 * (sy as u32 / 3)) % 4
                })
                .collect();
            let own = Ownership::new(sds, owners, 4);
            for skew in 0..8 {
                let busy: Vec<f64> = (0..4)
                    .map(|n| 1.0 + ((n + skew) % 4) as f64 * 1.7)
                    .collect();
                let plan = plan_rebalance(&own, &busy);
                let mut seen = std::collections::HashSet::new();
                for m in &plan.moves {
                    assert!(seen.insert(m.sd), "SD {} moved twice", m.sd);
                    assert_ne!(m.from, m.to, "no-op move for SD {}", m.sd);
                    assert_eq!(
                        own.owner(m.sd),
                        m.from,
                        "move source must be the pre-epoch owner"
                    );
                }
                // net moves still land exactly on the claimed ownership
                let mut check = own.clone();
                for m in &plan.moves {
                    check.set_owner(m.sd, m.to);
                }
                assert_eq!(check, plan.new_ownership);
            }
        }
    }

    #[test]
    fn ghost_delta_signs_track_the_cut() {
        // 6x6 halves with one node-1 intrusion at (2, 0): sending the
        // intruder home heals the cut (negative delta), roughening the
        // straight boundary costs (positive delta), and the priced delta
        // agrees in sign with the pure byte-cut delta of the graph.
        let sds = SdGrid::new(6, 6, 4);
        let mut owners: Vec<u32> = (0..36).map(|sd| u32::from(sds.coords(sd).0 >= 3)).collect();
        owners[sds.id(2, 0) as usize] = 1;
        let graph = nlheat_partition::SdGraph::build(&sds, 1);
        let comm = CommCost::from_spec(&NetSpec::cluster());
        let heal = ghost_delta_seconds(&comm, &graph, &owners, sds.id(2, 0), 0);
        assert!(heal < 0.0, "sending the intruder home must heal: {heal}");
        let worsen = ghost_delta_seconds(&comm, &graph, &owners, sds.id(3, 3), 0);
        assert!(worsen > 0.0, "roughening the boundary must cost: {worsen}");
        for (sd, to) in [(sds.id(2, 0), 0u32), (sds.id(3, 3), 0), (sds.id(0, 0), 1)] {
            let secs = ghost_delta_seconds(&comm, &graph, &owners, sd, to);
            let bytes = graph.cut_delta_bytes(&owners, sd, to);
            assert_eq!(
                secs > 0.0,
                bytes > 0,
                "sign must match the byte cut: sd {sd} -> {to}"
            );
        }
        // no-op move, free network: exactly zero
        assert_eq!(
            ghost_delta_seconds(&comm, &graph, &owners, sds.id(0, 0), 0),
            0.0
        );
        assert_eq!(
            ghost_delta_seconds(&CommCost::free(), &graph, &owners, sds.id(3, 3), 0),
            0.0
        );
    }

    #[test]
    fn ghost_aware_plan_without_mu_is_byte_identical() {
        // plan_rebalance_ghost_aware with a graph but μ = 0 must take the
        // ghost-blind path exactly.
        let sds = SdGrid::new(6, 6, 4);
        let graph = nlheat_partition::SdGraph::build(&sds, 2);
        let comm = CommCost::from_spec(&NetSpec::Topology(harsh_two_rack()));
        let params = CostParams::new(comm, 1.0, 5024);
        for pattern in 0..4u32 {
            let owners: Vec<u32> = (0..36u32)
                .map(|sd| {
                    let (sx, sy) = sds.coords(sd);
                    ((sx as u32 + pattern) / 2 + 2 * (sy as u32 / 3)) % 4
                })
                .collect();
            let own = Ownership::new(sds, owners, 4);
            let busy: Vec<f64> = (0..4).map(|n| 1.0 + (n % 4) as f64 * 2.3).collect();
            let blind = plan_rebalance_with_cost(&own, &busy, &params);
            let metrics = compute_metrics(&own.counts(), &busy);
            let ghosted = plan_rebalance_ghost_aware(&own, metrics, &params, Some(&graph));
            assert_eq!(blind.moves, ghosted.moves, "pattern {pattern}");
            assert_eq!(blind.new_ownership, ghosted.new_ownership);
        }
    }

    #[test]
    fn plan_records_metrics() {
        let own = fig14_initial();
        let plan = plan_rebalance(&own, &symmetric_busy(&own));
        assert_eq!(plan.metrics.counts, vec![22, 1, 1, 1]);
        assert_eq!(plan.metrics.imbalance.iter().sum::<i64>(), 0);
    }

    use nlheat_netmodel::{CommCost, LinkSpec, NetSpec, TopologySpec};

    /// A 2-rack topology where crossing racks is brutally expensive and
    /// staying inside a rack is nearly free.
    fn harsh_two_rack() -> TopologySpec {
        TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(1e-9, f64::INFINITY),
            inter_rack: LinkSpec::new(10.0, 1.0),
        }
    }

    #[test]
    fn lambda_zero_with_real_network_is_byte_identical() {
        // The acceptance criterion: cost-aware planning at λ = 0 must not
        // perturb the count-based plans, even with a non-trivial CommCost
        // and tile size attached. Sweep the same ownership/busy space as
        // `moves_are_single_hop_per_sd`.
        let comm = CommCost::from_spec(&NetSpec::Topology(harsh_two_rack()));
        let params = CostParams::new(comm, 0.0, 1 << 20);
        let sds = SdGrid::new(6, 6, 4);
        for pattern in 0..16u32 {
            let owners: Vec<u32> = (0..36u32)
                .map(|sd| {
                    let (sx, sy) = sds.coords(sd);
                    ((sx as u32 + pattern) / 2 + 2 * (sy as u32 / 3)) % 4
                })
                .collect();
            let own = Ownership::new(sds, owners, 4);
            for skew in 0..8 {
                let busy: Vec<f64> = (0..4)
                    .map(|n| 1.0 + ((n + skew) % 4) as f64 * 1.7)
                    .collect();
                let seed = plan_rebalance(&own, &busy);
                let cost_aware = plan_rebalance_with_cost(&own, &busy, &params);
                assert_eq!(
                    seed.moves, cost_aware.moves,
                    "pattern {pattern} skew {skew}"
                );
                assert_eq!(seed.new_ownership, cost_aware.new_ownership);
            }
        }
    }

    #[test]
    fn lambda_gates_inter_rack_migrations() {
        // 8x1 row; racks {0,1} and {2,3}. Node 1 is overloaded and would
        // settle toward both node 0 (intra-rack) and node 2 (inter-rack).
        let sds = SdGrid::new(8, 1, 4);
        let owners = vec![0, 0, 1, 1, 1, 1, 2, 3];
        let own = Ownership::new(sds, owners, 4);
        let busy = symmetric_busy(&own);
        let comm = CommCost::from_spec(&NetSpec::Topology(harsh_two_rack()));

        let free = plan_rebalance_with_cost(&own, &busy, &CostParams::new(comm, 0.0, 1000));
        assert!(
            free.comm.inter_rack_bytes() > 0,
            "λ=0 must cross racks here: {:?}",
            free.moves
        );
        // relief ≈ 1 s/SD, inter-rack cost = 10 + 2·1000/1 = 2010 s ≫ it
        let gated = plan_rebalance_with_cost(&own, &busy, &CostParams::new(comm, 1.0, 1000));
        assert_eq!(
            gated.comm.inter_rack_bytes(),
            0,
            "λ=1 must gate the inter-rack move: {:?}",
            gated.moves
        );
        assert!(!gated.is_noop(), "intra-rack settlement must still happen");
        assert!(gated
            .moves
            .iter()
            .all(|m| comm.link_class(m.from, m.to) != nlheat_netmodel::LinkClass::InterRack),);
    }

    #[test]
    fn plan_comm_classifies_bytes_per_link() {
        let sds = SdGrid::new(8, 1, 4);
        let owners = vec![0, 0, 1, 1, 1, 1, 2, 3];
        let own = Ownership::new(sds, owners, 4);
        let comm = CommCost::from_spec(&NetSpec::Topology(harsh_two_rack()));
        let plan =
            plan_rebalance_with_cost(&own, &symmetric_busy(&own), &CostParams::new(comm, 0.0, 64));
        let by_class: u64 = plan.comm.bytes_by_class.iter().sum();
        assert_eq!(plan.comm.total_bytes, by_class);
        assert_eq!(plan.comm.total_bytes, 64 * plan.moves.len() as u64);
        assert!(plan.est_migration_seconds > 0.0);
        // the free-params spelling reports zero traffic
        let free = plan_rebalance(&own, &symmetric_busy(&own));
        assert_eq!(free.comm, PlanComm::default());
        assert_eq!(free.est_migration_seconds, 0.0);
    }

    #[test]
    fn gated_plans_keep_single_hop_invariant() {
        // The single-hop collapse must survive cost-aware gating: sweep
        // λ over skewed busy vectors on a 2-rack layout and assert no SD
        // moves twice and every `from` is the pre-epoch owner.
        let sds = SdGrid::new(6, 6, 4);
        let comm = CommCost::from_spec(&NetSpec::Topology(harsh_two_rack()));
        for pattern in 0..8u32 {
            let owners: Vec<u32> = (0..36u32)
                .map(|sd| {
                    let (sx, sy) = sds.coords(sd);
                    ((sx as u32 + pattern) / 2 + 2 * (sy as u32 / 3)) % 4
                })
                .collect();
            let own = Ownership::new(sds, owners, 4);
            for lambda in [0.0, 1e-4, 0.5, 1.0, 100.0] {
                let busy: Vec<f64> = (0..4).map(|n| 1.0 + (n % 4) as f64 * 2.3).collect();
                let plan =
                    plan_rebalance_with_cost(&own, &busy, &CostParams::new(comm, lambda, 5024));
                let mut seen = std::collections::HashSet::new();
                for m in &plan.moves {
                    assert!(seen.insert(m.sd), "SD {} moved twice (λ={lambda})", m.sd);
                    assert_eq!(own.owner(m.sd), m.from, "stale source (λ={lambda})");
                    assert_ne!(m.from, m.to);
                }
                let mut check = own.clone();
                for m in &plan.moves {
                    check.set_owner(m.sd, m.to);
                }
                assert_eq!(check, plan.new_ownership);
            }
        }
    }
}
