//! Node power, expected SD counts and load imbalance (eqs. 8–10).

/// Per-node load metrics for one balancing iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadMetrics {
    /// SD̄(N_i): current SD counts.
    pub counts: Vec<usize>,
    /// Busy(N_i): the measured busy times the power estimate came from
    /// (whatever unit the caller uses; cost-aware planning needs seconds
    /// so relief is commensurable with [`CommCost`] transfer estimates).
    ///
    /// [`CommCost`]: nlheat_netmodel::CommCost
    pub busy: Vec<f64>,
    /// Power(N_i) = SD̄(N_i)/Busy(N_i) (eq. 8).
    pub power: Vec<f64>,
    /// E(N_i) = total·Power_i/ΣPower, rounded to integers that sum to the
    /// total (largest-remainder method) (eq. 10).
    pub expected: Vec<i64>,
    /// LoadImbalance(N_i) = E(N_i) − SD̄(N_i) (eq. 9). Positive: the node
    /// is under-loaded relative to its power and should gain SDs.
    pub imbalance: Vec<i64>,
}

impl LoadMetrics {
    /// Sum of |imbalance| / 2 — the number of SD moves a perfect
    /// realization of this iteration would perform.
    pub fn pending_moves(&self) -> i64 {
        self.imbalance.iter().map(|v| v.abs()).sum::<i64>() / 2
    }

    /// True when every node already holds its expected count.
    pub fn is_balanced(&self) -> bool {
        self.imbalance.iter().all(|&v| v == 0)
    }

    /// Busy time one SD contributes on `node` over the measured window —
    /// the *busy-time relief* of migrating one SD away, in the unit of
    /// `busy`. Zero for a node with no SDs (there is nothing to relieve).
    pub fn relief_per_sd(&self, node: usize) -> f64 {
        if self.counts[node] == 0 {
            0.0
        } else {
            self.busy[node] / self.counts[node] as f64
        }
    }
}

/// Compute eqs. 8–10 from SD counts and busy times.
///
/// Robustness beyond the paper's pseudocode (documented deviations):
/// * a node with zero busy time (it did nothing measurable) or zero SDs has
///   no measurable power; it is assigned the mean power of the measurable
///   nodes so it receives its fair share instead of a division by zero;
/// * expected counts are rounded by largest remainder so
///   `Σ expected = Σ counts` and `Σ imbalance = 0` exactly.
pub fn compute_metrics(counts: &[usize], busy: &[f64]) -> LoadMetrics {
    assert_eq!(counts.len(), busy.len());
    let n = counts.len();
    assert!(n > 0);
    let total: usize = counts.iter().sum();

    let mut power = vec![0.0f64; n];
    let mut measured = Vec::new();
    for i in 0..n {
        if counts[i] > 0 && busy[i] > 0.0 {
            power[i] = counts[i] as f64 / busy[i];
            measured.push(power[i]);
        }
    }
    let fallback = if measured.is_empty() {
        1.0
    } else {
        measured.iter().sum::<f64>() / measured.len() as f64
    };
    for p in power.iter_mut() {
        if *p <= 0.0 {
            *p = fallback;
        }
    }

    let sum_power: f64 = power.iter().sum();
    let shares: Vec<f64> = power.iter().map(|p| total as f64 * p / sum_power).collect();
    let expected = largest_remainder_round(&shares, total as i64);
    let imbalance: Vec<i64> = expected
        .iter()
        .zip(counts)
        .map(|(&e, &c)| e - c as i64)
        .collect();
    debug_assert_eq!(imbalance.iter().sum::<i64>(), 0);
    LoadMetrics {
        counts: counts.to_vec(),
        busy: busy.to_vec(),
        power,
        expected,
        imbalance,
    }
}

/// Round non-negative real shares to integers summing to `total` —
/// shared with the hierarchical planner's per-scope group shares.
pub(crate) fn largest_remainder_round(shares: &[f64], total: i64) -> Vec<i64> {
    let mut floors: Vec<i64> = shares.iter().map(|&s| s.floor() as i64).collect();
    let assigned: i64 = floors.iter().sum();
    let mut leftovers: Vec<(usize, f64)> = shares
        .iter()
        .enumerate()
        .map(|(i, &s)| (i, s - s.floor()))
        .collect();
    // biggest fractional parts first; ties by lower index for determinism
    leftovers.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut remaining = total - assigned;
    let mut idx = 0;
    while remaining > 0 {
        floors[leftovers[idx % leftovers.len()].0] += 1;
        remaining -= 1;
        idx += 1;
    }
    floors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_busy_equal_split() {
        let m = compute_metrics(&[10, 10, 10, 10], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(m.expected, vec![10, 10, 10, 10]);
        assert!(m.is_balanced());
        assert_eq!(m.pending_moves(), 0);
    }

    #[test]
    fn power_reflects_busy_time() {
        // Node 1 needed twice the time for the same SDs -> half the power.
        let m = compute_metrics(&[10, 10], &[1.0, 2.0]);
        assert!((m.power[0] / m.power[1] - 2.0).abs() < 1e-12);
        // Faster node expects 2/3 of 20 ≈ 13, slower 7.
        assert_eq!(m.expected.iter().sum::<i64>(), 20);
        assert!(m.expected[0] > m.expected[1]);
        assert_eq!(m.imbalance.iter().sum::<i64>(), 0);
    }

    #[test]
    fn symmetric_nodes_imbalanced_counts() {
        // Fig. 14 setup: symmetric nodes, wildly uneven counts. Busy time
        // is proportional to count, so power is equal and the expectation
        // is an even split.
        let counts = [22usize, 1, 1, 1];
        let busy: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let m = compute_metrics(&counts, &busy);
        let exp_sorted = {
            let mut e = m.expected.clone();
            e.sort_unstable();
            e
        };
        assert_eq!(exp_sorted, vec![6, 6, 6, 7]);
        assert_eq!(m.imbalance[0], m.expected[0] - 22);
    }

    #[test]
    fn zero_busy_node_gets_mean_power() {
        let m = compute_metrics(&[5, 5, 0], &[1.0, 1.0, 0.0]);
        assert!((m.power[2] - 5.0).abs() < 1e-12, "mean of the two measured");
        assert_eq!(m.expected.iter().sum::<i64>(), 10);
        assert!(m.expected[2] > 0, "idle node must be assigned work");
    }

    #[test]
    fn all_zero_busy_degrades_to_even_split() {
        let m = compute_metrics(&[8, 0, 0, 0], &[0.0; 4]);
        assert_eq!(m.expected, vec![2, 2, 2, 2]);
    }

    #[test]
    fn largest_remainder_sums_exactly() {
        let out = largest_remainder_round(&[1.5, 1.5, 1.0], 4);
        assert_eq!(out.iter().sum::<i64>(), 4);
        assert_eq!(out, vec![2, 1, 1], "first tie wins the single extra");
        let out5 = largest_remainder_round(&[1.5, 1.5, 2.0], 5);
        assert_eq!(
            out5,
            vec![2, 1, 2],
            "largest fraction (tie: lowest id) promoted"
        );
        assert_eq!(out5.iter().sum::<i64>(), 5, "sums to requested total");
    }

    #[test]
    fn relief_is_busy_per_sd() {
        let m = compute_metrics(&[10, 4, 0], &[5.0, 1.0, 0.0]);
        assert!((m.relief_per_sd(0) - 0.5).abs() < 1e-12);
        assert!((m.relief_per_sd(1) - 0.25).abs() < 1e-12);
        assert_eq!(m.relief_per_sd(2), 0.0, "empty node relieves nothing");
        assert_eq!(m.busy, vec![5.0, 1.0, 0.0], "metrics record the input");
    }

    #[test]
    fn imbalance_always_sums_to_zero() {
        for (counts, busy) in [
            (vec![3usize, 9, 1], vec![0.5, 3.0, 0.2]),
            (vec![100, 1, 1, 1, 1], vec![10.0, 0.1, 0.2, 0.15, 0.1]),
            (vec![7, 7], vec![1.0, 1.0]),
        ] {
            let m = compute_metrics(&counts, &busy);
            assert_eq!(m.imbalance.iter().sum::<i64>(), 0, "{counts:?}");
        }
    }
}
