//! Per-epoch policy traces — the recorded data A8/A9-style plots are
//! drawn from, instead of run-level aggregates.
//!
//! Both execution substrates record one [`EpochTrace`] per *realized*
//! balancing epoch (no-op plans emit nothing, matching the `lb_history`
//! convention): what the policy moved, what shipping it cost, and how the
//! recurring ghost traffic — the ownership edge cut over the
//! [`SdGraph`](nlheat_partition::SdGraph) — changed. The ghost columns are
//! zero when the substrate planned without a graph.

use crate::balance::algorithm::MigrationPlan;
use crate::balance::policy::LbNetwork;
use crate::balance::repart::DriftInfo;
use crate::ownership::Ownership;
use nlheat_netmodel::LinkClass;

/// What one balancing epoch did, in recorded (not re-derived) numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTrace {
    /// Timestep after which the epoch ran (1-based, like the LB schedule).
    pub step: usize,
    /// The planning policy's ablation label.
    pub policy: &'static str,
    /// Moves in the realized (single-hop) plan.
    pub moves: usize,
    /// One-off migration payload bytes of the plan.
    pub migration_bytes: u64,
    /// Migration bytes that crossed a rack boundary.
    pub inter_rack_migration_bytes: u64,
    /// Recurring ghost bytes per timestep before the plan (ownership edge
    /// cut over the SD graph; 0 when no graph was attached).
    pub ghost_bytes_before: u64,
    /// Recurring ghost bytes per timestep after the plan.
    pub ghost_bytes_after: u64,
    /// The inter-rack share of `ghost_bytes_before`.
    pub inter_rack_ghost_bytes_before: u64,
    /// The inter-rack share of `ghost_bytes_after`.
    pub inter_rack_ghost_bytes_after: u64,
    /// Ratio of the live ghost cut to a freshly repartitioned cut, as
    /// last measured by the [`Repartition`](crate::balance::LbSpec::Repartition)
    /// drift monitor (0 for policies without one, or before the first
    /// cadence check).
    pub cut_drift: f64,
    /// True when this epoch's plan came from a global replan (or a staged
    /// chunk of one) rather than the incremental policy.
    pub replan: bool,
}

impl EpochTrace {
    /// Record a realized plan: `before` is the pre-epoch ownership, `net`
    /// the planning view the policy saw (its [`SdGraph`] and link classes
    /// price the ghost columns).
    ///
    /// [`SdGraph`]: nlheat_partition::SdGraph
    pub fn record(
        step: usize,
        policy: &'static str,
        plan: &MigrationPlan,
        before: &Ownership,
        net: &LbNetwork,
    ) -> Self {
        let (ghost_before, ghost_after, inter_before, inter_after) = match &net.sd_graph {
            Some(g) => {
                let inter = |owners: &[u32]| {
                    g.cut_bytes_where(owners, |a, b| {
                        net.comm.link_class(a, b) == LinkClass::InterRack
                    })
                };
                (
                    g.cut_bytes(before.owners()),
                    g.cut_bytes(plan.new_ownership.owners()),
                    inter(before.owners()),
                    inter(plan.new_ownership.owners()),
                )
            }
            None => (0, 0, 0, 0),
        };
        EpochTrace {
            step,
            policy,
            moves: plan.moves.len(),
            migration_bytes: plan.comm.total_bytes,
            inter_rack_migration_bytes: plan.comm.inter_rack_bytes(),
            ghost_bytes_before: ghost_before,
            ghost_bytes_after: ghost_after,
            inter_rack_ghost_bytes_before: inter_before,
            inter_rack_ghost_bytes_after: inter_after,
            cut_drift: 0.0,
            replan: false,
        }
    }

    /// Attach what the policy's drift monitor reported for this epoch
    /// ([`LbPolicy::drift_info`](crate::balance::LbPolicy::drift_info));
    /// `None` leaves the columns at their policy-without-a-monitor zeros.
    pub fn with_drift(mut self, info: Option<DriftInfo>) -> Self {
        if let Some(info) = info {
            self.cut_drift = info.cut_drift;
            self.replan = info.replan;
        }
        self
    }

    /// Signed change of recurring ghost bytes per timestep this epoch
    /// caused (negative: the plan healed the partition).
    pub fn ghost_delta_bytes(&self) -> i64 {
        self.ghost_bytes_after as i64 - self.ghost_bytes_before as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::algorithm::{plan_rebalance_from_metrics, CostParams};
    use crate::balance::power::compute_metrics;
    use nlheat_mesh::SdGrid;
    use nlheat_netmodel::{LinkSpec, NetSpec, TopologySpec};
    use nlheat_partition::SdGraph;
    use std::sync::Arc;

    fn two_rack() -> NetSpec {
        NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: LinkSpec::new(1e-6, f64::INFINITY),
            inter_rack: LinkSpec::new(1e-3, 1e8),
        })
    }

    #[test]
    fn record_prices_cut_change_consistently() {
        let sds = SdGrid::new(6, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 0, 0, 0, 1], 2);
        let metrics = compute_metrics(&own.counts(), &[5.0, 1.0]);
        let graph = Arc::new(SdGraph::build(&sds, 1));
        let net =
            LbNetwork::for_sd_tiles(&two_rack(), sds.cells_per_sd()).with_sd_graph(graph.clone());
        let plan = plan_rebalance_from_metrics(
            &own,
            metrics,
            &CostParams::new(net.comm, 0.0, net.sd_bytes.clone()),
        );
        assert!(!plan.is_noop());
        let trace = EpochTrace::record(4, "tree", &plan, &own, &net);
        assert_eq!(trace.step, 4);
        assert_eq!(trace.moves, plan.moves.len());
        assert_eq!(trace.migration_bytes, plan.comm.total_bytes);
        assert_eq!(trace.ghost_bytes_before, graph.cut_bytes(own.owners()));
        assert_eq!(
            trace.ghost_bytes_after,
            graph.cut_bytes(plan.new_ownership.owners())
        );
        assert_eq!(
            trace.ghost_delta_bytes(),
            trace.ghost_bytes_after as i64 - trace.ghost_bytes_before as i64
        );
        // both nodes sit in one rack here: no inter-rack ghost share
        assert_eq!(trace.inter_rack_ghost_bytes_before, 0);
        assert_eq!(trace.inter_rack_ghost_bytes_after, 0);

        // without a graph the ghost columns are zero, not garbage
        let blind = LbNetwork::for_sd_tiles(&two_rack(), sds.cells_per_sd());
        let t2 = EpochTrace::record(4, "tree", &plan, &own, &blind);
        assert_eq!(t2.ghost_bytes_before, 0);
        assert_eq!(t2.ghost_bytes_after, 0);
    }

    #[test]
    fn inter_rack_share_counts_only_cross_rack_pairs() {
        // 4 SDs in a row over 4 nodes (2 racks): cuts (1,2) is the only
        // inter-rack *adjacent* pair, but corner reach doesn't exist in
        // 1-d, so shares split cleanly.
        let sds = SdGrid::new(4, 1, 4);
        let own = Ownership::new(sds, vec![0, 1, 2, 3], 4);
        let graph = Arc::new(SdGraph::build(&sds, 1));
        let net =
            LbNetwork::for_sd_tiles(&two_rack(), sds.cells_per_sd()).with_sd_graph(graph.clone());
        let inter = graph.cut_bytes_where(own.owners(), |a, b| {
            net.comm.link_class(a, b) == nlheat_netmodel::LinkClass::InterRack
        });
        let total = graph.cut_bytes(own.owners());
        assert!(inter > 0 && inter < total, "inter {inter} of {total}");
    }
}
