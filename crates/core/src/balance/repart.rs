//! Cut-aware repartitioning and elastic-membership evacuation — the
//! global-replan escape hatch behind [`LbSpec::Repartition`].
//!
//! Every incremental policy (tree, diffusion, greedy-steal, hierarchical)
//! only ever *nudges* ownership, so μ-gating merely slows ghost-cut decay:
//! over a long run the live ownership drifts arbitrarily far from
//! fresh-partitioner quality, and none of the incremental planners can
//! absorb a rank joining, draining, or failing mid-run. This module closes
//! both gaps with one mechanism (cf. Lifflander et al., arXiv:2404.16793):
//!
//! - **Drift monitoring.** On a cadence (`period` epochs) the policy
//!   recomputes a fresh capacity-aware k-way cut of the live
//!   [`SdGraph`](nlheat_partition::SdGraph) via
//!   [`nlheat_partition::repartition_capacitated`] and compares it against
//!   the live ownership's cut: `cut_drift = live_cut / fresh_cut`. While
//!   drift stays under `drift_threshold` the wrapped `inner` policy plans
//!   the epoch as if the decorator were absent.
//! - **Replanning.** When drift exceeds the threshold — or the active-rank
//!   mask changed ([`LbNetwork::active`]), or an SD is stranded on an
//!   inactive rank — the fresh partition *becomes the target ownership*:
//!   the old→new diff is staged and emitted as standard single-hop
//!   [`MigrationPlan`]s through the same `finish_plan` collapse every
//!   policy uses, at most `max_bytes_per_epoch` migration payload bytes
//!   per epoch (evacuations off inactive ranks are scheduled first). The
//!   inner policy is suspended while a diff is draining so it cannot fight
//!   the target.
//!
//! An infinite `drift_threshold` with no membership events makes the
//! decorator fully transparent — byte-identical plans to running `inner`
//! alone (property-pinned in `tests/properties.rs`).

use crate::balance::algorithm::{finish_plan, MigrationPlan, Move};
use crate::balance::policy::{LbNetwork, LbPolicy};
use crate::balance::power::LoadMetrics;
use crate::ownership::Ownership;
use nlheat_mesh::SdId;
use nlheat_partition::{repartition_capacitated, PartitionConfig};

/// What the drift monitor saw at the last balancing epoch — surfaced
/// through [`LbPolicy::drift_info`] so both substrates can record trigger
/// points in their [`EpochTrace`](crate::balance::EpochTrace)s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftInfo {
    /// Ratio of the live ownership's ghost cut to a freshly computed
    /// k-way cut (≥ 1 means the partitioner would do better; 0 until the
    /// first cadence check).
    pub cut_drift: f64,
    /// True when this epoch triggered (or continued staging) a global
    /// replan instead of delegating to the inner policy.
    pub replan: bool,
}

/// Seed for the mid-run repartitioner — fixed so both substrates compute
/// identical fresh partitions from identical planner inputs (the
/// cross-substrate parity contract).
const REPART_SEED: u64 = 0x9e3e_11a7;

/// [`LbSpec::Repartition`]: the cut-aware repartitioning decorator.
///
/// [`LbSpec::Repartition`]: crate::balance::policy::LbSpec::Repartition
pub struct RepartitionPolicy {
    inner: Box<dyn LbPolicy>,
    drift_threshold: f64,
    period: usize,
    max_bytes_per_epoch: u64,
    /// Balancing epochs seen (the cadence counter).
    epochs: usize,
    /// Target ownership of an in-flight replan; `None` when fully drained.
    target: Option<Vec<u32>>,
    /// The active mask seen at the previous epoch, for change detection.
    last_mask: Option<Vec<bool>>,
    /// What the monitor reported at the last epoch.
    last: DriftInfo,
}

impl RepartitionPolicy {
    /// See [`LbSpec::repartition`] for parameter semantics; invalid
    /// parameters panic (mirroring `LbSpec::validate`).
    ///
    /// [`LbSpec::repartition`]: crate::balance::policy::LbSpec::repartition
    pub fn new(
        inner: Box<dyn LbPolicy>,
        drift_threshold: f64,
        period: usize,
        max_bytes_per_epoch: u64,
    ) -> Self {
        assert!(
            drift_threshold > 0.0 && !drift_threshold.is_nan(),
            "drift_threshold must be positive (infinity = never), got {drift_threshold}"
        );
        assert!(period >= 1, "repartition period must be at least 1 epoch");
        assert!(
            max_bytes_per_epoch >= 1,
            "max_bytes_per_epoch must be positive (u64::MAX = unbounded)"
        );
        RepartitionPolicy {
            inner,
            drift_threshold,
            period,
            max_bytes_per_epoch,
            epochs: 0,
            target: None,
            last_mask: None,
            last: DriftInfo {
                cut_drift: 0.0,
                replan: false,
            },
        }
    }

    /// Ranks plans may target: the active mask, or everyone without one.
    fn active_ranks(own: &Ownership, net: &LbNetwork) -> Vec<u32> {
        match net.active.as_deref() {
            Some(mask) => {
                assert_eq!(
                    mask.len(),
                    own.n_nodes() as usize,
                    "active mask must cover every rank"
                );
                let active: Vec<u32> = (0..own.n_nodes()).filter(|&r| mask[r as usize]).collect();
                assert!(!active.is_empty(), "at least one rank must stay active");
                active
            }
            None => (0..own.n_nodes()).collect(),
        }
    }

    /// Compute the fresh capacity-aware partition and map part ids back
    /// onto active rank ids. Returns `(target_owners, fresh_cut_bytes)`.
    fn fresh_partition(
        own: &Ownership,
        net: &LbNetwork,
        graph: &nlheat_partition::SdGraph,
    ) -> (Vec<u32>, u64) {
        let active = Self::active_ranks(own, net);
        let footprints = match &net.sd_footprint {
            Some(fp) => fp.as_ref().clone(),
            None => graph.footprints(),
        };
        let caps: Vec<u64> = active
            .iter()
            .map(|&r| {
                net.memory_bytes
                    .as_ref()
                    .map_or(u64::MAX, |c| c[r as usize])
            })
            .collect();
        let cfg = PartitionConfig::new(active.len() as u32).with_seed(REPART_SEED);
        let part = repartition_capacitated(graph.csr(), &footprints, &caps, &cfg);
        let target: Vec<u32> = part.parts.iter().map(|&p| active[p as usize]).collect();
        (target, part.edgecut.max(0) as u64)
    }

    /// Emit the next chunk of the staged old→new diff: evacuations off
    /// inactive ranks first, then the rest in SD order, under the
    /// per-epoch byte budget (with a one-move progress guarantee when a
    /// single tile alone exceeds the budget). Clears the target once the
    /// diff is fully drained.
    fn emit_chunk(
        &mut self,
        own: &Ownership,
        metrics: &LoadMetrics,
        net: &LbNetwork,
    ) -> MigrationPlan {
        let target = self.target.as_ref().expect("staging requires a target");
        let owners = own.owners();
        let inactive = |rank: u32| net.active.as_deref().is_some_and(|m| !m[rank as usize]);
        let mut pending: Vec<SdId> = (0..owners.len() as SdId)
            .filter(|&sd| owners[sd as usize] != target[sd as usize])
            .collect();
        // Evacuations cannot wait: a drained/failed rank keeps paying for
        // every SD stranded on it, so they outrank cut repairs.
        pending.sort_by_key(|&sd| (!inactive(owners[sd as usize]), sd));
        let mut raw: Vec<Move> = Vec::new();
        let mut bytes = 0u64;
        for &sd in &pending {
            let cost = net.sd_bytes.get(sd);
            if bytes.saturating_add(cost) > self.max_bytes_per_epoch {
                continue; // a smaller tile later may still fit
            }
            bytes += cost;
            raw.push(Move {
                sd,
                from: owners[sd as usize],
                to: target[sd as usize],
            });
        }
        if raw.is_empty() {
            // Progress guarantee: one tile larger than the whole budget
            // would stall the drain forever — ship the cheapest one.
            if let Some(&sd) = pending.iter().min_by_key(|&&sd| (net.sd_bytes.get(sd), sd)) {
                raw.push(Move {
                    sd,
                    from: owners[sd as usize],
                    to: target[sd as usize],
                });
            }
        }
        if raw.len() == pending.len() {
            self.target = None; // drained
        }
        let mut working = own.clone();
        for m in &raw {
            working.set_owner(m.sd, m.to);
        }
        finish_plan(metrics.clone(), working, raw, &net.comm, &net.sd_bytes)
    }

    /// Run the inner policy, dropping any move that targets an inactive
    /// rank (the inner roster is membership-blind).
    fn delegate(
        &mut self,
        own: &Ownership,
        metrics: &LoadMetrics,
        net: &LbNetwork,
    ) -> MigrationPlan {
        let plan = self.inner.plan(own, metrics, net);
        let Some(mask) = net.active.as_deref() else {
            return plan;
        };
        if plan.moves.iter().all(|m| mask[m.to as usize]) {
            return plan;
        }
        let raw: Vec<Move> = plan
            .moves
            .into_iter()
            .filter(|m| mask[m.to as usize])
            .collect();
        let mut working = own.clone();
        for m in &raw {
            working.set_owner(m.sd, m.to);
        }
        finish_plan(metrics.clone(), working, raw, &net.comm, &net.sd_bytes)
    }
}

impl LbPolicy for RepartitionPolicy {
    fn name(&self) -> &'static str {
        "repartition"
    }

    fn plan(&mut self, own: &Ownership, metrics: &LoadMetrics, net: &LbNetwork) -> MigrationPlan {
        self.epochs += 1;
        self.last.replan = false;

        let mask_changed = match (&self.last_mask, net.active.as_deref()) {
            (Some(prev), Some(now)) => prev.as_slice() != now,
            (None, Some(_)) => false, // first sighting is the baseline, not a change
            (Some(_), None) | (None, None) => false,
        };
        self.last_mask = net.active.as_deref().map(|m| m.to_vec());

        let Some(graph) = net.sd_graph.clone() else {
            // No SD graph: nothing to monitor or diff against — behave as
            // the inner policy (inactive-target filtering still applies).
            return self.delegate(own, metrics, net);
        };

        // An in-flight diff drains before anything else happens — unless
        // membership changed under it, which invalidates the target.
        if self.target.is_some() && !mask_changed {
            self.last.replan = true;
            return self.emit_chunk(own, metrics, net);
        }
        if mask_changed {
            self.target = None;
        }

        let stranded = net
            .active
            .as_deref()
            .is_some_and(|mask| own.owners().iter().any(|&o| !mask[o as usize]));
        let due = (self.epochs - 1).is_multiple_of(self.period);
        let monitor = due && self.drift_threshold.is_finite();
        if !(monitor || mask_changed || stranded) {
            return self.delegate(own, metrics, net);
        }

        let (target, fresh_cut) = Self::fresh_partition(own, net, &graph);
        let live_cut = graph.cut_bytes(own.owners());
        let cut_drift = if fresh_cut == 0 {
            if live_cut == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            live_cut as f64 / fresh_cut as f64
        };
        if monitor {
            self.last.cut_drift = cut_drift;
        }
        if !(cut_drift > self.drift_threshold || mask_changed || stranded) {
            return self.delegate(own, metrics, net);
        }
        if target.as_slice() == own.owners() {
            // Already at the fresh partition (e.g. a Join event before any
            // imbalance): nothing to stage.
            return self.delegate(own, metrics, net);
        }
        self.target = Some(target);
        self.last.replan = true;
        self.emit_chunk(own, metrics, net)
    }

    fn drift_info(&self) -> Option<DriftInfo> {
        Some(self.last)
    }

    fn observe_stall(&mut self, stall_frac: f64) {
        self.inner.observe_stall(stall_frac);
    }

    fn observe_ghost_stall(&mut self, ghost_frac: f64) {
        self.inner.observe_ghost_stall(ghost_frac);
    }

    fn set_cost_weight(&mut self, lambda: f64) {
        self.inner.set_cost_weight(lambda);
    }

    fn cost_weight(&self) -> f64 {
        self.inner.cost_weight()
    }

    fn set_ghost_weight(&mut self, mu: f64) {
        self.inner.set_ghost_weight(mu);
    }

    fn ghost_weight(&self) -> f64 {
        self.inner.ghost_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::policy::LbSpec;
    use crate::balance::power::compute_metrics;
    use nlheat_mesh::SdGrid;
    use nlheat_netmodel::{LinkSpec, NetSpec, TopologySpec};
    use nlheat_partition::SdGraph;
    use std::sync::Arc;

    fn two_rack() -> NetSpec {
        NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: LinkSpec::new(1e-7, 5e9),
            intra_rack: LinkSpec::new(1e-4, 1e8),
            inter_rack: LinkSpec::new(4e-4, 2.5e7),
        })
    }

    fn metrics_for(own: &Ownership) -> LoadMetrics {
        let busy: Vec<f64> = own.counts().iter().map(|&c| c.max(1) as f64).collect();
        compute_metrics(&own.counts(), &busy)
    }

    /// A deliberately scrambled 6x6 ownership over 4 nodes whose cut is
    /// far above fresh-partitioner quality.
    fn scrambled() -> (Ownership, Arc<SdGraph>) {
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36u32).map(|sd| (sd * 7 + sd / 6) % 4).collect();
        let graph = Arc::new(SdGraph::build(&sds, 2));
        (Ownership::new(sds, owners, 4), graph)
    }

    fn net_with_graph(graph: Arc<SdGraph>) -> LbNetwork {
        LbNetwork::for_sd_tiles(&two_rack(), 16).with_sd_graph(graph)
    }

    #[test]
    fn high_drift_triggers_a_replan_that_heals_the_cut() {
        let (own, graph) = scrambled();
        let net = net_with_graph(graph.clone());
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), 1.5, 1, u64::MAX).build();
        let plan = policy.plan(&own, &metrics_for(&own), &net);
        let info = policy.drift_info().expect("repartition reports drift");
        assert!(info.replan, "scrambled ownership must trigger a replan");
        assert!(info.cut_drift > 1.5, "drift {}", info.cut_drift);
        assert!(!plan.is_noop());
        let healed = graph.cut_bytes(plan.new_ownership.owners());
        let before = graph.cut_bytes(own.owners());
        assert!(
            healed * 3 < before * 2,
            "replan must cut ghost traffic substantially: {before} -> {healed}"
        );
    }

    #[test]
    fn below_threshold_delegates_to_inner() {
        // A block-clean ownership: drift ≈ 1, so a threshold of 3 never
        // fires and plans must match the bare inner policy.
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36u32)
            .map(|sd| {
                let (sx, sy) = (sd % 6, sd / 6);
                u32::from(sx >= 3) + 2 * u32::from(sy >= 3)
            })
            .collect();
        let own = Ownership::new(sds, owners, 4);
        let graph = Arc::new(SdGraph::build(&sds, 2));
        let net = net_with_graph(graph);
        let mut wrapped = LbSpec::repartition(LbSpec::tree(0.0), 3.0, 1, u64::MAX).build();
        let mut bare = LbSpec::tree(0.0).build();
        let m = metrics_for(&own);
        let a = wrapped.plan(&own, &m, &net);
        let b = bare.plan(&own, &m, &net);
        assert_eq!(a.moves, b.moves, "no-replan epoch must be the inner plan");
        let info = wrapped.drift_info().unwrap();
        assert!(!info.replan);
        assert!(
            info.cut_drift >= 1.0 && info.cut_drift <= 3.0,
            "{}",
            info.cut_drift
        );
    }

    #[test]
    fn byte_budget_stages_the_diff_across_epochs() {
        let (own, graph) = scrambled();
        let net = net_with_graph(graph);
        // ~36 SDs of 16 cells: each tile is 16*8+24 = 152 wire bytes.
        let budget = 3 * 152u64;
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), 1.2, 1, budget).build();
        let mut current = own.clone();
        let mut epochs_with_moves = 0;
        let mut total_moves = 0;
        for _ in 0..40 {
            let m = metrics_for(&current);
            let plan = policy.plan(&current, &m, &net);
            assert!(
                plan.comm.total_bytes <= budget,
                "epoch shipped {} > budget {budget}",
                plan.comm.total_bytes
            );
            assert!(plan.moves.len() <= 3);
            if plan.is_noop() {
                break;
            }
            epochs_with_moves += 1;
            total_moves += plan.moves.len();
            current = plan.new_ownership;
        }
        assert!(
            epochs_with_moves >= 3,
            "a large diff must be staged over multiple epochs, got {epochs_with_moves}"
        );
        assert!(total_moves > 6);
    }

    #[test]
    fn inactive_rank_is_evacuated_first_and_fully() {
        let (own, graph) = scrambled();
        let mut net = net_with_graph(graph);
        // rank 3 drained: mask off
        net.active = Some(Arc::new(vec![true, true, true, false]));
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), f64::INFINITY, 1, u64::MAX).build();
        let m = metrics_for(&own);
        let plan = policy.plan(&own, &m, &net);
        assert!(
            policy.drift_info().unwrap().replan,
            "stranded SDs force a replan"
        );
        let counts = plan.new_ownership.counts();
        assert_eq!(counts[3], 0, "rank 3 must end empty: {counts:?}");
        assert!(plan.moves.iter().all(|mv| mv.to != 3));
    }

    #[test]
    fn evacuations_outrank_cut_repairs_under_a_budget() {
        let (own, graph) = scrambled();
        let mut net = net_with_graph(graph);
        net.active = Some(Arc::new(vec![true, true, true, false]));
        let stranded: Vec<_> = own
            .owners()
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == 3)
            .map(|(sd, _)| sd as SdId)
            .collect();
        assert!(!stranded.is_empty());
        let budget = 152 * stranded.len() as u64; // exactly the evacuation
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), f64::INFINITY, 1, budget).build();
        let m = metrics_for(&own);
        let plan = policy.plan(&own, &m, &net);
        for sd in &stranded {
            assert!(
                plan.moves.iter().any(|mv| mv.sd == *sd),
                "stranded SD {sd} must be in the first chunk: {:?}",
                plan.moves
            );
        }
    }

    #[test]
    fn infinite_threshold_without_events_is_transparent() {
        let (own, graph) = scrambled();
        let net = net_with_graph(graph);
        let mut wrapped =
            LbSpec::repartition(LbSpec::greedy_steal(1), f64::INFINITY, 1, u64::MAX).build();
        let mut bare = LbSpec::greedy_steal(1).build();
        let m = metrics_for(&own);
        let a = wrapped.plan(&own, &m, &net);
        let b = bare.plan(&own, &m, &net);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.new_ownership, b.new_ownership);
        assert_eq!(
            wrapped.drift_info().unwrap().cut_drift,
            0.0,
            "monitor never ran"
        );
    }

    #[test]
    fn cadence_skips_off_period_epochs() {
        let (own, graph) = scrambled();
        let net = net_with_graph(graph);
        // period 3: epochs 1 and 4 are due; wrap an inert inner (huge
        // threshold would hide the replan, so use a small one and watch
        // which epochs report a fresh drift).
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), 1e6, 3, u64::MAX).build();
        let m = metrics_for(&own);
        policy.plan(&own, &m, &net);
        let d1 = policy.drift_info().unwrap().cut_drift;
        assert!(d1 > 0.0, "epoch 1 is due");
        // mutate nothing; epochs 2 and 3 must not recompute
        policy.plan(&own, &m, &net);
        policy.plan(&own, &m, &net);
        assert_eq!(policy.drift_info().unwrap().cut_drift, d1);
    }

    #[test]
    fn join_spreads_load_onto_the_new_rank() {
        // Everything on ranks {0,1}; rank 2 joins (mask flips on) with
        // the monitor forced by the membership change.
        let sds = SdGrid::new(6, 6, 4);
        let owners: Vec<u32> = (0..36u32).map(|sd| sd % 2).collect();
        let own = Ownership::new(sds, owners, 3);
        let graph = Arc::new(SdGraph::build(&sds, 2));
        let mut net = LbNetwork::for_sd_tiles(&two_rack(), 16).with_sd_graph(graph);
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), f64::INFINITY, 1, u64::MAX).build();
        // epoch 1: only {0,1} active — baseline
        net.active = Some(Arc::new(vec![true, true, false]));
        let m = metrics_for(&own);
        let p1 = policy.plan(&own, &m, &net);
        assert!(p1.moves.iter().all(|mv| mv.to != 2));
        // epoch 2: rank 2 joins — mask change forces a replan onto it
        net.active = Some(Arc::new(vec![true, true, true]));
        let p2 = policy.plan(&own, &m, &net);
        assert!(policy.drift_info().unwrap().replan);
        assert!(
            p2.new_ownership.counts()[2] > 0,
            "join must receive load: {:?}",
            p2.new_ownership.counts()
        );
    }

    #[test]
    fn no_graph_degenerates_to_inner_with_filtering() {
        let sds = SdGrid::new(6, 1, 4);
        let own = Ownership::new(sds, vec![0, 0, 0, 0, 0, 1], 2);
        let net = LbNetwork::free();
        let mut wrapped = LbSpec::repartition(LbSpec::tree(0.0), 1.01, 1, u64::MAX).build();
        let mut bare = LbSpec::tree(0.0).build();
        let m = metrics_for(&own);
        assert_eq!(
            wrapped.plan(&own, &m, &net).moves,
            bare.plan(&own, &m, &net).moves
        );
        assert!(policy_reports_no_monitor(&*wrapped));
    }

    fn policy_reports_no_monitor(p: &dyn LbPolicy) -> bool {
        p.drift_info()
            .is_some_and(|d| d.cut_drift == 0.0 && !d.replan)
    }

    #[test]
    fn respects_memory_caps_in_the_fresh_partition() {
        let (own, graph) = scrambled();
        let footprints = Arc::new(graph.footprints());
        // rank 0 can barely hold a quarter of the total; others are loose
        let total: u64 = footprints.iter().sum();
        let caps = Arc::new(vec![total / 4, total, total, total]);
        let net = net_with_graph(graph.clone()).with_memory(caps.clone(), footprints.clone());
        let mut policy = LbSpec::repartition(LbSpec::tree(0.0), 1.2, 1, u64::MAX).build();
        let m = metrics_for(&own);
        let plan = policy.plan(&own, &m, &net);
        assert!(policy.drift_info().unwrap().replan);
        let mut usage = [0u64; 4];
        for (sd, &o) in plan.new_ownership.owners().iter().enumerate() {
            usage[o as usize] += footprints[sd];
        }
        assert!(
            usage[0] <= caps[0],
            "rank 0 over its cap: {} > {}",
            usage[0],
            caps[0]
        );
    }
}
