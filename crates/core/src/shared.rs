//! Shared-memory asynchronous solver (paper §8.2).
//!
//! One computational node, many threads: the mesh is decomposed into SDs,
//! every timestep spawns one task per SD onto the work-stealing pool, and
//! futurization synchronizes the step (the `hpx::async`/`hpx::future`
//! pattern of Listing 1). All data lives in one address space, so halo
//! fills are plain copies and there is no case-1/case-2 distinction — that
//! split only matters across localities.

use crate::workload::WorkModel;
use nlheat_amt::future::when_all;
use nlheat_amt::pool::ThreadPool;
use nlheat_mesh::{build_halo_plan, HaloPlan, PatchSource, SdGrid, Tile};
use nlheat_model::{ErrorAccumulator, KernelPlan, ProblemParts, ProblemSpec, SourceFn};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a shared-memory run.
#[derive(Debug, Clone)]
pub struct SharedConfig {
    /// The physical problem.
    pub spec: ProblemSpec,
    /// SD side length in cells (must divide the mesh).
    pub sd_size: usize,
    /// Timesteps to run.
    pub n_steps: usize,
    /// Worker threads.
    pub n_threads: usize,
    /// Record the eq.-7 error against the manufactured solution each step.
    pub record_error: bool,
    /// Per-SD work factors.
    pub work: WorkModel,
}

impl SharedConfig {
    /// Paper-style configuration (manufactured problem, uniform work).
    pub fn new(n: usize, eps_mult: f64, sd_size: usize, n_steps: usize, n_threads: usize) -> Self {
        SharedConfig {
            spec: ProblemSpec::square(n, eps_mult),
            sd_size,
            n_steps,
            n_threads,
            record_error: false,
            work: WorkModel::Uniform,
        }
    }
}

/// Per-SD double-buffered storage shared between driver and tasks.
struct SdCell {
    curr: RwLock<Tile>,
    next: Mutex<Tile>,
}

struct SdUnit {
    origin: (i64, i64),
    plan: HaloPlan,
    cell: Arc<SdCell>,
    repeats: u32,
}

/// Outcome of a shared-memory run.
#[derive(Debug, Clone)]
pub struct SharedReport {
    /// Wall time of the stepping loop.
    pub elapsed: Duration,
    /// Per-step errors when requested.
    pub error: Option<ErrorAccumulator>,
    /// Final interior field, row-major over the global mesh.
    pub field: Vec<f64>,
    /// Total busy nanoseconds across workers.
    pub busy_ns: u64,
    /// Tasks executed by the pool.
    pub tasks: u64,
}

/// The shared-memory solver: owns the pool and the SD storage.
pub struct SharedSolver {
    cfg: SharedConfig,
    parts: ProblemParts,
    sds: SdGrid,
    units: Vec<SdUnit>,
    pool: ThreadPool,
    kernel_plan: Arc<KernelPlan>,
    source: SourceFn,
    step: usize,
}

impl SharedSolver {
    /// Build the solver, decompose the mesh, set the initial condition.
    pub fn new(cfg: SharedConfig) -> Self {
        let parts = cfg.spec.build();
        let grid = parts.grid;
        let sds = SdGrid::tile_mesh(grid.nx as usize, grid.ny as usize, cfg.sd_size);
        let halo = grid.halo;
        let m = parts.manufactured.clone();
        let units: Vec<SdUnit> = sds
            .ids()
            .map(|id| {
                let origin = sds.origin(id);
                let mut curr = Tile::new(sds.sd, halo);
                for lj in 0..sds.sd {
                    for li in 0..sds.sd {
                        curr.set(li, lj, m.initial(origin.0 + li, origin.1 + lj));
                    }
                }
                SdUnit {
                    origin,
                    plan: build_halo_plan(&sds, halo, id),
                    cell: Arc::new(SdCell {
                        curr: RwLock::new(curr),
                        next: Mutex::new(Tile::new(sds.sd, halo)),
                    }),
                    repeats: cfg.work.repeats(&sds, id, 1.0),
                }
            })
            .collect();
        let pool = ThreadPool::new(cfg.n_threads, "shared");
        let kernel_plan = Arc::new(parts.kernel.plan(sds.sd + 2 * halo));
        let source = m.source_fn();
        SharedSolver {
            cfg,
            parts,
            sds,
            units,
            pool,
            kernel_plan,
            source,
            step: 0,
        }
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.step as f64 * self.parts.dt
    }

    /// Advance one futurized timestep.
    pub fn step(&mut self) {
        // 1. halo fill: all-local copies (single address space)
        for unit in &self.units {
            let mut dst = unit.cell.curr.write();
            for patch in &unit.plan.patches {
                if let PatchSource::Sd(src_id) = patch.source {
                    let src = self.units[src_id as usize].cell.curr.read();
                    dst.copy_rect_from(&src, &patch.src_rect, &patch.dst_rect);
                }
                // collar patches stay zero (boundary condition eq. 4)
            }
        }
        // 2. one asynchronous task per SD (the unit of work, §6.1)
        let t = self.time();
        let dt = self.parts.dt;
        let kernel = Arc::new(self.parts.kernel.clone());
        let handle = self.pool.handle();
        let futures: Vec<_> = self
            .units
            .iter()
            .map(|unit| {
                let cell = unit.cell.clone();
                let kernel = kernel.clone();
                let plan = self.kernel_plan.clone();
                let source = self.source.clone();
                let origin = unit.origin;
                let repeats = unit.repeats;
                handle.async_call(move || {
                    let curr = cell.curr.read();
                    let mut next = cell.next.lock();
                    let region = curr.interior_rect();
                    kernel.apply_region_blocked(
                        &curr, &mut next, &region, &plan, origin, t, dt, &source, repeats,
                    );
                })
            })
            .collect();
        when_all(futures).get();
        // 3. swap buffers
        for unit in &self.units {
            let mut curr = unit.cell.curr.write();
            let mut next = unit.cell.next.lock();
            std::mem::swap(&mut *curr, &mut *next);
        }
        self.step += 1;
    }

    /// Current error `e_k` (eq. 7) against the manufactured solution.
    pub fn error_now(&self) -> f64 {
        let m = &self.parts.manufactured;
        let t = self.time();
        let h = self.parts.grid.h;
        let mut sum = 0.0;
        for unit in &self.units {
            let curr = unit.cell.curr.read();
            for lj in 0..self.sds.sd {
                for li in 0..self.sds.sd {
                    let (gi, gj) = (unit.origin.0 + li, unit.origin.1 + lj);
                    let d = m.exact(t, gi, gj) - curr.get(li, lj);
                    sum += d * d;
                }
            }
        }
        h * h * sum
    }

    /// Assemble the global interior field row-major.
    pub fn field(&self) -> Vec<f64> {
        let (nx, ny) = self.sds.mesh_extent();
        let mut out = vec![0.0; (nx * ny) as usize];
        for unit in &self.units {
            let curr = unit.cell.curr.read();
            for lj in 0..self.sds.sd {
                for li in 0..self.sds.sd {
                    let (gi, gj) = (unit.origin.0 + li, unit.origin.1 + lj);
                    out[(gj * nx + gi) as usize] = curr.get(li, lj);
                }
            }
        }
        out
    }

    /// Run the configured number of steps and report.
    pub fn run(mut self) -> SharedReport {
        let mut acc = self.cfg.record_error.then(ErrorAccumulator::new);
        let t0 = Instant::now();
        for _ in 0..self.cfg.n_steps {
            self.step();
            if let Some(acc) = acc.as_mut() {
                acc.push(self.error_now());
            }
        }
        let elapsed = t0.elapsed();
        // `when_all` resolves inside the final task, slightly before the
        // pool retires it — drain fully so the counters below are final.
        self.pool.wait_idle();
        SharedReport {
            elapsed,
            error: acc,
            field: self.field(),
            busy_ns: self.pool.busy_ns_total(),
            tasks: self.pool.tasks_executed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlheat_model::SerialSolver;

    #[test]
    fn matches_serial_solver_bitwise() {
        let mut cfg = SharedConfig::new(16, 2.0, 4, 5, 2);
        cfg.record_error = true;
        let report = SharedSolver::new(cfg).run();

        let parts = ProblemSpec::square(16, 2.0).build();
        let mut serial = SerialSolver::manufactured(&parts);
        serial.run(5);
        let serial_field = serial.field();

        assert_eq!(report.field.len(), serial_field.len());
        for (i, (a, b)) in report.field.iter().zip(&serial_field).enumerate() {
            assert_eq!(a, b, "cell {i} differs: shared {a} vs serial {b}");
        }
    }

    #[test]
    fn single_sd_equals_many_sds() {
        let one = SharedSolver::new(SharedConfig::new(16, 2.0, 16, 4, 1)).run();
        let many = SharedSolver::new(SharedConfig::new(16, 2.0, 4, 4, 3)).run();
        assert_eq!(
            one.field, many.field,
            "decomposition must not change numerics"
        );
    }

    #[test]
    fn error_stays_small() {
        let mut cfg = SharedConfig::new(24, 3.0, 8, 8, 2);
        cfg.record_error = true;
        let report = SharedSolver::new(cfg).run();
        let total = report.error.unwrap().total();
        assert!(total < 1e-4, "error {total}");
    }

    #[test]
    fn tasks_scale_with_sds_and_steps() {
        let report = SharedSolver::new(SharedConfig::new(16, 2.0, 4, 3, 2)).run();
        // 16 SDs x 3 steps
        assert_eq!(report.tasks, 48);
        assert!(report.busy_ns > 0);
    }

    #[test]
    fn work_model_changes_cost_not_result() {
        let uniform = SharedSolver::new(SharedConfig::new(16, 2.0, 4, 3, 2)).run();
        let mut cfg = SharedConfig::new(16, 2.0, 4, 3, 2);
        cfg.work = WorkModel::Crack {
            y_cell: 8,
            half_width: 2,
            factor: 3.0,
        };
        let crack = SharedSolver::new(cfg).run();
        assert_eq!(uniform.field, crack.field);
    }
}
