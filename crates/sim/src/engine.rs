//! The discrete-event engine: per-step task graphs, asynchronous per-node
//! clocks (no global barrier between steps, like the real solver), and
//! load-balancing epochs.

use crate::cost::CostModel;
pub use nlheat_core::balance::LbSpec;
use nlheat_core::balance::{compute_metrics, EpochTrace, LbNetwork, LbPolicy, LbSchedule, Move};
use nlheat_core::ownership::Ownership;
use nlheat_core::scenario::{
    active_at, failed_at, modeled_busy, ClusterEvent, LbInput, PartitionSpec,
};
use nlheat_core::workload::WorkModel;
use nlheat_mesh::{build_halo_plan, split_cases, Grid, HaloPlan, PatchSource, SdGrid, Stencil};
use nlheat_netmodel::{LinkClass, Msg, NetSpec};
use nlheat_partition::SdGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

// The declared node shape lives with `ClusterSpec` in `nlheat-core`: one
// source of truth both the virtual cluster and the real localities are
// built from.
pub use nlheat_core::scenario::VirtualNode;

/// Full simulation configuration — the low-level execution config of the
/// discrete-event simulator. Prefer describing experiments with
/// [`nlheat_core::scenario::Scenario`] (which compiles into this via
/// `SimConfig::from(&scenario)`); `SimConfig` remains the compatibility
/// layer for code that drives the engine directly.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Mesh cells per side.
    pub mesh_n: usize,
    /// Horizon multiplier (ε = m·h; the paper uses 8).
    pub eps_mult: f64,
    /// SD side length in cells.
    pub sd_size: usize,
    /// Timesteps to simulate.
    pub n_steps: usize,
    /// The virtual cluster.
    pub nodes: Vec<VirtualNode>,
    /// Network model (shared with the real fabric via `nlheat-netmodel`).
    pub net: NetSpec,
    /// Compute-cost model.
    pub cost: CostModel,
    /// Initial distribution (shared with the real runtime).
    pub partition: PartitionSpec,
    /// Case-1/case-2 overlap on/off (ablation A2).
    pub overlap: bool,
    /// Per-SD work factors.
    pub work: WorkModel,
    /// Time-varying workload: `(from_step, model)` switch points, sorted by
    /// step. At step `s` the last entry with `from_step ≤ s` overrides
    /// `work` — this models a *propagating* crack (the paper's §9 outlook
    /// toward nonlocal fracture), where the cheap band migrates through the
    /// domain and the balancer must keep chasing it. The real runtime
    /// executes the same schedule.
    pub work_schedule: Vec<(usize, WorkModel)>,
    /// Elastic cluster-membership timeline (`(from_step, event)`, sorted
    /// by step; see [`ClusterEvent`]). Applied exactly like the real
    /// runtime: events set the planner's active-rank mask and the failure
    /// mask the ghost counters honour; nodes keep executing the SDs they
    /// own until a replan evacuates them.
    pub cluster_events: Vec<(usize, ClusterEvent)>,
    /// Optional load balancing.
    pub lb: Option<LbSchedule>,
    /// What the balancing policies plan from: simulated busy windows (the
    /// default) or deterministic modeled busy times ([`LbInput::Modeled`],
    /// the cross-substrate parity mode).
    pub lb_input: LbInput,
}

impl SimConfig {
    /// The workload in effect at `step`.
    fn work_at(&self, step: usize) -> &WorkModel {
        nlheat_core::scenario::work_at(&self.work, &self.work_schedule, step)
    }
}

impl SimConfig {
    /// Paper-style configuration over `nodes`.
    pub fn paper(mesh_n: usize, sd_size: usize, n_steps: usize, nodes: Vec<VirtualNode>) -> Self {
        let grid = Grid::square(mesh_n, 8.0);
        let stencil = Stencil::build(grid.h, grid.eps);
        SimConfig {
            mesh_n,
            eps_mult: 8.0,
            sd_size,
            n_steps,
            nodes,
            net: NetSpec::cluster(),
            cost: CostModel::calibrated(stencil.len()),
            partition: PartitionSpec::Metis { seed: 1 },
            overlap: true,
            work: WorkModel::Uniform,
            work_schedule: Vec::new(),
            cluster_events: Vec::new(),
            lb: None,
            lb_input: LbInput::Measured,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Virtual seconds from step 0 to the last node finishing.
    pub total_time: f64,
    /// Per-node total busy seconds.
    pub busy: Vec<f64>,
    /// Per-node busy fraction: busy / (cores · total_time).
    pub busy_fraction: Vec<f64>,
    /// Bytes crossing node boundaries.
    pub cross_bytes: u64,
    /// Messages crossing node boundaries.
    pub messages: u64,
    /// SD counts per node after each LB epoch.
    pub lb_history: Vec<Vec<usize>>,
    /// Total SDs migrated.
    pub migrations: usize,
    /// Total migration payload bytes (a subset of `cross_bytes`).
    pub migration_bytes: u64,
    /// Migration payload bytes that crossed a rack boundary (per the
    /// configured [`NetSpec`]'s link classes; 0 for rack-less models).
    pub inter_rack_migration_bytes: u64,
    /// Ghost-exchange payload bytes between nodes over the whole run
    /// (`cross_bytes` minus the migration traffic).
    pub ghost_bytes: u64,
    /// Ghost-exchange bytes that crossed a rack boundary — the recurring
    /// traffic μ-weighted (ghost-aware) balancing exists to shrink.
    pub inter_rack_ghost_bytes: u64,
    /// One [`EpochTrace`] per realized balancing epoch: plan size,
    /// migration bytes, and the ghost-traffic cut before/after.
    pub epoch_traces: Vec<EpochTrace>,
    /// The realized migration plan of each epoch, in epoch order (empty
    /// plans are skipped, matching `lb_history`).
    pub lb_plans: Vec<Vec<Move>>,
    /// Final ownership.
    pub final_ownership: Ownership,
}

struct Geometry {
    sds: SdGrid,
    plans: Vec<HaloPlan>,
    halo: i64,
    /// Per-SD ghost cells expected from neighbouring SDs — fixed geometry,
    /// hoisted out of the per-step unpack-cost computation.
    ghost_cells: Vec<f64>,
}

impl Geometry {
    fn build(cfg: &SimConfig) -> Self {
        let grid = Grid::square(cfg.mesh_n, cfg.eps_mult);
        let sds = SdGrid::tile_mesh(cfg.mesh_n, cfg.mesh_n, cfg.sd_size);
        let plans: Vec<HaloPlan> = sds
            .ids()
            .map(|id| build_halo_plan(&sds, grid.halo, id))
            .collect();
        let ghost_cells = plans
            .iter()
            .map(|p| p.ghost_cells_from_sds() as f64)
            .collect();
        Geometry {
            sds,
            plans,
            halo: grid.halo,
            ghost_cells,
        }
    }
}

/// One cross-node ghost transfer, precomputed in exact arrival-call order
/// (destination SDs ascending, patches in plan order) so replaying the
/// list hits the stateful [`nlheat_netmodel::NetModel`] with the identical
/// call sequence the per-step scan used to produce.
struct GhostSend {
    src: u32,
    dst: u32,
    /// Destination SD the payload feeds.
    sd: u32,
    /// Patch area in cells (prices the sender-side pack delay).
    area: i64,
    /// Wire bytes on the link.
    bytes: u64,
    /// Whether the link crosses a rack boundary under the run's topology.
    inter_rack: bool,
}

/// Everything the event loop derives from ownership alone. The per-step
/// scan used to rebuild all of this (owner copies, cross-node patch scans,
/// case splits) every step; ownership only changes at realized balancing
/// epochs, so the view is computed once and swapped on migration.
struct OwnershipView {
    owners: Vec<u32>,
    /// Per-node owned SDs, ascending id (the order `owned_by` yields).
    owned: Vec<Vec<u32>>,
    /// Cross-node ghost sends in arrival-call order.
    sends: Vec<GhostSend>,
    /// Per-node cells copied for node-local halo patches each step.
    local_copy_cells: Vec<i64>,
    /// Per-SD (case-1 area, case-2 area) under this ownership.
    splits: Vec<(i64, i64)>,
}

impl OwnershipView {
    fn build(
        geo: &Geometry,
        ownership: &Ownership,
        nn: usize,
        comm: &nlheat_netmodel::CommCost,
    ) -> Self {
        let owners = ownership.owners().to_vec();
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nn];
        let mut sends = Vec::new();
        let mut local_copy_cells = vec![0i64; nn];
        let mut splits = Vec::with_capacity(geo.sds.count());
        for sd in geo.sds.ids() {
            let dst_node = owners[sd as usize] as usize;
            owned[dst_node].push(sd);
            for patch in &geo.plans[sd as usize].patches {
                if let PatchSource::Sd(src) = patch.source {
                    let src_node = owners[src as usize] as usize;
                    if src_node == dst_node {
                        local_copy_cells[dst_node] += patch.dst_rect.area();
                        continue;
                    }
                    let bytes = nlheat_partition::patch_wire_bytes(patch.dst_rect.area());
                    sends.push(GhostSend {
                        src: src_node as u32,
                        dst: dst_node as u32,
                        sd,
                        area: patch.dst_rect.area(),
                        bytes,
                        inter_rack: comm.link_class(src_node as u32, dst_node as u32)
                            == LinkClass::InterRack,
                    });
                }
            }
            let split = split_cases(geo.sds.sd, geo.halo, &geo.plans[sd as usize], |n| {
                owners[n as usize] as usize != dst_node
            });
            splits.push((split.case1_area(), split.case2_area()));
        }
        OwnershipView {
            owners,
            owned,
            sends,
            local_copy_cells,
            splits,
        }
    }
}

/// Per-step scratch buffers reused across the whole run: the event loop
/// proper performs no heap allocation once these reach steady-state size.
struct StepScratch {
    /// Ghost arrival times keyed by destination SD.
    arrivals: Vec<Vec<f64>>,
    /// (ready, duration) task list for the node being scheduled.
    tasks: Vec<(f64, f64)>,
    /// Core-free-time heap for the list scheduler.
    free: BinaryHeap<Reverse<Ordered>>,
}

impl StepScratch {
    fn new(sd_count: usize, max_cores: usize) -> Self {
        StepScratch {
            arrivals: vec![Vec::new(); sd_count],
            tasks: Vec::new(),
            free: BinaryHeap::with_capacity(max_cores.max(1)),
        }
    }
}

/// List-schedule `tasks` (ready, duration) onto `cores` cores that are
/// free from `t0`, reusing the caller's `free` heap (cleared on entry) so
/// the per-step hot path never allocates. Returns (finish time, busy
/// seconds).
///
/// `total_cmp` orders every value the simulator produces exactly like the
/// previous `partial_cmp` sort (virtual times are finite and
/// non-negative), and equal (ready, duration) pairs are interchangeable
/// under list scheduling, so the unstable sort leaves results bit-identical.
fn list_schedule(
    tasks: &mut [(f64, f64)],
    cores: usize,
    t0: f64,
    free: &mut BinaryHeap<Reverse<Ordered>>,
) -> (f64, f64) {
    if tasks.is_empty() {
        return (t0, 0.0);
    }
    tasks.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
    free.clear();
    free.extend((0..cores.max(1)).map(|_| Reverse(Ordered(t0))));
    let mut finish = t0;
    let mut busy = 0.0;
    for &(ready, dur) in tasks.iter() {
        let Reverse(Ordered(core_free)) = free.pop().unwrap();
        let start = ready.max(core_free);
        let end = start + dur;
        busy += dur;
        finish = finish.max(end);
        free.push(Reverse(Ordered(end)));
    }
    (finish, busy)
}

/// Total-ordered f64 wrapper for the scheduler heap.
#[derive(PartialEq)]
struct Ordered(f64);
impl Eq for Ordered {}
impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Run the simulation.
pub fn simulate(cfg: &SimConfig) -> SimRun {
    let geo = Geometry::build(cfg);
    let n_nodes = cfg.nodes.len() as u32;
    // Reject unpriceable work models at configuration time, mirroring the
    // real runtime's up-front validation.
    cfg.work.validate(&geo.sds);
    for (_, model) in &cfg.work_schedule {
        model.validate(&geo.sds);
    }
    let owners0 = cfg.partition.initial_owners(&geo.sds, n_nodes);
    let mut ownership = Ownership::new(geo.sds, owners0, n_nodes);

    let nn = cfg.nodes.len();
    let mut node_time = vec![0.0f64; nn];
    let mut busy_total = vec![0.0f64; nn];
    let mut busy_window = vec![0.0f64; nn]; // since last LB counter reset
    let mut net = cfg.net.build(nn);
    let mut cross_bytes = 0u64;
    let mut messages = 0u64;
    let mut lb_history: Vec<Vec<usize>> = Vec::new();
    let mut migrations = 0usize;
    let mut migration_bytes = 0u64;
    let mut inter_rack_migration_bytes = 0u64;
    let mut ghost_bytes = 0u64;
    let mut inter_rack_ghost_bytes = 0u64;
    let mut epoch_traces: Vec<EpochTrace> = Vec::new();
    let mut lb_plans: Vec<Vec<Move>> = Vec::new();
    // Worst ghost-arrival delay per node per step, accumulated per
    // balancing window — the adaptive-μ feedback signal (virtual-time
    // analogue of the real driver's wall-clock measurement).
    let mut ghost_wait_window = vec![0.0f64; nn];
    let speeds: Vec<f64> = cfg.nodes.iter().map(|n| n.speed).collect();
    // Planner-facing cost estimate of the same network the event loop
    // simulates — the simulator mirrors `core::dist`'s wiring exactly:
    // one policy instance lives across epochs (stateful policies learn
    // from the simulated migration stalls), and the SD adjacency /
    // halo-volume graph it prices μ against is built from the very halo
    // plans whose messages the loop below charges.
    let sd_graph = Arc::new(SdGraph::from_plans(&geo.sds, &geo.plans));
    let mut lb_net =
        LbNetwork::for_sd_tiles(&cfg.net, geo.sds.cells_per_sd()).with_sd_graph(sd_graph.clone());
    if cfg.nodes.iter().any(|n| n.memory_bytes.is_some()) {
        let caps: Vec<u64> = cfg
            .nodes
            .iter()
            .map(|n| n.memory_bytes.unwrap_or(u64::MAX))
            .collect();
        lb_net = lb_net.with_memory(Arc::new(caps), Arc::new(sd_graph.footprints()));
    }
    let sd_tile_bytes = lb_net.sd_bytes.clone();
    // Link classes for the virtual-time ghost accounting: the very
    // CommCost the planner prices moves with, so counter and μ term can
    // never disagree on what crosses a rack.
    let comm = lb_net.comm;
    let mut policy: Option<Box<dyn LbPolicy>> = cfg.lb.as_ref().map(|lb| {
        lb.validate();
        lb.spec.build()
    });
    let mut last_barrier = 0.0f64;
    let max_cores = cfg.nodes.iter().map(|n| n.cores).max().unwrap_or(1);
    let mut scratch = StepScratch::new(geo.sds.count(), max_cores);
    let mut view = OwnershipView::build(&geo, &ownership, nn, &comm);

    for step in 0..cfg.n_steps {
        // --- ghost messages: (dst node, dst sd) -> arrival time ---
        // replay the precomputed send list (destination SDs in id order,
        // the order sender NICs serialize in).
        for v in scratch.arrivals.iter_mut() {
            v.clear();
        }
        // Failure mask of this step: transfers to or from a fail-stopped
        // rank still happen (the nodes keep executing until evacuated, so
        // virtual time is unchanged) but stop counting toward the
        // planner-grade counters — mirroring the real runtime, and
        // keeping `cross_bytes == ghost_bytes + migration_bytes` intact.
        let failed_now =
            (!cfg.cluster_events.is_empty()).then(|| failed_at(nn, &cfg.cluster_events, step));
        for s in &view.sends {
            // pack cost delays the send readiness a little
            let ready = node_time[s.src as usize] + cfg.cost.copy_sec_per_cell * s.area as f64;
            let arr = net.arrival(
                ready,
                &Msg {
                    src: s.src,
                    dst: s.dst,
                    bytes: s.bytes,
                },
            );
            scratch.arrivals[s.sd as usize].push(arr);
            let counted = failed_now
                .as_ref()
                .is_none_or(|f| !f[s.src as usize] && !f[s.dst as usize]);
            if counted {
                cross_bytes += s.bytes;
                ghost_bytes += s.bytes;
                if s.inter_rack {
                    inter_rack_ghost_bytes += s.bytes;
                }
                messages += 1;
            }
        }

        // --- per-node task graphs and scheduling ---
        let work = cfg.work_at(step);
        for node in 0..nn {
            let spec = cfg.nodes[node];
            let owned = &view.owned[node];
            // serial driver phase: local halo copies + task spawns
            let n_tasks_approx = owned.len().max(1);
            let serial = cfg.cost.copy_sec_per_cell * view.local_copy_cells[node] as f64
                + cfg.cost.spawn_sec * n_tasks_approx as f64;
            let t0 = node_time[node] + serial;

            scratch.tasks.clear();
            let mut step_ghost_delay = 0.0f64;
            for &sd in owned {
                let factor = work.factor(&geo.sds, sd);
                let (case1_area, case2_area) = view.splits[sd as usize];
                let arrived = &scratch.arrivals[sd as usize];
                let ghosts_in = if arrived.is_empty() {
                    t0
                } else {
                    let unpack = cfg.cost.copy_sec_per_cell * geo.ghost_cells[sd as usize];
                    let ready = arrived.iter().fold(t0, |m, &a| m.max(a)) + unpack;
                    step_ghost_delay = step_ghost_delay.max(ready - t0);
                    ready
                };
                if cfg.overlap {
                    if case2_area > 0 {
                        scratch
                            .tasks
                            .push((t0, cfg.cost.task_sec(case2_area, factor, spec.speed)));
                    }
                    if case1_area > 0 {
                        scratch
                            .tasks
                            .push((ghosts_in, cfg.cost.task_sec(case1_area, factor, spec.speed)));
                    }
                } else {
                    scratch.tasks.push((
                        ghosts_in,
                        cfg.cost
                            .task_sec(geo.sds.cells_per_sd() as i64, factor, spec.speed),
                    ));
                }
            }
            let (finish, busy) =
                list_schedule(&mut scratch.tasks, spec.cores, t0, &mut scratch.free);
            node_time[node] = finish;
            busy_total[node] += busy;
            busy_window[node] += busy;
            ghost_wait_window[node] += step_ghost_delay;
        }

        // --- load-balancing epoch (the configured LbSpec policy) ---
        let do_lb = cfg
            .lb
            .as_ref()
            .is_some_and(|lb| (step + 1) % lb.period == 0 && step + 1 < cfg.n_steps);
        if do_lb {
            // collective: everyone synchronizes for the gather/plan
            let barrier = node_time.iter().cloned().fold(0.0, f64::max) + cfg.cost.lb_plan_sec;
            for t in node_time.iter_mut() {
                *t = barrier;
            }
            let window = (barrier - last_barrier).max(1e-12);
            let policy = policy.as_mut().expect("lb configured");
            if cfg.lb_input == LbInput::Measured {
                // Pre-plan feedback: this window's worst ghost stall, so
                // an adaptive-μ decorator steers *this* epoch's plan
                // (modeled planning disables runtime feedback).
                let worst_ghost = ghost_wait_window.iter().cloned().fold(0.0, f64::max);
                policy.observe_ghost_stall(worst_ghost / window);
            }
            let busy_vec: Vec<f64> = match cfg.lb_input {
                LbInput::Measured => busy_window.iter().map(|&b| b.max(1e-12)).collect(),
                // Deterministic planner input derived from the declared
                // work model — byte-identical to what the real runtime
                // computes for the same scenario.
                LbInput::Modeled => modeled_busy(
                    &geo.sds,
                    &view.owners,
                    n_nodes,
                    cfg.work_at(step),
                    &speeds,
                    cfg.cost.sec_per_dp,
                ),
            };
            // Under an elastic timeline the planner sees the membership
            // mask in effect at this epoch (shared `active_at`, so both
            // substrates see the same mask for the same scenario).
            if !cfg.cluster_events.is_empty() {
                lb_net.active = Some(Arc::new(active_at(nn, &cfg.cluster_events, step + 1)));
            }
            let metrics = compute_metrics(&ownership.counts(), &busy_vec);
            let plan = policy.plan(&ownership, &metrics, &lb_net);
            // An empty plan pays the planning barrier but emits no
            // metrics: idle epochs must not skew migration accounting or
            // record no-op history entries.
            if !plan.moves.is_empty() {
                epoch_traces.push(
                    EpochTrace::record(step + 1, policy.name(), &plan, &ownership, &lb_net)
                        .with_drift(policy.drift_info()),
                );
                // migration costs: tile payloads over the network
                net.reset(barrier);
                for mv in &plan.moves {
                    let bytes = sd_tile_bytes.get(mv.sd);
                    let arr = net.arrival(
                        node_time[mv.from as usize],
                        &Msg {
                            src: mv.from,
                            dst: mv.to,
                            bytes,
                        },
                    );
                    let dst = mv.to as usize;
                    node_time[dst] = node_time[dst].max(arr);
                    cross_bytes += bytes;
                    messages += 1;
                }
                migrations += plan.moves.len();
                migration_bytes += plan.comm.total_bytes;
                inter_rack_migration_bytes += plan.comm.inter_rack_bytes();
                // take ownership of the plan instead of cloning the full
                // owner map and move list out of it
                ownership = plan.new_ownership;
                lb_plans.push(plan.moves);
                lb_history.push(ownership.counts());
                view = OwnershipView::build(&geo, &ownership, nn, &comm);
            }
            // Feedback for adaptive policies: how much of the balancing
            // window the epoch's migrations stalled the cluster.
            if cfg.lb_input == LbInput::Measured {
                let after = node_time.iter().cloned().fold(0.0, f64::max);
                policy.observe_stall((after - barrier) / window);
            }
            last_barrier = barrier;
            // Algorithm 1 line 35: reset the busy and ghost-stall windows
            for b in busy_window.iter_mut() {
                *b = 0.0;
            }
            for g in ghost_wait_window.iter_mut() {
                *g = 0.0;
            }
        }
    }

    let total_time = node_time.iter().cloned().fold(0.0, f64::max);
    let busy_fraction = busy_total
        .iter()
        .zip(&cfg.nodes)
        .map(|(&b, n)| {
            if total_time > 0.0 {
                b / (n.cores as f64 * total_time)
            } else {
                0.0
            }
        })
        .collect();
    SimRun {
        total_time,
        busy: busy_total,
        busy_fraction,
        cross_bytes,
        messages,
        lb_history,
        migrations,
        migration_bytes,
        inter_rack_migration_bytes,
        ghost_bytes,
        inter_rack_ghost_bytes,
        epoch_traces,
        lb_plans,
        final_ownership: ownership,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_cfg(n_sds_side: usize, cores: usize) -> SimConfig {
        // 400x400 paper mesh decomposed into n x n SDs, one node.
        let sd = 400 / n_sds_side;
        SimConfig::paper(400, sd, 5, vec![VirtualNode::with_cores(cores)])
    }

    #[test]
    fn deterministic() {
        let cfg = shared_cfg(4, 2);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.busy, b.busy);
    }

    #[test]
    fn single_sd_cannot_use_extra_cores() {
        // Fig. 9's 1-SD data point: speedup stays 1.
        let t1 = simulate(&shared_cfg(1, 1)).total_time;
        let t4 = simulate(&shared_cfg(1, 4)).total_time;
        assert!((t1 / t4) < 1.05, "one task cannot speed up: {}", t1 / t4);
    }

    #[test]
    fn many_sds_scale_with_cores() {
        // Fig. 9's 64-SD point: 4 cores approach 4x.
        let t1 = simulate(&shared_cfg(8, 1)).total_time;
        let t4 = simulate(&shared_cfg(8, 4)).total_time;
        let speedup = t1 / t4;
        assert!(
            (3.0..=4.2).contains(&speedup),
            "64 SDs on 4 cores: speedup {speedup}"
        );
    }

    #[test]
    fn distributed_nodes_scale() {
        // Fig. 13 shape: 1 vs 4 single-core nodes on a fixed mesh.
        let mk = |n: usize| {
            SimConfig::paper(
                400,
                50,
                5,
                (0..n).map(|_| VirtualNode::with_cores(1)).collect(),
            )
        };
        let t1 = simulate(&mk(1)).total_time;
        let t4 = simulate(&mk(4)).total_time;
        let speedup = t1 / t4;
        assert!((3.0..=4.2).contains(&speedup), "4-node speedup {speedup}");
    }

    #[test]
    fn communication_counted_only_across_nodes() {
        let single = simulate(&shared_cfg(8, 4));
        assert_eq!(single.cross_bytes, 0, "one node never crosses");
        let mk = SimConfig::paper(
            400,
            50,
            5,
            vec![VirtualNode::with_cores(1), VirtualNode::with_cores(1)],
        );
        let two = simulate(&mk);
        assert!(two.cross_bytes > 0);
        assert!(two.messages > 0);
    }

    #[test]
    fn metis_beats_strip_on_cross_traffic() {
        // Ablation A1 at test scale: block-ish multilevel partitions move
        // fewer ghost bytes than strips for 4 nodes.
        let mut metis = SimConfig::paper(
            400,
            25,
            3,
            (0..4).map(|_| VirtualNode::with_cores(1)).collect(),
        );
        metis.partition = PartitionSpec::Metis { seed: 1 };
        let mut strip = metis.clone();
        strip.partition = PartitionSpec::Strip;
        let mb = simulate(&metis).cross_bytes;
        let sb = simulate(&strip).cross_bytes;
        assert!(mb < sb, "metis {mb} bytes should undercut strip {sb} bytes");
    }

    #[test]
    fn overlap_helps_on_slow_network() {
        // Every SD borders foreign territory (4 SDs per node, quadrants)
        // and the latency is comparable to one SD's compute time, so the
        // case-2 work is exactly what hides the wait.
        let mut cfg = SimConfig::paper(
            200,
            50,
            5,
            (0..4).map(|_| VirtualNode::with_cores(1)).collect(),
        );
        cfg.net = NetSpec::shared(5e-3, 1e9);
        cfg.overlap = true;
        let with = simulate(&cfg).total_time;
        cfg.overlap = false;
        let without = simulate(&cfg).total_time;
        assert!(
            with < without * 0.95,
            "overlap {with} must clearly beat no-overlap {without} on a slow net"
        );
    }

    #[test]
    fn lb_balances_heterogeneous_nodes() {
        let mut cfg = SimConfig::paper(
            400,
            25,
            24,
            vec![
                VirtualNode {
                    cores: 1,
                    speed: 2.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
            ],
        );
        cfg.lb = Some(LbSchedule::every(4));
        let run = simulate(&cfg);
        assert!(run.migrations > 0);
        let counts = run.final_ownership.counts();
        // fast node should end up with roughly 2/5 of 256 SDs ≈ 102
        assert!(
            counts[0] > counts[1],
            "fast node must hold more SDs: {counts:?}"
        );
        // and total preserved
        assert_eq!(counts.iter().sum::<usize>(), 256);
    }

    #[test]
    fn lb_reduces_makespan_under_heterogeneity() {
        let nodes = vec![
            VirtualNode {
                cores: 1,
                speed: 2.0,
                memory_bytes: None,
            },
            VirtualNode {
                cores: 1,
                speed: 1.0,
                memory_bytes: None,
            },
            VirtualNode {
                cores: 1,
                speed: 1.0,
                memory_bytes: None,
            },
            VirtualNode {
                cores: 1,
                speed: 1.0,
                memory_bytes: None,
            },
        ];
        let mut base = SimConfig::paper(400, 25, 24, nodes);
        base.lb = None;
        let without = simulate(&base).total_time;
        base.lb = Some(LbSchedule::every(4));
        let with = simulate(&base).total_time;
        assert!(
            with < without,
            "LB {with} must beat no-LB {without} on a 2x-fast node"
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn degenerate_lambda_rejected_at_configuration() {
        let _ = LbSchedule::every(4).with_spec(LbSpec::Tree {
            lambda: f64::NAN,
            mu: 0.0,
        });
    }

    #[test]
    fn noop_epochs_emit_no_metrics() {
        // One node: every plan is a no-op. The balancer must not record
        // history entries or migration traffic for idle epochs (it still
        // pays the planning barrier).
        let mut cfg = shared_cfg(4, 2);
        cfg.lb = Some(LbSchedule::every(2));
        let run = simulate(&cfg);
        assert_eq!(run.migrations, 0);
        assert_eq!(run.migration_bytes, 0);
        assert!(
            run.lb_history.is_empty(),
            "no-op epochs must not emit metrics: {:?}",
            run.lb_history
        );
        assert!(
            run.epoch_traces.is_empty(),
            "no-op epochs must not emit traces: {:?}",
            run.epoch_traces
        );
    }

    #[test]
    fn ghost_bytes_split_out_of_cross_traffic() {
        // Two uniform nodes, no LB: all cross traffic is ghost traffic
        // and a rack-less model never crosses racks.
        let cfg = SimConfig::paper(
            400,
            50,
            5,
            vec![VirtualNode::with_cores(1), VirtualNode::with_cores(1)],
        );
        let run = simulate(&cfg);
        assert!(run.ghost_bytes > 0);
        assert_eq!(run.ghost_bytes, run.cross_bytes);
        assert_eq!(run.inter_rack_ghost_bytes, 0, "uniform model has no racks");
        // 2 racks x 1 node: every cross message is inter-rack
        let mut racked = SimConfig::paper(
            400,
            50,
            5,
            vec![VirtualNode::with_cores(1), VirtualNode::with_cores(1)],
        );
        racked.net = NetSpec::Topology(nlheat_netmodel::TopologySpec::two_tier(1));
        let rr = simulate(&racked);
        assert_eq!(rr.inter_rack_ghost_bytes, rr.ghost_bytes);
        // and with LB on, migration bytes stay separate from ghost bytes
        let mut lb = SimConfig::paper(
            400,
            25,
            12,
            vec![
                VirtualNode {
                    cores: 1,
                    speed: 2.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
            ],
        );
        lb.lb = Some(LbSchedule::every(4));
        let lr = simulate(&lb);
        assert!(lr.migrations > 0);
        assert_eq!(lr.cross_bytes, lr.ghost_bytes + lr.migration_bytes);
    }

    #[test]
    fn epoch_traces_record_the_cut_from_the_sim_graph() {
        let mut cfg = SimConfig::paper(
            400,
            25,
            24,
            vec![
                VirtualNode {
                    cores: 1,
                    speed: 2.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
                VirtualNode {
                    cores: 1,
                    speed: 1.0,
                    memory_bytes: None,
                },
            ],
        );
        cfg.lb = Some(LbSchedule::every(4));
        let run = simulate(&cfg);
        assert!(run.migrations > 0);
        assert_eq!(run.epoch_traces.len(), run.lb_history.len());
        let moves: usize = run.epoch_traces.iter().map(|t| t.moves).sum();
        assert_eq!(moves, run.migrations, "traces cover every migration");
        for t in &run.epoch_traces {
            assert_eq!(t.policy, "tree");
            assert!(t.ghost_bytes_before > 0, "sim always attaches its graph");
            assert!(t.migration_bytes > 0);
        }
    }

    #[test]
    fn mu_reduces_steady_state_ghost_cut() {
        // Ghost-aware balancing end to end in the simulator: a Fig.-14
        // lopsided start on a 2-rack cluster forces a mass
        // redistribution, and μ shapes *where* the cross-rack territories
        // grow. The shaped plan must leave strictly less recurring
        // inter-rack ghost traffic (the recorded cut and the counted
        // virtual-time bytes both say so) at unchanged makespan.
        let nodes: Vec<VirtualNode> = (0..4).map(|_| VirtualNode::with_cores(1)).collect();
        let sds = SdGrid::tile_mesh(400, 400, 25);
        let mut owners = vec![0u32; 256];
        owners[sds.id(15, 0) as usize] = 1;
        owners[sds.id(0, 15) as usize] = 2;
        owners[sds.id(15, 15) as usize] = 3;
        let mut cfg = SimConfig::paper(400, 25, 24, nodes);
        cfg.partition = PartitionSpec::Explicit(owners);
        cfg.net = NetSpec::Topology(nlheat_netmodel::TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: nlheat_netmodel::LinkSpec::new(1e-7, 5e9),
            intra_rack: nlheat_netmodel::LinkSpec::new(1e-4, 1e8),
            inter_rack: nlheat_netmodel::LinkSpec::new(4e-4, 2.5e7),
        });
        cfg.lb = Some(LbSchedule::every(4).with_spec(LbSpec::tree(0.0)));
        let blind = simulate(&cfg);
        cfg.lb = Some(LbSchedule::every(4).with_spec(LbSpec::tree(0.0).with_mu(0.25)));
        let aware = simulate(&cfg);
        assert!(blind.migrations > 0 && aware.migrations > 0);
        let last_cut = |run: &SimRun| {
            run.epoch_traces
                .last()
                .unwrap()
                .inter_rack_ghost_bytes_after
        };
        assert!(
            last_cut(&aware) < last_cut(&blind),
            "μ must leave a better inter-rack cut: {} vs {}",
            last_cut(&aware),
            last_cut(&blind)
        );
        assert!(
            aware.inter_rack_ghost_bytes < blind.inter_rack_ghost_bytes,
            "recurring inter-rack traffic must shrink: {} vs {}",
            aware.inter_rack_ghost_bytes,
            blind.inter_rack_ghost_bytes
        );
        assert!(
            aware.total_time <= blind.total_time * 1.05,
            "makespan must stay within noise: {} vs {}",
            aware.total_time,
            blind.total_time
        );
    }

    #[test]
    fn diffusion_and_greedy_balance_heterogeneous_nodes() {
        // The policy seam end to end in the simulator: both alternative
        // policies must migrate work toward the 2x-fast node, like the
        // tree planner does in `lb_balances_heterogeneous_nodes`.
        for spec in [
            LbSpec::diffusion(1.0, 8),
            LbSpec::greedy_steal(1),
            LbSpec::adaptive(LbSpec::tree(0.0), 0.2),
        ] {
            let mut cfg = SimConfig::paper(
                400,
                25,
                24,
                vec![
                    VirtualNode {
                        cores: 1,
                        speed: 2.0,
                        memory_bytes: None,
                    },
                    VirtualNode {
                        cores: 1,
                        speed: 1.0,
                        memory_bytes: None,
                    },
                    VirtualNode {
                        cores: 1,
                        speed: 1.0,
                        memory_bytes: None,
                    },
                    VirtualNode {
                        cores: 1,
                        speed: 1.0,
                        memory_bytes: None,
                    },
                ],
            );
            cfg.lb = Some(LbSchedule::every(4).with_spec(spec.clone()));
            let run = simulate(&cfg);
            assert!(run.migrations > 0, "{} must migrate", spec.name());
            let counts = run.final_ownership.counts();
            assert!(
                counts[0] > counts[1],
                "{}: fast node must hold more SDs: {counts:?}",
                spec.name()
            );
            assert_eq!(counts.iter().sum::<usize>(), 256, "{}", spec.name());
        }
    }

    fn repart_lb(period: usize) -> LbSchedule {
        LbSchedule::every(period).with_spec(LbSpec::repartition(
            LbSpec::greedy_steal(1),
            f64::INFINITY,
            1,
            u64::MAX,
        ))
    }

    #[test]
    fn join_event_spreads_load_onto_the_new_rank() {
        // Rank 2 is declared but only joins at step 3; its first replan
        // after the join must spread SDs onto it.
        let mut cfg = SimConfig::paper(
            400,
            50,
            12,
            (0..3).map(|_| VirtualNode::with_cores(1)).collect(),
        );
        let sds = SdGrid::tile_mesh(400, 400, 50);
        let owners: Vec<u32> = (0..sds.count()).map(|sd| (sd % 2) as u32).collect();
        cfg.partition = PartitionSpec::Explicit(owners);
        cfg.lb = Some(repart_lb(2));
        cfg.cluster_events = vec![(3, ClusterEvent::Join { rank: 2 })];
        cfg.lb_input = LbInput::Modeled;
        let run = simulate(&cfg);
        let counts = run.final_ownership.counts();
        assert!(counts[2] > 0, "joined rank must receive work: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert!(run.epoch_traces.iter().any(|t| t.replan));
    }

    #[test]
    fn fail_drops_ghost_contributions_drain_does_not() {
        // Fail vs Drain on the same timeline: both zero the rank's
        // capacity at the same step, so the membership masks — and under
        // modeled planning the plan sequences — are identical. The Fail
        // leg additionally drops the failed rank's in-flight ghost
        // contributions from the planner-grade counters for the steps it
        // spends failed, so it must count strictly fewer ghost bytes
        // while the sim's cross-traffic partition invariant holds on
        // both.
        let mk = |ev: ClusterEvent| {
            let mut cfg = SimConfig::paper(
                400,
                50,
                10,
                vec![VirtualNode::with_cores(1), VirtualNode::with_cores(1)],
            );
            cfg.lb = Some(repart_lb(2));
            cfg.cluster_events = vec![(3, ev)];
            cfg.lb_input = LbInput::Modeled;
            simulate(&cfg)
        };
        let fail = mk(ClusterEvent::Fail { rank: 1 });
        let drain = mk(ClusterEvent::Drain { rank: 1 });
        assert_eq!(fail.lb_plans, drain.lb_plans, "same masks, same plans");
        assert_eq!(fail.final_ownership.counts()[1], 0);
        assert_eq!(drain.final_ownership.counts()[1], 0);
        assert!(
            fail.ghost_bytes < drain.ghost_bytes,
            "fail must drop in-flight contributions: {} vs {}",
            fail.ghost_bytes,
            drain.ghost_bytes
        );
        for run in [&fail, &drain] {
            assert_eq!(
                run.cross_bytes,
                run.ghost_bytes + run.migration_bytes,
                "the cross-traffic partition must survive the event"
            );
        }
    }

    #[test]
    fn work_schedule_switches_models() {
        let mut cfg = SimConfig::paper(100, 25, 4, vec![VirtualNode::with_cores(1)]);
        cfg.work = WorkModel::Uniform;
        cfg.work_schedule = vec![(2, WorkModel::PerSd(vec![0.5; 16]))];
        assert_eq!(cfg.work_at(0), &WorkModel::Uniform);
        assert_eq!(cfg.work_at(1), &WorkModel::Uniform);
        assert_eq!(cfg.work_at(2), &WorkModel::PerSd(vec![0.5; 16]));
        assert_eq!(cfg.work_at(3), &WorkModel::PerSd(vec![0.5; 16]));
        // half-work from step 2 must shorten the run vs uniform
        let scheduled = simulate(&cfg).total_time;
        cfg.work_schedule.clear();
        let uniform = simulate(&cfg).total_time;
        assert!(scheduled < uniform);
    }

    #[test]
    fn moving_crack_keeps_lb_busy() {
        // A crack band marching upward; with LB the balancer re-migrates
        // as the cheap region moves, beating the static assignment.
        let nodes: Vec<VirtualNode> = (0..4).map(|_| VirtualNode::with_cores(1)).collect();
        let mut cfg = SimConfig::paper(400, 25, 32, nodes);
        cfg.partition = PartitionSpec::Strip;
        // one jump at mid-run: the dwell time (16 steps) must exceed the
        // balancer's adaptation time (period + one stale window) for LB to
        // amortize the migrations — faster cracks are a genuinely
        // adversarial regime, reported by ablation A5b.
        // Bands straddle strip boundaries: eq. 8 estimates power per
        // node, so a band hiding entirely inside one node's strip makes
        // that node's power estimate unsound (see ablation A5b notes).
        cfg.work_schedule = (0..2)
            .map(|seg| {
                (
                    seg * 16,
                    WorkModel::Crack {
                        y_cell: 200 + 100 * seg as i64,
                        half_width: 30,
                        factor: 0.25,
                    },
                )
            })
            .collect();
        cfg.lb = None;
        let off = simulate(&cfg);
        cfg.lb = Some(LbSchedule::every(4));
        let on = simulate(&cfg);
        assert!(
            on.total_time < off.total_time,
            "LB must track the moving crack: on {} off {}",
            on.total_time,
            off.total_time
        );
        assert!(on.migrations > 0);
    }

    #[test]
    fn weak_scaling_holds_time_roughly_constant() {
        // Fig. 10/12 shape: problem grows with node count.
        let t1 = simulate(&SimConfig::paper(
            100,
            50,
            5,
            vec![VirtualNode::with_cores(1)],
        ))
        .total_time;
        let t4 = simulate(&SimConfig::paper(
            200,
            50,
            5,
            (0..4).map(|_| VirtualNode::with_cores(1)).collect(),
        ))
        .total_time;
        let efficiency = t1 / t4;
        assert!(
            efficiency > 0.8,
            "weak-scaling efficiency {efficiency} too low"
        );
    }
}
