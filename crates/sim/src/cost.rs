//! Compute-cost model of the virtual cluster.

/// Per-operation costs (seconds, at node speed 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One DP update — one full stencil application.
    pub sec_per_dp: f64,
    /// Copying one cell during local halo fill / pack / unpack.
    pub copy_sec_per_cell: f64,
    /// Spawning one task (scheduling overhead).
    pub spawn_sec: f64,
    /// Fixed cost of one load-balancing round (gather + plan + broadcast).
    pub lb_plan_sec: f64,
}

impl CostModel {
    /// A model calibrated to the stencil size: roughly 2 ns per
    /// neighbour interaction (one fused multiply-add plus a load on a
    /// ~GHz-scale core), plus conservative runtime overheads. The per-DP
    /// scale is [`nlheat_core::scenario::nominal_sec_per_dp`] — the same
    /// number the modeled planning inputs use on both substrates.
    pub fn calibrated(stencil_points: usize) -> Self {
        CostModel {
            sec_per_dp: nlheat_core::scenario::nominal_sec_per_dp(stencil_points),
            copy_sec_per_cell: 1e-9,
            spawn_sec: 2e-6,
            lb_plan_sec: 100e-6,
        }
    }

    /// Duration of a compute task over `cells` DPs with relative work
    /// `factor` on a node of relative `speed`.
    pub fn task_sec(&self, cells: i64, factor: f64, speed: f64) -> f64 {
        self.spawn_sec + cells as f64 * self.sec_per_dp * factor / speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_scales_with_stencil() {
        let small = CostModel::calibrated(10);
        let big = CostModel::calibrated(200);
        assert!(big.sec_per_dp > small.sec_per_dp * 15.0);
    }

    #[test]
    fn task_sec_scales_with_cells_and_speed() {
        let c = CostModel::calibrated(100);
        let base = c.task_sec(2500, 1.0, 1.0);
        assert!(c.task_sec(5000, 1.0, 1.0) > base * 1.9);
        let fast = c.task_sec(2500, 1.0, 2.0);
        assert!(fast < base, "faster node, shorter task");
        let cracked = c.task_sec(2500, 0.5, 1.0);
        assert!(cracked < base, "crack SDs do less work");
    }

    #[test]
    fn zero_cells_is_overhead_only() {
        let c = CostModel::calibrated(100);
        assert_eq!(c.task_sec(0, 1.0, 1.0), c.spawn_sec);
    }
}
