//! # nlheat-sim — discrete-event simulation of the distributed solver
//!
//! The paper's evaluation ran on a cluster of 40-core Skylake nodes; this
//! reproduction runs in a single-core container where wall-clock parallel
//! speedups are physically unmeasurable. Per the documented substitution
//! (DESIGN.md §1), the scaling figures are regenerated with a deterministic
//! discrete-event simulator that executes the *same decomposition,
//! dependency structure and communication volumes* as the real solver in
//! `nlheat-core` — per-SD case-1/case-2 tasks, ghost messages with
//! latency + bandwidth + NIC serialization, per-node core counts and speed
//! factors, and Algorithm-1 load-balancing epochs driven by the simulated
//! busy times.
//!
//! The real runtime remains the source of truth for *numerics* (its output
//! is tested bit-for-bit against the serial solver); the simulator is the
//! source of *timing shape*: strong-scaling saturation, weak-scaling
//! flatness, partition-quality effects, and load-balancer convergence.
//!
//! No wall-clock enters the simulation: it is fully deterministic.

pub mod cost;
pub mod engine;
pub mod net;
pub mod scenario;

pub use cost::CostModel;
pub use engine::{simulate, SimConfig, SimRun, VirtualNode};
pub use net::{NetModel, NetSpec};
pub use nlheat_core::balance::{LbSchedule, LbSpec};
pub use nlheat_core::scenario::{PartitionSpec, RunReport, Scenario};
pub use scenario::{run_report, RunSim, SimSubstrate};
