//! Network model of the virtual cluster.

/// A latency/bandwidth link model with per-sender NIC serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimNet {
    /// One-way message latency in seconds.
    pub latency: f64,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl SimNet {
    /// Representative cluster interconnect: ~5 µs latency, 10 GB/s.
    pub fn cluster() -> Self {
        SimNet {
            latency: 5e-6,
            bytes_per_sec: 10e9,
        }
    }

    /// A deliberately slow network for the overlap ablation.
    pub fn slow(latency: f64, bytes_per_sec: f64) -> Self {
        SimNet {
            latency,
            bytes_per_sec,
        }
    }

    /// Pure wire time of `bytes` (excluding latency).
    pub fn wire_sec(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_sec
    }
}

/// Tracks when a sender's NIC is free; messages from one node serialize.
#[derive(Debug, Clone, Default)]
pub struct NicState {
    free_at: f64,
}

impl NicState {
    /// Send `bytes` no earlier than `ready`; returns the arrival time at
    /// the receiver and advances the NIC.
    pub fn send(&mut self, net: &SimNet, ready: f64, bytes: u64) -> f64 {
        let start = ready.max(self.free_at);
        let done = start + net.wire_sec(bytes);
        self.free_at = done;
        done + net.latency
    }

    /// Reset for a new simulation phase.
    pub fn reset_to(&mut self, t: f64) {
        self.free_at = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_linear_in_bytes() {
        let net = SimNet::cluster();
        assert!((net.wire_sec(10_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nic_serializes_messages() {
        let net = SimNet::slow(0.0, 100.0); // 100 B/s
        let mut nic = NicState::default();
        let a1 = nic.send(&net, 0.0, 100); // 1 s wire
        let a2 = nic.send(&net, 0.0, 100); // queued behind the first
        assert!((a1 - 1.0).abs() < 1e-12);
        assert!((a2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_added_after_wire() {
        let net = SimNet::slow(0.5, 100.0);
        let mut nic = NicState::default();
        let arr = nic.send(&net, 1.0, 100);
        assert!((arr - (1.0 + 1.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn nic_respects_ready_time() {
        let net = SimNet::slow(0.0, 1e9);
        let mut nic = NicState::default();
        let arr = nic.send(&net, 7.0, 8);
        assert!(arr >= 7.0);
    }
}
