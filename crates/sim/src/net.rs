//! Network models of the virtual cluster.
//!
//! The simulator's historical `SimNet`/`NicState` pair (a latency/bandwidth
//! link with per-sender NIC serialization) now lives in the shared
//! `nlheat-netmodel` crate as [`SharedBandwidthNet`], where the real AMT
//! fabric consumes the *same* implementation. This module re-exports the
//! shared types and keeps regression tests pinning the legacy `NicState`
//! arrival arithmetic.

pub use nlheat_netmodel::{
    ConstantBandwidthNet, InstantNet, LinkSpec, Msg, NetModel, NetSpec, SharedBandwidthNet,
    TopologyNet, TopologySpec,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(bytes: u64) -> Msg {
        Msg {
            src: 0,
            dst: 1,
            bytes,
        }
    }

    // These four tests are the legacy `sim::net` suite, re-expressed
    // against the shared model: the expected numbers are unchanged, which
    // is exactly the "SharedBandwidthNet reproduces NicState" guarantee.

    #[test]
    fn wire_time_linear_in_bytes() {
        let mut net = NetSpec::cluster().build(2);
        // 10 GB at 10 GB/s = 1 s of wire time (+5 µs latency).
        let a = net.arrival(0.0, &msg(10_000_000_000));
        assert!((a - (1.0 + 5e-6)).abs() < 1e-9);
    }

    #[test]
    fn nic_serializes_messages() {
        let mut nic = SharedBandwidthNet::new(0.0, 100.0, 1); // 100 B/s
        let a1 = nic.arrival(0.0, &msg(100)); // 1 s wire
        let a2 = nic.arrival(0.0, &msg(100)); // queued behind the first
        assert!((a1 - 1.0).abs() < 1e-12);
        assert!((a2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_added_after_wire() {
        let mut nic = SharedBandwidthNet::new(0.5, 100.0, 1);
        let arr = nic.arrival(1.0, &msg(100));
        assert!((arr - (1.0 + 1.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn nic_respects_ready_time() {
        let mut nic = SharedBandwidthNet::new(0.0, 1e9, 1);
        let arr = nic.arrival(7.0, &msg(8));
        assert!(arr >= 7.0);
    }
}
