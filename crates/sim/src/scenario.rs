//! The simulator leg of the declarative [`Scenario`] API: compiles a
//! scenario into a [`SimConfig`], executes it, and wraps the outcome in
//! the unified [`RunReport`] both substrates share.

use crate::cost::CostModel;
use crate::engine::{simulate, SimConfig, SimRun};
use nlheat_core::scenario::{RunExtras, RunReport, Scenario, SimExtras, Substrate};
use nlheat_mesh::{Grid, Stencil};

impl From<&Scenario> for SimConfig {
    /// Compile a scenario into the simulator's execution config. The cost
    /// model is calibrated from the scenario's own stencil, so the
    /// modeled planning inputs ([`nlheat_core::scenario::modeled_busy`])
    /// use exactly the per-DP seconds the event loop charges.
    fn from(sc: &Scenario) -> Self {
        let grid = Grid::square(sc.problem.n, sc.problem.eps_mult);
        let stencil = Stencil::build(grid.h, grid.eps);
        SimConfig {
            mesh_n: sc.problem.n,
            eps_mult: sc.problem.eps_mult,
            sd_size: sc.sd_size,
            n_steps: sc.steps,
            nodes: sc.cluster.nodes.clone(),
            net: sc.net,
            cost: CostModel::calibrated(stencil.len()),
            partition: sc.partition.clone(),
            overlap: sc.overlap,
            work: sc.work.clone(),
            work_schedule: sc.work_schedule.clone(),
            cluster_events: sc.cluster_events.clone(),
            lb: sc.lb.clone(),
            lb_input: sc.lb_input,
        }
    }
}

/// The discrete-event simulator as a [`Substrate`].
pub struct SimSubstrate;

impl Substrate for SimSubstrate {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        scenario.validate();
        let cfg = SimConfig::from(scenario);
        run_report(simulate(&cfg)).with_scenario_memory(scenario)
    }
}

/// Wrap a [`SimRun`] in the unified report shape.
pub fn run_report(run: SimRun) -> RunReport {
    RunReport {
        substrate: "sim",
        makespan: run.total_time,
        busy: run.busy,
        migrations: run.migrations,
        migration_bytes: run.migration_bytes,
        inter_rack_migration_bytes: run.inter_rack_migration_bytes,
        ghost_bytes: run.ghost_bytes,
        inter_rack_ghost_bytes: run.inter_rack_ghost_bytes,
        lb_history: run.lb_history,
        lb_plans: run.lb_plans,
        epoch_traces: run.epoch_traces,
        final_ownership: run.final_ownership,
        field: None,
        error: None,
        memory_bytes: None,
        sd_footprint: None,
        extras: RunExtras::Sim(SimExtras {
            busy_fraction: run.busy_fraction,
            cross_bytes: run.cross_bytes,
            messages: run.messages,
        }),
    }
}

/// Extension trait giving [`Scenario`] its simulator leg —
/// `scenario.run_sim()` next to `scenario.run_dist()`. Blanket-available
/// through the `nonlocalheat` prelude.
pub trait RunSim {
    /// Execute on the discrete-event simulator.
    fn run_sim(&self) -> RunReport;
}

impl RunSim for Scenario {
    fn run_sim(&self) -> RunReport {
        SimSubstrate.run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlheat_core::balance::LbSchedule;
    use nlheat_core::scenario::{ClusterSpec, LbInput, PartitionSpec, Scenario};
    use nlheat_netmodel::NetSpec;

    #[test]
    fn scenario_compiles_into_the_paper_config() {
        // A scenario over the paper problem must produce exactly what
        // SimConfig::paper builds, so converted callers keep their
        // RNG-seeded numerics byte-identically.
        let sc = Scenario::square(400, 8.0, 25, 5).on(ClusterSpec::uniform(4, 1));
        let via_scenario = SimConfig::from(&sc);
        let direct = SimConfig::paper(400, 25, 5, sc.cluster.nodes.clone());
        assert_eq!(via_scenario.mesh_n, direct.mesh_n);
        assert_eq!(via_scenario.eps_mult, direct.eps_mult);
        assert_eq!(via_scenario.cost, direct.cost);
        assert_eq!(via_scenario.partition, direct.partition);
        assert_eq!(via_scenario.net, direct.net);
        let a = simulate(&via_scenario);
        let b = simulate(&direct);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.cross_bytes, b.cross_bytes);
    }

    #[test]
    fn run_sim_produces_a_valid_unified_report() {
        let sc = Scenario::square(16, 2.0, 4, 6)
            .on(ClusterSpec::uniform(2, 1))
            .with_net(NetSpec::Instant)
            .with_partition(PartitionSpec::Explicit({
                let mut o = vec![0u32; 16];
                o[15] = 1;
                o
            }))
            .with_lb(LbSchedule::every(2))
            .with_lb_input(LbInput::Modeled);
        let report = sc.run_sim();
        report.check_invariants();
        assert_eq!(report.substrate, "sim");
        assert!(report.field.is_none(), "the simulator carries no numerics");
        assert!(report.migrations > 0, "lopsided start must migrate");
        assert_eq!(report.lb_plans.len(), report.lb_history.len());
        assert!(report.sim_extras().is_some());
    }
}
