//! # nlheat-netmodel — one network-cost model for both execution substrates
//!
//! The paper's evaluation depends on the real AMT runtime
//! (`nlheat_amt::network::Fabric`) and the discrete-event simulator
//! (`nlheat_sim::engine`) agreeing on how communication costs behave.
//! Historically each had its own copy-pasted latency/bandwidth arithmetic
//! (the fabric's `NetModel` struct in wall-clock `Duration`s, the
//! simulator's `SimNet`/`NicState` in virtual `f64` seconds) that drifted
//! independently. This crate is the single source of truth both consume:
//!
//! * [`NetModel`] — the trait: given the submission time of a [`Msg`],
//!   return its arrival time, mutating any internal contention state
//!   (NIC free times). All model time is **f64 seconds**; the wall-clock
//!   adapter in [`time`] is the *only* place seconds meet `Duration`.
//! * [`InstantNet`] — zero delay (unit tests, pure-numerics runs).
//! * [`ConstantBandwidthNet`] — per-message `latency + size/bandwidth`,
//!   messages independent (the fabric's historical model).
//! * [`SharedBandwidthNet`] — per-sender NIC serialization: messages from
//!   one node queue behind each other on its link (the simulator's
//!   historical `NicState` semantics, reproduced exactly — see the
//!   `shared_bandwidth_matches_legacy_nicstate` test).
//! * [`DuplexBandwidthNet`] — per-sender egress **and per-receiver
//!   ingress** serialization: the fan-in of many senders onto one
//!   receiver queues at the destination NIC, so the model exhibits
//!   incast. The only model with cross-sender contention state (the
//!   receiver queue), which transports must not shard per sender.
//! * [`TopologyNet`] — per-pair link classes (intra-node / intra-rack /
//!   inter-rack) with per-sender NIC serialization, for heterogeneous
//!   clusters built by `ClusterBuilder`.
//! * [`NetSpec`] — the serializable configuration enum `DistConfig`,
//!   `SimConfig`, examples and benches all use to select a model
//!   uniformly; [`NetSpec::build`] instantiates the trait object.

use std::time::Duration;

/// Wall-clock ↔ model-time conversion. The one seam where the fabric's
/// `Instant`/`Duration` world meets the models' `f64` seconds; keeping it
/// here (and tested for round-tripping) replaces the ad-hoc
/// `Duration::from_secs_f64` calls that used to be scattered across both
/// substrates.
pub mod time {
    use super::Duration;

    /// Model seconds → wall-clock `Duration`. Negative and NaN inputs
    /// clamp to zero (a model can never schedule an arrival before its
    /// send). Positive infinity is rejected: it cannot arise from a
    /// validated [`super::NetSpec`] (see [`super::LinkSpec::validate`]),
    /// and clamping it in either direction would make the real fabric
    /// silently disagree with the simulator.
    ///
    /// # Panics
    /// Panics on `+inf` input.
    pub fn secs_to_duration(seconds: f64) -> Duration {
        assert_ne!(
            seconds,
            f64::INFINITY,
            "infinite model delay reached the wall-clock seam; \
             network specs must have positive bandwidth"
        );
        if seconds.is_finite() && seconds > 0.0 {
            Duration::from_secs_f64(seconds)
        } else {
            Duration::ZERO
        }
    }

    /// Wall-clock `Duration` → model seconds.
    pub fn duration_to_secs(d: Duration) -> f64 {
        d.as_secs_f64()
    }
}

/// Pure wire (serialization) time of `bytes` at `bytes_per_sec`;
/// infinite bandwidth costs nothing. The single copy of the
/// bytes-to-seconds arithmetic every model shares.
fn wire_sec(bytes: u64, bytes_per_sec: f64) -> f64 {
    if bytes_per_sec.is_infinite() {
        0.0
    } else {
        bytes as f64 / bytes_per_sec
    }
}

/// A message as the network models see it: addressing plus wire size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Sending node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Total wire size in bytes (payload + framing).
    pub bytes: u64,
}

/// A network cost model: maps (submission time, message) to arrival time.
///
/// Implementations may keep mutable contention state (per-sender NIC free
/// times); the caller owns ordering — arrival times are only meaningful if
/// messages are submitted in a deterministic order, which both the fabric
/// (send order) and the simulator (SD id order) guarantee.
pub trait NetModel: Send {
    /// Arrival time (model seconds) of `msg` submitted at `now` seconds.
    /// Must be `>= now`.
    fn arrival(&mut self, now: f64, msg: &Msg) -> f64;

    /// Drop all contention state; the next message at time `t` sees an
    /// idle network. Used at load-balancing barriers.
    fn reset(&mut self, t: f64) {
        let _ = t;
    }

    /// True when every message arrives with zero delay — lets transports
    /// skip their delivery machinery entirely.
    fn is_instant(&self) -> bool {
        false
    }
}

/// Zero latency, infinite bandwidth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstantNet;

impl NetModel for InstantNet {
    fn arrival(&mut self, now: f64, _msg: &Msg) -> f64 {
        now
    }

    fn is_instant(&self) -> bool {
        true
    }
}

/// Per-message `latency + bytes/bandwidth`; messages never contend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantBandwidthNet {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes/second; `f64::INFINITY` disables the
    /// serialization term.
    pub bytes_per_sec: f64,
}

impl ConstantBandwidthNet {
    pub fn new(latency_s: f64, bytes_per_sec: f64) -> Self {
        ConstantBandwidthNet {
            latency_s,
            bytes_per_sec,
        }
    }

    /// Stateless delay for a message of `bytes` (no contention state, so
    /// callers may use this without `&mut`).
    pub fn delay_for(&self, bytes: u64) -> f64 {
        self.latency_s + wire_sec(bytes, self.bytes_per_sec)
    }
}

impl NetModel for ConstantBandwidthNet {
    fn arrival(&mut self, now: f64, msg: &Msg) -> f64 {
        now + self.delay_for(msg.bytes)
    }

    fn is_instant(&self) -> bool {
        self.latency_s == 0.0 && self.bytes_per_sec.is_infinite()
    }
}

/// Per-sender NIC serialization: a node's outgoing messages occupy its link
/// back to back, then latency is added. This is exactly the simulator's
/// historical `NicState::send` arithmetic:
///
/// ```text
/// start   = max(now, nic_free[src])
/// done    = start + bytes / bytes_per_sec
/// nic_free[src] = done
/// arrival = done + latency
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SharedBandwidthNet {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Per-sender link bandwidth in bytes/second.
    pub bytes_per_sec: f64,
    nic_free: Vec<f64>,
}

impl SharedBandwidthNet {
    pub fn new(latency_s: f64, bytes_per_sec: f64, n_nodes: usize) -> Self {
        SharedBandwidthNet {
            latency_s,
            bytes_per_sec,
            nic_free: vec![0.0; n_nodes],
        }
    }
}

impl NetModel for SharedBandwidthNet {
    fn arrival(&mut self, now: f64, msg: &Msg) -> f64 {
        let wire = wire_sec(msg.bytes, self.bytes_per_sec);
        let nic = &mut self.nic_free[msg.src as usize];
        let start = now.max(*nic);
        let done = start + wire;
        *nic = done;
        done + self.latency_s
    }

    fn reset(&mut self, t: f64) {
        self.nic_free.fill(t);
    }
}

/// Per-sender egress **and** per-receiver ingress serialization — the
/// incast model. A message first drains through its sender's egress NIC
/// (exactly like [`SharedBandwidthNet`]), then through the receiver's
/// ingress NIC, then latency is added:
///
/// ```text
/// sent     = max(now, tx_free[src]) + bytes/bw;   tx_free[src] = sent
/// ingested = max(sent, rx_free[dst]) + bytes/bw;  rx_free[dst] = ingested
/// arrival  = ingested + latency
/// ```
///
/// A fan-in of `k` same-sized messages onto one receiver therefore lands
/// over `k` wire times instead of one — the incast effect the per-sender
/// models cannot show. Note a single uncontended message already pays the
/// wire **twice** (egress + ingress), which is exactly what the
/// planning-grade [`CommCost`] estimate has always charged.
///
/// Unlike every other stateful model, the receiver queue is
/// **cross-sender** state: two concurrent senders to one destination
/// contend. Transports that shard model state per sender must keep this
/// model on a single shard (see [`NetSpec::has_cross_sender_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DuplexBandwidthNet {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Per-NIC bandwidth in bytes/second (each direction).
    pub bytes_per_sec: f64,
    tx_free: Vec<f64>,
    rx_free: Vec<f64>,
}

impl DuplexBandwidthNet {
    pub fn new(latency_s: f64, bytes_per_sec: f64, n_nodes: usize) -> Self {
        DuplexBandwidthNet {
            latency_s,
            bytes_per_sec,
            tx_free: vec![0.0; n_nodes],
            rx_free: vec![0.0; n_nodes],
        }
    }
}

impl NetModel for DuplexBandwidthNet {
    fn arrival(&mut self, now: f64, msg: &Msg) -> f64 {
        let wire = wire_sec(msg.bytes, self.bytes_per_sec);
        let tx = &mut self.tx_free[msg.src as usize];
        let sent = now.max(*tx) + wire;
        *tx = sent;
        let rx = &mut self.rx_free[msg.dst as usize];
        let ingested = sent.max(*rx) + wire;
        *rx = ingested;
        ingested + self.latency_s
    }

    fn reset(&mut self, t: f64) {
        self.tx_free.fill(t);
        self.rx_free.fill(t);
    }
}

/// Latency/bandwidth of one link class in a [`TopologyNet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    pub latency_s: f64,
    pub bytes_per_sec: f64,
}

impl LinkSpec {
    pub fn new(latency_s: f64, bytes_per_sec: f64) -> Self {
        LinkSpec {
            latency_s,
            bytes_per_sec,
        }
    }

    /// Reject degenerate parameters (the one validation both substrates
    /// share, called from [`NetSpec::build`]): latency must be finite and
    /// non-negative, bandwidth strictly positive (`f64::INFINITY` is the
    /// explicit "no serialization term" value). Zero or negative bandwidth
    /// would make `wire_sec` infinite, which the simulator would propagate
    /// into an infinite makespan while the real fabric cannot wait
    /// forever — the divergence this crate exists to prevent.
    fn validate(&self, what: &str) {
        assert!(
            self.latency_s.is_finite() && self.latency_s >= 0.0,
            "{what}: latency must be finite and non-negative, got {}",
            self.latency_s
        );
        assert!(
            self.bytes_per_sec > 0.0,
            "{what}: bandwidth must be positive (use f64::INFINITY for \
             an un-serialized link), got {}",
            self.bytes_per_sec
        );
    }
}

/// Declarative description of a [`TopologyNet`]: ranks are packed into
/// nodes (`node = rank / ranks_per_node`), nodes into racks
/// (`rack = node / nodes_per_rack`), and each src→dst pair resolves to
/// one of three link classes. The historical two-tier shape is
/// `ranks_per_node = 1` (every rank is its own node, loopback only for
/// self-sends) — the default of every constructor that predates the
/// three-tier hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Ranks (localities) per node; `node(i) = i / ranks_per_node`.
    /// Co-located ranks exchange over the `intra_node` link.
    pub ranks_per_node: usize,
    /// Nodes per rack; `rack(node) = node / nodes_per_rack`.
    pub nodes_per_rack: usize,
    /// Same node (loopback / shared memory).
    pub intra_node: LinkSpec,
    /// Different nodes, same rack.
    pub intra_rack: LinkSpec,
    /// Different racks.
    pub inter_rack: LinkSpec,
}

impl TopologySpec {
    /// A representative two-tier cluster: fast loopback, 10 GB/s in-rack,
    /// 2.5 GB/s and 4x the latency across racks.
    pub fn two_tier(nodes_per_rack: usize) -> Self {
        TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack,
            intra_node: LinkSpec::new(1e-7, 50e9),
            intra_rack: LinkSpec::new(5e-6, 10e9),
            inter_rack: LinkSpec::new(2e-5, 2.5e9),
        }
    }

    /// The two-tier defaults with the full rank → node → rack hierarchy:
    /// `ranks_per_node` localities share each node's loopback link.
    pub fn three_tier(ranks_per_node: usize, nodes_per_rack: usize) -> Self {
        TopologySpec {
            ranks_per_node,
            ..TopologySpec::two_tier(nodes_per_rack)
        }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> usize {
        rank as usize / self.ranks_per_node.max(1)
    }

    /// The rack hosting `rank`.
    pub fn rack_of(&self, rank: u32) -> usize {
        self.node_of(rank) / self.nodes_per_rack
    }

    /// The link class between `src` and `dst`.
    pub fn class(&self, src: u32, dst: u32) -> LinkClass {
        if self.node_of(src) == self.node_of(dst) {
            LinkClass::IntraNode
        } else if self.rack_of(src) == self.rack_of(dst) {
            LinkClass::IntraRack
        } else {
            LinkClass::InterRack
        }
    }

    /// The [`LinkSpec`] of the `src`→`dst` link.
    pub fn link(&self, src: u32, dst: u32) -> LinkSpec {
        match self.class(src, dst) {
            LinkClass::IntraNode => self.intra_node,
            LinkClass::IntraRack => self.intra_rack,
            LinkClass::InterRack => self.inter_rack,
        }
    }
}

/// The class of link a message traverses, ordered by distance. Uniform
/// (rack-less) models report [`LinkClass::IntraNode`] for self-sends and
/// [`LinkClass::IntraRack`] for everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkClass {
    /// Loopback on one node.
    IntraNode = 0,
    /// Different nodes on the same rack (or any uniform interconnect).
    IntraRack = 1,
    /// Across racks.
    InterRack = 2,
}

/// Number of [`LinkClass`] variants — the length of per-class byte/cost
/// accumulators such as `PlanComm::bytes_by_class`.
pub const N_LINK_CLASSES: usize = 3;

/// Estimated transfer cost of a message, derivable from any [`NetSpec`] —
/// the planner-facing face of the network layer.
///
/// Where [`NetModel::arrival`] answers "when does *this* message land given
/// everything already in flight" (stateful, simulation-grade), `CommCost`
/// answers "roughly how many seconds does moving `bytes` from `src` to
/// `dst` cost the system" (stateless, planning-grade). The estimate charges
/// the link latency once plus the wire time **twice** — once for the
/// sender-side serialization every model applies, once for the
/// receiver-side ingress that a migration target really pays (the tile
/// must be received and unpacked before its next task can run; the
/// [`DuplexBandwidthNet`] arrival model simulates exactly this queue).
/// Contention is deliberately ignored: a rebalancing plan cannot know
/// what else will occupy the NICs when it executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    kind: CostKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CostKind {
    /// Zero cost everywhere (the [`NetSpec::Instant`] degenerate case).
    Free,
    /// One link class for every pair (constant / shared models).
    Uniform(LinkSpec),
    /// Per-pair link classes.
    Topology(TopologySpec),
}

impl CommCost {
    /// The zero-cost model: every transfer is free. This is the planner's
    /// default — cost-aware balancing with a free network degenerates to
    /// the count-based Algorithm 1.
    pub fn free() -> Self {
        CommCost {
            kind: CostKind::Free,
        }
    }

    /// Derive the cost estimate from a network spec (the same value that
    /// builds the live [`NetModel`], so planner and transport agree on
    /// what the network looks like by construction).
    pub fn from_spec(spec: &NetSpec) -> Self {
        spec.validate();
        let kind = match *spec {
            NetSpec::Instant => CostKind::Free,
            NetSpec::Constant {
                latency_s,
                bytes_per_sec,
            }
            | NetSpec::Shared {
                latency_s,
                bytes_per_sec,
            }
            | NetSpec::Duplex {
                latency_s,
                bytes_per_sec,
            } => {
                if latency_s == 0.0 && bytes_per_sec.is_infinite() {
                    CostKind::Free
                } else {
                    CostKind::Uniform(LinkSpec::new(latency_s, bytes_per_sec))
                }
            }
            NetSpec::Topology(spec) => CostKind::Topology(spec),
        };
        CommCost { kind }
    }

    /// True when every transfer costs zero seconds (λ-weighted terms all
    /// vanish, so cost-aware planning is inert).
    pub fn is_free(&self) -> bool {
        matches!(self.kind, CostKind::Free)
    }

    /// The rank → node → rack hierarchy behind this estimate, when the
    /// underlying spec declares one — what hierarchical planners group
    /// by. `None` for free/uniform models (no rack structure to exploit).
    pub fn topology_spec(&self) -> Option<TopologySpec> {
        match self.kind {
            CostKind::Topology(spec) => Some(spec),
            CostKind::Free | CostKind::Uniform(_) => None,
        }
    }

    /// The link class used between `src` and `dst`.
    pub fn link_class(&self, src: u32, dst: u32) -> LinkClass {
        match &self.kind {
            CostKind::Free | CostKind::Uniform(_) => {
                if src == dst {
                    LinkClass::IntraNode
                } else {
                    LinkClass::IntraRack
                }
            }
            CostKind::Topology(spec) => spec.class(src, dst),
        }
    }

    /// The neighbour graph induced by the link classes — the graph the
    /// policy layer (diffusion, greedy stealing) exchanges load over. For
    /// each node, every *other* node ordered cheapest link class first
    /// (ties by id), so intra-rack partners rank before inter-rack ones.
    /// Uniform and free models degenerate to plain id order, which matches
    /// the count-based tie-breaks of the tree planner.
    pub fn neighbour_graph(&self, n_nodes: u32) -> Vec<Vec<u32>> {
        (0..n_nodes)
            .map(|i| {
                let mut others: Vec<u32> = (0..n_nodes).filter(|&j| j != i).collect();
                others.sort_by(|&a, &b| {
                    self.link_class(i, a)
                        .cmp(&self.link_class(i, b))
                        .then(a.cmp(&b))
                });
                others
            })
            .collect()
    }

    /// Estimated seconds to move `bytes` from `src` to `dst`: link
    /// latency plus sender-side serialization plus receiver-side ingress
    /// (see the type docs for why ingress is charged although arrival
    /// models skip it).
    pub fn seconds(&self, src: u32, dst: u32, bytes: u64) -> f64 {
        let link = match &self.kind {
            CostKind::Free => return 0.0,
            CostKind::Uniform(link) => *link,
            CostKind::Topology(spec) => spec.link(src, dst),
        };
        link.latency_s + 2.0 * wire_sec(bytes, link.bytes_per_sec)
    }
}

/// Per-pair link classes with per-sender NIC serialization. With a single
/// link class this degenerates to [`SharedBandwidthNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyNet {
    spec: TopologySpec,
    nic_free: Vec<f64>,
}

impl TopologyNet {
    pub fn new(spec: TopologySpec, n_nodes: usize) -> Self {
        assert!(spec.nodes_per_rack > 0, "nodes_per_rack must be positive");
        TopologyNet {
            spec,
            nic_free: vec![0.0; n_nodes],
        }
    }

    /// The link class used between `src` and `dst`.
    pub fn link(&self, src: u32, dst: u32) -> LinkSpec {
        self.spec.link(src, dst)
    }
}

impl NetModel for TopologyNet {
    fn arrival(&mut self, now: f64, msg: &Msg) -> f64 {
        let link = self.link(msg.src, msg.dst);
        let nic = &mut self.nic_free[msg.src as usize];
        let start = now.max(*nic);
        let done = start + wire_sec(msg.bytes, link.bytes_per_sec);
        *nic = done;
        done + link.latency_s
    }

    fn reset(&mut self, t: f64) {
        self.nic_free.fill(t);
    }
}

/// Model selection shared by `DistConfig`, `SimConfig`, `ClusterBuilder`,
/// examples and benches. Build a live model with [`NetSpec::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum NetSpec {
    /// Zero delay.
    #[default]
    Instant,
    /// [`ConstantBandwidthNet`].
    Constant { latency_s: f64, bytes_per_sec: f64 },
    /// [`SharedBandwidthNet`].
    Shared { latency_s: f64, bytes_per_sec: f64 },
    /// [`DuplexBandwidthNet`] — per-sender egress + per-receiver ingress
    /// serialization (incast).
    Duplex { latency_s: f64, bytes_per_sec: f64 },
    /// [`TopologyNet`].
    Topology(TopologySpec),
}

impl NetSpec {
    /// Representative cluster interconnect (~5 µs latency, 10 GB/s per
    /// NIC, sender-serialized) — the simulator's historical default.
    pub fn cluster() -> Self {
        NetSpec::Shared {
            latency_s: 5e-6,
            bytes_per_sec: 10e9,
        }
    }

    /// Per-message independent latency/bandwidth model.
    pub fn constant(latency_s: f64, bytes_per_sec: f64) -> Self {
        NetSpec::Constant {
            latency_s,
            bytes_per_sec,
        }
    }

    /// Per-sender serialized latency/bandwidth model.
    pub fn shared(latency_s: f64, bytes_per_sec: f64) -> Self {
        NetSpec::Shared {
            latency_s,
            bytes_per_sec,
        }
    }

    /// Sender-egress + receiver-ingress serialized model (incast-capable).
    pub fn duplex(latency_s: f64, bytes_per_sec: f64) -> Self {
        NetSpec::Duplex {
            latency_s,
            bytes_per_sec,
        }
    }

    /// True when the built model keeps contention state shared across
    /// senders (the duplex receiver queue), so transports that shard
    /// per-sender model instances must fall back to one shared instance.
    /// Per-sender-only models (shared NICs, topology egress) stay safely
    /// shardable.
    pub fn has_cross_sender_state(&self) -> bool {
        matches!(self, NetSpec::Duplex { .. }) && !self.is_instant()
    }

    /// Convenience for wall-clock call sites (the fabric's historical
    /// `NetModel::new(Duration, f64)` signature).
    pub fn constant_wall(latency: Duration, bytes_per_sec: f64) -> Self {
        NetSpec::Constant {
            latency_s: time::duration_to_secs(latency),
            bytes_per_sec,
        }
    }

    /// True when the spec builds a zero-delay model. The degenerate
    /// `Shared`/`Duplex { 0, inf }` spellings qualify too: with infinite
    /// bandwidth the NIC queues never back up, so serialization is
    /// indistinguishable from instant delivery — transports may skip their
    /// delivery-thread machinery for it.
    pub fn is_instant(&self) -> bool {
        match self {
            NetSpec::Instant => true,
            NetSpec::Constant {
                latency_s,
                bytes_per_sec,
            }
            | NetSpec::Shared {
                latency_s,
                bytes_per_sec,
            }
            | NetSpec::Duplex {
                latency_s,
                bytes_per_sec,
            } => *latency_s == 0.0 && bytes_per_sec.is_infinite(),
            NetSpec::Topology(_) => false,
        }
    }

    /// The planning-grade cost estimate for this spec — see [`CommCost`].
    pub fn comm_cost(&self) -> CommCost {
        CommCost::from_spec(self)
    }

    /// Reject degenerate parameters early, with one rule for every
    /// transport that consumes this spec (the simulator via [`build`],
    /// the real fabric via its unboxed fast path).
    ///
    /// # Panics
    /// Panics on non-finite or negative latency, or zero/negative
    /// bandwidth — see [`LinkSpec::validate`].
    ///
    /// [`build`]: NetSpec::build
    pub fn validate(&self) {
        match self {
            NetSpec::Constant {
                latency_s,
                bytes_per_sec,
            }
            | NetSpec::Shared {
                latency_s,
                bytes_per_sec,
            }
            | NetSpec::Duplex {
                latency_s,
                bytes_per_sec,
            } => LinkSpec::new(*latency_s, *bytes_per_sec).validate("NetSpec"),
            NetSpec::Topology(spec) => {
                assert!(
                    spec.ranks_per_node >= 1,
                    "TopologySpec.ranks_per_node must be at least 1"
                );
                assert!(
                    spec.nodes_per_rack >= 1,
                    "TopologySpec.nodes_per_rack must be at least 1"
                );
                spec.intra_node.validate("TopologySpec.intra_node");
                spec.intra_rack.validate("TopologySpec.intra_rack");
                spec.inter_rack.validate("TopologySpec.inter_rack");
            }
            NetSpec::Instant => {}
        }
    }

    /// Instantiate the model for a cluster of `n_nodes`.
    ///
    /// # Panics
    /// Panics on degenerate parameters — see [`NetSpec::validate`].
    pub fn build(&self, n_nodes: usize) -> Box<dyn NetModel> {
        self.validate();
        if self.is_instant() {
            // Covers the degenerate `Constant`/`Shared { 0, inf }`
            // spellings: build the model that reports `is_instant()` so
            // transports skip their delivery machinery.
            return Box::new(InstantNet);
        }
        match self {
            NetSpec::Instant => Box::new(InstantNet),
            NetSpec::Constant {
                latency_s,
                bytes_per_sec,
            } => Box::new(ConstantBandwidthNet::new(*latency_s, *bytes_per_sec)),
            NetSpec::Shared {
                latency_s,
                bytes_per_sec,
            } => Box::new(SharedBandwidthNet::new(*latency_s, *bytes_per_sec, n_nodes)),
            NetSpec::Duplex {
                latency_s,
                bytes_per_sec,
            } => Box::new(DuplexBandwidthNet::new(*latency_s, *bytes_per_sec, n_nodes)),
            NetSpec::Topology(spec) => Box::new(TopologyNet::new(*spec, n_nodes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, dst: u32, bytes: u64) -> Msg {
        Msg { src, dst, bytes }
    }

    #[test]
    fn instant_is_free() {
        let mut net = InstantNet;
        assert_eq!(net.arrival(3.5, &msg(0, 1, 1 << 30)), 3.5);
        assert!(net.is_instant());
    }

    #[test]
    fn constant_is_stateless() {
        let mut net = ConstantBandwidthNet::new(0.5, 100.0);
        let a1 = net.arrival(0.0, &msg(0, 1, 100)); // 1 s wire + 0.5 s latency
        let a2 = net.arrival(0.0, &msg(0, 1, 100)); // identical: no contention
        assert!((a1 - 1.5).abs() < 1e-12);
        assert_eq!(a1, a2);
    }

    #[test]
    fn constant_with_infinite_bandwidth_is_pure_latency() {
        let mut net = ConstantBandwidthNet::new(0.25, f64::INFINITY);
        assert!((net.arrival(1.0, &msg(0, 1, 1 << 40)) - 1.25).abs() < 1e-12);
    }

    /// The acceptance-criterion test: `SharedBandwidthNet` reproduces the
    /// old `sim::net::NicState::send` arrival times exactly. The expected
    /// values are hand-evaluated from the legacy arithmetic
    /// (`start = max(ready, free); done = start + bytes/bw; arrive = done + lat`).
    #[test]
    fn shared_bandwidth_matches_legacy_nicstate() {
        // Legacy test `nic_serializes_messages`: 100 B/s, zero latency.
        let mut net = SharedBandwidthNet::new(0.0, 100.0, 2);
        let a1 = net.arrival(0.0, &msg(0, 1, 100));
        let a2 = net.arrival(0.0, &msg(0, 1, 100));
        assert!((a1 - 1.0).abs() < 1e-12);
        assert!(
            (a2 - 2.0).abs() < 1e-12,
            "second message queues behind first"
        );

        // Legacy test `latency_added_after_wire`: 0.5 s latency, 100 B/s,
        // ready at t=1: arrive = 1 + 1 + 0.5.
        let mut net = SharedBandwidthNet::new(0.5, 100.0, 1);
        let arr = net.arrival(1.0, &msg(0, 0, 100));
        assert!((arr - 2.5).abs() < 1e-12);

        // Legacy test `nic_respects_ready_time`.
        let mut net = SharedBandwidthNet::new(0.0, 1e9, 1);
        assert!(net.arrival(7.0, &msg(0, 0, 8)) >= 7.0);

        // Interleaved senders keep independent NICs.
        let mut net = SharedBandwidthNet::new(0.0, 100.0, 2);
        let a = net.arrival(0.0, &msg(0, 1, 100));
        let b = net.arrival(0.0, &msg(1, 0, 100));
        assert_eq!(a, b, "distinct senders must not contend");
    }

    #[test]
    fn shared_reset_clears_contention() {
        let mut net = SharedBandwidthNet::new(0.0, 100.0, 1);
        let _ = net.arrival(0.0, &msg(0, 0, 10_000)); // NIC busy until t=100
        net.reset(5.0);
        let a = net.arrival(5.0, &msg(0, 0, 100));
        assert!((a - 6.0).abs() < 1e-12, "reset must clear the queue: {a}");
    }

    #[test]
    fn duplex_exhibits_incast() {
        // Four senders firing one 100-byte message each at the same
        // receiver: per-sender models deliver them all after one wire
        // time, the duplex model's receiver NIC drains them one at a time.
        let wire = 1.0; // 100 B at 100 B/s
        let mut shared = SharedBandwidthNet::new(0.0, 100.0, 5);
        let mut duplex = DuplexBandwidthNet::new(0.0, 100.0, 5);
        let shared_last = (0..4)
            .map(|s| shared.arrival(0.0, &msg(s, 4, 100)))
            .fold(0.0f64, f64::max);
        let duplex_last = (0..4)
            .map(|s| duplex.arrival(0.0, &msg(s, 4, 100)))
            .fold(0.0f64, f64::max);
        assert!(
            (shared_last - wire).abs() < 1e-12,
            "independent egress NICs"
        );
        // 1 wire of egress (parallel) + 4 wires of serialized ingress
        assert!(
            (duplex_last - 5.0 * wire).abs() < 1e-12,
            "incast must serialize at the receiver: {duplex_last}"
        );
    }

    #[test]
    fn duplex_single_message_charges_wire_twice() {
        // Matches the CommCost planning estimate: latency + 2x wire.
        let mut net = DuplexBandwidthNet::new(0.5, 100.0, 2);
        let arr = net.arrival(0.0, &msg(0, 1, 100));
        assert!(
            (arr - 2.5).abs() < 1e-12,
            "egress + ingress + latency: {arr}"
        );
        let cost = NetSpec::duplex(0.5, 100.0).comm_cost();
        assert!((cost.seconds(0, 1, 100) - arr).abs() < 1e-12);
    }

    #[test]
    fn duplex_dominates_shared() {
        // Same parameters, same traffic: the duplex model can only be
        // slower — the ladder instant <= constant <= shared <= duplex.
        let traffic = [
            (0.0, msg(0, 2, 5_000)),
            (0.0, msg(1, 2, 9_000)),
            (0.01, msg(0, 1, 123)),
            (0.02, msg(1, 2, 7_777)),
        ];
        let mut shared = SharedBandwidthNet::new(1e-4, 1e6, 3);
        let mut duplex = DuplexBandwidthNet::new(1e-4, 1e6, 3);
        for (t, m) in traffic {
            assert!(duplex.arrival(t, &m) >= shared.arrival(t, &m));
        }
    }

    #[test]
    fn duplex_reset_clears_both_queues() {
        let mut net = DuplexBandwidthNet::new(0.0, 100.0, 2);
        let _ = net.arrival(0.0, &msg(0, 1, 10_000)); // both NICs busy
        net.reset(5.0);
        let a = net.arrival(5.0, &msg(0, 1, 100));
        assert!((a - 7.0).abs() < 1e-12, "reset must clear tx and rx: {a}");
    }

    #[test]
    fn duplex_spec_plumbs_through() {
        let spec = NetSpec::duplex(0.0, f64::INFINITY);
        assert!(spec.is_instant(), "degenerate duplex is instant");
        assert!(!spec.has_cross_sender_state(), "instant has no state");
        assert!(spec.build(4).is_instant());
        let real = NetSpec::duplex(1e-5, 1e9);
        assert!(!real.is_instant());
        assert!(real.has_cross_sender_state(), "receiver queue is shared");
        assert!(!NetSpec::cluster().has_cross_sender_state());
        assert!(!NetSpec::Topology(TopologySpec::two_tier(2)).has_cross_sender_state());
        let mut m = real.build(4);
        assert!(m.arrival(0.0, &msg(0, 3, 1000)) > 0.0);
    }

    #[test]
    fn topology_classes_resolve_by_rack() {
        let net = TopologyNet::new(TopologySpec::two_tier(2), 4);
        assert_eq!(net.link(0, 0), net.link(3, 3), "loopback class");
        assert_eq!(net.link(0, 1).latency_s, net.link(2, 3).latency_s);
        assert!(net.link(0, 2).latency_s > net.link(0, 1).latency_s);
        assert!(net.link(0, 2).bytes_per_sec < net.link(0, 1).bytes_per_sec);
    }

    #[test]
    fn three_tier_packs_ranks_into_nodes_and_racks() {
        // 4 ranks per node, 2 nodes per rack: ranks 0-7 fill rack 0.
        let spec = TopologySpec::three_tier(4, 2);
        assert_eq!(spec.node_of(0), 0);
        assert_eq!(spec.node_of(3), 0);
        assert_eq!(spec.node_of(4), 1);
        assert_eq!(spec.rack_of(7), 0);
        assert_eq!(spec.rack_of(8), 1);
        assert_eq!(spec.class(0, 3), LinkClass::IntraNode);
        assert_eq!(spec.class(0, 4), LinkClass::IntraRack);
        assert_eq!(spec.class(0, 8), LinkClass::InterRack);
        // two_tier is the ranks_per_node = 1 degenerate case: distinct
        // ranks are never intra-node.
        let flat = TopologySpec::two_tier(2);
        assert_eq!(flat.class(0, 0), LinkClass::IntraNode);
        assert_eq!(flat.class(0, 1), LinkClass::IntraRack);
        assert_eq!(flat.class(0, 2), LinkClass::InterRack);
        assert_eq!(TopologySpec::three_tier(1, 2), flat);
    }

    #[test]
    fn comm_cost_exposes_its_topology_spec() {
        let spec = TopologySpec::three_tier(4, 25);
        let cost = NetSpec::Topology(spec).comm_cost();
        assert_eq!(cost.topology_spec(), Some(spec));
        assert_eq!(NetSpec::cluster().comm_cost().topology_spec(), None);
        assert_eq!(NetSpec::Instant.comm_cost().topology_spec(), None);
    }

    #[test]
    #[should_panic(expected = "ranks_per_node must be at least 1")]
    fn zero_ranks_per_node_is_rejected() {
        let mut spec = TopologySpec::two_tier(2);
        spec.ranks_per_node = 0;
        NetSpec::Topology(spec).validate();
    }

    #[test]
    fn topology_with_one_class_matches_shared() {
        let uniform = TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 1,
            intra_node: LinkSpec::new(0.001, 1e6),
            intra_rack: LinkSpec::new(0.001, 1e6),
            inter_rack: LinkSpec::new(0.001, 1e6),
        };
        let mut topo = TopologyNet::new(uniform, 3);
        let mut shared = SharedBandwidthNet::new(0.001, 1e6, 3);
        for (t, m) in [
            (0.0, msg(0, 1, 5_000)),
            (0.0, msg(0, 2, 9_000)),
            (0.001, msg(1, 0, 123)),
            (0.5, msg(0, 1, 77)),
        ] {
            assert_eq!(topo.arrival(t, &m), shared.arrival(t, &m));
        }
    }

    #[test]
    fn topology_serializes_on_the_sender_nic() {
        let mut net = TopologyNet::new(TopologySpec::two_tier(2), 4);
        let a1 = net.arrival(0.0, &msg(0, 2, 1 << 20));
        let a2 = net.arrival(0.0, &msg(0, 3, 1 << 20));
        assert!(a2 > a1, "same sender must serialize: {a1} vs {a2}");
    }

    #[test]
    fn spec_builds_the_right_model() {
        assert!(NetSpec::Instant.build(4).is_instant());
        assert!(NetSpec::constant(0.0, f64::INFINITY).is_instant());
        assert!(!NetSpec::cluster().build(4).is_instant());
        let mut m = NetSpec::Topology(TopologySpec::two_tier(2)).build(4);
        assert!(m.arrival(0.0, &msg(0, 3, 1000)) > 0.0);
    }

    #[test]
    fn degenerate_shared_spec_is_instant() {
        // The `Shared { 0, inf }` spelling always yields arrival == now;
        // both the spec-level predicate and the built model must say so.
        let spec = NetSpec::shared(0.0, f64::INFINITY);
        assert!(spec.is_instant());
        let mut m = spec.build(4);
        assert!(m.is_instant());
        assert_eq!(m.arrival(2.5, &msg(0, 1, 1 << 30)), 2.5);
        // a shared spec with any real latency or finite bandwidth is not
        assert!(!NetSpec::shared(1e-9, f64::INFINITY).is_instant());
        assert!(!NetSpec::shared(0.0, 1e12).is_instant());
    }

    #[test]
    fn comm_cost_free_for_instant_spellings() {
        for spec in [
            NetSpec::Instant,
            NetSpec::constant(0.0, f64::INFINITY),
            NetSpec::shared(0.0, f64::INFINITY),
        ] {
            let cost = spec.comm_cost();
            assert!(cost.is_free(), "{spec:?}");
            assert_eq!(cost.seconds(0, 3, 1 << 30), 0.0);
        }
        assert!(!NetSpec::cluster().comm_cost().is_free());
    }

    #[test]
    fn comm_cost_charges_latency_plus_double_wire() {
        // 100 B/s, 0.5 s latency: 100 bytes cost 0.5 + 2 * 1.0 s — the
        // wire time is charged at both the sender (serialization) and the
        // receiver (ingress).
        let cost = NetSpec::shared(0.5, 100.0).comm_cost();
        assert!((cost.seconds(0, 1, 100) - 2.5).abs() < 1e-12);
        // infinite bandwidth leaves only the latency term
        let lat = NetSpec::constant(0.25, f64::INFINITY).comm_cost();
        assert!((lat.seconds(0, 1, 1 << 40) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn comm_cost_resolves_topology_link_classes() {
        let spec = TopologySpec::two_tier(2);
        let cost = NetSpec::Topology(spec).comm_cost();
        assert_eq!(cost.link_class(0, 0), LinkClass::IntraNode);
        assert_eq!(cost.link_class(0, 1), LinkClass::IntraRack);
        assert_eq!(cost.link_class(0, 2), LinkClass::InterRack);
        assert_eq!(cost.link_class(2, 1), LinkClass::InterRack);
        // inter-rack strictly costlier than intra-rack, which beats loopback
        let b = 1 << 20;
        assert!(cost.seconds(0, 2, b) > cost.seconds(0, 1, b));
        assert!(cost.seconds(0, 1, b) > cost.seconds(0, 0, b));
        // and the estimate agrees with the spec's own link resolution
        let link = spec.link(0, 2);
        let expect = link.latency_s + 2.0 * (b as f64 / link.bytes_per_sec);
        assert!((cost.seconds(0, 2, b) - expect).abs() < 1e-15);
    }

    #[test]
    fn neighbour_graph_ranks_cheap_links_first() {
        // 2 racks x 2 nodes: node 1's cheapest partner is its rack peer 0,
        // then the inter-rack nodes 2 and 3 in id order.
        let topo = NetSpec::Topology(TopologySpec::two_tier(2)).comm_cost();
        let graph = topo.neighbour_graph(4);
        assert_eq!(graph[1], vec![0, 2, 3]);
        assert_eq!(graph[2], vec![3, 0, 1]);
        assert_eq!(graph.len(), 4);
        // every node lists every other node exactly once
        for (i, nbs) in graph.iter().enumerate() {
            let mut sorted = nbs.clone();
            sorted.sort_unstable();
            let expect: Vec<u32> = (0..4).filter(|&j| j != i as u32).collect();
            assert_eq!(sorted, expect);
        }
        // uniform models degenerate to plain id order
        let flat = NetSpec::cluster().comm_cost().neighbour_graph(3);
        assert_eq!(flat, vec![vec![1, 2], vec![0, 2], vec![0, 1]]);
    }

    #[test]
    fn comm_cost_uniform_models_classify_by_self_send() {
        let cost = NetSpec::cluster().comm_cost();
        assert_eq!(cost.link_class(3, 3), LinkClass::IntraNode);
        assert_eq!(cost.link_class(0, 7), LinkClass::IntraRack);
        // uniform models still charge self-sends (the fabric routes them
        // through the same NIC); only Instant is free
        assert!(cost.seconds(3, 3, 1000) > 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_spec_rejected() {
        let _ = NetSpec::constant(0.1, 0.0).build(2);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn negative_bandwidth_topology_rejected() {
        let mut spec = TopologySpec::two_tier(2);
        spec.inter_rack = LinkSpec::new(1e-5, -1.0);
        let _ = NetSpec::Topology(spec).build(4);
    }

    #[test]
    #[should_panic(expected = "latency must be finite")]
    fn nan_latency_rejected() {
        let _ = NetSpec::shared(f64::NAN, 1e9).build(2);
    }

    #[test]
    #[should_panic(expected = "infinite model delay")]
    fn infinite_delay_rejected_at_the_wall_clock_seam() {
        let _ = time::secs_to_duration(f64::INFINITY);
    }

    #[test]
    fn wall_clock_adapter_round_trips() {
        for s in [0.0, 1e-9, 5e-6, 0.001, 1.5, 3600.0] {
            let d = time::secs_to_duration(s);
            let back = time::duration_to_secs(d);
            assert!(
                (back - s).abs() <= 1e-12 * s.max(1.0),
                "round-trip {s} -> {back}"
            );
        }
        assert_eq!(time::secs_to_duration(-1.0), Duration::ZERO);
        assert_eq!(time::secs_to_duration(f64::NAN), Duration::ZERO);
        let spec = NetSpec::constant_wall(Duration::from_micros(500), 2e6);
        match spec {
            NetSpec::Constant { latency_s, .. } => {
                assert!((latency_s - 5e-4).abs() < 1e-15)
            }
            _ => panic!("constant_wall must build a Constant spec"),
        }
    }

    #[test]
    fn contention_ordering_instant_le_constant_le_shared() {
        // One sender pushing k messages at t=0: makespan must be monotone
        // in model contention.
        let k = 8;
        let bytes = 1_000_000;
        let last = |m: &mut dyn NetModel| {
            (0..k)
                .map(|_| m.arrival(0.0, &msg(0, 1, bytes)))
                .fold(0.0f64, f64::max)
        };
        let t_i = last(&mut InstantNet);
        let t_c = last(&mut ConstantBandwidthNet::new(1e-5, 1e9));
        let t_s = last(&mut SharedBandwidthNet::new(1e-5, 1e9, 2));
        assert!(t_i <= t_c && t_c <= t_s);
        assert!(t_s > t_c, "shared must actually queue: {t_c} vs {t_s}");
    }
}
