//! Axis-aligned integer cell rectangles.

/// A half-open rectangle of cells: `x ∈ [x0, x0+w)`, `y ∈ [y0, y0+h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    pub x0: i64,
    pub y0: i64,
    pub w: i64,
    pub h: i64,
}

impl Rect {
    /// Construct; negative extents are clamped to empty.
    pub fn new(x0: i64, y0: i64, w: i64, h: i64) -> Self {
        Rect {
            x0,
            y0,
            w: w.max(0),
            h: h.max(0),
        }
    }

    /// The empty rectangle at the origin.
    pub fn empty() -> Self {
        Rect::new(0, 0, 0, 0)
    }

    /// Number of cells.
    pub fn area(&self) -> i64 {
        self.w * self.h
    }

    /// True when no cells are covered.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Exclusive upper x bound.
    pub fn x1(&self) -> i64 {
        self.x0 + self.w
    }

    /// Exclusive upper y bound.
    pub fn y1(&self) -> i64 {
        self.y0 + self.h
    }

    /// Intersection (empty rect if disjoint).
    pub fn intersect(&self, other: &Rect) -> Rect {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Whether `(x, y)` lies inside.
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1() && y >= self.y0 && y < self.y1()
    }

    /// The rectangle shifted by `(dx, dy)`.
    pub fn translate(&self, dx: i64, dy: i64) -> Rect {
        Rect::new(self.x0 + dx, self.y0 + dy, self.w, self.h)
    }

    /// Row-major iterator over `(x, y)` cells.
    pub fn cells(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let r = *self;
        (r.y0..r.y1()).flat_map(move |y| (r.x0..r.x1()).map(move |x| (x, y)))
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.x0 >= self.x0
                && other.x1() <= self.x1()
                && other.y0 >= self.y0
                && other.y1() <= self.y1())
    }

    /// Whether two rectangles share at least one cell.
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_bounds() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.x1(), 6);
        assert_eq!(r.y1(), 8);
        assert!(!r.is_empty());
    }

    #[test]
    fn negative_extent_clamps_to_empty() {
        let r = Rect::new(0, 0, -3, 5);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 5, 5));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, 10, 2, 2);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn contains_half_open() {
        let r = Rect::new(0, 0, 3, 3);
        assert!(r.contains(0, 0));
        assert!(r.contains(2, 2));
        assert!(!r.contains(3, 0));
        assert!(!r.contains(-1, 0));
    }

    #[test]
    fn translate_moves_origin() {
        let r = Rect::new(1, 1, 2, 2).translate(-3, 4);
        assert_eq!(r, Rect::new(-2, 5, 2, 2));
    }

    #[test]
    fn cells_iterates_row_major() {
        let r = Rect::new(0, 0, 2, 2);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn contains_rect_edge_cases() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains_rect(&Rect::new(0, 0, 10, 10)));
        assert!(outer.contains_rect(&Rect::empty()));
        assert!(!outer.contains_rect(&Rect::new(5, 5, 10, 1)));
    }
}
