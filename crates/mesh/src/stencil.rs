//! The ε-ball interaction stencil.
//!
//! After discretization, a point interacts with every grid point within
//! Euclidean distance ε (paper eq. 5): offsets `(di, dj) ≠ (0,0)` with
//! `h·√(di²+dj²) ≤ ε`. The stencil is purely geometric — the influence
//! function J and quadrature weights live in the model crate, which pairs
//! each offset's distance with a weight.

/// Precomputed ε-ball offsets for a given `ε/h` ratio.
#[derive(Debug, Clone)]
pub struct Stencil {
    /// Interaction offsets `(di, dj)`, excluding the center.
    pub offsets: Vec<(i64, i64)>,
    /// Euclidean distance `h·√(di²+dj²)` for each offset.
    pub dists: Vec<f64>,
    /// Maximum |offset| component — the reach in cells (≤ grid halo).
    pub reach: i64,
}

impl Stencil {
    /// Build the stencil for grid spacing `h` and horizon `eps`.
    pub fn build(h: f64, eps: f64) -> Self {
        assert!(h > 0.0 && eps > 0.0);
        let r = (eps / h).floor() as i64 + 1;
        let mut offsets = Vec::new();
        let mut dists = Vec::new();
        let mut reach = 0;
        for dj in -r..=r {
            for di in -r..=r {
                if di == 0 && dj == 0 {
                    continue;
                }
                let dist = h * ((di * di + dj * dj) as f64).sqrt();
                if dist <= eps + 1e-12 {
                    offsets.push((di, dj));
                    dists.push(dist);
                    reach = reach.max(di.abs()).max(dj.abs());
                }
            }
        }
        Stencil {
            offsets,
            dists,
            reach,
        }
    }

    /// Number of interacting neighbors.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True for a degenerate stencil (ε < h).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_equal_h_gives_von_neumann_neighbors() {
        // distance h: 4 axis neighbors; diagonal is h·√2 > h.
        let s = Stencil::build(0.1, 0.1);
        assert_eq!(s.len(), 4);
        assert_eq!(s.reach, 1);
    }

    #[test]
    fn eps_2h_matches_hand_count() {
        // offsets with di²+dj² ≤ 4: (±1,0),(0,±1),(±1,±1),(±2,0),(0,±2) = 12
        let s = Stencil::build(0.1, 0.2);
        assert_eq!(s.len(), 12);
        assert_eq!(s.reach, 2);
    }

    #[test]
    fn stencil_is_symmetric() {
        let s = Stencil::build(1.0 / 64.0, 8.0 / 64.0);
        for &(di, dj) in &s.offsets {
            assert!(
                s.offsets.contains(&(-di, -dj)),
                "offset ({di},{dj}) lacks its mirror"
            );
        }
    }

    #[test]
    fn count_approaches_disk_area() {
        // For ε = 8h the number of offsets approximates π·8² ≈ 201.
        let s = Stencil::build(1.0 / 400.0, 8.0 / 400.0);
        assert!((180..=220).contains(&s.len()), "got {}", s.len());
        assert_eq!(s.reach, 8);
    }

    #[test]
    fn distances_within_horizon() {
        let s = Stencil::build(0.01, 0.05);
        for &d in &s.dists {
            assert!(d > 0.0 && d <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn reach_never_exceeds_eps_over_h_ceil() {
        for mult in [1.0, 2.0, 3.5, 8.0] {
            let s = Stencil::build(0.01, 0.01 * mult);
            assert!(s.reach <= mult.ceil() as i64);
        }
    }
}
