//! Per-SD padded field storage.
//!
//! Each sub-domain stores its `sd × sd` interior plus a halo ring of width
//! `halo` cells holding ghost copies of neighbour data (or the collar's
//! zeros). Indices are SD-local: interior `[0, sd)`, full tile
//! `[-halo, sd + halo)`.

use crate::rect::Rect;

/// A square tile of `f64` values with halo padding.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    sd: i64,
    halo: i64,
    stride: i64,
    data: Vec<f64>,
}

impl Tile {
    /// A zero-initialized tile for `sd` interior cells per side and halo
    /// width `halo`.
    pub fn new(sd: i64, halo: i64) -> Self {
        assert!(sd > 0 && halo >= 0);
        let stride = sd + 2 * halo;
        Tile {
            sd,
            halo,
            stride,
            data: vec![0.0; (stride * stride) as usize],
        }
    }

    /// Interior cells per side.
    pub fn sd(&self) -> i64 {
        self.sd
    }

    /// Halo width in cells.
    pub fn halo(&self) -> i64 {
        self.halo
    }

    /// Row stride of the underlying storage.
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// The interior as a local-coordinate rectangle.
    pub fn interior_rect(&self) -> Rect {
        Rect::new(0, 0, self.sd, self.sd)
    }

    /// The full padded extent as a local-coordinate rectangle.
    pub fn padded_rect(&self) -> Rect {
        Rect::new(-self.halo, -self.halo, self.stride, self.stride)
    }

    #[inline]
    fn index(&self, li: i64, lj: i64) -> usize {
        debug_assert!(
            li >= -self.halo && li < self.sd + self.halo,
            "li={li} out of tile"
        );
        debug_assert!(
            lj >= -self.halo && lj < self.sd + self.halo,
            "lj={lj} out of tile"
        );
        ((lj + self.halo) * self.stride + (li + self.halo)) as usize
    }

    /// Read the value at local `(li, lj)` (halo cells allowed).
    #[inline]
    pub fn get(&self, li: i64, lj: i64) -> f64 {
        self.data[self.index(li, lj)]
    }

    /// Write the value at local `(li, lj)` (halo cells allowed).
    #[inline]
    pub fn set(&mut self, li: i64, lj: i64, v: f64) {
        let idx = self.index(li, lj);
        self.data[idx] = v;
    }

    /// Raw storage (row-major, padded) — used by the compute kernel.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Storage index of local `(li, lj)` — pairs with [`data`](Self::data)
    /// for kernel inner loops.
    #[inline]
    pub fn storage_index(&self, li: i64, lj: i64) -> usize {
        self.index(li, lj)
    }

    /// Copy the cells of `rect` (local coordinates) into a row-major vector.
    pub fn pack(&self, rect: &Rect) -> Vec<f64> {
        debug_assert!(self.padded_rect().contains_rect(rect));
        let mut out = Vec::with_capacity(rect.area() as usize);
        for lj in rect.y0..rect.y1() {
            let row = self.index(rect.x0, lj);
            out.extend_from_slice(&self.data[row..row + rect.w as usize]);
        }
        out
    }

    /// The rows of `rect` (local coordinates) as borrowed slices, top to
    /// bottom — lets codecs stream a rectangle straight off the strided
    /// storage without the intermediate vector [`pack`](Self::pack) builds.
    pub fn rect_rows(&self, rect: &Rect) -> impl Iterator<Item = &[f64]> {
        debug_assert!(self.padded_rect().contains_rect(rect));
        let w = rect.w as usize;
        let first = self.index(rect.x0, rect.y0);
        self.data[first..]
            .chunks(self.stride as usize)
            .take(rect.h as usize)
            .map(move |row| &row[..w])
    }

    /// Mutable counterpart of [`rect_rows`](Self::rect_rows): the rows of
    /// `rect` as mutable slices, for decoding payloads straight into the
    /// tile without an intermediate vector.
    pub fn rect_rows_mut(&mut self, rect: &Rect) -> impl Iterator<Item = &mut [f64]> {
        debug_assert!(self.padded_rect().contains_rect(rect));
        let w = rect.w as usize;
        let first = self.index(rect.x0, rect.y0);
        self.data[first..]
            .chunks_mut(self.stride as usize)
            .take(rect.h as usize)
            .map(move |row| &mut row[..w])
    }

    /// Write a row-major vector into the cells of `rect` (local coords).
    ///
    /// # Panics
    /// Panics if `values.len() != rect.area()`.
    pub fn unpack(&mut self, rect: &Rect, values: &[f64]) {
        assert_eq!(
            values.len(),
            rect.area() as usize,
            "unpack size mismatch for rect {rect:?}"
        );
        debug_assert!(self.padded_rect().contains_rect(rect));
        for (row_idx, lj) in (rect.y0..rect.y1()).enumerate() {
            let dst = self.index(rect.x0, lj);
            let src = row_idx * rect.w as usize;
            self.data[dst..dst + rect.w as usize]
                .copy_from_slice(&values[src..src + rect.w as usize]);
        }
    }

    /// Copy `src_rect` from another tile into this tile at `dst_rect`
    /// (rect shapes must match). Used for same-locality halo fills where no
    /// serialization is needed.
    pub fn copy_rect_from(&mut self, src: &Tile, src_rect: &Rect, dst_rect: &Rect) {
        assert_eq!(src_rect.w, dst_rect.w);
        assert_eq!(src_rect.h, dst_rect.h);
        for dy in 0..src_rect.h {
            let s = src.index(src_rect.x0, src_rect.y0 + dy);
            let d = self.index(dst_rect.x0, dst_rect.y0 + dy);
            let w = src_rect.w as usize;
            // Split borrows via split_at_mut is unnecessary: different tiles.
            let (src_slice, dst_slice) = (&src.data[s..s + w], &mut self.data[d..d + w]);
            dst_slice.copy_from_slice(src_slice);
        }
    }

    /// Set every cell of `rect` (local coords) to `value`.
    pub fn fill_rect(&mut self, rect: &Rect, value: f64) {
        debug_assert!(self.padded_rect().contains_rect(rect));
        for lj in rect.y0..rect.y1() {
            let row = self.index(rect.x0, lj);
            self.data[row..row + rect.w as usize].fill(value);
        }
    }

    /// Zero the whole halo ring (used when rebuilding plans after migration).
    pub fn zero_halo(&mut self) {
        let full = self.padded_rect();
        let interior = self.interior_rect();
        for lj in full.y0..full.y1() {
            for li in full.x0..full.x1() {
                if !interior.contains(li, lj) {
                    let idx = self.index(li, lj);
                    self.data[idx] = 0.0;
                }
            }
        }
    }

    /// Sum of interior values (diagnostic).
    pub fn interior_sum(&self) -> f64 {
        let mut s = 0.0;
        for lj in 0..self.sd {
            for li in 0..self.sd {
                s += self.get(li, lj);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tile_is_zero() {
        let t = Tile::new(4, 2);
        assert_eq!(t.data().len(), 64);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(-2, -2), 0.0);
        assert_eq!(t.get(5, 5), 0.0);
    }

    #[test]
    fn set_get_interior_and_halo() {
        let mut t = Tile::new(4, 2);
        t.set(0, 0, 1.5);
        t.set(-2, 3, 2.5);
        t.set(5, -1, 3.5);
        assert_eq!(t.get(0, 0), 1.5);
        assert_eq!(t.get(-2, 3), 2.5);
        assert_eq!(t.get(5, -1), 3.5);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut a = Tile::new(6, 2);
        for lj in 0..6 {
            for li in 0..6 {
                a.set(li, lj, (10 * li + lj) as f64);
            }
        }
        let rect = Rect::new(1, 2, 3, 2);
        let packed = a.pack(&rect);
        assert_eq!(packed.len(), 6);
        let mut b = Tile::new(6, 2);
        b.unpack(&rect, &packed);
        for (x, y) in rect.cells() {
            assert_eq!(b.get(x, y), a.get(x, y));
        }
    }

    #[test]
    fn rect_rows_match_pack() {
        let mut t = Tile::new(6, 2);
        for (i, (x, y)) in t.padded_rect().cells().enumerate() {
            t.set(x, y, i as f64);
        }
        for rect in [
            Rect::new(1, 2, 3, 2),
            Rect::new(-2, 0, 2, 6), // left halo strip
            Rect::new(0, 6, 6, 2),  // top halo strip
            Rect::new(4, 4, 4, 4),  // bottom-right corner incl. halo end
        ] {
            let packed = t.pack(&rect);
            let streamed: Vec<f64> = t.rect_rows(&rect).flatten().copied().collect();
            assert_eq!(streamed, packed, "rect {rect:?}");
        }
    }

    #[test]
    fn rect_rows_mut_writes_like_unpack() {
        let rect = Rect::new(-1, 0, 2, 3);
        let values: Vec<f64> = (0..6).map(f64::from).collect();
        let mut a = Tile::new(4, 1);
        a.unpack(&rect, &values);
        let mut b = Tile::new(4, 1);
        let mut it = values.iter();
        for row in b.rect_rows_mut(&rect) {
            for v in row {
                *v = *it.next().unwrap();
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn pack_row_major_order() {
        let mut t = Tile::new(3, 1);
        t.set(0, 0, 1.0);
        t.set(1, 0, 2.0);
        t.set(0, 1, 3.0);
        t.set(1, 1, 4.0);
        assert_eq!(t.pack(&Rect::new(0, 0, 2, 2)), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unpack_into_halo_region() {
        let mut t = Tile::new(4, 2);
        let halo_rect = Rect::new(-2, 0, 2, 4);
        let values: Vec<f64> = (0..8).map(f64::from).collect();
        t.unpack(&halo_rect, &values);
        assert_eq!(t.get(-2, 0), 0.0);
        assert_eq!(t.get(-1, 0), 1.0);
        assert_eq!(t.get(-2, 3), 6.0);
        // interior untouched
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn unpack_wrong_size_panics() {
        let mut t = Tile::new(4, 1);
        t.unpack(&Rect::new(0, 0, 2, 2), &[1.0, 2.0]);
    }

    #[test]
    fn copy_rect_between_tiles() {
        let mut src = Tile::new(4, 1);
        src.fill_rect(&Rect::new(0, 0, 4, 4), 7.0);
        let mut dst = Tile::new(4, 1);
        // copy src's rightmost column into dst's left halo
        dst.copy_rect_from(&src, &Rect::new(3, 0, 1, 4), &Rect::new(-1, 0, 1, 4));
        assert_eq!(dst.get(-1, 0), 7.0);
        assert_eq!(dst.get(-1, 3), 7.0);
        assert_eq!(dst.get(0, 0), 0.0);
    }

    #[test]
    fn zero_halo_preserves_interior() {
        let mut t = Tile::new(3, 1);
        t.fill_rect(&t.padded_rect().clone(), 5.0);
        t.zero_halo();
        assert_eq!(t.get(-1, -1), 0.0);
        assert_eq!(t.get(3, 3), 0.0);
        assert_eq!(t.get(1, 1), 5.0);
        assert_eq!(t.interior_sum(), 45.0);
    }
}
