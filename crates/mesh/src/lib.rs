//! # nlheat-mesh — discretization substrate for the nonlocal solver
//!
//! Implements §3.1 and §6.1 of Gadikar, Diehl & Jha 2021: the uniform grid
//! over the unit square with its nonlocal collar, the ε-ball interaction
//! stencil, the decomposition into square sub-domains (SDs), per-SD padded
//! tiles with halo storage, halo exchange plans, and the case-1/case-2
//! classification of discretized points (DPs) that lets computation overlap
//! communication (§6.3, Fig. 5).
//!
//! Coordinate frames (all cell indices, `i64`):
//! * **global** — cell `(gi, gj)` of the full mesh; the domain D is
//!   `[0, nx) × [0, ny)`, the collar D_c is the surrounding ring of width
//!   `halo` cells where the temperature is pinned to zero.
//! * **SD-local** — relative to an SD's origin; the SD interior is
//!   `[0, sd) × [0, sd)` and its halo extends to `[-halo, sd + halo)`.
//! * **tile storage** — SD-local shifted by `+halo`, used only inside
//!   [`tile::Tile`].

pub mod cases;
pub mod grid;
pub mod halo;
pub mod rect;
pub mod stencil;
pub mod subdomain;
pub mod tile;

pub use cases::{split_cases, CaseSplit};
pub use grid::Grid;
pub use halo::{build_halo_plan, HaloPatch, HaloPlan, PatchSource};
pub use rect::Rect;
pub use stencil::Stencil;
pub use subdomain::{SdGrid, SdId};
pub use tile::Tile;
