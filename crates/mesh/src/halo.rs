//! Halo (ghost-zone) exchange plans.
//!
//! To update its DPs, an SD needs every cell within ε of its interior
//! (paper Fig. 2). The halo plan enumerates where those ghost cells come
//! from: rectangular patches of neighbouring SDs (possibly several rings
//! away when ε exceeds the SD size) or the domain collar, whose value is
//! pinned to zero and therefore never needs communication.

use crate::rect::Rect;
use crate::subdomain::{SdGrid, SdId};

/// Where a halo patch's data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchSource {
    /// Another sub-domain (same or different locality).
    Sd(SdId),
    /// The zero-temperature collar D_c — no data movement needed.
    Collar,
}

/// One rectangular piece of an SD's halo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloPatch {
    /// Source of the ghost data.
    pub source: PatchSource,
    /// The patch in the *source* SD's local interior coordinates
    /// (empty for collar patches).
    pub src_rect: Rect,
    /// The patch in the *destination* SD's local coordinates (lies in the
    /// halo ring: some coordinate is `< 0` or `≥ sd`).
    pub dst_rect: Rect,
}

/// The complete ghost-fill recipe for one SD.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    /// The SD this plan fills.
    pub sd: SdId,
    /// All patches; their `dst_rect`s are pairwise disjoint and exactly
    /// tile the halo ring.
    pub patches: Vec<HaloPatch>,
}

impl HaloPlan {
    /// Patches sourced from real SDs (the ones that may require messages).
    pub fn sd_patches(&self) -> impl Iterator<Item = (usize, SdId, &HaloPatch)> {
        self.patches.iter().enumerate().filter_map(|(i, p)| {
            if let PatchSource::Sd(id) = p.source {
                Some((i, id, p))
            } else {
                None
            }
        })
    }

    /// Total ghost cells coming from other SDs (communication volume in
    /// cells if every neighbour were remote).
    pub fn ghost_cells_from_sds(&self) -> i64 {
        self.sd_patches().map(|(_, _, p)| p.dst_rect.area()).sum()
    }
}

/// Build the halo plan for `sd_id` on an SD grid whose cells carry a ghost
/// ring of width `halo` cells.
pub fn build_halo_plan(sds: &SdGrid, halo: i64, sd_id: SdId) -> HaloPlan {
    assert!(halo >= 0);
    let own = sds.rect(sd_id);
    let (sx, sy) = sds.coords(sd_id);
    let padded = Rect::new(
        own.x0 - halo,
        own.y0 - halo,
        sds.sd + 2 * halo,
        sds.sd + 2 * halo,
    );
    // Number of SD rings the halo can reach into.
    let rings = (halo + sds.sd - 1) / sds.sd;
    let mut patches = Vec::new();
    for dsy in -rings..=rings {
        for dsx in -rings..=rings {
            if dsx == 0 && dsy == 0 {
                continue;
            }
            let (nsx, nsy) = (sx + dsx, sy + dsy);
            // Virtual tile rect at this SD-grid position (exists even outside
            // the mesh: that's collar territory, value zero).
            let nrect = Rect::new(nsx * sds.sd, nsy * sds.sd, sds.sd, sds.sd);
            let overlap = padded.intersect(&nrect);
            if overlap.is_empty() {
                continue;
            }
            let dst_rect = overlap.translate(-own.x0, -own.y0);
            if sds.in_bounds(nsx, nsy) {
                let nid = sds.id(nsx, nsy);
                let src_rect = overlap.translate(-nrect.x0, -nrect.y0);
                patches.push(HaloPatch {
                    source: PatchSource::Sd(nid),
                    src_rect,
                    dst_rect,
                });
            } else {
                patches.push(HaloPatch {
                    source: PatchSource::Collar,
                    src_rect: Rect::empty(),
                    dst_rect,
                });
            }
        }
    }
    HaloPlan { sd: sd_id, patches }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(nsx: usize, nsy: usize, sd: usize, halo: i64, sx: i64, sy: i64) -> HaloPlan {
        let g = SdGrid::new(nsx, nsy, sd);
        build_halo_plan(&g, halo, g.id(sx, sy))
    }

    #[test]
    fn center_sd_has_eight_sd_patches() {
        // halo < sd: only the 8 immediate neighbours contribute.
        let plan = plan_for(3, 3, 10, 3, 1, 1);
        assert_eq!(plan.patches.len(), 8);
        assert!(plan
            .patches
            .iter()
            .all(|p| matches!(p.source, PatchSource::Sd(_))));
    }

    #[test]
    fn corner_sd_mixes_sd_and_collar() {
        let plan = plan_for(3, 3, 10, 3, 0, 0);
        let sd_count = plan.sd_patches().count();
        let collar_count = plan.patches.len() - sd_count;
        assert_eq!(sd_count, 3, "right, top, top-right neighbours");
        assert_eq!(collar_count, 5, "left/bottom sides and corners");
    }

    #[test]
    fn patches_tile_halo_ring_exactly() {
        for (halo, sd) in [(3i64, 10usize), (8, 5), (12, 5), (1, 1)] {
            let g = SdGrid::new(4, 3, sd);
            for id in g.ids() {
                let plan = build_halo_plan(&g, halo, id);
                let sdl = sd as i64;
                let padded = Rect::new(-halo, -halo, sdl + 2 * halo, sdl + 2 * halo);
                let interior = Rect::new(0, 0, sdl, sdl);
                // Every halo cell covered exactly once, interior never.
                let mut cover = std::collections::HashMap::new();
                for p in &plan.patches {
                    for c in p.dst_rect.cells() {
                        *cover.entry(c).or_insert(0) += 1;
                    }
                }
                for (x, y) in padded.cells() {
                    let expected = i32::from(!interior.contains(x, y));
                    assert_eq!(
                        cover.get(&(x, y)).copied().unwrap_or(0),
                        expected,
                        "cell ({x},{y}) sd={sd} halo={halo} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn src_and_dst_rects_have_same_shape() {
        let plan = plan_for(4, 4, 6, 8, 1, 2); // halo > sd: multi-ring
        for (_, _, p) in plan.sd_patches() {
            assert_eq!(p.src_rect.w, p.dst_rect.w);
            assert_eq!(p.src_rect.h, p.dst_rect.h);
            // src rect must lie in the source SD's interior
            assert!(Rect::new(0, 0, 6, 6).contains_rect(&p.src_rect));
        }
    }

    #[test]
    fn multi_ring_halo_reaches_two_sds_away() {
        // halo 8, sd 5 -> rings = 2
        let plan = plan_for(5, 5, 5, 8, 2, 2);
        let g = SdGrid::new(5, 5, 5);
        let sources: Vec<SdId> = plan.sd_patches().map(|(_, id, _)| id).collect();
        assert!(sources.contains(&g.id(0, 2)), "two columns left");
        assert!(sources.contains(&g.id(4, 2)), "two columns right");
        assert_eq!(sources.len(), 24, "full 5x5 block minus self");
    }

    #[test]
    fn ghost_cell_count_matches_geometry() {
        // Interior SD, halo 2, sd 4: ring area = (4+4)^2 - 16 = 48,
        // all from SDs.
        let plan = plan_for(3, 3, 4, 2, 1, 1);
        assert_eq!(plan.ghost_cells_from_sds(), 48);
    }

    #[test]
    fn single_sd_mesh_is_all_collar() {
        let plan = plan_for(1, 1, 8, 3, 0, 0);
        assert_eq!(plan.sd_patches().count(), 0);
        assert!(plan.patches.iter().all(|p| p.source == PatchSource::Collar));
    }
}
