//! Uniform grid over the unit square with its nonlocal collar.
//!
//! The material domain D = [0,1]² is discretized with `nx × ny`
//! cell-centered points of spacing `h = 1/nx` (the paper uses square meshes,
//! `nx = ny`; rectangles are supported for generality). The nonlocal
//! boundary D_c is the surrounding collar of width ε where the temperature
//! is held at zero (paper eq. 4); in cells that is `halo = ⌈ε/h⌉`.

use crate::rect::Rect;

/// Geometry of the discretized domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    /// Interior cells along x.
    pub nx: i64,
    /// Interior cells along y.
    pub ny: i64,
    /// Grid spacing (1/nx — the unit square is divided along x).
    pub h: f64,
    /// Nonlocal horizon ε.
    pub eps: f64,
    /// Collar/halo width in cells, `⌈ε/h⌉`.
    pub halo: i64,
}

impl Grid {
    /// Square mesh of `n × n` cells with horizon `ε = eps_mult · h`
    /// (the paper's experiments use `ε = 8h`).
    pub fn square(n: usize, eps_mult: f64) -> Self {
        assert!(n > 0, "grid must have at least one cell");
        assert!(eps_mult > 0.0, "horizon must be positive");
        let h = 1.0 / n as f64;
        Grid::with_eps(n, n, eps_mult * h)
    }

    /// General mesh with an explicit horizon.
    pub fn with_eps(nx: usize, ny: usize, eps: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        assert!(eps > 0.0, "horizon must be positive");
        let h = 1.0 / nx as f64;
        let halo = (eps / h).ceil() as i64;
        Grid {
            nx: nx as i64,
            ny: ny as i64,
            h,
            eps,
            halo,
        }
    }

    /// Physical coordinate of cell index `i` (cell-centered).
    pub fn coord(&self, i: i64) -> f64 {
        (i as f64 + 0.5) * self.h
    }

    /// Cell volume V_j (= h² in 2d, paper §3.1).
    pub fn cell_volume(&self) -> f64 {
        self.h * self.h
    }

    /// The interior index set K as a rectangle.
    pub fn domain_rect(&self) -> Rect {
        Rect::new(0, 0, self.nx, self.ny)
    }

    /// The full index set K ∪ K_c (interior plus collar).
    pub fn padded_rect(&self) -> Rect {
        Rect::new(
            -self.halo,
            -self.halo,
            self.nx + 2 * self.halo,
            self.ny + 2 * self.halo,
        )
    }

    /// Whether `(i, j)` lies in the material domain D.
    pub fn in_domain(&self, i: i64, j: i64) -> bool {
        self.domain_rect().contains(i, j)
    }

    /// Whether `(i, j)` lies in the collar D_c (zero boundary region).
    pub fn in_collar(&self, i: i64, j: i64) -> bool {
        self.padded_rect().contains(i, j) && !self.in_domain(i, j)
    }

    /// Total interior degrees of freedom.
    pub fn n_dofs(&self) -> usize {
        (self.nx * self.ny) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_dimensions() {
        let g = Grid::square(16, 2.0);
        assert_eq!(g.nx, 16);
        assert_eq!(g.ny, 16);
        assert!((g.h - 1.0 / 16.0).abs() < 1e-15);
        assert!((g.eps - 2.0 / 16.0).abs() < 1e-15);
        assert_eq!(g.halo, 2);
    }

    #[test]
    fn halo_rounds_up() {
        // ε = 2.5h -> halo 3 cells
        let g = Grid::with_eps(10, 10, 0.25);
        assert_eq!(g.halo, 3);
    }

    #[test]
    fn coords_are_cell_centered() {
        let g = Grid::square(4, 1.0);
        assert!((g.coord(0) - 0.125).abs() < 1e-15);
        assert!((g.coord(3) - 0.875).abs() < 1e-15);
        // first collar cell sits just outside the unit square
        assert!(g.coord(-1) < 0.0);
        assert!(g.coord(4) > 1.0);
    }

    #[test]
    fn domain_and_collar_membership() {
        let g = Grid::square(8, 2.0);
        assert!(g.in_domain(0, 0));
        assert!(g.in_domain(7, 7));
        assert!(!g.in_domain(8, 0));
        assert!(g.in_collar(-1, 0));
        assert!(g.in_collar(8, 8));
        assert!(g.in_collar(-2, -2));
        assert!(!g.in_collar(-3, 0), "outside the padded region");
        assert!(!g.in_collar(3, 3));
    }

    #[test]
    fn padded_rect_covers_domain_plus_collar() {
        let g = Grid::square(8, 2.0);
        let p = g.padded_rect();
        assert_eq!(p, Rect::new(-2, -2, 12, 12));
        assert!(p.contains_rect(&g.domain_rect()));
    }

    #[test]
    fn cell_volume_is_h_squared() {
        let g = Grid::square(10, 1.0);
        assert!((g.cell_volume() - 0.01).abs() < 1e-15);
    }
}
