//! Case-1 / case-2 classification of an SD's discretized points.
//!
//! Paper §6.3, Fig. 5: within one SD, the DPs whose ε-ball stays on data
//! owned by the same computational node (**case 2**) can be updated
//! immediately each timestep, while DPs that read foreign ghost data
//! (**case 1**) must wait for the neighbours' messages. Computing case 2
//! first hides the data-exchange time.
//!
//! The split here is per-side conservative: if any foreign SD contributes
//! ghost cells on a side (including its corners), the whole strip of width
//! `halo` along that side is classified case 1. Over-approximating case 1
//! is always correct — it only shrinks the overlap window, never reads
//! stale data.

use crate::halo::{HaloPlan, PatchSource};
use crate::rect::Rect;
use crate::subdomain::SdId;

/// The interior of one SD split into communication classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSplit {
    /// The foreign-independent region (computed while messages are in
    /// flight). Empty when foreign margins swallow the whole SD.
    pub case2: Rect,
    /// Foreign-dependent strips (computed after ghosts arrive). Pairwise
    /// disjoint; together with `case2` they tile the SD interior.
    pub case1: Vec<Rect>,
}

impl CaseSplit {
    /// Total case-1 cells.
    pub fn case1_area(&self) -> i64 {
        self.case1.iter().map(Rect::area).sum()
    }

    /// Total case-2 cells.
    pub fn case2_area(&self) -> i64 {
        self.case2.area()
    }

    /// True when the SD has no foreign dependencies at all.
    pub fn is_all_case2(&self) -> bool {
        self.case1.is_empty()
    }
}

/// Split the interior of the SD covered by `plan` given the ownership
/// predicate `is_foreign` (true for SDs owned by a *different* locality).
///
/// `sd` is the SD side length in cells and `halo` the ghost-ring width.
pub fn split_cases(
    sd: i64,
    halo: i64,
    plan: &HaloPlan,
    mut is_foreign: impl FnMut(SdId) -> bool,
) -> CaseSplit {
    let (mut left, mut right, mut bottom, mut top) = (false, false, false, false);
    for patch in &plan.patches {
        let foreign = match patch.source {
            PatchSource::Sd(id) => is_foreign(id),
            PatchSource::Collar => false, // collar is constant zero: no comm
        };
        if !foreign {
            continue;
        }
        let d = &patch.dst_rect;
        if d.x0 < 0 {
            left = true;
        }
        if d.x1() > sd {
            right = true;
        }
        if d.y0 < 0 {
            bottom = true;
        }
        if d.y1() > sd {
            top = true;
        }
    }
    let m = halo.min(sd);
    let (ml, mr) = (if left { m } else { 0 }, if right { m } else { 0 });
    let (mb, mt) = (if bottom { m } else { 0 }, if top { m } else { 0 });

    let inner_w = sd - ml - mr;
    let inner_h = sd - mb - mt;
    if inner_w <= 0 || inner_h <= 0 {
        // Margins swallow the SD: everything is case 1.
        return CaseSplit {
            case2: Rect::empty(),
            case1: vec![Rect::new(0, 0, sd, sd)],
        };
    }
    let case2 = Rect::new(ml, mb, inner_w, inner_h);
    let mut case1 = Vec::with_capacity(4);
    if ml > 0 {
        case1.push(Rect::new(0, 0, ml, sd));
    }
    if mr > 0 {
        case1.push(Rect::new(sd - mr, 0, mr, sd));
    }
    if mb > 0 {
        case1.push(Rect::new(ml, 0, inner_w, mb));
    }
    if mt > 0 {
        case1.push(Rect::new(ml, sd - mt, inner_w, mt));
    }
    CaseSplit { case2, case1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::build_halo_plan;
    use crate::subdomain::SdGrid;

    fn split(
        g: &SdGrid,
        halo: i64,
        sx: i64,
        sy: i64,
        owners: &dyn Fn(SdId) -> u32,
        me: u32,
    ) -> CaseSplit {
        let id = g.id(sx, sy);
        let plan = build_halo_plan(g, halo, id);
        split_cases(g.sd, halo, &plan, |n| owners(n) != me)
    }

    fn assert_tiles_interior(split: &CaseSplit, sd: i64) {
        let mut cover = std::collections::HashMap::new();
        for c in split.case2.cells() {
            *cover.entry(c).or_insert(0) += 1;
        }
        for r in &split.case1 {
            for c in r.cells() {
                *cover.entry(c).or_insert(0) += 1;
            }
        }
        for y in 0..sd {
            for x in 0..sd {
                assert_eq!(
                    cover.get(&(x, y)).copied().unwrap_or(0),
                    1,
                    "cell ({x},{y}) covered wrong number of times"
                );
            }
        }
        assert_eq!(cover.len() as i64, sd * sd, "cells outside interior");
    }

    #[test]
    fn all_owned_is_all_case2() {
        let g = SdGrid::new(3, 3, 10);
        let s = split(&g, 3, 1, 1, &|_| 0, 0);
        assert!(s.is_all_case2());
        assert_eq!(s.case2, Rect::new(0, 0, 10, 10));
        assert_tiles_interior(&s, 10);
    }

    #[test]
    fn single_sd_domain_is_all_case2() {
        // Only collar neighbours: zero BC needs no communication.
        let g = SdGrid::new(1, 1, 8);
        let s = split(&g, 3, 0, 0, &|_| 1, 0);
        assert!(s.is_all_case2());
    }

    #[test]
    fn foreign_left_neighbor_creates_left_strip() {
        let g = SdGrid::new(3, 1, 10);
        // Node 0 owns column 1 (middle); column 0 foreign, column 2 owned.
        let owners = |id: SdId| if id == 0 { 1u32 } else { 0u32 };
        let s = split(&g, 3, 1, 0, &owners, 0);
        assert_eq!(s.case2, Rect::new(3, 0, 7, 10));
        assert_eq!(s.case1, vec![Rect::new(0, 0, 3, 10)]);
        assert_tiles_interior(&s, 10);
    }

    #[test]
    fn diagonal_foreign_flags_both_sides() {
        let g = SdGrid::new(3, 3, 10);
        // only the bottom-left diagonal neighbour is foreign
        let diag = g.id(0, 0);
        let owners = move |id: SdId| if id == diag { 1u32 } else { 0 };
        let s = split(&g, 3, 1, 1, &owners, 0);
        // conservative: left and bottom strips both case 1
        assert_eq!(s.case2, Rect::new(3, 3, 7, 7));
        assert_eq!(s.case1_area(), 100 - 49);
        assert_tiles_interior(&s, 10);
    }

    #[test]
    fn all_foreign_neighbors_swallow_small_sd() {
        let g = SdGrid::new(3, 3, 4);
        // halo 3 on a 4-cell SD with all neighbours foreign: margins 3+3 > 4.
        // SD 4 (center) is owned by node 0, everything else by node 1.
        let s = split(&g, 3, 1, 1, &|id| u32::from(id != 4), 0);
        assert!(s.case2.is_empty());
        assert_eq!(s.case1, vec![Rect::new(0, 0, 4, 4)]);
        assert_tiles_interior(&s, 4);
    }

    #[test]
    fn opposite_foreign_sides() {
        let g = SdGrid::new(3, 1, 12);
        // both left and right columns foreign
        let owners = |id: SdId| if id == 1 { 0u32 } else { 7 };
        let s = split(&g, 4, 1, 0, &owners, 0);
        assert_eq!(s.case2, Rect::new(4, 0, 4, 12));
        assert_eq!(s.case1.len(), 2);
        assert_tiles_interior(&s, 12);
    }

    #[test]
    fn areas_sum_to_interior() {
        let g = SdGrid::new(4, 4, 6);
        for id in g.ids() {
            let plan = build_halo_plan(&g, 2, id);
            // checkerboard ownership: maximal fragmentation
            let s = split_cases(6, 2, &plan, |n| n % 2 == 0);
            assert_eq!(s.case1_area() + s.case2_area(), 36);
            assert_tiles_interior(&s, 6);
        }
    }

    #[test]
    fn case1_strips_wait_for_every_foreign_cell() {
        // Any interior cell within `halo` of a foreign-facing side must be
        // case 1 (it can read up to `halo` cells across that side).
        let g = SdGrid::new(3, 3, 10);
        let halo = 3;
        let foreign_left = g.id(0, 1);
        let owners = move |id: SdId| if id == foreign_left { 9u32 } else { 0 };
        let s = split(&g, halo, 1, 1, &owners, 0);
        for y in 0..10 {
            for x in 0..halo {
                assert!(
                    s.case1.iter().any(|r| r.contains(x, y)),
                    "({x},{y}) reads foreign data but is not case 1"
                );
            }
        }
    }
}
