//! Square sub-domains (SDs) — the unit of work and of load exchange.
//!
//! The mesh is coarsened into a grid of `nsx × nsy` square SDs of
//! `sd × sd` cells each (paper §6.1, Fig. 2). SDs are the tasks of the
//! asynchronous solver, the vertices of the partitioner's dual graph, and
//! the unit the load balancer moves between nodes.

use crate::rect::Rect;

/// Identifier of a sub-domain (row-major in the SD grid).
pub type SdId = u32;

/// The coarse grid of sub-domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdGrid {
    /// SDs along x.
    pub nsx: i64,
    /// SDs along y.
    pub nsy: i64,
    /// Cells per SD side.
    pub sd: i64,
}

impl SdGrid {
    /// An `nsx × nsy` grid of SDs with `sd` cells per side.
    pub fn new(nsx: usize, nsy: usize, sd: usize) -> Self {
        assert!(nsx > 0 && nsy > 0 && sd > 0);
        SdGrid {
            nsx: nsx as i64,
            nsy: nsy as i64,
            sd: sd as i64,
        }
    }

    /// Decompose an `nx × ny` mesh into SDs of `sd` cells per side.
    ///
    /// # Panics
    /// Panics unless `sd` divides both `nx` and `ny` exactly (the paper
    /// always uses exact tilings).
    pub fn tile_mesh(nx: usize, ny: usize, sd: usize) -> Self {
        assert!(
            nx.is_multiple_of(sd) && ny.is_multiple_of(sd),
            "SD size {sd} must divide mesh {nx}x{ny}"
        );
        SdGrid::new(nx / sd, ny / sd, sd)
    }

    /// Total number of SDs.
    pub fn count(&self) -> usize {
        (self.nsx * self.nsy) as usize
    }

    /// Cells per SD (DPs of one unit of work).
    pub fn cells_per_sd(&self) -> usize {
        (self.sd * self.sd) as usize
    }

    /// Mesh extent covered by the SD grid.
    pub fn mesh_extent(&self) -> (i64, i64) {
        (self.nsx * self.sd, self.nsy * self.sd)
    }

    /// Linear id of the SD at `(sx, sy)`.
    pub fn id(&self, sx: i64, sy: i64) -> SdId {
        debug_assert!(self.in_bounds(sx, sy));
        (sy * self.nsx + sx) as SdId
    }

    /// SD coordinates of `id`.
    pub fn coords(&self, id: SdId) -> (i64, i64) {
        let id = id as i64;
        (id % self.nsx, id / self.nsx)
    }

    /// Whether `(sx, sy)` is a real SD.
    pub fn in_bounds(&self, sx: i64, sy: i64) -> bool {
        sx >= 0 && sx < self.nsx && sy >= 0 && sy < self.nsy
    }

    /// Global cell rectangle of SD `id`.
    pub fn rect(&self, id: SdId) -> Rect {
        let (sx, sy) = self.coords(id);
        Rect::new(sx * self.sd, sy * self.sd, self.sd, self.sd)
    }

    /// Global origin (lower-left cell) of SD `id`.
    pub fn origin(&self, id: SdId) -> (i64, i64) {
        let (sx, sy) = self.coords(id);
        (sx * self.sd, sy * self.sd)
    }

    /// SD containing global cell `(gi, gj)`; `None` outside the mesh.
    pub fn sd_of_cell(&self, gi: i64, gj: i64) -> Option<SdId> {
        let (ex, ey) = self.mesh_extent();
        if gi < 0 || gi >= ex || gj < 0 || gj >= ey {
            return None;
        }
        Some(self.id(gi / self.sd, gj / self.sd))
    }

    /// 4-neighbors (edge-adjacent SDs) of `id`.
    pub fn adjacent4(&self, id: SdId) -> Vec<SdId> {
        let (sx, sy) = self.coords(id);
        [(-1, 0), (1, 0), (0, -1), (0, 1)]
            .iter()
            .filter_map(|&(dx, dy)| {
                let (nx, ny) = (sx + dx, sy + dy);
                self.in_bounds(nx, ny).then(|| self.id(nx, ny))
            })
            .collect()
    }

    /// 8-neighbors (edge- or corner-adjacent SDs) of `id`.
    pub fn adjacent8(&self, id: SdId) -> Vec<SdId> {
        let (sx, sy) = self.coords(id);
        let mut out = Vec::with_capacity(8);
        for dy in -1..=1 {
            for dx in -1..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let (nx, ny) = (sx + dx, sy + dy);
                if self.in_bounds(nx, ny) {
                    out.push(self.id(nx, ny));
                }
            }
        }
        out
    }

    /// All SD ids in row-major order.
    pub fn ids(&self) -> impl Iterator<Item = SdId> {
        0..self.count() as SdId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_mesh_divides_exactly() {
        let g = SdGrid::tile_mesh(400, 400, 50);
        assert_eq!(g.nsx, 8);
        assert_eq!(g.nsy, 8);
        assert_eq!(g.count(), 64);
        assert_eq!(g.cells_per_sd(), 2500);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn tile_mesh_rejects_uneven() {
        SdGrid::tile_mesh(100, 100, 33);
    }

    #[test]
    fn id_coords_roundtrip() {
        let g = SdGrid::new(5, 5, 4);
        for id in g.ids() {
            let (sx, sy) = g.coords(id);
            assert_eq!(g.id(sx, sy), id);
        }
    }

    #[test]
    fn rect_and_origin() {
        let g = SdGrid::new(5, 5, 4);
        let id = g.id(2, 3);
        assert_eq!(g.origin(id), (8, 12));
        assert_eq!(g.rect(id), Rect::new(8, 12, 4, 4));
    }

    #[test]
    fn sd_of_cell_maps_interior_and_rejects_outside() {
        let g = SdGrid::new(5, 5, 4);
        assert_eq!(g.sd_of_cell(0, 0), Some(g.id(0, 0)));
        assert_eq!(g.sd_of_cell(19, 19), Some(g.id(4, 4)));
        assert_eq!(g.sd_of_cell(8, 12), Some(g.id(2, 3)));
        assert_eq!(g.sd_of_cell(-1, 0), None);
        assert_eq!(g.sd_of_cell(20, 0), None);
    }

    #[test]
    fn adjacency_counts() {
        let g = SdGrid::new(3, 3, 2);
        assert_eq!(g.adjacent4(g.id(1, 1)).len(), 4);
        assert_eq!(g.adjacent4(g.id(0, 0)).len(), 2);
        assert_eq!(g.adjacent4(g.id(1, 0)).len(), 3);
        assert_eq!(g.adjacent8(g.id(1, 1)).len(), 8);
        assert_eq!(g.adjacent8(g.id(0, 0)).len(), 3);
    }

    #[test]
    fn single_sd_grid() {
        let g = SdGrid::new(1, 1, 10);
        assert_eq!(g.count(), 1);
        assert!(g.adjacent4(0).is_empty());
        assert!(g.adjacent8(0).is_empty());
    }
}
