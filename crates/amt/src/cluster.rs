//! Cluster assembly: localities + fabric + counter registry.
//!
//! [`ClusterBuilder`] wires up `n` localities (each with its own worker pool,
//! inbox pump and speed factor) over a shared [`crate::network::Fabric`], and
//! [`Cluster::run`] executes a distributed program: one driver closure per
//! locality on its own thread, exactly like an SPMD `main` per node.

use crate::counters::CounterRegistry;
use crate::locality::Locality;
use crate::network::{Fabric, NetStats};
use nlheat_netmodel::NetSpec;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of one locality.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Worker threads in the locality's pool.
    pub workers: usize,
    /// Relative compute speed (1.0 = nominal, 0.5 = half speed).
    pub speed: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            workers: 1,
            speed: 1.0,
        }
    }
}

/// Builder for a simulated cluster.
#[derive(Default)]
pub struct ClusterBuilder {
    nodes: Vec<NodeSpec>,
    net: NetSpec,
}

impl ClusterBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one locality with `workers` threads and relative `speed`.
    pub fn node(mut self, workers: usize, speed: f64) -> Self {
        self.nodes.push(NodeSpec { workers, speed });
        self
    }

    /// Append `n` identical localities.
    pub fn uniform(mut self, n: usize, workers: usize) -> Self {
        for _ in 0..n {
            self.nodes.push(NodeSpec {
                workers,
                speed: 1.0,
            });
        }
        self
    }

    /// Set the network model (default: instant delivery). The same
    /// [`NetSpec`] drives the simulator, so real and simulated runs of one
    /// configuration see identical communication cost models.
    pub fn net(mut self, spec: NetSpec) -> Self {
        self.net = spec;
        self
    }

    /// Assemble the cluster and start inbox pumps.
    ///
    /// # Panics
    /// Panics if no nodes were configured.
    pub fn build(self) -> Cluster {
        assert!(!self.nodes.is_empty(), "cluster needs at least one node");
        let n = self.nodes.len();
        let registry = Arc::new(CounterRegistry::new());
        let (fabric, receivers) = Fabric::new(n, self.net);
        let net = self.net;
        // Networking counters (the paper lists these as future work, §9):
        // registered alongside the busy-time counters so they can be
        // polled and reset through the same interface.
        {
            use crate::counters::Counter;
            let h = fabric.handle();
            registry.register(
                "/network/total/msg-count",
                Counter::gauge(move || h.stats().messages()),
            );
            let h = fabric.handle();
            registry.register(
                "/network/total/byte-count",
                Counter::gauge(move || h.stats().bytes()),
            );
            let h = fabric.handle();
            registry.register(
                "/network/total/cross-byte-count",
                Counter::gauge(move || h.stats().cross_bytes()),
            );
        }
        let mut localities = Vec::with_capacity(n);
        let mut pumps = Vec::with_capacity(n);
        for (i, (spec, rx)) in self.nodes.iter().zip(receivers).enumerate() {
            let loc = Locality::new(
                i as u32,
                spec.workers,
                spec.speed,
                fabric.handle(),
                registry.clone(),
            );
            let (rendezvous, handlers) = loc.pump_parts();
            pumps.push(
                std::thread::Builder::new()
                    .name(format!("loc{i}-pump"))
                    .spawn(move || Locality::pump(rx, rendezvous, handlers))
                    .expect("failed to spawn inbox pump"),
            );
            localities.push(loc);
        }
        Cluster {
            localities,
            fabric,
            pumps,
            registry,
            net,
        }
    }
}

/// A running simulated cluster.
pub struct Cluster {
    localities: Vec<Arc<Locality>>,
    fabric: Fabric,
    pumps: Vec<JoinHandle<()>>,
    registry: Arc<CounterRegistry>,
    net: NetSpec,
}

impl Cluster {
    /// Number of localities.
    pub fn len(&self) -> usize {
        self.localities.len()
    }

    /// True for a cluster of zero localities (never constructed via the
    /// builder, which rejects it).
    pub fn is_empty(&self) -> bool {
        self.localities.is_empty()
    }

    /// Locality `i`.
    pub fn locality(&self, i: usize) -> &Arc<Locality> {
        &self.localities[i]
    }

    /// All localities.
    pub fn localities(&self) -> &[Arc<Locality>] {
        &self.localities
    }

    /// Cluster-wide counter registry.
    pub fn registry(&self) -> &Arc<CounterRegistry> {
        &self.registry
    }

    /// Network traffic statistics.
    pub fn net_stats(&self) -> &NetStats {
        self.fabric.stats()
    }

    /// The network model this cluster's fabric was built with.
    pub fn net_spec(&self) -> &NetSpec {
        &self.net
    }

    /// Run a distributed program: `f` executes once per locality on its own
    /// driver thread (SPMD style); returns per-locality results in id order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Arc<Locality>) -> R + Send + Sync,
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .localities
                .iter()
                .map(|loc| {
                    let loc = loc.clone();
                    let f = &f;
                    scope.spawn(move || f(loc))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("locality driver panicked"))
                .collect()
        })
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.fabric.shutdown();
        for p in self.pumps.drain(..) {
            let _ = p.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::busy_time_counter_name;
    use crate::parcel::tag;
    use bytes::Bytes;

    #[test]
    fn build_and_teardown() {
        let cluster = ClusterBuilder::new().uniform(3, 1).build();
        assert_eq!(cluster.len(), 3);
        drop(cluster);
    }

    #[test]
    fn parcel_roundtrip_between_localities() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let t = tag(1, 0, 0, 0);
        let fut = cluster.locality(1).expect(t);
        cluster.locality(0).send(1, t, Bytes::from_static(b"ghost"));
        assert_eq!(fut.get().as_ref(), b"ghost");
    }

    #[test]
    fn run_executes_on_every_locality() {
        let cluster = ClusterBuilder::new().uniform(4, 1).build();
        let ids = cluster.run(|loc| loc.id());
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn spmd_neighbor_exchange() {
        // Every locality sends its id to the next one (mod n) and waits for
        // the one from the previous; checks the full fabric + pump path under
        // concurrent drivers.
        let n = 4u32;
        let cluster = ClusterBuilder::new().uniform(n as usize, 1).build();
        let received = cluster.run(|loc| {
            let me = loc.id();
            let from = (me + n - 1) % n;
            let to = (me + 1) % n;
            let fut = loc.expect(tag(2, 0, from as u64, 0));
            loc.send(to, tag(2, 0, me as u64, 0), Bytes::from(vec![me as u8]));
            fut.get()[0] as u32
        });
        assert_eq!(received, vec![3, 0, 1, 2]);
    }

    #[test]
    fn busy_time_counters_registered() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let name = busy_time_counter_name(0);
        assert!(cluster.registry().get(&name).is_some());
        // Run some work and observe the counter move.
        let f = cluster.locality(0).async_call(|| {
            let t0 = std::time::Instant::now();
            while t0.elapsed() < std::time::Duration::from_millis(3) {
                std::hint::spin_loop();
            }
            1u32
        });
        assert_eq!(f.get(), 1);
        // busy time is accounted when the pool retires the task, slightly
        // after the future resolves — drain first
        cluster.locality(0).wait_idle();
        assert!(cluster.registry().read(&name).unwrap() > 0);
    }

    #[test]
    fn network_counters_registered_and_resettable() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        assert_eq!(cluster.registry().read("/network/total/msg-count"), Some(0));
        cluster
            .locality(0)
            .send(1, tag(5, 0, 0, 0), Bytes::from_static(&[0; 10]));
        assert_eq!(cluster.registry().read("/network/total/msg-count"), Some(1));
        assert_eq!(
            cluster.registry().read("/network/total/byte-count"),
            Some(34)
        );
        assert_eq!(
            cluster.registry().read("/network/total/cross-byte-count"),
            Some(34)
        );
        // reset works like the busy-time counters
        cluster.registry().reset_prefix("/network");
        assert_eq!(cluster.registry().read("/network/total/msg-count"), Some(0));
        cluster.locality(0).send(0, tag(5, 0, 0, 1), Bytes::new());
        assert_eq!(cluster.registry().read("/network/total/msg-count"), Some(1));
        assert_eq!(
            cluster.registry().read("/network/total/cross-byte-count"),
            Some(0),
            "self-send is not cross traffic"
        );
    }

    #[test]
    fn handler_intercepts_class() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        cluster.locality(1).register_handler(9, move |p| {
            h.fetch_add(p.payload.len() as u64, Ordering::SeqCst);
        });
        cluster
            .locality(0)
            .send(1, tag(9, 0, 0, 0), Bytes::from_static(&[0; 5]));
        // Handler runs on the pump thread; spin briefly.
        let t0 = std::time::Instant::now();
        while hits.load(Ordering::SeqCst) == 0 && t0.elapsed() < std::time::Duration::from_secs(2) {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }
}
