//! Tag-matched rendezvous between expected and delivered messages.
//!
//! The receive side of ghost-zone exchange: a consumer calls
//! [`Rendezvous::expect`] to obtain a future for a tagged payload, the inbox
//! pump calls [`Rendezvous::deliver`] when the parcel arrives. Either order
//! works — early deliveries are stashed until expected, early expectations
//! park a promise until delivery. Each tag matches exactly once.

use crate::future::{channel, ready, Future, Promise};
use crate::parcel::Tag;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;

enum Entry {
    /// `expect` arrived first; deliver fulfils this promise.
    Waiting(Promise<Bytes>),
    /// The payload arrived first; expect consumes it.
    Arrived(Bytes),
}

/// A matching table pairing `expect(tag)` with `deliver(tag, payload)`.
#[derive(Default)]
pub struct Rendezvous {
    table: Mutex<HashMap<Tag, Entry>>,
}

impl Rendezvous {
    pub fn new() -> Self {
        Self::default()
    }

    /// Future for the payload that will be (or already was) delivered under
    /// `tag`.
    ///
    /// # Panics
    /// Panics if `tag` is already being expected — tags are single-use.
    pub fn expect(&self, tag: Tag) -> Future<Bytes> {
        let mut table = self.table.lock();
        match table.remove(&tag) {
            Some(Entry::Arrived(payload)) => ready(payload),
            Some(Entry::Waiting(_)) => panic!("tag {tag:#x} expected twice"),
            None => {
                let (p, f) = channel();
                table.insert(tag, Entry::Waiting(p));
                f
            }
        }
    }

    /// Deliver a payload under `tag`, fulfilling a parked expectation or
    /// stashing for a future one.
    ///
    /// # Panics
    /// Panics if `tag` already has an unconsumed delivery.
    pub fn deliver(&self, tag: Tag, payload: Bytes) {
        let entry = {
            let mut table = self.table.lock();
            match table.remove(&tag) {
                Some(Entry::Waiting(p)) => Some(p),
                Some(Entry::Arrived(_)) => panic!("tag {tag:#x} delivered twice"),
                None => {
                    table.insert(tag, Entry::Arrived(payload.clone()));
                    None
                }
            }
        };
        // Fulfil outside the lock: the continuation may re-enter (e.g. a
        // solver callback expecting the next tag).
        if let Some(p) = entry {
            p.set(payload);
        }
    }

    /// Number of unmatched entries (waiting expectations + stashed arrivals).
    /// Useful for leak assertions in tests: a finished exchange leaves zero.
    pub fn outstanding(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_then_deliver() {
        let rv = Rendezvous::new();
        let f = rv.expect(7);
        assert!(!f.is_ready());
        rv.deliver(7, Bytes::from_static(b"hi"));
        assert_eq!(f.get().as_ref(), b"hi");
        assert_eq!(rv.outstanding(), 0);
    }

    #[test]
    fn deliver_then_expect() {
        let rv = Rendezvous::new();
        rv.deliver(9, Bytes::from_static(b"early"));
        assert_eq!(rv.outstanding(), 1);
        let f = rv.expect(9);
        assert!(f.is_ready());
        assert_eq!(f.get().as_ref(), b"early");
        assert_eq!(rv.outstanding(), 0);
    }

    #[test]
    fn distinct_tags_do_not_cross() {
        let rv = Rendezvous::new();
        let f1 = rv.expect(1);
        let f2 = rv.expect(2);
        rv.deliver(2, Bytes::from_static(b"two"));
        rv.deliver(1, Bytes::from_static(b"one"));
        assert_eq!(f1.get().as_ref(), b"one");
        assert_eq!(f2.get().as_ref(), b"two");
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_delivery_panics() {
        let rv = Rendezvous::new();
        rv.deliver(3, Bytes::new());
        rv.deliver(3, Bytes::new());
    }

    #[test]
    #[should_panic(expected = "expected twice")]
    fn double_expect_panics() {
        let rv = Rendezvous::new();
        let _f1 = rv.expect(4);
        let _f2 = rv.expect(4);
    }

    #[test]
    fn concurrent_expect_deliver() {
        use std::sync::Arc;
        let rv = Arc::new(Rendezvous::new());
        let futures: Vec<_> = (0..64u64).map(|t| rv.expect(t)).collect();
        let rv2 = rv.clone();
        let sender = std::thread::spawn(move || {
            for t in (0..64u64).rev() {
                rv2.deliver(t, Bytes::from(t.to_le_bytes().to_vec()));
            }
        });
        for (t, f) in futures.into_iter().enumerate() {
            let payload = f.get();
            assert_eq!(payload.as_ref(), &(t as u64).to_le_bytes());
        }
        sender.join().unwrap();
        assert_eq!(rv.outstanding(), 0);
    }
}
