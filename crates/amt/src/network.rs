//! In-memory network fabric driven by a pluggable [`NetModel`].
//!
//! Every inter-locality parcel flows through a [`Fabric`]. The delivery
//! schedule comes from the shared `nlheat-netmodel` crate — the same cost
//! models the discrete-event simulator uses — so communication behaviour
//! agrees between the real runtime and the simulator by construction.
//! With [`NetSpec::Instant`] parcels are forwarded synchronously; any other
//! model routes parcels through a delivery thread that releases each one at
//! the arrival time the model computed. Model time is f64 seconds anchored
//! at fabric creation; the [`nlheat_netmodel::time`] adapter is the single
//! seam converting to wall-clock `Instant`s.

use crate::parcel::{LocalityId, Parcel};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use nlheat_netmodel::{time as nettime, ConstantBandwidthNet, Msg, NetModel, NetSpec};
use parking_lot::{Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Aggregate traffic statistics (message and byte totals plus a
/// source×destination byte matrix).
pub struct NetStats {
    n: usize,
    msgs: AtomicU64,
    bytes: AtomicU64,
    pair_bytes: Mutex<Vec<u64>>,
}

impl NetStats {
    fn new(n: usize) -> Self {
        NetStats {
            n,
            msgs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            pair_bytes: Mutex::new(vec![0; n * n]),
        }
    }

    fn record(&self, src: LocalityId, dst: LocalityId, bytes: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.pair_bytes.lock()[src as usize * self.n + dst as usize] += bytes as u64;
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.msgs.load(Ordering::Relaxed)
    }

    /// Total bytes sent (wire size including headers).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent from `src` to `dst`.
    pub fn pair_bytes(&self, src: LocalityId, dst: LocalityId) -> u64 {
        self.pair_bytes.lock()[src as usize * self.n + dst as usize]
    }

    /// Bytes crossing locality boundaries (excludes self-sends).
    pub fn cross_bytes(&self) -> u64 {
        let m = self.pair_bytes.lock();
        let mut total = 0;
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d {
                    total += m[s * self.n + d];
                }
            }
        }
        total
    }
}

/// The fabric's view of the cost model, split by how much
/// synchronization each class of model needs on the send hot path.
enum FabricModel {
    /// Zero delay: no clock read, no lock, forward synchronously.
    Instant,
    /// Stateless per-message model: computed lock-free on the sender.
    Constant(ConstantBandwidthNet),
    /// Stateful models (per-sender NICs, topology): locked per **sender**.
    /// Every shardable stateful model keeps its contention state per
    /// sender (`nic_free[src]`), so one full model instance per
    /// locality — each only ever queried with its own `src` — yields the
    /// same arrival times as one shared instance while concurrent senders
    /// never contend on a lock. Models with genuinely cross-sender state
    /// (the duplex receiver-ingress queue) go through
    /// [`FabricModel::CrossSender`] instead; `NetSpec::has_cross_sender_state`
    /// is the netmodel crate's encoding of that contract.
    Stateful(Vec<Mutex<Box<dyn NetModel>>>),
    /// One shard for models whose contention state couples senders (e.g.
    /// [`nlheat_netmodel::DuplexBandwidthNet`]: every sender mutates the
    /// receiver's ingress queue, so sharding per sender would silently
    /// erase the incast contention the model exists to apply).
    CrossSender(Mutex<Box<dyn NetModel>>),
}

impl FabricModel {
    fn build(spec: NetSpec, n: usize) -> Self {
        // Same early rejection as the simulator path (NetSpec::build):
        // a degenerate spec must fail at cluster construction, not later
        // on a driver thread mid-send.
        spec.validate();
        match spec {
            spec if spec.is_instant() => FabricModel::Instant,
            NetSpec::Constant {
                latency_s,
                bytes_per_sec,
            } => FabricModel::Constant(ConstantBandwidthNet::new(latency_s, bytes_per_sec)),
            spec if spec.has_cross_sender_state() => {
                FabricModel::CrossSender(Mutex::new(spec.build(n)))
            }
            spec => FabricModel::Stateful((0..n).map(|_| Mutex::new(spec.build(n))).collect()),
        }
    }
}

struct FabricInner {
    links: RwLock<Vec<Option<Sender<Parcel>>>>,
    model: FabricModel,
    /// Model-time origin: model second 0.0 == this instant.
    epoch: Instant,
    stats: NetStats,
    delay_tx: Mutex<Option<Sender<(Instant, Parcel)>>>,
}

impl FabricInner {
    fn forward(&self, parcel: Parcel) {
        let links = self.links.read();
        if let Some(Some(tx)) = links.get(parcel.dst as usize) {
            // A receiver that already shut down just drops the parcel.
            let _ = tx.send(parcel);
        }
    }
}

/// The cluster-wide transport. Owns the (optional) delivery thread.
pub struct Fabric {
    inner: Arc<FabricInner>,
    delay_thread: Option<JoinHandle<()>>,
}

/// Cheap per-locality sending handle.
#[derive(Clone)]
pub struct FabricHandle {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Create a fabric for `n` localities over the network model described
    /// by `spec`; returns the fabric and one inbox receiver per locality.
    pub fn new(n: usize, spec: NetSpec) -> (Self, Vec<Receiver<Parcel>>) {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(Some(tx));
            receivers.push(rx);
        }
        let instant = spec.is_instant();
        let inner = Arc::new(FabricInner {
            links: RwLock::new(senders),
            model: FabricModel::build(spec, n),
            epoch: Instant::now(),
            stats: NetStats::new(n),
            delay_tx: Mutex::new(None),
        });
        let delay_thread = if instant {
            None
        } else {
            let (tx, rx) = unbounded();
            *inner.delay_tx.lock() = Some(tx);
            let inner2 = inner.clone();
            Some(
                std::thread::Builder::new()
                    .name("amt-net-delay".into())
                    .spawn(move || delay_loop(inner2, rx))
                    .expect("failed to spawn network delay thread"),
            )
        };
        (
            Fabric {
                inner,
                delay_thread,
            },
            receivers,
        )
    }

    /// Sending handle to share with localities.
    pub fn handle(&self) -> FabricHandle {
        FabricHandle {
            inner: self.inner.clone(),
        }
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Tear down: close all links (inbox pumps observe disconnect) and stop
    /// the delivery thread after it drains in-flight parcels.
    pub fn shutdown(&mut self) {
        self.inner.delay_tx.lock().take();
        if let Some(t) = self.delay_thread.take() {
            let _ = t.join();
        }
        let mut links = self.inner.links.write();
        for l in links.iter_mut() {
            l.take();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl FabricHandle {
    /// Send a parcel, subject to the network model. Self-sends are legal and
    /// take the same path (so code need not special-case them).
    pub fn send(&self, parcel: Parcel) {
        self.inner
            .stats
            .record(parcel.src, parcel.dst, parcel.wire_size());
        if matches!(self.inner.model, FabricModel::Instant) {
            self.inner.forward(parcel);
            return;
        }
        // One seam between wall-clock and model time: `now` in model
        // seconds since the fabric epoch, arrival mapped back to an Instant.
        let now_s = nettime::duration_to_secs(self.inner.epoch.elapsed());
        let arrival_s = match &self.inner.model {
            FabricModel::Instant => unreachable!("handled above"),
            FabricModel::Constant(net) => now_s + net.delay_for(parcel.wire_size() as u64),
            // Lock only this sender's shard: concurrent localities keep
            // their NIC arithmetic fully parallel.
            FabricModel::Stateful(shards) => shards[parcel.src as usize].lock().arrival(
                now_s,
                &Msg {
                    src: parcel.src,
                    dst: parcel.dst,
                    bytes: parcel.wire_size() as u64,
                },
            ),
            // Cross-sender state (receiver-ingress queues): all senders
            // serialize on the one true model instance.
            FabricModel::CrossSender(model) => model.lock().arrival(
                now_s,
                &Msg {
                    src: parcel.src,
                    dst: parcel.dst,
                    bytes: parcel.wire_size() as u64,
                },
            ),
        };
        if arrival_s <= now_s {
            self.inner.forward(parcel);
            return;
        }
        let deliver_at = self.inner.epoch + nettime::secs_to_duration(arrival_s);
        let guard = self.inner.delay_tx.lock();
        // A `None` here means the fabric already shut down; the parcel
        // is dropped, like a packet into a closed socket.
        if let Some(tx) = &*guard {
            let _ = tx.send((deliver_at, parcel));
        }
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }
}

struct Delayed {
    at: Instant,
    seq: u64,
    parcel: Parcel,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

fn delay_loop(inner: Arc<FabricInner>, rx: Receiver<(Instant, Parcel)>) {
    let mut heap: BinaryHeap<Reverse<Delayed>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut disconnected = false;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.at <= now) {
            let Reverse(d) = heap.pop().unwrap();
            inner.forward(d.parcel);
        }
        match heap.peek() {
            None if disconnected => break,
            None => match rx.recv() {
                Ok((at, parcel)) => {
                    heap.push(Reverse(Delayed { at, seq, parcel }));
                    seq += 1;
                }
                Err(_) => disconnected = true,
            },
            Some(Reverse(next)) => {
                let wait = next.at.saturating_duration_since(Instant::now());
                if disconnected {
                    std::thread::sleep(wait);
                    continue;
                }
                match rx.recv_timeout(wait) {
                    Ok((at, parcel)) => {
                        heap.push(Reverse(Delayed { at, seq, parcel }));
                        seq += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use nlheat_netmodel::TopologySpec;
    use std::time::Duration;

    #[test]
    fn instant_fabric_delivers_synchronously() {
        let (fabric, rx) = Fabric::new(2, NetSpec::Instant);
        let h = fabric.handle();
        h.send(Parcel::new(0, 1, 42, Bytes::from_static(b"x")));
        let p = rx[1].try_recv().expect("delivered synchronously");
        assert_eq!(p.tag, 42);
        assert_eq!(fabric.stats().messages(), 1);
    }

    #[test]
    fn zero_delay_constant_spec_takes_the_instant_path() {
        // `NetSpec::constant(0, inf)` is recognised as instant: no delivery
        // thread is spawned and sends forward synchronously.
        let (fabric, rx) = Fabric::new(2, NetSpec::constant(0.0, f64::INFINITY));
        assert!(fabric.delay_thread.is_none());
        fabric.handle().send(Parcel::new(0, 1, 3, Bytes::new()));
        assert!(rx[1].try_recv().is_ok());
    }

    #[test]
    fn zero_delay_shared_spec_takes_the_instant_path() {
        // The degenerate `Shared { 0, inf }` spelling always yields
        // arrival == now; it must skip the delivery-thread machinery like
        // its Instant/Constant siblings instead of paying a model lock and
        // heap traversal per parcel.
        let (fabric, rx) = Fabric::new(2, NetSpec::shared(0.0, f64::INFINITY));
        assert!(fabric.delay_thread.is_none());
        fabric.handle().send(Parcel::new(0, 1, 5, Bytes::new()));
        assert!(rx[1].try_recv().is_ok(), "delivered synchronously");
    }

    #[test]
    fn sharded_senders_do_not_contend() {
        // Two senders push a ~100 ms-wire parcel each at the same time;
        // the per-sender NIC shards must keep them independent, so both
        // arrive ~100 ms after t0 rather than serializing to ~200 ms. The
        // wire time is deliberately large so the assert's slack (60 ms)
        // dwarfs thread-spawn and timer-wakeup jitter on a loaded runner
        // while staying far below the serialized case.
        let (fabric, rx) = Fabric::new(3, NetSpec::shared(0.0, 50_000.0));
        let t0 = Instant::now();
        let h0 = fabric.handle();
        let h1 = fabric.handle();
        let s0 = std::thread::spawn(move || {
            h0.send(Parcel::new(0, 2, 0, Bytes::from_static(&[0; 4976])));
        });
        let s1 = std::thread::spawn(move || {
            h1.send(Parcel::new(1, 2, 1, Bytes::from_static(&[0; 4976])));
        });
        s0.join().unwrap();
        s1.join().unwrap();
        let a = rx[2]
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let b = rx[2]
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        assert_ne!(a.tag, b.tag);
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(160),
            "distinct senders must not serialize: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn sharded_sender_still_serializes_its_own_parcels() {
        // Sharding must not lose per-sender NIC semantics: one sender's
        // parcels still queue behind each other, and the sharded stateful
        // path agrees with a single freestanding model instance.
        let spec = NetSpec::shared(0.0, 50_000.0);
        let (fabric, rx) = Fabric::new(2, spec);
        let t0 = Instant::now();
        let h = fabric.handle();
        h.send(Parcel::new(0, 1, 0, Bytes::from_static(&[0; 476])));
        h.send(Parcel::new(0, 1, 1, Bytes::from_static(&[0; 476])));
        let _ = rx[1]
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap();
        let second = rx[1]
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap();
        assert_eq!(second.tag, 1);
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(19),
            "same-sender parcels must still queue: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn self_send_works() {
        let (fabric, rx) = Fabric::new(1, NetSpec::Instant);
        fabric.handle().send(Parcel::new(0, 0, 1, Bytes::new()));
        assert!(rx[0].try_recv().is_ok());
    }

    #[test]
    fn delayed_fabric_respects_latency() {
        let model = NetSpec::constant(20e-3, f64::INFINITY);
        let (fabric, rx) = Fabric::new(2, model);
        let t0 = Instant::now();
        fabric.handle().send(Parcel::new(0, 1, 7, Bytes::new()));
        assert!(rx[1].try_recv().is_err(), "must not arrive immediately");
        let p = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(p.tag, 7);
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn shared_model_serializes_senders_on_the_wire() {
        // Two 500-byte parcels at 50 kB/s: ~10 ms each, serialized on the
        // sender NIC, so the second arrives ~20 ms after the first send.
        let (fabric, rx) = Fabric::new(2, NetSpec::shared(0.0, 50_000.0));
        let t0 = Instant::now();
        let h = fabric.handle();
        h.send(Parcel::new(0, 1, 0, Bytes::from_static(&[0; 476])));
        h.send(Parcel::new(0, 1, 1, Bytes::from_static(&[0; 476])));
        let _ = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let second = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(second.tag, 1);
        assert!(
            t0.elapsed() >= Duration::from_millis(19),
            "second parcel must queue behind the first: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn topology_model_distinguishes_rack_pairs() {
        // Racks of 2: 0→1 is intra-rack (fast), 0→2 inter-rack (slow).
        let spec = NetSpec::Topology(TopologySpec {
            ranks_per_node: 1,
            nodes_per_rack: 2,
            intra_node: nlheat_netmodel::LinkSpec::new(0.0, f64::INFINITY),
            intra_rack: nlheat_netmodel::LinkSpec::new(1e-3, f64::INFINITY),
            inter_rack: nlheat_netmodel::LinkSpec::new(40e-3, f64::INFINITY),
        });
        let (fabric, rx) = Fabric::new(4, spec);
        let h = fabric.handle();
        let t0 = Instant::now();
        h.send(Parcel::new(0, 2, 9, Bytes::new()));
        h.send(Parcel::new(0, 1, 8, Bytes::new()));
        let fast = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let fast_at = t0.elapsed();
        let slow = rx[2].recv_timeout(Duration::from_secs(2)).unwrap();
        let slow_at = t0.elapsed();
        assert_eq!(fast.tag, 8);
        assert_eq!(slow.tag, 9);
        assert!(
            slow_at >= Duration::from_millis(39) && fast_at < slow_at,
            "inter-rack must be slower: intra {fast_at:?} vs inter {slow_at:?}"
        );
    }

    #[test]
    fn bandwidth_term_increases_delay() {
        let mut model = nlheat_netmodel::ConstantBandwidthNet::new(1e-3, 1_000_000.0);
        let msg = |bytes| Msg {
            src: 0,
            dst: 1,
            bytes,
        };
        // 500 kB at 1 MB/s ≈ 0.5 s; a zero-byte message still pays latency.
        assert!(model.arrival(0.0, &msg(500_000)) > 0.4);
        assert!(model.arrival(0.0, &msg(0)) >= 1e-3);
    }

    #[test]
    fn stats_track_pairs_and_cross_traffic() {
        let (fabric, _rx) = Fabric::new(3, NetSpec::Instant);
        let h = fabric.handle();
        h.send(Parcel::new(0, 1, 0, Bytes::from_static(&[0; 10])));
        h.send(Parcel::new(0, 1, 1, Bytes::from_static(&[0; 10])));
        h.send(Parcel::new(2, 2, 2, Bytes::from_static(&[0; 10])));
        assert_eq!(fabric.stats().messages(), 3);
        assert_eq!(fabric.stats().pair_bytes(0, 1), 2 * 34);
        assert_eq!(fabric.stats().cross_bytes(), 2 * 34);
    }

    #[test]
    fn shutdown_drains_in_flight_parcels() {
        let model = NetSpec::constant(10e-3, f64::INFINITY);
        let (mut fabric, rx) = Fabric::new(2, model);
        fabric.handle().send(Parcel::new(0, 1, 9, Bytes::new()));
        fabric.shutdown();
        // The delay thread sleeps out remaining deliveries before exiting,
        // and shutdown joins it, so the parcel must be in the inbox now.
        assert!(rx[1].try_recv().is_ok());
    }

    #[test]
    fn ordering_preserved_per_pair_with_equal_sizes() {
        let model = NetSpec::constant(5e-3, f64::INFINITY);
        let (fabric, rx) = Fabric::new(2, model);
        let h = fabric.handle();
        for i in 0..20u64 {
            h.send(Parcel::new(0, 1, i, Bytes::new()));
        }
        let mut tags = Vec::new();
        for _ in 0..20 {
            tags.push(rx[1].recv_timeout(Duration::from_secs(2)).unwrap().tag);
        }
        assert_eq!(tags, (0..20u64).collect::<Vec<_>>());
    }
}
