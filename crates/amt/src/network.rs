//! In-memory network fabric with an optional latency/bandwidth model.
//!
//! Every inter-locality parcel flows through a [`Fabric`]. With the default
//! [`NetModel::instant`] parcels are forwarded synchronously; with a modeled
//! network each parcel is held by a delivery thread until
//! `latency + size/bandwidth` has elapsed, so communication/computation
//! overlap (the paper's §6.3) is observable in real executions, not only in
//! the discrete-event simulator.

use crate::parcel::{LocalityId, Parcel};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency/bandwidth model for parcel delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-message one-way latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second; `f64::INFINITY` disables the
    /// serialization term.
    pub bytes_per_sec: f64,
}

impl NetModel {
    /// Zero latency, infinite bandwidth: parcels forwarded synchronously.
    pub fn instant() -> Self {
        NetModel {
            latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
        }
    }

    /// A modeled link.
    pub fn new(latency: Duration, bytes_per_sec: f64) -> Self {
        NetModel {
            latency,
            bytes_per_sec,
        }
    }

    /// True when no delivery delay is ever applied.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.bytes_per_sec.is_infinite()
    }

    /// Delay experienced by a message of `bytes` bytes.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        if self.bytes_per_sec.is_infinite() {
            self.latency
        } else {
            self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        }
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::instant()
    }
}

/// Aggregate traffic statistics (message and byte totals plus a
/// source×destination byte matrix).
pub struct NetStats {
    n: usize,
    msgs: AtomicU64,
    bytes: AtomicU64,
    pair_bytes: Mutex<Vec<u64>>,
}

impl NetStats {
    fn new(n: usize) -> Self {
        NetStats {
            n,
            msgs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            pair_bytes: Mutex::new(vec![0; n * n]),
        }
    }

    fn record(&self, src: LocalityId, dst: LocalityId, bytes: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.pair_bytes.lock()[src as usize * self.n + dst as usize] += bytes as u64;
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.msgs.load(Ordering::Relaxed)
    }

    /// Total bytes sent (wire size including headers).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent from `src` to `dst`.
    pub fn pair_bytes(&self, src: LocalityId, dst: LocalityId) -> u64 {
        self.pair_bytes.lock()[src as usize * self.n + dst as usize]
    }

    /// Bytes crossing locality boundaries (excludes self-sends).
    pub fn cross_bytes(&self) -> u64 {
        let m = self.pair_bytes.lock();
        let mut total = 0;
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d {
                    total += m[s * self.n + d];
                }
            }
        }
        total
    }
}

struct FabricInner {
    links: RwLock<Vec<Option<Sender<Parcel>>>>,
    model: NetModel,
    stats: NetStats,
    delay_tx: Mutex<Option<Sender<(Instant, Parcel)>>>,
}

impl FabricInner {
    fn forward(&self, parcel: Parcel) {
        let links = self.links.read();
        if let Some(Some(tx)) = links.get(parcel.dst as usize) {
            // A receiver that already shut down just drops the parcel.
            let _ = tx.send(parcel);
        }
    }
}

/// The cluster-wide transport. Owns the (optional) delivery thread.
pub struct Fabric {
    inner: Arc<FabricInner>,
    delay_thread: Option<JoinHandle<()>>,
}

/// Cheap per-locality sending handle.
#[derive(Clone)]
pub struct FabricHandle {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Create a fabric for `n` localities; returns the fabric and one inbox
    /// receiver per locality.
    pub fn new(n: usize, model: NetModel) -> (Self, Vec<Receiver<Parcel>>) {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(Some(tx));
            receivers.push(rx);
        }
        let inner = Arc::new(FabricInner {
            links: RwLock::new(senders),
            model,
            stats: NetStats::new(n),
            delay_tx: Mutex::new(None),
        });
        let delay_thread = if model.is_instant() {
            None
        } else {
            let (tx, rx) = unbounded();
            *inner.delay_tx.lock() = Some(tx);
            let inner2 = inner.clone();
            Some(
                std::thread::Builder::new()
                    .name("amt-net-delay".into())
                    .spawn(move || delay_loop(inner2, rx))
                    .expect("failed to spawn network delay thread"),
            )
        };
        (
            Fabric {
                inner,
                delay_thread,
            },
            receivers,
        )
    }

    /// Sending handle to share with localities.
    pub fn handle(&self) -> FabricHandle {
        FabricHandle {
            inner: self.inner.clone(),
        }
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Tear down: close all links (inbox pumps observe disconnect) and stop
    /// the delivery thread after it drains in-flight parcels.
    pub fn shutdown(&mut self) {
        self.inner.delay_tx.lock().take();
        if let Some(t) = self.delay_thread.take() {
            let _ = t.join();
        }
        let mut links = self.inner.links.write();
        for l in links.iter_mut() {
            l.take();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl FabricHandle {
    /// Send a parcel, subject to the network model. Self-sends are legal and
    /// take the same path (so code need not special-case them).
    pub fn send(&self, parcel: Parcel) {
        self.inner
            .stats
            .record(parcel.src, parcel.dst, parcel.wire_size());
        let delay = self.inner.model.delay_for(parcel.wire_size());
        if delay.is_zero() {
            self.inner.forward(parcel);
        } else {
            let deliver_at = Instant::now() + delay;
            let guard = self.inner.delay_tx.lock();
            // A `None` here means the fabric already shut down; the parcel
            // is dropped, like a packet into a closed socket.
            if let Some(tx) = &*guard {
                let _ = tx.send((deliver_at, parcel));
            }
        }
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }
}

struct Delayed {
    at: Instant,
    seq: u64,
    parcel: Parcel,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

fn delay_loop(inner: Arc<FabricInner>, rx: Receiver<(Instant, Parcel)>) {
    let mut heap: BinaryHeap<Reverse<Delayed>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut disconnected = false;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.at <= now) {
            let Reverse(d) = heap.pop().unwrap();
            inner.forward(d.parcel);
        }
        match heap.peek() {
            None if disconnected => break,
            None => match rx.recv() {
                Ok((at, parcel)) => {
                    heap.push(Reverse(Delayed { at, seq, parcel }));
                    seq += 1;
                }
                Err(_) => disconnected = true,
            },
            Some(Reverse(next)) => {
                let wait = next.at.saturating_duration_since(Instant::now());
                if disconnected {
                    std::thread::sleep(wait);
                    continue;
                }
                match rx.recv_timeout(wait) {
                    Ok((at, parcel)) => {
                        heap.push(Reverse(Delayed { at, seq, parcel }));
                        seq += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn instant_fabric_delivers_synchronously() {
        let (fabric, rx) = Fabric::new(2, NetModel::instant());
        let h = fabric.handle();
        h.send(Parcel::new(0, 1, 42, Bytes::from_static(b"x")));
        let p = rx[1].try_recv().expect("delivered synchronously");
        assert_eq!(p.tag, 42);
        assert_eq!(fabric.stats().messages(), 1);
    }

    #[test]
    fn self_send_works() {
        let (fabric, rx) = Fabric::new(1, NetModel::instant());
        fabric.handle().send(Parcel::new(0, 0, 1, Bytes::new()));
        assert!(rx[0].try_recv().is_ok());
    }

    #[test]
    fn delayed_fabric_respects_latency() {
        let model = NetModel::new(Duration::from_millis(20), f64::INFINITY);
        let (fabric, rx) = Fabric::new(2, model);
        let t0 = Instant::now();
        fabric.handle().send(Parcel::new(0, 1, 7, Bytes::new()));
        assert!(rx[1].try_recv().is_err(), "must not arrive immediately");
        let p = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(p.tag, 7);
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn bandwidth_term_increases_delay() {
        let model = NetModel::new(Duration::from_millis(1), 1_000_000.0);
        // 1 MB at 1 MB/s -> about 1 s; use a small message and just check
        // delay_for arithmetic rather than sleeping.
        assert!(model.delay_for(500_000) > Duration::from_millis(400));
        assert!(model.delay_for(0) >= Duration::from_millis(1));
    }

    #[test]
    fn stats_track_pairs_and_cross_traffic() {
        let (fabric, _rx) = Fabric::new(3, NetModel::instant());
        let h = fabric.handle();
        h.send(Parcel::new(0, 1, 0, Bytes::from_static(&[0; 10])));
        h.send(Parcel::new(0, 1, 1, Bytes::from_static(&[0; 10])));
        h.send(Parcel::new(2, 2, 2, Bytes::from_static(&[0; 10])));
        assert_eq!(fabric.stats().messages(), 3);
        assert_eq!(fabric.stats().pair_bytes(0, 1), 2 * 34);
        assert_eq!(fabric.stats().cross_bytes(), 2 * 34);
    }

    #[test]
    fn shutdown_drains_in_flight_parcels() {
        let model = NetModel::new(Duration::from_millis(10), f64::INFINITY);
        let (mut fabric, rx) = Fabric::new(2, model);
        fabric.handle().send(Parcel::new(0, 1, 9, Bytes::new()));
        fabric.shutdown();
        // The delay thread sleeps out remaining deliveries before exiting,
        // and shutdown joins it, so the parcel must be in the inbox now.
        assert!(rx[1].try_recv().is_ok());
    }

    #[test]
    fn ordering_preserved_per_pair_with_equal_sizes() {
        let model = NetModel::new(Duration::from_millis(5), f64::INFINITY);
        let (fabric, rx) = Fabric::new(2, model);
        let h = fabric.handle();
        for i in 0..20u64 {
            h.send(Parcel::new(0, 1, i, Bytes::new()));
        }
        let mut tags = Vec::new();
        for _ in 0..20 {
            tags.push(rx[1].recv_timeout(Duration::from_secs(2)).unwrap().tag);
        }
        assert_eq!(tags, (0..20u64).collect::<Vec<_>>());
    }
}
