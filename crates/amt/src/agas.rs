//! Active Global Address Space: sub-domain ownership directory.
//!
//! HPX's AGAS resolves global object ids to their current locality even as
//! objects migrate. The solver needs exactly one such mapping — *which
//! locality owns sub-domain `i`* — and the load balancer rewrites it when it
//! migrates SDs. [`Agas`] is that directory: an epoch-versioned ownership
//! table shared by all localities of a cluster (an in-process stand-in for
//! the distributed AGAS service; every read/update below corresponds to an
//! AGAS resolve/rebind in the paper's implementation).

use crate::parcel::LocalityId;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ownership directory mapping object id → locality, with an epoch counter
/// bumped on every rebind (so caches can detect staleness).
pub struct Agas {
    owners: RwLock<Vec<LocalityId>>,
    epoch: AtomicU64,
}

impl Agas {
    /// Create a directory from the initial ownership table.
    pub fn new(owners: Vec<LocalityId>) -> Self {
        Agas {
            owners: RwLock::new(owners),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.owners.read().len()
    }

    /// True if no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current owner of object `id`.
    pub fn owner(&self, id: usize) -> LocalityId {
        self.owners.read()[id]
    }

    /// Copy of the full ownership table.
    pub fn snapshot(&self) -> Vec<LocalityId> {
        self.owners.read().clone()
    }

    /// Ids owned by `locality`, ascending.
    pub fn owned_by(&self, locality: LocalityId) -> Vec<usize> {
        self.owners
            .read()
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == locality)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebind object `id` to `to`. Bumps the epoch.
    pub fn migrate(&self, id: usize, to: LocalityId) {
        self.owners.write()[id] = to;
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Apply a batch of rebinds atomically (single epoch bump).
    pub fn migrate_many(&self, moves: &[(usize, LocalityId)]) {
        if moves.is_empty() {
            return;
        }
        let mut owners = self.owners.write();
        for &(id, to) in moves {
            owners[id] = to;
        }
        drop(owners);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Monotone version counter; changes whenever ownership changes.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_lookup_and_snapshot() {
        let agas = Agas::new(vec![0, 0, 1, 2]);
        assert_eq!(agas.len(), 4);
        assert_eq!(agas.owner(2), 1);
        assert_eq!(agas.snapshot(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn owned_by_lists_ids() {
        let agas = Agas::new(vec![0, 1, 0, 1, 0]);
        assert_eq!(agas.owned_by(0), vec![0, 2, 4]);
        assert_eq!(agas.owned_by(1), vec![1, 3]);
        assert_eq!(agas.owned_by(9), Vec::<usize>::new());
    }

    #[test]
    fn migrate_updates_owner_and_epoch() {
        let agas = Agas::new(vec![0, 0]);
        let e0 = agas.epoch();
        agas.migrate(1, 3);
        assert_eq!(agas.owner(1), 3);
        assert!(agas.epoch() > e0);
    }

    #[test]
    fn migrate_many_single_epoch_bump() {
        let agas = Agas::new(vec![0; 5]);
        let e0 = agas.epoch();
        agas.migrate_many(&[(0, 1), (2, 1), (4, 2)]);
        assert_eq!(agas.epoch(), e0 + 1);
        assert_eq!(agas.snapshot(), vec![1, 0, 1, 0, 2]);
        agas.migrate_many(&[]);
        assert_eq!(agas.epoch(), e0 + 1, "empty batch must not bump epoch");
    }
}
