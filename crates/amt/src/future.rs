//! Future/promise local control objects (LCOs).
//!
//! These mirror the `hpx::future` / `hpx::promise` pair the paper's solver is
//! built on: single-producer, single-consumer futures with a blocking
//! [`Future::get`], dataflow continuations ([`Future::then`],
//! [`Future::then_inline`]) and conjunction ([`when_all`]).

use crate::task::Spawn;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

type Callback<T> = Box<dyn FnOnce(T) + Send + 'static>;

enum State<T> {
    /// Value not produced yet; at most one registered continuation.
    Pending(Option<Callback<T>>),
    /// Value produced, waiting for the consumer.
    Ready(T),
    /// Value handed to the consumer (or to a continuation).
    Consumed,
    /// The promise was dropped without fulfilling — waiting would deadlock.
    Broken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// The write end of a future: fulfil it exactly once with [`Promise::set`].
///
/// Dropping a promise without setting a value marks the future *broken*;
/// a subsequent `get` panics instead of deadlocking.
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
    fulfilled: bool,
}

/// The read end: consume with [`Future::get`] (blocking) or attach a
/// continuation with [`Future::then`] / [`Future::on_ready`].
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

/// Create a connected promise/future pair.
pub fn channel<T>() -> (Promise<T>, Future<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Pending(None)),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: shared.clone(),
            fulfilled: false,
        },
        Future { shared },
    )
}

/// A future that is already fulfilled with `value`.
pub fn ready<T>(value: T) -> Future<T> {
    let (p, f) = channel();
    p.set(value);
    f
}

impl<T> Promise<T> {
    /// Fulfil the promise. Runs the registered continuation (if any) on the
    /// calling thread, otherwise stores the value and wakes blocked getters.
    pub fn set(mut self, value: T) {
        self.fulfilled = true;
        let mut guard = self.shared.state.lock();
        match std::mem::replace(&mut *guard, State::Consumed) {
            State::Pending(Some(cb)) => {
                drop(guard);
                cb(value);
            }
            State::Pending(None) => {
                *guard = State::Ready(value);
                drop(guard);
                self.shared.cv.notify_all();
            }
            State::Ready(_) | State::Consumed | State::Broken => {
                unreachable!("promise fulfilled twice")
            }
        }
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        let mut guard = self.shared.state.lock();
        if matches!(*guard, State::Pending(_)) {
            *guard = State::Broken;
            drop(guard);
            self.shared.cv.notify_all();
        }
    }
}

impl<T> Future<T> {
    /// Block until the value is available and take it.
    ///
    /// # Panics
    /// Panics if the promise was dropped unfulfilled.
    pub fn get(self) -> T {
        let mut guard = self.shared.state.lock();
        loop {
            match &*guard {
                State::Ready(_) => match std::mem::replace(&mut *guard, State::Consumed) {
                    State::Ready(v) => return v,
                    _ => unreachable!(),
                },
                State::Pending(_) => self.shared.cv.wait(&mut guard),
                State::Broken => panic!("future broken: promise dropped without a value"),
                State::Consumed => unreachable!("future consumed twice"),
            }
        }
    }

    /// Non-blocking: take the value if it is already there.
    pub fn try_take(&self) -> Option<T> {
        let mut guard = self.shared.state.lock();
        if matches!(*guard, State::Ready(_)) {
            match std::mem::replace(&mut *guard, State::Consumed) {
                State::Ready(v) => Some(v),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }

    /// True once a value is waiting (does not consume it).
    pub fn is_ready(&self) -> bool {
        matches!(*self.shared.state.lock(), State::Ready(_))
    }

    /// True if the promise was dropped without fulfilling.
    pub fn is_broken(&self) -> bool {
        matches!(*self.shared.state.lock(), State::Broken)
    }

    /// Attach a continuation that runs exactly once with the value — on this
    /// thread if the value is already available, otherwise on the thread that
    /// fulfils the promise.
    pub fn on_ready<F: FnOnce(T) + Send + 'static>(self, f: F)
    where
        T: Send + 'static,
    {
        let mut guard = self.shared.state.lock();
        match std::mem::replace(&mut *guard, State::Consumed) {
            State::Ready(v) => {
                drop(guard);
                f(v);
            }
            State::Pending(None) => {
                *guard = State::Pending(Some(Box::new(f)));
            }
            State::Pending(Some(_)) => unreachable!("continuation attached twice"),
            State::Broken => panic!("future broken: promise dropped without a value"),
            State::Consumed => unreachable!("future consumed twice"),
        }
    }

    /// Dataflow continuation executed as a task on `spawner` once the value
    /// arrives (the `future.then(hpx::launch::async, ...)` shape).
    pub fn then<U, S, F>(self, spawner: &S, f: F) -> Future<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        S: Spawn + Clone + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (p, fut) = channel();
        let sp = spawner.clone();
        self.on_ready(move |v| sp.spawn_boxed(Box::new(move || p.set(f(v)))));
        fut
    }

    /// Continuation executed synchronously on the fulfilling thread. Use for
    /// cheap glue (unpacking a message, triggering another promise).
    pub fn then_inline<U, F>(self, f: F) -> Future<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (p, fut) = channel();
        self.on_ready(move |v| p.set(f(v)));
        fut
    }
}

/// Combine a set of futures into one producing all values in input order.
///
/// The result becomes ready when the last input does; an empty input yields
/// an immediately-ready empty vector.
pub fn when_all<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<Vec<T>> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = futures.len();
    let (p, fut) = channel();
    if n == 0 {
        p.set(Vec::new());
        return fut;
    }
    struct Gather<T> {
        slots: Mutex<Vec<Option<T>>>,
        remaining: AtomicUsize,
        promise: Mutex<Option<Promise<Vec<T>>>>,
    }
    let gather = Arc::new(Gather {
        slots: Mutex::new((0..n).map(|_| None).collect()),
        remaining: AtomicUsize::new(n),
        promise: Mutex::new(Some(p)),
    });
    for (i, f) in futures.into_iter().enumerate() {
        let g = gather.clone();
        f.on_ready(move |v| {
            g.slots.lock()[i] = Some(v);
            if g.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let values: Vec<T> = g
                    .slots
                    .lock()
                    .iter_mut()
                    .map(|s| s.take().expect("when_all slot unfilled"))
                    .collect();
                let p = g.promise.lock().take().expect("when_all promise taken");
                p.set(values);
            }
        });
    }
    fut
}

/// Resolve with the index and value of the *first* input future to become
/// ready (the `hpx::when_any` analogue). Later values are dropped.
///
/// # Panics
/// Panics on an empty input — there is nothing to wait for.
pub fn when_any<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<(usize, T)> {
    assert!(!futures.is_empty(), "when_any needs at least one future");
    let (p, fut) = channel();
    let winner = Arc::new(Mutex::new(Some(p)));
    for (i, f) in futures.into_iter().enumerate() {
        let w = winner.clone();
        f.on_ready(move |v| {
            if let Some(p) = w.lock().take() {
                p.set((i, v));
            }
        });
    }
    fut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::InlineSpawner;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_get() {
        let (p, f) = channel();
        p.set(7u32);
        assert!(f.is_ready());
        assert_eq!(f.get(), 7);
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = channel();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.set(42i64);
        });
        assert_eq!(f.get(), 42);
        t.join().unwrap();
    }

    #[test]
    fn try_take_and_is_ready() {
        let (p, f) = channel::<u8>();
        assert!(!f.is_ready());
        assert_eq!(f.try_take(), None);
        p.set(3);
        assert_eq!(f.try_take(), Some(3));
    }

    #[test]
    fn continuation_runs_on_set() {
        let (p, f) = channel::<u32>();
        let (p2, f2) = channel::<u32>();
        f.on_ready(move |v| p2.set(v * 2));
        p.set(21);
        assert_eq!(f2.get(), 42);
    }

    #[test]
    fn continuation_runs_immediately_if_ready() {
        let f = ready(5u32);
        let (p2, f2) = channel::<u32>();
        f.on_ready(move |v| p2.set(v + 1));
        assert_eq!(f2.get(), 6);
    }

    #[test]
    fn then_inline_chains() {
        let f = ready(10u32).then_inline(|v| v + 1).then_inline(|v| v * 2);
        assert_eq!(f.get(), 22);
    }

    #[test]
    fn then_runs_on_spawner() {
        let f = ready(2u32).then(&InlineSpawner, |v| v * 3);
        assert_eq!(f.get(), 6);
    }

    #[test]
    fn when_all_collects_in_order() {
        let (p1, f1) = channel::<u32>();
        let (p2, f2) = channel::<u32>();
        let (p3, f3) = channel::<u32>();
        let all = when_all(vec![f1, f2, f3]);
        p2.set(2);
        assert!(!all.is_ready());
        p3.set(3);
        p1.set(1);
        assert_eq!(all.get(), vec![1, 2, 3]);
    }

    #[test]
    fn when_all_empty_is_ready() {
        let all: Future<Vec<u8>> = when_all(vec![]);
        assert!(all.is_ready());
        assert!(all.get().is_empty());
    }

    #[test]
    fn when_any_returns_first_ready() {
        let (p1, f1) = channel::<u32>();
        let (p2, f2) = channel::<u32>();
        let any = when_any(vec![f1, f2]);
        p2.set(20);
        assert_eq!(any.get(), (1, 20));
        p1.set(10); // late value is silently dropped
    }

    #[test]
    fn when_any_with_already_ready_input() {
        let any = when_any(vec![ready(5u8)]);
        assert_eq!(any.get(), (0, 5));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn when_any_rejects_empty() {
        let _ = when_any(Vec::<Future<u8>>::new());
    }

    #[test]
    fn broken_promise_detected() {
        let (p, f) = channel::<u32>();
        drop(p);
        assert!(f.is_broken());
    }

    #[test]
    #[should_panic(expected = "future broken")]
    fn get_on_broken_panics() {
        let (p, f) = channel::<u32>();
        drop(p);
        f.get();
    }
}
