//! Hand-rolled binary wire format.
//!
//! Parcels between localities carry serialized payloads. The offline crate
//! allowlist has no serde *format* crate, so this module provides a small
//! explicit little-endian codec: the [`Wire`] trait plus implementations for
//! the primitives and containers the solver's messages are built from.
//! Everything round-trips exactly (floats bit-for-bit), and decoding is
//! length-checked so truncated messages surface as [`WireError`] rather than
//! panics.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failure: message too short or a malformed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the field required.
    Truncated { needed: usize, remaining: usize },
    /// An enum discriminant or flag byte had an invalid value.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete top-level decode.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::BadTag(t) => write!(f, "invalid discriminant byte {t}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated {
            needed: n,
            remaining: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Types that can be serialized to / deserialized from the wire format.
pub trait Wire: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value, advancing `buf` past it.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode from a complete message, rejecting trailing bytes.
    fn from_bytes(bytes: Bytes) -> Result<Self, WireError> {
        let mut b = bytes;
        let v = Self::decode(&mut b)?;
        if b.has_remaining() {
            return Err(WireError::TrailingBytes(b.remaining()));
        }
        Ok(v)
    }
}

macro_rules! impl_wire_int {
    ($($t:ty => $put:ident / $get:ident / $n:expr),* $(,)?) => {
        $(impl Wire for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, $n)?;
                Ok(buf.$get())
            }
        })*
    };
}

impl_wire_int! {
    u8 => put_u8 / get_u8 / 1,
    u16 => put_u16_le / get_u16_le / 2,
    u32 => put_u32_le / get_u32_le / 4,
    u64 => put_u64_le / get_u64_le / 8,
    i32 => put_i32_le / get_i32_le / 4,
    i64 => put_i64_le / get_i64_le / 8,
    f32 => put_f32_le / get_f32_le / 4,
    f64 => put_f64_le / get_f64_le / 8,
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(u64::decode(buf)? as usize)
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)? as usize;
        need(buf, len)?;
        let raw = buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)? as usize;
        // Guard absurd lengths before reserving (truncation would fail anyway,
        // but this avoids a huge allocation on corrupt input).
        if len > buf.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                remaining: buf.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
        ))
    }
}

/// Fast bulk encoding for `f64` fields — the dominant payload (ghost-zone
/// temperature values). Writes the length then raw little-endian words.
pub fn encode_f64_slice(values: &[f64], buf: &mut BytesMut) {
    (values.len() as u64).encode(buf);
    buf.reserve(values.len() * 8);
    for v in values {
        buf.put_f64_le(*v);
    }
}

/// Counterpart to [`encode_f64_slice`].
pub fn decode_f64_vec(buf: &mut Bytes) -> Result<Vec<f64>, WireError> {
    let len = u64::decode(buf)? as usize;
    need(buf, len.saturating_mul(8))?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_f64_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(123456789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(0.57721f32);
        roundtrip(-1.25e-7f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX / 2);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let bytes = f64::NAN.to_bytes();
        let back = f64::from_bytes(bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("nonlocal ♨"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, 2.5f64));
        roundtrip((1u8, String::from("x"), vec![true, false]));
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 12345u64.to_bytes();
        let short = bytes.slice(0..4);
        assert!(matches!(
            u64::from_bytes(short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        7u32.encode(&mut buf);
        buf.put_u8(0xFF);
        assert!(matches!(
            u32::from_bytes(buf.freeze()),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        assert_eq!(bool::from_bytes(buf.freeze()), Err(WireError::BadTag(7)));
    }

    #[test]
    fn corrupt_vec_length_is_safe() {
        let mut buf = BytesMut::new();
        (u64::MAX).encode(&mut buf); // absurd element count
        let res = Vec::<u8>::from_bytes(buf.freeze());
        assert!(matches!(res, Err(WireError::Truncated { .. })));
    }

    #[test]
    fn f64_slice_fast_path_roundtrips() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut buf = BytesMut::new();
        encode_f64_slice(&values, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_f64_vec(&mut bytes).unwrap();
        assert_eq!(back, values);
        assert!(!bytes.has_remaining());
    }
}
