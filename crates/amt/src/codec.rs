//! Hand-rolled binary wire format.
//!
//! Parcels between localities carry serialized payloads. The offline crate
//! allowlist has no serde *format* crate, so this module provides a small
//! explicit little-endian codec: the [`Wire`] trait plus implementations for
//! the primitives and containers the solver's messages are built from.
//! Everything round-trips exactly (floats bit-for-bit), and decoding is
//! length-checked so truncated messages surface as [`WireError`] rather than
//! panics.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failure: message too short or a malformed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the field required.
    Truncated { needed: usize, remaining: usize },
    /// An enum discriminant or flag byte had an invalid value.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete top-level decode.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::BadTag(t) => write!(f, "invalid discriminant byte {t}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated {
            needed: n,
            remaining: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Types that can be serialized to / deserialized from the wire format.
pub trait Wire: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value, advancing `buf` past it.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode from a complete message, rejecting trailing bytes.
    fn from_bytes(bytes: Bytes) -> Result<Self, WireError> {
        let mut b = bytes;
        let v = Self::decode(&mut b)?;
        if b.has_remaining() {
            return Err(WireError::TrailingBytes(b.remaining()));
        }
        Ok(v)
    }
}

macro_rules! impl_wire_int {
    ($($t:ty => $put:ident / $get:ident / $n:expr),* $(,)?) => {
        $(impl Wire for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, $n)?;
                Ok(buf.$get())
            }
        })*
    };
}

impl_wire_int! {
    u8 => put_u8 / get_u8 / 1,
    u16 => put_u16_le / get_u16_le / 2,
    u32 => put_u32_le / get_u32_le / 4,
    u64 => put_u64_le / get_u64_le / 8,
    i32 => put_i32_le / get_i32_le / 4,
    i64 => put_i64_le / get_i64_le / 8,
    f32 => put_f32_le / get_f32_le / 4,
    f64 => put_f64_le / get_f64_le / 8,
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(u64::decode(buf)? as usize)
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)? as usize;
        need(buf, len)?;
        let raw = buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)? as usize;
        // Guard absurd lengths before reserving (truncation would fail anyway,
        // but this avoids a huge allocation on corrupt input).
        if len > buf.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                remaining: buf.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
        ))
    }
}

/// Append `values` as raw little-endian words. On little-endian targets
/// this is one `memcpy` — `f64` has no padding bytes, so reinterpreting the
/// slice as bytes is sound and already produces the wire's LE words.
/// Big-endian targets take the per-element swap path. Either way the bytes
/// written are identical.
#[inline]
fn put_f64_slice_le(values: &[f64], buf: &mut BytesMut) {
    #[cfg(target_endian = "little")]
    {
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
        };
        buf.put_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for v in values {
        buf.put_f64_le(*v);
    }
}

/// Copy `dst.len()` little-endian words out of `buf` into `dst`. The
/// caller must have length-checked `buf` (see [`need`]). One `memcpy` on
/// little-endian targets, per-element swaps otherwise.
#[inline]
fn get_f64_slice_le(buf: &mut Bytes, dst: &mut [f64]) {
    #[cfg(target_endian = "little")]
    {
        let n = std::mem::size_of_val(dst);
        unsafe {
            std::ptr::copy_nonoverlapping(buf.chunk().as_ptr(), dst.as_mut_ptr().cast::<u8>(), n);
        }
        buf.advance(n);
    }
    #[cfg(not(target_endian = "little"))]
    for v in dst.iter_mut() {
        *v = buf.get_f64_le();
    }
}

/// Fast bulk encoding for `f64` fields — the dominant payload (ghost-zone
/// temperature values). Writes the length then raw little-endian words.
pub fn encode_f64_slice(values: &[f64], buf: &mut BytesMut) {
    (values.len() as u64).encode(buf);
    buf.reserve(values.len() * 8);
    put_f64_slice_le(values, buf);
}

/// Encode a logically contiguous `f64` run supplied as strided `rows`
/// (e.g. the rows of a tile rectangle) without materializing an
/// intermediate `Vec<f64>`. Wire-identical to [`encode_f64_slice`] over
/// the concatenation of `rows`; `total` must equal the summed row lengths
/// (debug-asserted) because the length prefix is written first.
pub fn encode_f64_rows<'a>(
    total: usize,
    rows: impl Iterator<Item = &'a [f64]>,
    buf: &mut BytesMut,
) {
    (total as u64).encode(buf);
    let mut written = 0usize;
    #[cfg(target_endian = "little")]
    {
        // One growth for the whole run, then raw row copies into the
        // already-sized tail — no per-row capacity checks.
        let start = buf.len();
        buf.resize(start + total * 8, 0);
        let dst = buf[start..].as_mut_ptr();
        for row in rows {
            debug_assert!(written + row.len() <= total);
            unsafe {
                std::ptr::copy_nonoverlapping(
                    row.as_ptr().cast::<u8>(),
                    dst.add(written * 8),
                    std::mem::size_of_val(row),
                );
            }
            written += row.len();
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        buf.reserve(total * 8);
        for row in rows {
            put_f64_slice_le(row, buf);
            written += row.len();
        }
    }
    debug_assert_eq!(written, total, "encode_f64_rows: rows disagree with total");
}

/// Counterpart to [`encode_f64_slice`].
pub fn decode_f64_vec(buf: &mut Bytes) -> Result<Vec<f64>, WireError> {
    let len = u64::decode(buf)? as usize;
    need(buf, len.saturating_mul(8))?;
    let mut out = vec![0.0f64; len];
    get_f64_slice_le(buf, &mut out);
    Ok(out)
}

/// Decode a length-prefixed `f64` run straight into the strided mutable
/// `rows` (e.g. a tile rectangle's rows), skipping the intermediate
/// `Vec<f64>` of [`decode_f64_vec`]. The payload length must match the
/// summed row lengths exactly: short payloads surface as
/// [`WireError::Truncated`], long ones as [`WireError::TrailingBytes`]
/// (mirroring `Tile::unpack`'s size check on the copying path).
pub fn decode_f64_rows<'a>(
    buf: &mut Bytes,
    rows: impl Iterator<Item = &'a mut [f64]>,
) -> Result<(), WireError> {
    let len = u64::decode(buf)? as usize;
    need(buf, len.saturating_mul(8))?;
    let mut taken = 0usize;
    #[cfg(target_endian = "little")]
    {
        // One cursor advance for the whole run: `need` has verified the
        // payload is contiguous in `chunk()`, so each row is a raw copy
        // from a running source offset.
        let src = buf.chunk().as_ptr();
        for row in rows {
            if taken + row.len() > len {
                return Err(WireError::Truncated {
                    needed: (taken + row.len()) * 8,
                    remaining: len * 8,
                });
            }
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.add(taken * 8),
                    row.as_mut_ptr().cast::<u8>(),
                    std::mem::size_of_val(row),
                );
            }
            taken += row.len();
        }
        buf.advance(taken * 8);
    }
    #[cfg(not(target_endian = "little"))]
    for row in rows {
        if taken + row.len() > len {
            return Err(WireError::Truncated {
                needed: (taken + row.len()) * 8,
                remaining: len * 8,
            });
        }
        get_f64_slice_le(buf, row);
        taken += row.len();
    }
    if taken != len {
        return Err(WireError::TrailingBytes((len - taken) * 8));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(123456789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(0.57721f32);
        roundtrip(-1.25e-7f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX / 2);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let bytes = f64::NAN.to_bytes();
        let back = f64::from_bytes(bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("nonlocal ♨"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, 2.5f64));
        roundtrip((1u8, String::from("x"), vec![true, false]));
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 12345u64.to_bytes();
        let short = bytes.slice(0..4);
        assert!(matches!(
            u64::from_bytes(short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        7u32.encode(&mut buf);
        buf.put_u8(0xFF);
        assert!(matches!(
            u32::from_bytes(buf.freeze()),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        assert_eq!(bool::from_bytes(buf.freeze()), Err(WireError::BadTag(7)));
    }

    #[test]
    fn corrupt_vec_length_is_safe() {
        let mut buf = BytesMut::new();
        (u64::MAX).encode(&mut buf); // absurd element count
        let res = Vec::<u8>::from_bytes(buf.freeze());
        assert!(matches!(res, Err(WireError::Truncated { .. })));
    }

    #[test]
    fn f64_rows_wire_identical_to_slice() {
        // The zero-copy strided encoder must produce byte-identical wire
        // output to the flat encoder over the concatenated rows.
        let flat: Vec<f64> = (0..24).map(|i| (i as f64) * 1.5 - 7.0).collect();
        let mut a = BytesMut::new();
        encode_f64_slice(&flat, &mut a);
        let mut b = BytesMut::new();
        encode_f64_rows(flat.len(), flat.chunks(8), &mut b);
        assert_eq!(&a[..], &b[..]);
        // and decode_f64_rows reads it back into strided destinations
        let mut bytes = b.freeze();
        let mut out = vec![0.0f64; 24];
        decode_f64_rows(&mut bytes, out.chunks_mut(6)).unwrap();
        assert_eq!(out, flat);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn f64_rows_length_mismatches_error() {
        let flat = [1.0f64, 2.0, 3.0, 4.0];
        let mut buf = BytesMut::new();
        encode_f64_slice(&flat, &mut buf);
        let payload = buf.freeze();
        // destination larger than the payload: truncated
        let mut dst = [0.0f64; 6];
        let mut b = payload.clone();
        assert!(matches!(
            decode_f64_rows(&mut b, dst.chunks_mut(3)),
            Err(WireError::Truncated { .. })
        ));
        // destination smaller than the payload: trailing bytes
        let mut small = [0.0f64; 2];
        let mut b = payload.clone();
        assert!(matches!(
            decode_f64_rows(&mut b, small.chunks_mut(2)),
            Err(WireError::TrailingBytes(16))
        ));
    }

    #[test]
    fn f64_slice_nan_and_negzero_bit_exact() {
        let values = [f64::NAN, -0.0, f64::NEG_INFINITY, 1.0e-308];
        let mut buf = BytesMut::new();
        encode_f64_slice(&values, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_f64_vec(&mut bytes).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f64_slice_fast_path_roundtrips() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut buf = BytesMut::new();
        encode_f64_slice(&values, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_f64_vec(&mut bytes).unwrap();
        assert_eq!(back, values);
        assert!(!bytes.has_remaining());
    }
}
