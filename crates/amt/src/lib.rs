//! # nlheat-amt — an asynchronous many-task runtime
//!
//! This crate is the HPX substitute for the nonlocal-solver reproduction: a
//! small asynchronous many-task (AMT) runtime providing the pieces the paper
//! relies on (§5 of Gadikar, Diehl & Jha 2021):
//!
//! * **Local control objects** — [`Promise`]/[`Future`] with blocking `get`,
//!   dataflow continuations ([`Future::then`]) and [`when_all`], mirroring
//!   `hpx::future` / `hpx::async`.
//! * **A work-stealing thread pool** — [`pool::ThreadPool`] with per-worker
//!   busy-time accounting (the raw data behind the paper's
//!   `hpx::performance_counters::busy_time`).
//! * **Performance counters** — [`counters::CounterRegistry`], a registry of
//!   named, resettable counters in the AGAS-style `/threads{locality#N}/...`
//!   naming scheme.
//! * **Localities and parcels** — simulated distributed compute nodes
//!   ([`locality::Locality`]) communicating exclusively through serialized
//!   [`parcel::Parcel`]s over an in-memory [`network::Fabric`] with an
//!   optional latency/bandwidth model.
//! * **AGAS** — a global ownership directory ([`agas::Agas`]) mapping
//!   distributed object ids (sub-domains) to their owning locality.
//!
//! The distributed pieces run in a single process: each locality owns its own
//! worker pool and inbox, and all inter-locality data flows through the
//! serialize → transport → rendezvous → deserialize pipeline, so the code
//! paths match a wire transport even though the wire is a channel.
//!
//! ```
//! use nlheat_amt::prelude::*;
//!
//! let pool = ThreadPool::new(2, "demo");
//! let a = async_call(&pool.handle(), || 1 + 2);
//! let b = async_call(&pool.handle(), || 4 + 5);
//! assert_eq!(a.get() + b.get(), 12);
//! ```

pub mod agas;
pub mod cluster;
pub mod codec;
pub mod collectives;
pub mod counters;
pub mod future;
pub mod locality;
pub mod network;
pub mod parcel;
pub mod pool;
pub mod rendezvous;
pub mod task;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::agas::Agas;
    pub use crate::cluster::{Cluster, ClusterBuilder, NodeSpec};
    pub use crate::codec::{Wire, WireError};
    pub use crate::counters::{Counter, CounterRegistry};
    pub use crate::future::{channel, ready, when_all, Future, Promise};
    pub use crate::locality::{Locality, LocalityId};
    pub use crate::network::NetStats;
    pub use crate::parcel::{tag, tag_class, Parcel, Tag};
    pub use crate::pool::{async_call, PoolHandle, ThreadPool};
    pub use crate::rendezvous::Rendezvous;
    pub use crate::task::{Spawn, Task};
    pub use nlheat_netmodel::{
        CommCost, ConstantBandwidthNet, InstantNet, LinkClass, LinkSpec, Msg, NetModel, NetSpec,
        SharedBandwidthNet, TopologyNet, TopologySpec,
    };
}

pub use prelude::*;
