//! Parcels: tagged, addressed messages between localities.
//!
//! A [`Parcel`] is the only way data moves between localities, mirroring
//! HPX's parcel transport. The 64-bit [`Tag`] both routes the message inside
//! the destination (via the class byte) and keys the rendezvous table for
//! point-to-point matching (step, sub-domain, patch).

use bytes::Bytes;

/// Identifier of a locality (simulated compute node) within a cluster.
pub type LocalityId = u32;

/// Message tag: `class (8 bits) | a (24 bits) | b (20 bits) | c (12 bits)`.
///
/// The solver uses `a` for the timestep, `b` for the destination sub-domain
/// and `c` for the halo-patch index; other protocols use the fields freely.
pub type Tag = u64;

const A_BITS: u32 = 24;
const B_BITS: u32 = 20;
const C_BITS: u32 = 12;

/// Maximum value of the `a` field (timestep).
pub const TAG_A_MAX: u64 = (1 << A_BITS) - 1;
/// Maximum value of the `b` field (sub-domain id).
pub const TAG_B_MAX: u64 = (1 << B_BITS) - 1;
/// Maximum value of the `c` field (patch index).
pub const TAG_C_MAX: u64 = (1 << C_BITS) - 1;

/// Build a tag from its four fields.
///
/// # Panics
/// Panics (debug assertions) if a field exceeds its bit budget.
pub fn tag(class: u8, a: u64, b: u64, c: u64) -> Tag {
    debug_assert!(a <= TAG_A_MAX, "tag field a={a} exceeds {TAG_A_MAX}");
    debug_assert!(b <= TAG_B_MAX, "tag field b={b} exceeds {TAG_B_MAX}");
    debug_assert!(c <= TAG_C_MAX, "tag field c={c} exceeds {TAG_C_MAX}");
    ((class as u64) << (A_BITS + B_BITS + C_BITS)) | (a << (B_BITS + C_BITS)) | (b << C_BITS) | c
}

/// Extract the class byte of a tag.
pub fn tag_class(t: Tag) -> u8 {
    (t >> (A_BITS + B_BITS + C_BITS)) as u8
}

/// Extract the `a` field (timestep).
pub fn tag_a(t: Tag) -> u64 {
    (t >> (B_BITS + C_BITS)) & TAG_A_MAX
}

/// Extract the `b` field (sub-domain id).
pub fn tag_b(t: Tag) -> u64 {
    (t >> C_BITS) & TAG_B_MAX
}

/// Extract the `c` field (patch index).
pub fn tag_c(t: Tag) -> u64 {
    t & TAG_C_MAX
}

/// An addressed message with an opaque serialized payload.
#[derive(Debug, Clone)]
pub struct Parcel {
    /// Sending locality.
    pub src: LocalityId,
    /// Destination locality.
    pub dst: LocalityId,
    /// Routing/matching tag.
    pub tag: Tag,
    /// Serialized payload.
    pub payload: Bytes,
}

impl Parcel {
    /// Construct a parcel.
    pub fn new(src: LocalityId, dst: LocalityId, tag: Tag, payload: Bytes) -> Self {
        Parcel {
            src,
            dst,
            tag,
            payload,
        }
    }

    /// Total wire size (payload plus a nominal fixed header), used by the
    /// network model to compute transfer time.
    pub fn wire_size(&self) -> usize {
        self.payload.len() + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_fields_roundtrip() {
        let t = tag(3, 12345, 678, 90);
        assert_eq!(tag_class(t), 3);
        assert_eq!(tag_a(t), 12345);
        assert_eq!(tag_b(t), 678);
        assert_eq!(tag_c(t), 90);
    }

    #[test]
    fn tag_fields_at_limits() {
        let t = tag(u8::MAX, TAG_A_MAX, TAG_B_MAX, TAG_C_MAX);
        assert_eq!(tag_class(t), u8::MAX);
        assert_eq!(tag_a(t), TAG_A_MAX);
        assert_eq!(tag_b(t), TAG_B_MAX);
        assert_eq!(tag_c(t), TAG_C_MAX);
    }

    #[test]
    fn distinct_fields_give_distinct_tags() {
        let a = tag(1, 5, 6, 7);
        let b = tag(1, 5, 7, 6);
        let c = tag(2, 5, 6, 7);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn wire_size_includes_header() {
        let p = Parcel::new(0, 1, 0, Bytes::from_static(&[0u8; 100]));
        assert_eq!(p.wire_size(), 124);
    }
}
