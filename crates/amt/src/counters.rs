//! Performance-counter registry.
//!
//! HPX exposes globally named performance counters registered in AGAS and
//! polled at run time; the load balancer of the paper reads
//! `hpx::performance_counters::busy_time` and *resets* it between balancing
//! iterations so every epoch measures the same time span (§7).
//!
//! [`CounterRegistry`] reproduces that contract: counters are addressed by
//! string names (we keep HPX's `/threads{locality#N/total}/time/busy`
//! convention), can be backed either by a raw atomic or by a *gauge* closure
//! reading live runtime state, and support baseline-resets so a read after
//! [`Counter::reset`] reports only the delta accumulated since.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

enum Source {
    /// A plain atomic owned by the counter.
    Raw(Arc<AtomicU64>),
    /// A closure sampling some live value (e.g. a pool's busy nanoseconds).
    Gauge(Arc<dyn Fn() -> u64 + Send + Sync>),
}

/// A named counter. Cloning shares the underlying state.
#[derive(Clone)]
pub struct Counter {
    source: Arc<Source>,
    baseline: Arc<AtomicU64>,
}

impl Counter {
    fn from_source(source: Source) -> Self {
        Counter {
            source: Arc::new(source),
            baseline: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A counter backed by its own atomic, starting at zero.
    pub fn raw() -> Self {
        Counter::from_source(Source::Raw(Arc::new(AtomicU64::new(0))))
    }

    /// A counter sampling `f` on every read.
    pub fn gauge(f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        Counter::from_source(Source::Gauge(Arc::new(f)))
    }

    fn absolute(&self) -> u64 {
        match &*self.source {
            Source::Raw(a) => a.load(Ordering::Relaxed),
            Source::Gauge(f) => f(),
        }
    }

    /// Current value relative to the last [`reset`](Counter::reset).
    pub fn read(&self) -> u64 {
        self.absolute()
            .saturating_sub(self.baseline.load(Ordering::Relaxed))
    }

    /// Add to a raw counter.
    ///
    /// # Panics
    /// Panics when called on a gauge counter.
    pub fn add(&self, delta: u64) {
        match &*self.source {
            Source::Raw(a) => {
                a.fetch_add(delta, Ordering::Relaxed);
            }
            Source::Gauge(_) => panic!("cannot add to a gauge counter"),
        }
    }

    /// Re-baseline so subsequent reads report only the delta from now on —
    /// the `reset_all(busy_time)` step at the end of a load-balancing
    /// iteration (Algorithm 1, line 35).
    pub fn reset(&self) {
        self.baseline.store(self.absolute(), Ordering::Relaxed);
    }
}

/// String-addressed counter registry shared across a cluster.
#[derive(Default)]
pub struct CounterRegistry {
    counters: RwLock<HashMap<String, Counter>>,
}

impl CounterRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a counter under `name` and return it.
    pub fn register(&self, name: impl Into<String>, counter: Counter) -> Counter {
        let name = name.into();
        self.counters.write().insert(name, counter.clone());
        counter
    }

    /// Look up a counter by exact name.
    pub fn get(&self, name: &str) -> Option<Counter> {
        self.counters.read().get(name).cloned()
    }

    /// Read a counter by name; `None` if unregistered.
    pub fn read(&self, name: &str) -> Option<u64> {
        self.get(name).map(|c| c.read())
    }

    /// Reset every counter whose name starts with `prefix` (HPX's
    /// `reset_all` over a counter family).
    pub fn reset_prefix(&self, prefix: &str) {
        for (name, c) in self.counters.read().iter() {
            if name.starts_with(prefix) {
                c.reset();
            }
        }
    }

    /// Snapshot of `(name, value)` pairs, sorted by name, for counters whose
    /// name starts with `prefix` (empty prefix = all).
    pub fn snapshot(&self, prefix: &str) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, c)| (n.clone(), c.read()))
            .collect();
        out.sort();
        out
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.read().len()
    }

    /// True if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The canonical busy-time counter name for a locality, matching HPX's
/// `/threads{locality#N/total}/time/busy`.
pub fn busy_time_counter_name(locality: u32) -> String {
    format!("/threads{{locality#{locality}/total}}/time/busy")
}

/// Successful work steals (injector + peer-deque batches) of a locality's
/// pool, in the same HPX-style naming scheme.
pub fn steals_counter_name(locality: u32) -> String {
    format!("/threads{{locality#{locality}/total}}/count/steals")
}

/// Full steal scans that found nothing (the thief's whiffs).
pub fn steal_fails_counter_name(locality: u32) -> String {
    format!("/threads{{locality#{locality}/total}}/count/steal-fails")
}

/// Times a worker parked on the sleep condvar.
pub fn parks_counter_name(locality: u32) -> String {
    format!("/threads{{locality#{locality}/total}}/count/parks")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_counter_add_and_read() {
        let c = Counter::raw();
        c.add(5);
        c.add(7);
        assert_eq!(c.read(), 12);
    }

    #[test]
    fn reset_rebaselines() {
        let c = Counter::raw();
        c.add(100);
        c.reset();
        assert_eq!(c.read(), 0);
        c.add(3);
        assert_eq!(c.read(), 3);
    }

    #[test]
    fn gauge_reads_live_value() {
        let v = Arc::new(AtomicU64::new(10));
        let v2 = v.clone();
        let c = Counter::gauge(move || v2.load(Ordering::Relaxed));
        assert_eq!(c.read(), 10);
        v.store(25, Ordering::Relaxed);
        assert_eq!(c.read(), 25);
        c.reset();
        assert_eq!(c.read(), 0);
        v.store(31, Ordering::Relaxed);
        assert_eq!(c.read(), 6);
    }

    #[test]
    #[should_panic(expected = "gauge")]
    fn add_to_gauge_panics() {
        let c = Counter::gauge(|| 0);
        c.add(1);
    }

    #[test]
    fn registry_register_get_reset_prefix() {
        let reg = CounterRegistry::new();
        let a = reg.register("/threads{locality#0/total}/time/busy", Counter::raw());
        let b = reg.register("/threads{locality#1/total}/time/busy", Counter::raw());
        reg.register("/net/bytes", Counter::raw());
        a.add(10);
        b.add(20);
        assert_eq!(reg.read("/threads{locality#0/total}/time/busy"), Some(10));
        reg.reset_prefix("/threads");
        assert_eq!(reg.read("/threads{locality#0/total}/time/busy"), Some(0));
        assert_eq!(reg.read("/threads{locality#1/total}/time/busy"), Some(0));
        assert_eq!(reg.snapshot("/threads").len(), 2);
        assert_eq!(reg.snapshot("").len(), 3);
    }

    #[test]
    fn busy_time_name_matches_hpx_convention() {
        assert_eq!(
            busy_time_counter_name(3),
            "/threads{locality#3/total}/time/busy"
        );
    }
}
