//! Task and spawner abstractions.

/// A unit of work scheduled onto a worker pool.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Anything that can accept tasks for asynchronous execution.
///
/// Implemented by [`crate::pool::PoolHandle`] (run on a work-stealing pool)
/// and [`InlineSpawner`] (run immediately on the calling thread, useful in
/// tests and for cheap continuations).
pub trait Spawn: Send + Sync {
    /// Schedule `task` for execution.
    fn spawn_boxed(&self, task: Task);

    /// Convenience wrapper accepting any closure.
    fn spawn<F: FnOnce() + Send + 'static>(&self, f: F)
    where
        Self: Sized,
    {
        self.spawn_boxed(Box::new(f));
    }
}

/// A [`Spawn`] implementation that runs tasks synchronously on the calling
/// thread. Continuations scheduled through it execute inside the completing
/// thread, exactly like an HPX `hpx::launch::sync` policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineSpawner;

impl Spawn for InlineSpawner {
    fn spawn_boxed(&self, task: Task) {
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn inline_spawner_runs_immediately() {
        let hit = Arc::new(AtomicBool::new(false));
        let h = hit.clone();
        InlineSpawner.spawn(move || h.store(true, Ordering::SeqCst));
        assert!(hit.load(Ordering::SeqCst));
    }
}
