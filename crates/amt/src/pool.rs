//! Work-stealing thread pool with per-worker busy-time accounting.
//!
//! This is the threading subsystem of the AMT runtime (Fig. 3 of the paper):
//! task submission onto a sharded injector, per-worker lock-free Chase–Lev
//! deques with rotating-victim batch stealing, and nanosecond busy-time
//! counters that back the `busy_time` performance counter used by the load
//! balancer (§7).
//!
//! Steal batches adapt per worker (after Fernandes et al., "Adaptive
//! Asynchronous Work-Stealing", arXiv 2401.04494): a successful steal
//! doubles the worker's batch bound, a whole scan coming up empty halves
//! it — so thieves grab aggressively while a straggler's queue is deep
//! and back off as the pool drains. Steal / failed-scan / park counts and
//! the live chunk bound are exported per worker for observability.

use crate::future::{channel, Future};
use crate::task::{Spawn, Task};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-worker steal telemetry (one cache line per worker).
#[derive(Default)]
struct StealStats {
    /// Successful steals (injector batches + peer-deque batches).
    steals: AtomicU64,
    /// Full find_task scans that found nothing anywhere.
    failed_scans: AtomicU64,
    /// Times the worker gave up and parked on the sleep condvar.
    parks: AtomicU64,
    /// The worker's current adaptive batch bound (a gauge, not a count).
    chunk: AtomicU64,
}

struct PoolInner {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    shutdown: AtomicBool,
    /// Tasks submitted but not yet finished.
    pending: AtomicUsize,
    busy_ns: Vec<CachePadded<AtomicU64>>,
    steal_stats: Vec<CachePadded<StealStats>>,
    executed: AtomicU64,
    panics: AtomicU64,
    first_panic: Mutex<Option<String>>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Workers currently parked (or about to park) on `sleep_cv` — lets
    /// the spawn path skip the lock + notify entirely while every worker
    /// is busy, which is the common case under load.
    sleepers: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size work-stealing pool. Dropping the pool drains queued tasks and
/// joins the workers.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

/// Cheap, cloneable submission handle (implements [`Spawn`]).
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Spin up `n_workers` worker threads named `<name>-w<i>`.
    pub fn new(n_workers: usize, name: &str) -> Self {
        assert!(n_workers > 0, "a pool needs at least one worker");
        let locals: Vec<Worker<Task>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        let inner = Arc::new(PoolInner {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            busy_ns: (0..n_workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            steal_stats: (0..n_workers)
                .map(|_| CachePadded::new(StealStats::default()))
                .collect(),
            executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            first_panic: Mutex::new(None),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-w{i}"))
                    .spawn(move || worker_loop(inner, local, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            inner,
            workers,
            started: Instant::now(),
        }
    }

    /// Submission handle for this pool.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: self.inner.clone(),
        }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.inner.busy_ns.len()
    }

    /// Submit a task.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.handle().spawn(f);
    }

    /// Block the calling thread (which must not be a pool worker) until every
    /// submitted task has finished.
    ///
    /// # Panics
    /// Re-raises the first panic observed in any task.
    pub fn wait_idle(&self) {
        let inner = &self.inner;
        let mut guard = inner.idle_lock.lock();
        while inner.pending.load(Ordering::Acquire) != 0 {
            inner.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
        }
        drop(guard);
        if inner.panics.load(Ordering::Acquire) != 0 {
            let msg = inner
                .first_panic
                .lock()
                .clone()
                .unwrap_or_else(|| "<unknown>".into());
            panic!("pool task panicked: {msg}");
        }
    }

    /// Total busy time (sum over workers) in nanoseconds since construction.
    pub fn busy_ns_total(&self) -> u64 {
        self.inner
            .busy_ns
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Busy time of a single worker in nanoseconds.
    pub fn busy_ns(&self, worker: usize) -> u64 {
        self.inner.busy_ns[worker].load(Ordering::Relaxed)
    }

    /// Number of completed tasks.
    pub fn tasks_executed(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Wall-clock time since pool construction.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Number of tasks that panicked.
    pub fn task_panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }

    /// Successful steals (injector + peer-deque batches) of one worker.
    pub fn steals(&self, worker: usize) -> u64 {
        self.inner.steal_stats[worker]
            .steals
            .load(Ordering::Relaxed)
    }

    /// Failed full scans (injector and every peer empty) of one worker.
    pub fn steal_fails(&self, worker: usize) -> u64 {
        self.inner.steal_stats[worker]
            .failed_scans
            .load(Ordering::Relaxed)
    }

    /// Times one worker parked on the sleep condvar.
    pub fn parks(&self, worker: usize) -> u64 {
        self.inner.steal_stats[worker].parks.load(Ordering::Relaxed)
    }

    /// One worker's current adaptive steal-batch bound.
    pub fn steal_chunk(&self, worker: usize) -> u64 {
        self.inner.steal_stats[worker].chunk.load(Ordering::Relaxed)
    }

    /// Successful steals summed over all workers.
    pub fn steals_total(&self) -> u64 {
        (0..self.n_workers()).map(|w| self.steals(w)).sum()
    }

    /// Failed full scans summed over all workers.
    pub fn steal_fails_total(&self) -> u64 {
        (0..self.n_workers()).map(|w| self.steal_fails(w)).sum()
    }

    /// Parks summed over all workers.
    pub fn parks_total(&self) -> u64 {
        (0..self.n_workers()).map(|w| self.parks(w)).sum()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Wake every sleeper so they observe the flag.
        let _g = self.inner.sleep_lock.lock();
        self.inner.sleep_cv.notify_all();
        drop(_g);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Spawn for PoolHandle {
    fn spawn_boxed(&self, task: Task) {
        self.inner.pending.fetch_add(1, Ordering::AcqRel);
        self.inner.injector.push(task);
        // Dekker-style handoff with the park path: the fence orders the
        // push before the sleeper check, pairing with the fence between a
        // worker's sleeper registration and its emptiness re-check, so
        // at least one side sees the other. A stale read here only delays
        // a wake by the 200us park timeout; skipping the lock + futex
        // wake while every worker is busy is the common fast path.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.inner.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.inner.sleep_lock.lock();
            self.inner.sleep_cv.notify_one();
        }
    }
}

impl PoolHandle {
    /// `hpx::async` analogue: run `f` on the pool, returning a future for the
    /// result.
    pub fn async_call<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (p, fut) = channel();
        self.spawn_boxed(Box::new(move || p.set(f())));
        fut
    }
}

/// Free-function form of [`PoolHandle::async_call`] usable with any spawner.
pub fn async_call<T, F, S>(spawner: &S, f: F) -> Future<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
    S: Spawn + ?Sized,
{
    let (p, fut) = channel();
    spawner.spawn_boxed(Box::new(move || p.set(f())));
    fut
}

/// Ceiling for a worker's adaptive steal-batch bound.
const MAX_STEAL_CHUNK: usize = 32;

/// Local pop, else a batch from the injector, else a batch from a peer's
/// deque (victims scanned in rotating order from `me + 1`, so thieves
/// spread instead of all mobbing worker 0). Batch transfers land the
/// extra tasks in `local`, where the next `local.pop()` — or a peer's
/// steal — picks them up.
///
/// `chunk` is the caller's adaptive batch bound (Fernandes et al.): a
/// successful steal doubles it, a completely dry scan halves it.
fn find_task(
    inner: &PoolInner,
    local: &Worker<Task>,
    me: usize,
    chunk: &mut usize,
) -> Option<Task> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    let stats = &inner.steal_stats[me];
    let on_success = |t: Task, chunk: &mut usize| {
        *chunk = (*chunk * 2).min(MAX_STEAL_CHUNK);
        stats.chunk.store(*chunk as u64, Ordering::Relaxed);
        stats.steals.fetch_add(1, Ordering::Relaxed);
        Some(t)
    };
    loop {
        match inner.injector.steal_batch_with_limit_and_pop(local, *chunk) {
            Steal::Success(t) => return on_success(t, chunk),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    let n = inner.stealers.len();
    for k in 1..n {
        let victim = (me + k) % n;
        loop {
            match inner.stealers[victim].steal_batch_with_limit_and_pop(local, *chunk) {
                Steal::Success(t) => return on_success(t, chunk),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    *chunk = (*chunk / 2).max(1);
    stats.chunk.store(*chunk as u64, Ordering::Relaxed);
    stats.failed_scans.fetch_add(1, Ordering::Relaxed);
    None
}

fn worker_loop(inner: Arc<PoolInner>, local: Worker<Task>, me: usize) {
    let mut chunk = 1usize;
    inner.steal_stats[me].chunk.store(1, Ordering::Relaxed);
    loop {
        match find_task(&inner, &local, me, &mut chunk) {
            Some(task) => {
                let t0 = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                let dt = t0.elapsed().as_nanos() as u64;
                inner.busy_ns[me].fetch_add(dt, Ordering::Relaxed);
                inner.executed.fetch_add(1, Ordering::Relaxed);
                if let Err(payload) = result {
                    inner.panics.fetch_add(1, Ordering::AcqRel);
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    let mut slot = inner.first_panic.lock();
                    slot.get_or_insert(msg);
                }
                if inner.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = inner.idle_lock.lock();
                    inner.idle_cv.notify_all();
                }
            }
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let mut g = inner.sleep_lock.lock();
                inner.sleepers.fetch_add(1, Ordering::Relaxed);
                std::sync::atomic::fence(Ordering::SeqCst);
                // Re-check under the lock so a spawn cannot slip between the
                // failed steal and the wait (bounded staleness: short timeout).
                if inner.injector.is_empty() {
                    inner.steal_stats[me].parks.fetch_add(1, Ordering::Relaxed);
                    inner.sleep_cv.wait_for(&mut g, Duration::from_micros(200));
                }
                inner.sleepers.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::when_all;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(3, "t");
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.tasks_executed(), 100);
    }

    #[test]
    fn async_call_returns_value() {
        let pool = ThreadPool::new(2, "t");
        let f = pool.handle().async_call(|| 6 * 7);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn futures_compose_across_pool() {
        let pool = ThreadPool::new(2, "t");
        let h = pool.handle();
        let futs: Vec<_> = (0..16u64).map(|i| h.async_call(move || i * i)).collect();
        let sum: u64 = when_all(futs).get().into_iter().sum();
        assert_eq!(sum, (0..16u64).map(|i| i * i).sum());
    }

    #[test]
    fn busy_time_accumulates() {
        let pool = ThreadPool::new(1, "t");
        pool.spawn(|| {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(5) {
                std::hint::spin_loop();
            }
        });
        pool.wait_idle();
        assert!(pool.busy_ns_total() >= 4_000_000);
    }

    #[test]
    fn wait_idle_with_no_tasks_returns() {
        let pool = ThreadPool::new(1, "t");
        pool.wait_idle();
    }

    #[test]
    #[should_panic(expected = "pool task panicked")]
    fn task_panic_is_reported() {
        let pool = ThreadPool::new(1, "t");
        pool.spawn(|| panic!("boom"));
        pool.wait_idle();
    }

    #[test]
    fn steal_counters_observe_activity() {
        let pool = ThreadPool::new(4, "t");
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..512 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 512);
        // Every task enters through the injector, so the workers must have
        // recorded injector-batch steals.
        assert!(pool.steals_total() >= 1);
        // The adaptive chunk gauge is live and stays within its bounds.
        for w in 0..pool.n_workers() {
            assert!((1..=MAX_STEAL_CHUNK as u64).contains(&pool.steal_chunk(w)));
        }
        // Failure/park telemetry is wired (idle workers may or may not have
        // whiffed yet — just exercise the getters).
        let _ = pool.steal_fails_total();
        let _ = pool.parks_total();
    }

    #[test]
    fn nested_spawn_from_task() {
        let pool = ThreadPool::new(2, "t");
        let h = pool.handle();
        let counter = Arc::new(AtomicU32::new(0));
        let c = counter.clone();
        let h2 = h.clone();
        h.spawn(move || {
            for _ in 0..10 {
                let c = c.clone();
                h2.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
