//! Work-stealing thread pool with per-worker busy-time accounting.
//!
//! This is the threading subsystem of the AMT runtime (Fig. 3 of the paper):
//! wait-free task submission onto a global injector, per-worker LIFO deques
//! with random-victim stealing, and nanosecond busy-time counters that back
//! the `busy_time` performance counter used by the load balancer (§7).

use crate::future::{channel, Future};
use crate::task::{Spawn, Task};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct PoolInner {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    shutdown: AtomicBool,
    /// Tasks submitted but not yet finished.
    pending: AtomicUsize,
    busy_ns: Vec<CachePadded<AtomicU64>>,
    executed: AtomicU64,
    panics: AtomicU64,
    first_panic: Mutex<Option<String>>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size work-stealing pool. Dropping the pool drains queued tasks and
/// joins the workers.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

/// Cheap, cloneable submission handle (implements [`Spawn`]).
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Spin up `n_workers` worker threads named `<name>-w<i>`.
    pub fn new(n_workers: usize, name: &str) -> Self {
        assert!(n_workers > 0, "a pool needs at least one worker");
        let locals: Vec<Worker<Task>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        let inner = Arc::new(PoolInner {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            busy_ns: (0..n_workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            first_panic: Mutex::new(None),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-w{i}"))
                    .spawn(move || worker_loop(inner, local, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            inner,
            workers,
            started: Instant::now(),
        }
    }

    /// Submission handle for this pool.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: self.inner.clone(),
        }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.inner.busy_ns.len()
    }

    /// Submit a task.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.handle().spawn(f);
    }

    /// Block the calling thread (which must not be a pool worker) until every
    /// submitted task has finished.
    ///
    /// # Panics
    /// Re-raises the first panic observed in any task.
    pub fn wait_idle(&self) {
        let inner = &self.inner;
        let mut guard = inner.idle_lock.lock();
        while inner.pending.load(Ordering::Acquire) != 0 {
            inner.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
        }
        drop(guard);
        if inner.panics.load(Ordering::Acquire) != 0 {
            let msg = inner
                .first_panic
                .lock()
                .clone()
                .unwrap_or_else(|| "<unknown>".into());
            panic!("pool task panicked: {msg}");
        }
    }

    /// Total busy time (sum over workers) in nanoseconds since construction.
    pub fn busy_ns_total(&self) -> u64 {
        self.inner
            .busy_ns
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Busy time of a single worker in nanoseconds.
    pub fn busy_ns(&self, worker: usize) -> u64 {
        self.inner.busy_ns[worker].load(Ordering::Relaxed)
    }

    /// Number of completed tasks.
    pub fn tasks_executed(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Wall-clock time since pool construction.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Number of tasks that panicked.
    pub fn task_panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Wake every sleeper so they observe the flag.
        let _g = self.inner.sleep_lock.lock();
        self.inner.sleep_cv.notify_all();
        drop(_g);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Spawn for PoolHandle {
    fn spawn_boxed(&self, task: Task) {
        self.inner.pending.fetch_add(1, Ordering::AcqRel);
        self.inner.injector.push(task);
        let _g = self.inner.sleep_lock.lock();
        self.inner.sleep_cv.notify_one();
    }
}

impl PoolHandle {
    /// `hpx::async` analogue: run `f` on the pool, returning a future for the
    /// result.
    pub fn async_call<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (p, fut) = channel();
        self.spawn_boxed(Box::new(move || p.set(f())));
        fut
    }
}

/// Free-function form of [`PoolHandle::async_call`] usable with any spawner.
pub fn async_call<T, F, S>(spawner: &S, f: F) -> Future<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
    S: Spawn + ?Sized,
{
    let (p, fut) = channel();
    spawner.spawn_boxed(Box::new(move || p.set(f())));
    fut
}

fn find_task(inner: &PoolInner, local: &Worker<Task>, me: usize) -> Option<Task> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match inner.injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for (i, stealer) in inner.stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn worker_loop(inner: Arc<PoolInner>, local: Worker<Task>, me: usize) {
    loop {
        match find_task(&inner, &local, me) {
            Some(task) => {
                let t0 = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                let dt = t0.elapsed().as_nanos() as u64;
                inner.busy_ns[me].fetch_add(dt, Ordering::Relaxed);
                inner.executed.fetch_add(1, Ordering::Relaxed);
                if let Err(payload) = result {
                    inner.panics.fetch_add(1, Ordering::AcqRel);
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    let mut slot = inner.first_panic.lock();
                    slot.get_or_insert(msg);
                }
                if inner.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = inner.idle_lock.lock();
                    inner.idle_cv.notify_all();
                }
            }
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let mut g = inner.sleep_lock.lock();
                // Re-check under the lock so a spawn cannot slip between the
                // failed steal and the wait (bounded staleness: short timeout).
                if inner.injector.is_empty() {
                    inner.sleep_cv.wait_for(&mut g, Duration::from_micros(200));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::when_all;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(3, "t");
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.tasks_executed(), 100);
    }

    #[test]
    fn async_call_returns_value() {
        let pool = ThreadPool::new(2, "t");
        let f = pool.handle().async_call(|| 6 * 7);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn futures_compose_across_pool() {
        let pool = ThreadPool::new(2, "t");
        let h = pool.handle();
        let futs: Vec<_> = (0..16u64).map(|i| h.async_call(move || i * i)).collect();
        let sum: u64 = when_all(futs).get().into_iter().sum();
        assert_eq!(sum, (0..16u64).map(|i| i * i).sum());
    }

    #[test]
    fn busy_time_accumulates() {
        let pool = ThreadPool::new(1, "t");
        pool.spawn(|| {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(5) {
                std::hint::spin_loop();
            }
        });
        pool.wait_idle();
        assert!(pool.busy_ns_total() >= 4_000_000);
    }

    #[test]
    fn wait_idle_with_no_tasks_returns() {
        let pool = ThreadPool::new(1, "t");
        pool.wait_idle();
    }

    #[test]
    #[should_panic(expected = "pool task panicked")]
    fn task_panic_is_reported() {
        let pool = ThreadPool::new(1, "t");
        pool.spawn(|| panic!("boom"));
        pool.wait_idle();
    }

    #[test]
    fn nested_spawn_from_task() {
        let pool = ThreadPool::new(2, "t");
        let h = pool.handle();
        let counter = Arc::new(AtomicU32::new(0));
        let c = counter.clone();
        let h2 = h.clone();
        h.spawn(move || {
            for _ in 0..10 {
                let c = c.clone();
                h2.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
