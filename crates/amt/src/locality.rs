//! Localities: simulated distributed compute nodes.
//!
//! A [`Locality`] bundles what one node of the paper's cluster has: a worker
//! pool for asynchronous tasks, a speed factor (for reproducing heterogeneous
//! compute capacity, §7), a parcel inbox with class-based dispatch, a
//! rendezvous table for point-to-point message matching, and its busy-time
//! performance counter.

pub use crate::parcel::LocalityId;

use crate::counters::{
    busy_time_counter_name, parks_counter_name, steal_fails_counter_name, steals_counter_name,
    Counter, CounterRegistry,
};
use crate::future::Future;
use crate::network::FabricHandle;
use crate::parcel::{tag_class, Parcel, Tag};
use crate::pool::{PoolHandle, ThreadPool};
use crate::rendezvous::Rendezvous;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

type Handler = Box<dyn Fn(Parcel) + Send + Sync + 'static>;

/// Class-byte → handler dispatch table for a locality's inbox.
#[derive(Default)]
pub struct HandlerTable {
    map: RwLock<HashMap<u8, Handler>>,
}

impl HandlerTable {
    fn dispatch(&self, parcel: Parcel, rendezvous: &Rendezvous) {
        let class = tag_class(parcel.tag);
        let map = self.map.read();
        if let Some(h) = map.get(&class) {
            h(parcel);
        } else {
            rendezvous.deliver(parcel.tag, parcel.payload);
        }
    }
}

/// One simulated compute node.
pub struct Locality {
    id: LocalityId,
    pool: Arc<ThreadPool>,
    speed: f64,
    rendezvous: Arc<Rendezvous>,
    handlers: Arc<HandlerTable>,
    fabric: FabricHandle,
    registry: Arc<CounterRegistry>,
    busy_counter: Counter,
}

impl Locality {
    /// Assembled by [`crate::cluster::ClusterBuilder`]; not constructed
    /// directly by user code.
    pub(crate) fn new(
        id: LocalityId,
        workers: usize,
        speed: f64,
        fabric: FabricHandle,
        registry: Arc<CounterRegistry>,
    ) -> Arc<Self> {
        assert!(speed > 0.0, "locality speed must be positive");
        let pool = Arc::new(ThreadPool::new(workers, &format!("loc{id}")));
        let pool_for_gauge = pool.clone();
        let busy_counter = registry.register(
            busy_time_counter_name(id),
            Counter::gauge(move || pool_for_gauge.busy_ns_total()),
        );
        let p = pool.clone();
        registry.register(
            steals_counter_name(id),
            Counter::gauge(move || p.steals_total()),
        );
        let p = pool.clone();
        registry.register(
            steal_fails_counter_name(id),
            Counter::gauge(move || p.steal_fails_total()),
        );
        let p = pool.clone();
        registry.register(
            parks_counter_name(id),
            Counter::gauge(move || p.parks_total()),
        );
        Arc::new(Locality {
            id,
            pool,
            speed,
            rendezvous: Arc::new(Rendezvous::new()),
            handlers: Arc::new(HandlerTable::default()),
            fabric,
            registry,
            busy_counter,
        })
    }

    /// This locality's id.
    pub fn id(&self) -> LocalityId {
        self.id
    }

    /// Worker threads in this locality's pool.
    pub fn n_workers(&self) -> usize {
        self.pool.n_workers()
    }

    /// Relative compute speed (1.0 = nominal). Slower nodes repeat kernel
    /// work [`work_repeats`](Self::work_repeats) times so their busy time
    /// genuinely grows, which is what the load balancer observes.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of times a kernel should repeat its work to emulate this
    /// locality's speed (≥ 1; 1 for nominal speed).
    pub fn work_repeats(&self) -> u32 {
        (1.0 / self.speed).round().max(1.0) as u32
    }

    /// The locality's worker pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Submission handle onto the pool.
    pub fn spawner(&self) -> PoolHandle {
        self.pool.handle()
    }

    /// `hpx::async` on this locality.
    pub fn async_call<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.pool.handle().async_call(f)
    }

    /// Block until all tasks submitted to this locality finished.
    pub fn wait_idle(&self) {
        self.pool.wait_idle();
    }

    /// Send a tagged payload to `dst` (may be `self.id()`).
    pub fn send(&self, dst: LocalityId, tag: Tag, payload: Bytes) {
        self.fabric.send(Parcel::new(self.id, dst, tag, payload));
    }

    /// Future for the payload that will arrive under `tag`.
    pub fn expect(&self, tag: Tag) -> Future<Bytes> {
        self.rendezvous.expect(tag)
    }

    /// Register a handler for every inbound parcel whose tag class is
    /// `class`; untagged classes fall through to the rendezvous table.
    pub fn register_handler(&self, class: u8, handler: impl Fn(Parcel) + Send + Sync + 'static) {
        self.handlers.map.write().insert(class, Box::new(handler));
    }

    /// Busy time accumulated by this locality's workers (ns), relative to the
    /// last counter reset — the paper's `busy_time` performance counter.
    pub fn busy_time_ns(&self) -> u64 {
        self.busy_counter.read()
    }

    /// The underlying busy-time counter (shared with the registry).
    pub fn busy_counter(&self) -> Counter {
        self.busy_counter.clone()
    }

    /// Cluster-wide counter registry.
    pub fn registry(&self) -> &Arc<CounterRegistry> {
        &self.registry
    }

    /// The rendezvous table (exposed for diagnostics/tests).
    pub fn rendezvous(&self) -> &Arc<Rendezvous> {
        &self.rendezvous
    }

    /// Inbox pump: dispatch parcels until the fabric closes. Run on a
    /// dedicated thread by the cluster.
    pub(crate) fn pump(
        rx: Receiver<Parcel>,
        rendezvous: Arc<Rendezvous>,
        handlers: Arc<HandlerTable>,
    ) {
        while let Ok(parcel) = rx.recv() {
            handlers.dispatch(parcel, &rendezvous);
        }
    }

    pub(crate) fn pump_parts(&self) -> (Arc<Rendezvous>, Arc<HandlerTable>) {
        (self.rendezvous.clone(), self.handlers.clone())
    }
}

#[cfg(test)]
mod tests {

    #[test]
    fn work_repeats_from_speed() {
        // Construction of Locality requires a fabric; test the arithmetic via
        // a tiny cluster instead.
        let cluster = crate::cluster::ClusterBuilder::new()
            .node(1, 1.0)
            .node(1, 0.5)
            .node(1, 0.25)
            .build();
        assert_eq!(cluster.locality(0).work_repeats(), 1);
        assert_eq!(cluster.locality(1).work_repeats(), 2);
        assert_eq!(cluster.locality(2).work_repeats(), 4);
    }
}
