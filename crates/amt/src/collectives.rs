//! Cluster-wide collective operations built on parcels.
//!
//! HPX ships collectives (`hpx::collectives::{broadcast, reduce, barrier}`)
//! on top of its parcel transport; the load-balancing epoch of the solver
//! is exactly a gather → plan → broadcast round. This module provides the
//! same three primitives for localities, using a dedicated tag class and an
//! epoch counter so successive collectives never collide.
//!
//! All collectives are **symmetric calls**: every locality of the cluster
//! must call the same operation with the same epoch, like an MPI
//! communicator-wide call. Root is always locality 0.

use crate::codec::{Wire, WireError};
use crate::future::Future;
use crate::locality::Locality;
use crate::parcel::tag;
use bytes::Bytes;

/// Tag class reserved for collective traffic (solver classes are 1–4).
pub const CLASS_COLLECTIVE: u8 = 0xC0;

/// Sub-operations within the collective class (encoded in the tag's `c`
/// field so gather/broadcast phases of the same epoch stay distinct).
const OP_GATHER: u64 = 1;
const OP_BCAST: u64 = 2;
const OP_BARRIER_UP: u64 = 3;
const OP_BARRIER_DOWN: u64 = 4;

fn coll_tag(epoch: u64, node: u64, op: u64) -> u64 {
    tag(CLASS_COLLECTIVE, epoch, node, op)
}

/// Gather every locality's `value` on locality 0.
///
/// Returns `Some(values)` (indexed by locality id) on locality 0, `None`
/// elsewhere. `n` is the cluster size.
pub fn gather<T: Wire>(
    loc: &Locality,
    n: u32,
    epoch: u64,
    value: &T,
) -> Result<Option<Vec<T>>, WireError> {
    let me = loc.id();
    loc.send(0, coll_tag(epoch, me as u64, OP_GATHER), value.to_bytes());
    if me != 0 {
        return Ok(None);
    }
    let futures: Vec<Future<Bytes>> = (0..n)
        .map(|node| loc.expect(coll_tag(epoch, node as u64, OP_GATHER)))
        .collect();
    let mut out = Vec::with_capacity(n as usize);
    for fut in futures {
        out.push(T::from_bytes(fut.get())?);
    }
    Ok(Some(out))
}

/// Broadcast `value` (significant on locality 0 only) to every locality;
/// returns the received value everywhere.
pub fn broadcast<T: Wire>(
    loc: &Locality,
    n: u32,
    epoch: u64,
    value: Option<&T>,
) -> Result<T, WireError> {
    let me = loc.id();
    if me == 0 {
        let payload = value
            .expect("root must supply the broadcast value")
            .to_bytes();
        for node in 0..n {
            loc.send(
                node,
                coll_tag(epoch, node as u64, OP_BCAST),
                payload.clone(),
            );
        }
    }
    let fut = loc.expect(coll_tag(epoch, me as u64, OP_BCAST));
    T::from_bytes(fut.get())
}

/// Reduce every locality's `value` with `op` on locality 0, then broadcast
/// the result back to everyone (an allreduce).
pub fn all_reduce<T: Wire + Clone>(
    loc: &Locality,
    n: u32,
    epoch: u64,
    value: &T,
    op: impl Fn(T, T) -> T,
) -> Result<T, WireError> {
    let gathered = gather(loc, n, epoch, value)?;
    let reduced = gathered.map(|values| {
        let mut it = values.into_iter();
        let first = it.next().expect("cluster has at least one locality");
        it.fold(first, &op)
    });
    broadcast(loc, n, epoch, reduced.as_ref())
}

/// Cluster-wide barrier: returns only after every locality has entered.
pub fn barrier(loc: &Locality, n: u32, epoch: u64) {
    let me = loc.id();
    // up phase: everyone reports to the root
    loc.send(0, coll_tag(epoch, me as u64, OP_BARRIER_UP), Bytes::new());
    if me == 0 {
        let futures: Vec<Future<Bytes>> = (0..n)
            .map(|node| loc.expect(coll_tag(epoch, node as u64, OP_BARRIER_UP)))
            .collect();
        for fut in futures {
            fut.get();
        }
        // down phase: release everyone
        for node in 0..n {
            loc.send(
                node,
                coll_tag(epoch, node as u64, OP_BARRIER_DOWN),
                Bytes::new(),
            );
        }
    }
    loc.expect(coll_tag(epoch, me as u64, OP_BARRIER_DOWN))
        .get();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn gather_collects_all_values() {
        let cluster = ClusterBuilder::new().uniform(4, 1).build();
        let n = cluster.len() as u32;
        let results = cluster.run(|loc| {
            let v = (loc.id() as u64) * 10;
            gather(&loc, n, 0, &v).unwrap()
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let cluster = ClusterBuilder::new().uniform(3, 1).build();
        let n = cluster.len() as u32;
        let results = cluster.run(|loc| {
            let value = (loc.id() == 0).then_some(42u64);
            broadcast(&loc, n, 0, value.as_ref()).unwrap()
        });
        assert_eq!(results, vec![42, 42, 42]);
    }

    #[test]
    fn all_reduce_sums() {
        let cluster = ClusterBuilder::new().uniform(4, 1).build();
        let n = cluster.len() as u32;
        let results = cluster.run(|loc| {
            let v = loc.id() as u64 + 1; // 1..=4
            all_reduce(&loc, n, 0, &v, |a, b| a + b).unwrap()
        });
        assert_eq!(results, vec![10, 10, 10, 10]);
    }

    #[test]
    fn successive_epochs_do_not_collide() {
        let cluster = ClusterBuilder::new().uniform(2, 1).build();
        let n = cluster.len() as u32;
        let results = cluster.run(|loc| {
            let mut out = Vec::new();
            for epoch in 0..5u64 {
                let v = epoch * 100 + loc.id() as u64;
                out.push(all_reduce(&loc, n, epoch, &v, u64::max).unwrap());
            }
            out
        });
        for r in &results {
            assert_eq!(r, &vec![1, 101, 201, 301, 401]);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        // After the barrier, every locality must observe every other
        // locality's pre-barrier increment.
        let cluster = ClusterBuilder::new().uniform(4, 1).build();
        let n = cluster.len() as u32;
        let counter = Arc::new(AtomicU32::new(0));
        let c = counter.clone();
        let observed = cluster.run(move |loc| {
            c.fetch_add(1, Ordering::SeqCst);
            barrier(&loc, n, 7);
            c.load(Ordering::SeqCst)
        });
        assert_eq!(observed, vec![4, 4, 4, 4]);
    }

    #[test]
    fn single_locality_collectives_are_trivial() {
        let cluster = ClusterBuilder::new().uniform(1, 1).build();
        let results = cluster.run(|loc| {
            barrier(&loc, 1, 0);
            all_reduce(&loc, 1, 1, &5u64, |a, b| a + b).unwrap()
        });
        assert_eq!(results, vec![5]);
    }
}
