//! Microbenchmarks of the hot paths: the nonlocal stencil kernel, halo
//! pack/unpack, the partitioner and one Algorithm-1 planning round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nlheat_core::balance::plan_rebalance;
use nlheat_core::ownership::Ownership;
use nlheat_mesh::{Grid, Rect, SdGrid, Tile};
use nlheat_model::{zero_source, Influence, NonlocalKernel};
use nlheat_partition::part_mesh_dual;

fn kernel_bench(c: &mut Criterion) {
    // One paper-scale SD: 50x50 DPs, eps = 8h on a 400x400 mesh.
    let grid = Grid::square(400, 8.0);
    let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
    let mut curr = Tile::new(50, grid.halo);
    for (i, (x, y)) in curr.interior_rect().cells().enumerate() {
        curr.set(x, y, (i % 13) as f64 * 0.1);
    }
    let mut next = Tile::new(50, grid.halo);
    let offsets = kernel.storage_offsets(curr.stride());
    let region = curr.interior_rect();
    let dt = kernel.stable_dt(0.5);
    let src = zero_source();

    let mut g = c.benchmark_group("kernel");
    g.bench_function("apply_sd_50x50_eps8h", |b| {
        b.iter(|| {
            kernel.apply_region(
                black_box(&curr),
                &mut next,
                &region,
                &offsets,
                (0, 0),
                0.0,
                dt,
                &src,
                1,
            );
        })
    });
    g.finish();
}

fn halo_bench(c: &mut Criterion) {
    let mut tile = Tile::new(50, 8);
    tile.fill_rect(&Rect::new(0, 0, 50, 50), 1.5);
    let edge = Rect::new(0, 0, 8, 50); // a side patch at eps = 8h
    let packed = tile.pack(&edge);
    let halo_rect = Rect::new(-8, 0, 8, 50);

    let mut g = c.benchmark_group("halo");
    g.bench_function("pack_8x50", |b| b.iter(|| black_box(tile.pack(&edge))));
    g.bench_function("unpack_8x50", |b| {
        b.iter(|| tile.unpack(&halo_rect, black_box(&packed)))
    });
    g.finish();
}

fn partition_bench(c: &mut Criterion) {
    let sds = SdGrid::new(16, 16, 50); // the Fig. 13 coarse mesh
    let mut g = c.benchmark_group("partition");
    g.sample_size(20);
    g.bench_function("part_mesh_dual_256sd_8way", |b| {
        b.iter(|| black_box(part_mesh_dual(&sds, 8, 1)))
    });
    g.finish();
}

fn balance_bench(c: &mut Criterion) {
    let sds = SdGrid::new(16, 16, 50);
    let parts = part_mesh_dual(&sds, 8, 1);
    let own = Ownership::from_partition(sds, &parts);
    // skew busy times so the plan actually moves SDs
    let busy: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.3).collect();
    let mut g = c.benchmark_group("balance");
    g.sample_size(20);
    g.bench_function("plan_rebalance_256sd_8nodes", |b| {
        b.iter(|| black_box(plan_rebalance(&own, &busy)))
    });
    g.finish();
}

criterion_group!(
    benches,
    kernel_bench,
    halo_bench,
    partition_bench,
    balance_bench
);
criterion_main!(benches);
