//! The hot-path regression suite: sim event-core throughput, halo codec
//! pack/unpack, the nonlocal kernel, and end-to-end quick scenarios on both
//! substrates.
//!
//! Run `cargo bench -p nlheat-bench --bench hotpath` (add `-- --quick` for
//! the CI smoke budget). With `NLHEAT_BENCH_JSON=<path>` the criterion shim
//! writes machine-readable results that `bench_gate` diffs against the
//! committed `BENCH_hotpath.json` snapshot — a regression beyond the
//! tolerance band fails the build.
//!
//! Workload shapes are identical in quick and full mode (only the
//! measurement budget shrinks), so quick-mode numbers are comparable with
//! the snapshot.

use bytes::BytesMut;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nlheat_core::balance::{compute_metrics, LbNetwork, LbSpec};
use nlheat_core::scenario::sweep::{Axis, ScenarioSweep};
use nlheat_core::scenario::{modeled_busy, work_at, ClusterSpec, PartitionSpec, Scenario};
use nlheat_core::scenarios;
use nlheat_core::Ownership;
use nlheat_mesh::{Grid, Rect, Tile};
use nlheat_model::{zero_source, Influence, NonlocalKernel};
use nlheat_sim::engine::{simulate, SimConfig, VirtualNode};
use nlheat_sim::scenario::{RunSim, SimSubstrate};
use nlheat_sim::LbSchedule;
use std::sync::Once;

fn init() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("NLHEAT_BENCH_QUICK").is_some();
        if quick && std::env::var_os("NLHEAT_BENCH_TARGET_MS").is_none() {
            // Same workloads, smaller measurement budget: numbers stay
            // comparable with full runs, the suite finishes in seconds.
            std::env::set_var("NLHEAT_BENCH_TARGET_MS", "80");
        }
    });
}

/// A heterogeneous 4-node cluster (one 2x-fast node) so the balancer
/// actually plans and realizes migrations inside the event loop.
fn het4() -> Vec<VirtualNode> {
    vec![
        VirtualNode {
            cores: 1,
            speed: 2.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
    ]
}

fn event_core_bench(c: &mut Criterion) {
    init();
    let mut g = c.benchmark_group("event_core");
    // 256 SDs, 12 steps, LB every 4 — arrivals, per-node scheduling and
    // realized migration epochs all on the measured path.
    let mut lb_cfg = SimConfig::paper(400, 25, 12, het4());
    lb_cfg.lb = Some(LbSchedule::every(4));
    g.bench_function("sim_lb_256sd_4n_12st", |b| {
        b.iter(|| black_box(simulate(&lb_cfg)))
    });
    // 1024 SDs over 8 nodes without LB: pure ghost-arrival + scheduling
    // throughput at 4x the SD count.
    let nolb_cfg = SimConfig::paper(
        800,
        25,
        6,
        (0..8).map(|_| VirtualNode::with_cores(2)).collect(),
    );
    g.bench_function("sim_nolb_1024sd_8n_6st", |b| {
        b.iter(|| black_box(simulate(&nolb_cfg)))
    });
    g.finish();
}

fn halo_codec_bench(c: &mut Criterion) {
    init();
    // One paper-scale side patch: 8x50 cells at eps = 8h.
    let mut tile = Tile::new(50, 8);
    for (i, (x, y)) in tile.interior_rect().cells().enumerate() {
        tile.set(x, y, (i % 13) as f64 * 0.1);
    }
    let edge = Rect::new(0, 0, 8, 50);
    let halo_rect = Rect::new(-8, 0, 8, 50);
    let wire_cap = edge.area() as usize * 8 + 8;

    let mut g = c.benchmark_group("halo");
    // The copying path the seed runtime used: pack to an intermediate
    // Vec<f64>, then encode element-wise.
    g.bench_function("pack_legacy_8x50", |b| {
        b.iter(|| {
            let values = tile.pack(&edge);
            let mut buf = BytesMut::with_capacity(wire_cap);
            nlheat_amt::codec::encode_f64_slice(&values, &mut buf);
            black_box(buf.freeze())
        })
    });
    let legacy_payload = {
        let values = tile.pack(&edge);
        let mut buf = BytesMut::with_capacity(wire_cap);
        nlheat_amt::codec::encode_f64_slice(&values, &mut buf);
        buf.freeze()
    };
    g.bench_function("unpack_legacy_8x50", |b| {
        b.iter(|| {
            let mut payload = legacy_payload.clone();
            let values = nlheat_amt::codec::decode_f64_vec(&mut payload).unwrap();
            tile.unpack(&halo_rect, &values);
        })
    });
    // The zero-copy path the runtime now uses: stream the strided rows
    // straight onto / off the wire, no intermediate Vec<f64>.
    g.bench_function("pack_zerocopy_8x50", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(wire_cap);
            nlheat_amt::codec::encode_f64_rows(
                edge.area() as usize,
                tile.rect_rows(&edge),
                &mut buf,
            );
            black_box(buf.freeze())
        })
    });
    g.bench_function("unpack_zerocopy_8x50", |b| {
        b.iter(|| {
            let mut payload = legacy_payload.clone();
            nlheat_amt::codec::decode_f64_rows(&mut payload, tile.rect_rows_mut(&halo_rect))
                .unwrap();
        })
    });
    g.finish();
}

fn kernel_bench(c: &mut Criterion) {
    init();
    // One paper-scale SD (50x50 DPs, eps = 8h) and a serial-solver-scale
    // region (200x200) where cache behaviour dominates.
    let grid = Grid::square(400, 8.0);
    let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
    let dt = kernel.stable_dt(0.5);
    let src = zero_source();

    let mut g = c.benchmark_group("kernel");
    for (label, n) in [("50x50", 50i64), ("200x200", 200i64)] {
        let mut curr = Tile::new(n, grid.halo);
        for (i, (x, y)) in curr.interior_rect().cells().enumerate() {
            curr.set(x, y, (i % 13) as f64 * 0.1);
        }
        let mut next = Tile::new(n, grid.halo);
        let offsets = kernel.storage_offsets(curr.stride());
        let region = curr.interior_rect();
        g.bench_function(&format!("scalar_{label}_eps8h"), |b| {
            b.iter(|| {
                kernel.apply_region(
                    black_box(&curr),
                    &mut next,
                    &region,
                    &offsets,
                    (0, 0),
                    0.0,
                    dt,
                    &src,
                    1,
                );
            })
        });
        let plan = kernel.plan(curr.stride());
        g.bench_function(&format!("blocked_{label}_eps8h"), |b| {
            b.iter(|| {
                kernel.apply_region_blocked(
                    black_box(&curr),
                    &mut next,
                    &region,
                    &plan,
                    (0, 0),
                    0.0,
                    dt,
                    &src,
                    1,
                );
            })
        });
    }
    g.finish();
}

fn e2e_bench(c: &mut Criterion) {
    init();
    let mut g = c.benchmark_group("e2e");
    let baseline = scenarios::paper_baseline(true);
    g.bench_function("paper_baseline_quick_sim", |b| {
        b.iter(|| black_box(baseline.run_sim()))
    });
    g.bench_function("paper_baseline_quick_dist", |b| {
        b.iter(|| black_box(baseline.run_dist()))
    });
    let lopsided = scenarios::lopsided_two_rack(true);
    g.bench_function("lopsided_two_rack_quick_sim", |b| {
        b.iter(|| black_box(lopsided.run_sim()))
    });
    g.finish();
}

fn sweep_bench(c: &mut Criterion) {
    init();
    // Sweep throughput (runs/second) is a first-class performance surface:
    // a 16-run λ × μ grid of tree-planner simulations on the two-rack
    // workload, through the parallel runner at 1 and 4 workers. On a
    // multi-core host the 4-worker leg should be well under the 1-worker
    // leg; on any host it must not be slower beyond queue overhead — the
    // `bench_gate` pair check enforces exactly that.
    let mut g = c.benchmark_group("sweep");
    let base = Scenario::square(200, 8.0, 25, 8)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(scenarios::two_rack_net());
    for (label, parallelism) in [("1thr", 1usize), ("4thr", 4)] {
        let sweep = ScenarioSweep::new(base.clone())
            .axis(Axis::numeric("lambda", &[0.0, 0.5, 1.0, 2.0], |sc, l| {
                sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::tree(l)))
            }))
            .axis(Axis::numeric(
                "mu",
                &[0.0, 0.05, 0.1, 0.25],
                |mut sc, mu| {
                    if let Some(lb) = &mut sc.lb {
                        lb.spec = lb.spec.clone().with_mu(mu);
                    }
                    sc
                },
            ))
            .with_parallelism(parallelism);
        g.bench_function(&format!("quick_grid_16runs_{label}"), |b| {
            b.iter(|| black_box(sweep.run_collect(&SimSubstrate)))
        });
    }
    g.finish();
}

fn pool_bench(c: &mut Criterion) {
    init();
    // Raw spawn/steal throughput of the AMT pool: 1024 tiny tasks pushed
    // through the injector and drained by the workers, measured at one
    // worker (no contention — pure deque overhead) and at eight (every
    // worker fighting over the injector and each other's deques). This is
    // the surface the Chase–Lev deque rewrite targets: on the old
    // Mutex<VecDeque> shim the 8-thread leg serializes on locks.
    use nlheat_amt::pool::ThreadPool;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut g = c.benchmark_group("pool");
    for (label, workers) in [("1thr", 1usize), ("8thr", 8)] {
        let pool = ThreadPool::new(workers, &format!("bench-{label}"));
        g.bench_function(&format!("spawn_steal_{label}"), |b| {
            b.iter(|| {
                let hits = Arc::new(AtomicU64::new(0));
                for _ in 0..1024 {
                    let hits = hits.clone();
                    pool.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                pool.wait_idle();
                assert_eq!(hits.load(Ordering::Relaxed), 1024);
            })
        });
    }
    g.finish();
}

fn plan_bench(c: &mut Criterion) {
    init();
    // Plan-time regression at cluster scale, on the plan_scale harness the
    // A10b figure sweeps: the flat tree planner at 1000 ranks (10 SDs/rank
    // — its global walk is quadratic in ranks, so the lower density keeps
    // it inside a bench budget), the hierarchical planner at 10k ranks
    // over a million SDs, and the cut-aware repartitioning decorator at
    // the same 10k-rank scale. The repart leg is configured so *every*
    // iteration takes the replan path (threshold 0.5 sits below any real
    // live/fresh cut ratio, period 1, unbounded budget drains the staged
    // diff each call): one iteration = one full multilevel
    // `repartition_capacitated` over the million-SD graph plus the
    // old→new diff, the dominant cost a drift-triggered epoch pays.
    // Grid, SD graph and modeled busy times are built once outside the
    // timer; the measured quantity is exactly one `plan` call, the same
    // invocation `PlanSubstrate` wall-clocks. The snapshot band keeps the
    // hierarchical planner's near-linearity honest — a superlinear
    // regression at 10k ranks blows far past any tolerance.
    let mut g = c.benchmark_group("plan");
    for (label, sc, spec) in [
        (
            "flat_1k",
            scenarios::plan_scale_with_density(1000, 10),
            LbSpec::tree(0.0),
        ),
        (
            "hier_10k",
            scenarios::plan_scale(10_000),
            LbSpec::hierarchical(LbSpec::tree(0.0), 0.0),
        ),
        (
            "repart_10k",
            scenarios::plan_scale(10_000),
            // λ=1e9 gates the inner tree so a surprise non-replan epoch
            // stays cheap instead of paying the quadratic flat walk.
            LbSpec::repartition(LbSpec::tree(1e9), 0.5, 1, u64::MAX),
        ),
    ] {
        let sds = sc.sd_grid();
        let cells = sds.cells_per_sd();
        let n_nodes = sc.cluster.len() as u32;
        let owners = sc.partition.initial_owners(&sds, n_nodes);
        let busy = modeled_busy(
            &sds,
            &owners,
            n_nodes,
            work_at(&sc.work, &sc.work_schedule, 0),
            &sc.cluster.speed_factors(),
            sc.sec_per_dp(),
        );
        let ownership = Ownership::new(sds, owners, n_nodes);
        let metrics = compute_metrics(&ownership.counts(), &busy);
        let net = LbNetwork::for_sd_tiles(&sc.net, cells)
            .with_sd_graph(std::sync::Arc::new(sc.sd_graph()));
        let mut policy = spec.build();
        g.bench_function(label, |b| {
            b.iter(|| black_box(policy.plan(&ownership, &metrics, &net)))
        });
    }
    g.finish();
}

fn dist_straggler_bench(c: &mut Criterion) {
    init();
    // One straggler SD on a single 4-core locality: SD 0 costs 8x its
    // peers, so without intra-step stealing three workers idle at the step
    // barrier while one grinds the hot SD. The snapshot seed was captured
    // with stealing off on the mutex-shim deque; the current entry runs
    // with stealing on, so the band also guards the chunked task path.
    let mut work = vec![1.0f64; 16];
    work[0] = 8.0;
    let sc = Scenario::square(64, 4.0, 16, 4)
        .on(ClusterSpec::uniform(1, 4))
        .with_work(nlheat_core::WorkModel::PerSd(work))
        .with_intra_step_stealing(true);
    let mut g = c.benchmark_group("dist");
    g.bench_function("step_straggler", |b| b.iter(|| black_box(sc.run_dist())));
    g.finish();
}

criterion_group!(
    benches,
    event_core_bench,
    halo_codec_bench,
    kernel_bench,
    e2e_bench,
    sweep_bench,
    pool_bench,
    plan_bench,
    dist_straggler_bench
);
criterion_main!(benches);
