//! Criterion bench regenerating Fig 11 (quick parameters so `cargo bench`
//! terminates; run `figures fig11` for the paper-scale sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use nlheat_bench::fig11;

fn bench(c: &mut Criterion) {
    // Emit the regenerated series once so the bench log contains the data.
    println!("{}", fig11(true).to_markdown());
    let mut g = c.benchmark_group("fig11_strong_dist");
    g.sample_size(10);
    g.bench_function("quick", |b| b.iter(|| fig11(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
