//! Criterion bench for the five ablation studies (quick parameters; run
//! `figures ablations` for the full sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use nlheat_bench::ablations::{
    a1_partition_quality, a2_overlap, a3_sd_size, a4_lb_heterogeneous, a5_crack, a5b_moving_crack,
    a6_network_models, a7_comm_aware_lambda, a8_policy_comparison, a9_ghost_aware_mu,
};

fn bench(c: &mut Criterion) {
    println!("{}", a1_partition_quality(true).to_markdown());
    println!("{}", a2_overlap(true).to_markdown());
    println!("{}", a3_sd_size(true).to_markdown());
    println!("{}", a4_lb_heterogeneous(true).to_markdown());
    println!("{}", a5_crack(true).to_markdown());
    println!("{}", a5b_moving_crack(true).to_markdown());
    println!("{}", a6_network_models(true).to_markdown());
    println!("{}", a7_comm_aware_lambda(true).to_markdown());
    println!("{}", a8_policy_comparison(true).to_markdown());
    println!("{}", a9_ghost_aware_mu(true).to_markdown());
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("a1_partition_quality", |b| {
        b.iter(|| a1_partition_quality(true))
    });
    g.bench_function("a2_overlap", |b| b.iter(|| a2_overlap(true)));
    g.bench_function("a3_sd_size", |b| b.iter(|| a3_sd_size(true)));
    g.bench_function("a4_lb_heterogeneous", |b| {
        b.iter(|| a4_lb_heterogeneous(true))
    });
    g.bench_function("a5_crack", |b| b.iter(|| a5_crack(true)));
    g.bench_function("a5b_moving_crack", |b| b.iter(|| a5b_moving_crack(true)));
    g.bench_function("a6_network_models", |b| b.iter(|| a6_network_models(true)));
    g.bench_function("a7_comm_aware_lambda", |b| {
        b.iter(|| a7_comm_aware_lambda(true))
    });
    g.bench_function("a8_policy_comparison", |b| {
        b.iter(|| a8_policy_comparison(true))
    });
    g.bench_function("a9_ghost_aware_mu", |b| b.iter(|| a9_ghost_aware_mu(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
