//! Criterion bench regenerating Fig 10 (quick parameters so `cargo bench`
//! terminates; run `figures fig10` for the paper-scale sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use nlheat_bench::fig10;

fn bench(c: &mut Criterion) {
    // Emit the regenerated series once so the bench log contains the data.
    println!("{}", fig10(true).to_markdown());
    let mut g = c.benchmark_group("fig10_weak_shared");
    g.sample_size(10);
    g.bench_function("quick", |b| b.iter(|| fig10(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
