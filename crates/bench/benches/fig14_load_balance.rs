//! Criterion bench regenerating Fig 14: Algorithm 1 rebalancing 5×5 SDs
//! across 4 symmetric nodes from a highly imbalanced start.

use criterion::{criterion_group, criterion_main, Criterion};
use nlheat_bench::fig14;

fn bench(c: &mut Criterion) {
    let out = fig14();
    println!("{}", out.fig.to_markdown());
    for (i, (grid, counts)) in out.grids.iter().zip(&out.counts).enumerate() {
        println!("iteration {i}: counts {counts:?}\n{grid}");
    }
    let mut g = c.benchmark_group("fig14_load_balance");
    g.sample_size(20);
    g.bench_function("three_iterations", |b| b.iter(fig14));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
