//! Criterion bench regenerating Fig 8 (quick parameters so `cargo bench`
//! terminates; run `figures fig8` for the paper-scale sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use nlheat_bench::fig8;

fn bench(c: &mut Criterion) {
    // Emit the regenerated series once so the bench log contains the data.
    println!("{}", fig8(true).to_markdown());
    let mut g = c.benchmark_group("fig08_convergence");
    g.sample_size(10);
    g.bench_function("quick", |b| b.iter(|| fig8(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
