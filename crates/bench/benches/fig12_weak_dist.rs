//! Criterion bench regenerating Fig 12 (quick parameters so `cargo bench`
//! terminates; run `figures fig12` for the paper-scale sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use nlheat_bench::fig12;

fn bench(c: &mut Criterion) {
    // Emit the regenerated series once so the bench log contains the data.
    println!("{}", fig12(true).to_markdown());
    let mut g = c.benchmark_group("fig12_weak_dist");
    g.sample_size(10);
    g.bench_function("quick", |b| b.iter(|| fig12(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
