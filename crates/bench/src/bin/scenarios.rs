//! Scenario-library smoke runner: execute every named library scenario on
//! **both** substrates and assert the unified `RunReport` invariants
//! (non-empty busy vector, planner-grade migration/ghost bytes bounded by
//! the cross traffic, traces covering every migration, …).
//!
//! ```text
//! scenarios [--quick]      # quick = toy sizes (the CI smoke contract)
//! ```

use nlheat_core::scenarios;
use nlheat_sim::RunSim;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("| scenario | substrate | makespan | migrations | ghost KB | migration KB | epochs |");
    println!("|---|---|---|---|---|---|---|");
    for (name, sc) in scenarios::all(quick) {
        for report in [sc.run_sim(), sc.run_dist()] {
            report.check_invariants();
            println!(
                "| {name} | {} | {:.3} ms | {} | {:.1} | {:.1} | {} |",
                report.substrate,
                report.makespan * 1e3,
                report.migrations,
                report.ghost_bytes as f64 / 1e3,
                report.migration_bytes as f64 / 1e3,
                report.epoch_traces.len(),
            );
        }
    }
    println!("\nall library scenarios passed the RunReport invariants on both substrates");
}
