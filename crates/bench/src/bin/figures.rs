//! Regenerate the paper's evaluation figures as markdown tables.
//!
//! ```text
//! figures [fig8|fig9|fig10|fig11|fig12|fig13|fig14|a8|a9|a10|a11|a12|ablations|all] [--quick]
//! ```
//!
//! Full mode uses the paper's exact workload parameters (400×400 and
//! 800×800 meshes, ε = 8h, 20 timesteps); `--quick` shrinks them for smoke
//! runs.

use nlheat_bench::{ablations, fig10, fig11, fig12, fig13, fig14, fig8, fig9};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());

    let run_fig14 = || {
        let out = fig14();
        println!("{}", out.fig.to_markdown());
        for (i, (grid, counts)) in out.grids.iter().zip(&out.counts).enumerate() {
            println!("iteration {i}: counts {counts:?}");
            println!("{grid}");
        }
    };

    match which.as_str() {
        "fig8" => println!("{}", fig8(quick).to_markdown()),
        "fig9" => println!("{}", fig9(quick).to_markdown()),
        "fig10" => println!("{}", fig10(quick).to_markdown()),
        "fig11" => println!("{}", fig11(quick).to_markdown()),
        "fig12" => println!("{}", fig12(quick).to_markdown()),
        "fig13" => println!("{}", fig13(quick).to_markdown()),
        "fig14" => run_fig14(),
        "a8" => println!("{}", ablations::a8_policy_comparison(quick).to_markdown()),
        "a9" => println!("{}", ablations::a9_ghost_aware_mu(quick).to_markdown()),
        "a10" => {
            println!("{}", ablations::a10_memory_pressure(quick).to_markdown());
            println!("{}", ablations::a10b_plan_time_scaling(quick).to_markdown());
        }
        "a11" => println!(
            "{}",
            ablations::a11_intra_step_stealing(quick).to_markdown()
        ),
        "a12" => println!("{}", ablations::a12_repartition(quick).to_markdown()),
        "ablations" => {
            println!("{}", ablations::a1_partition_quality(quick).to_markdown());
            println!("{}", ablations::a2_overlap(quick).to_markdown());
            println!("{}", ablations::a3_sd_size(quick).to_markdown());
            println!("{}", ablations::a4_lb_heterogeneous(quick).to_markdown());
            println!("{}", ablations::a5_crack(quick).to_markdown());
            println!("{}", ablations::a5b_moving_crack(quick).to_markdown());
            println!("{}", ablations::a6_network_models(quick).to_markdown());
            println!("{}", ablations::a7_comm_aware_lambda(quick).to_markdown());
            println!("{}", ablations::a8_policy_comparison(quick).to_markdown());
            println!("{}", ablations::a9_ghost_aware_mu(quick).to_markdown());
            println!("{}", ablations::a10_memory_pressure(quick).to_markdown());
            println!("{}", ablations::a10b_plan_time_scaling(quick).to_markdown());
            println!(
                "{}",
                ablations::a11_intra_step_stealing(quick).to_markdown()
            );
            println!("{}", ablations::a12_repartition(quick).to_markdown());
        }
        "all" => {
            println!("{}", fig8(quick).to_markdown());
            println!("{}", fig9(quick).to_markdown());
            println!("{}", fig10(quick).to_markdown());
            println!("{}", fig11(quick).to_markdown());
            println!("{}", fig12(quick).to_markdown());
            println!("{}", fig13(quick).to_markdown());
            run_fig14();
            println!("{}", ablations::a1_partition_quality(quick).to_markdown());
            println!("{}", ablations::a2_overlap(quick).to_markdown());
            println!("{}", ablations::a3_sd_size(quick).to_markdown());
            println!("{}", ablations::a4_lb_heterogeneous(quick).to_markdown());
            println!("{}", ablations::a5_crack(quick).to_markdown());
            println!("{}", ablations::a5b_moving_crack(quick).to_markdown());
            println!("{}", ablations::a6_network_models(quick).to_markdown());
            println!("{}", ablations::a7_comm_aware_lambda(quick).to_markdown());
            println!("{}", ablations::a8_policy_comparison(quick).to_markdown());
            println!("{}", ablations::a9_ghost_aware_mu(quick).to_markdown());
            println!("{}", ablations::a10_memory_pressure(quick).to_markdown());
            println!("{}", ablations::a10b_plan_time_scaling(quick).to_markdown());
            println!(
                "{}",
                ablations::a11_intra_step_stealing(quick).to_markdown()
            );
            println!("{}", ablations::a12_repartition(quick).to_markdown());
        }
        other => {
            eprintln!("unknown figure '{other}'");
            eprintln!("usage: figures [fig8..fig14|a8|a9|a10|a11|a12|ablations|all] [--quick]");
            std::process::exit(2);
        }
    }
}
