//! The hot-path performance gate.
//!
//! Compares a fresh `hotpath` bench run (the JSON the criterion shim writes
//! when `NLHEAT_BENCH_JSON` is set) against the committed
//! `BENCH_hotpath.json` snapshot and fails when a benchmark regressed
//! beyond the tolerance band. Two independent checks:
//!
//! 1. **Within-run pairs** (machine-independent): every optimized path must
//!    not be slower than its retained baseline measured *in the same run* —
//!    `blocked` vs `scalar` kernels, `zerocopy` vs `legacy` halo codec.
//!    A small slack absorbs micro-bench noise.
//! 2. **Snapshot band**: every benchmark present in the snapshot must stay
//!    within `NLHEAT_BENCH_TOLERANCE` × its recorded mean (default 1.5 —
//!    wide enough for runner-to-runner variance, tight enough to catch a
//!    2× regression).
//!
//! Usage: `bench_gate <current.json> <snapshot.json>`

use std::process::ExitCode;

/// One parsed benchmark: `group/name` label and mean nanoseconds.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    mean_ns: f64,
}

/// Extract the string value of `"key": "..."` from a record line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key": N` from a record line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the records inside the top-level `"results"` array of the shim's
/// JSON document. Sibling arrays (the snapshot's `seed_results` record of
/// pre-optimization numbers) are ignored.
fn parse_results(doc: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    let mut in_results = false;
    for line in doc.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"results\"") {
            in_results = true;
            continue;
        }
        if in_results {
            if trimmed.starts_with(']') {
                break;
            }
            if let (Some(name), Some(mean_ns)) =
                (str_field(trimmed, "name"), num_field(trimmed, "mean_ns"))
            {
                out.push(Entry { name, mean_ns });
            }
        }
    }
    out
}

fn lookup<'a>(entries: &'a [Entry], name: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.name == name)
}

/// The optimized/baseline pairs measured within one run. The optimized leg
/// may be at most `slack` × the baseline — in practice it should be well
/// under 1.0×; the slack only absorbs timer noise on sub-µs benches.
const PAIRS: &[(&str, &str)] = &[
    ("kernel/blocked_50x50_eps8h", "kernel/scalar_50x50_eps8h"),
    (
        "kernel/blocked_200x200_eps8h",
        "kernel/scalar_200x200_eps8h",
    ),
    ("halo/pack_zerocopy_8x50", "halo/pack_legacy_8x50"),
    ("halo/unpack_zerocopy_8x50", "halo/unpack_legacy_8x50"),
    // The parallel sweep runner: 4 workers must never be slower than 1
    // (on a single-core runner the two legs tie; the slack covers queue
    // and thread-spawn overhead, and any real speedup only helps).
    (
        "sweep/quick_grid_16runs_4thr",
        "sweep/quick_grid_16runs_1thr",
    ),
];

fn check_pairs(current: &[Entry], slack: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for &(optimized, baseline) in PAIRS {
        let (Some(o), Some(b)) = (lookup(current, optimized), lookup(current, baseline)) else {
            failures.push(format!(
                "missing pair {optimized} / {baseline} in current run"
            ));
            continue;
        };
        let ratio = o.mean_ns / b.mean_ns;
        let verdict = if ratio <= slack { "ok" } else { "FAIL" };
        println!(
            "  pair {optimized}: {:.1} µs vs {baseline}: {:.1} µs  (ratio {ratio:.2}, limit {slack:.2}) {verdict}",
            o.mean_ns / 1e3,
            b.mean_ns / 1e3
        );
        if ratio > slack {
            failures.push(format!(
                "{optimized} is {ratio:.2}x its baseline {baseline} (limit {slack:.2}x)"
            ));
        }
    }
    failures
}

fn check_snapshot(current: &[Entry], snapshot: &[Entry], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for snap in snapshot {
        let Some(cur) = lookup(current, &snap.name) else {
            failures.push(format!("benchmark {} missing from current run", snap.name));
            continue;
        };
        let ratio = cur.mean_ns / snap.mean_ns;
        let verdict = if ratio <= tolerance { "ok" } else { "FAIL" };
        println!(
            "  snap {}: {:.1} µs vs snapshot {:.1} µs  (ratio {ratio:.2}, limit {tolerance:.2}) {verdict}",
            snap.name,
            cur.mean_ns / 1e3,
            snap.mean_ns / 1e3
        );
        if ratio > tolerance {
            failures.push(format!(
                "{} regressed to {ratio:.2}x the snapshot (limit {tolerance:.2}x)",
                snap.name
            ));
        }
    }
    failures
}

fn env_factor(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f: &f64| *f >= 1.0)
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, current_path, snapshot_path] = &args[..] else {
        eprintln!("usage: bench_gate <current.json> <snapshot.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let current = parse_results(&read(current_path));
    let snapshot = parse_results(&read(snapshot_path));
    assert!(!current.is_empty(), "no results parsed from {current_path}");
    assert!(
        !snapshot.is_empty(),
        "no results parsed from {snapshot_path}"
    );

    // Pairs sit well below 1.0x in practice; the slack only has to clear
    // timer noise on the sub-µs halo benches.
    let slack = env_factor("NLHEAT_BENCH_PAIR_SLACK", 1.15);
    let tolerance = env_factor("NLHEAT_BENCH_TOLERANCE", 1.5);

    println!("within-run optimized/baseline pairs:");
    let mut failures = check_pairs(&current, slack);
    println!("current vs committed snapshot:");
    failures.extend(check_snapshot(&current, &snapshot, tolerance));

    if failures.is_empty() {
        println!("bench gate: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench gate: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "results": [
    {"name": "kernel/scalar_50x50_eps8h", "mean_ns": 1000.5, "iters": 100},
    {"name": "kernel/blocked_50x50_eps8h", "mean_ns": 500.0, "iters": 100}
  ],
  "seed_results": [
    {"name": "kernel/scalar_50x50_eps8h", "mean_ns": 9999.0, "iters": 3}
  ]
}
"#;

    #[test]
    fn parses_only_the_results_array() {
        let entries = parse_results(DOC);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "kernel/scalar_50x50_eps8h");
        assert!((entries[0].mean_ns - 1000.5).abs() < 1e-9);
        assert!((entries[1].mean_ns - 500.0).abs() < 1e-9);
    }

    #[test]
    fn pair_check_flags_slower_optimized_leg() {
        let fast = parse_results(DOC);
        // only one pair present; the other four report as missing
        let failures = check_pairs(&fast, 1.10);
        assert_eq!(
            failures.len(),
            PAIRS.len() - 1,
            "missing pairs counted: {failures:?}"
        );
        let inverted = vec![
            Entry {
                name: "kernel/scalar_50x50_eps8h".into(),
                mean_ns: 500.0,
            },
            Entry {
                name: "kernel/blocked_50x50_eps8h".into(),
                mean_ns: 1000.0,
            },
        ];
        let failures = check_pairs(&inverted, 1.10);
        assert!(failures.iter().any(|f| f.contains("2.00x")), "{failures:?}");
    }

    #[test]
    fn snapshot_check_applies_tolerance_band() {
        let snap = vec![Entry {
            name: "e2e/x".into(),
            mean_ns: 100.0,
        }];
        let ok = vec![Entry {
            name: "e2e/x".into(),
            mean_ns: 140.0,
        }];
        assert!(check_snapshot(&ok, &snap, 1.5).is_empty());
        let slow = vec![Entry {
            name: "e2e/x".into(),
            mean_ns: 160.0,
        }];
        assert_eq!(check_snapshot(&slow, &snap, 1.5).len(), 1);
        assert_eq!(
            check_snapshot(&[], &snap, 1.5).len(),
            1,
            "missing bench fails"
        );
    }
}
