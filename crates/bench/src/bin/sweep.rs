//! Sweep smoke runner: drive the `ScenarioSweep` layer end to end.
//!
//! Two stages:
//!
//! 1. **Library grid** — every named library scenario through the parallel
//!    runner (`parallelism = 2`) on *both* substrates, asserting
//!    `RunReport::check_invariants` on every record (the CI `sweep_smoke`
//!    contract), then the `SweepSummary` table.
//! 2. **Throughput grid** — the policy × λ × μ cross product (≥ 48 runs)
//!    on the simulator, executed at `parallelism` 1 and 4. Asserts the
//!    sorted JSONL output is byte-identical across worker counts (the
//!    determinism contract) and prints the measured speedup; the ≥ 2×
//!    assertion only arms on machines that actually have ≥ 4 CPUs (CI
//!    runners do; single-core boxes can't speed up).
//!
//! ```text
//! sweep [--quick]      # quick = toy library sizes (the CI smoke contract)
//! ```

use nlheat_core::balance::{LbSchedule, LbSpec};
use nlheat_core::scenario::sweep::{Axis, FnSink, JsonlSink, ScenarioSweep, SweepSummary};
use nlheat_core::scenario::{ClusterSpec, DistSubstrate, PartitionSpec, Scenario};
use nlheat_core::scenarios;
use nlheat_sim::SimSubstrate;
use std::time::Instant;

/// The λ mutator of the throughput grid: set λ where the scheduled policy
/// has one (the tree planner), leave λ-less policies untouched.
fn with_lambda(mut sc: Scenario, lambda: f64) -> Scenario {
    if let Some(lb) = &mut sc.lb {
        if let LbSpec::Tree { lambda: l, .. } = &mut lb.spec {
            *l = lambda;
        }
    }
    sc
}

/// The μ mutator: every policy carries μ, so this applies to all of them.
fn with_mu(mut sc: Scenario, mu: f64) -> Scenario {
    if let Some(lb) = &mut sc.lb {
        lb.spec = lb.spec.clone().with_mu(mu);
    }
    sc
}

/// The ≥ 48-run policy × λ × μ quick grid on the A7 two-rack workload.
fn throughput_sweep(parallelism: usize) -> ScenarioSweep {
    let base = Scenario::square(200, 8.0, 25, 8)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(scenarios::two_rack_net());
    ScenarioSweep::new(base)
        .axis(
            Axis::new("policy")
                .value("tree", 0.0, |sc: Scenario| {
                    sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::tree(0.0)))
                })
                .value("diffusion", 1.0, |sc: Scenario| {
                    sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::diffusion(1.0, 8)))
                })
                .value("greedy-steal", 2.0, |sc: Scenario| {
                    sc.with_lb(LbSchedule::every(2).with_spec(LbSpec::greedy_steal(1)))
                }),
        )
        .axis(Axis::numeric("lambda", &[0.0, 0.5, 1.0, 2.0], with_lambda))
        .axis(Axis::numeric("mu", &[0.0, 0.05, 0.1, 0.25], with_mu))
        .with_parallelism(parallelism)
}

/// Run the throughput grid once, returning (sorted JSONL, best-of-3 secs).
fn timed_jsonl(parallelism: usize) -> (String, f64) {
    let sweep = throughput_sweep(parallelism);
    let mut best = f64::INFINITY;
    let mut sorted = String::new();
    for _ in 0..3 {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        let t0 = Instant::now();
        sweep.run(&SimSubstrate, &mut sink);
        best = best.min(t0.elapsed().as_secs_f64());
        let text = String::from_utf8(sink.into_inner()).expect("utf8 jsonl");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        sorted = lines.join("\n");
    }
    (sorted, best)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // stage 1: the named library grid on both substrates, invariants on
    // every record, through the parallel runner
    let mut records = Vec::new();
    for substrate in [
        &SimSubstrate as &(dyn nlheat_core::scenario::Substrate + Sync),
        &DistSubstrate,
    ] {
        let sweep = ScenarioSweep::new(scenarios::paper_baseline(quick))
            .axis(Axis::scenarios("scenario", scenarios::all(quick)))
            .with_parallelism(2);
        let mut sink = FnSink(
            |record: &nlheat_core::scenario::sweep::RunRecord,
             report: &nlheat_core::scenario::RunReport| {
                report.check_invariants();
                records.push(record.clone());
            },
        );
        sweep.run(substrate, &mut sink);
    }
    records.sort_by_key(|r| (r.substrate.clone(), r.index));
    let expected = 2 * scenarios::all(quick).len();
    assert_eq!(
        records.len(),
        expected,
        "every library cell ran on both substrates"
    );
    println!("library grid: {expected} runs, all RunReport invariants hold\n");
    print!("{}", SweepSummary::from_records(&records).to_markdown());

    // stage 2: throughput grid, determinism + speedup across worker counts
    let sweep = throughput_sweep(1);
    let runs = sweep.runs();
    assert!(
        runs >= 48,
        "policy x lambda x mu grid must be >= 48 runs, got {runs}"
    );
    let (jsonl_1thr, secs_1thr) = timed_jsonl(1);
    let (jsonl_4thr, secs_4thr) = timed_jsonl(4);
    assert_eq!(
        jsonl_1thr, jsonl_4thr,
        "sorted JSONL must be byte-identical across worker counts"
    );
    let speedup = secs_1thr / secs_4thr;
    println!(
        "\nthroughput grid: {runs} runs | 1 thread {:.1} ms | 4 threads {:.1} ms | speedup {speedup:.2}x",
        secs_1thr * 1e3,
        secs_4thr * 1e3
    );
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus >= 4 {
        assert!(
            speedup >= 2.0,
            "parallel runner must reach 2x at parallelism=4 on a {cpus}-CPU host, got {speedup:.2}x"
        );
    } else {
        println!("(speedup assertion skipped: only {cpus} CPU(s) available)");
    }
    println!("sweep smoke passed: deterministic content across parallelism 1 and 4");
}
