//! # nlheat-bench — figure regeneration harness
//!
//! One function per figure of the paper's evaluation section (§8), each
//! returning a [`FigData`] table with the same series the paper plots,
//! plus the ablation studies listed in DESIGN.md. The `figures` binary
//! prints them as markdown; the criterion benches run scaled-down variants
//! so `cargo bench` stays tractable.
//!
//! Measurement substrate per figure (see DESIGN.md §1 for the rationale):
//!
//! | figure | substrate |
//! |---|---|
//! | Fig 8 (convergence)        | real serial solver (`nlheat-model`) |
//! | Fig 9–13 (scaling)         | discrete-event simulator (`nlheat-sim`) |
//! | Fig 14 (load balancing)    | Algorithm 1 (`nlheat-core::balance`) |
//! | correctness of all paths   | real distributed runtime (`nlheat-core::dist`), asserted in tests |

pub mod ablations;
pub mod figdata;
pub mod figures;

pub use figdata::{FigData, Series};
pub use figures::{fig10, fig11, fig12, fig13, fig14, fig8, fig9, Fig14Output};
