//! Tabular figure data and markdown rendering.

/// One plotted curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "4CPU").
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A figure as a table: shared x values, one column per series.
#[derive(Debug, Clone)]
pub struct FigData {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl FigData {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigData {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// All distinct x values in first-seen order.
    fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.contains(&x) {
                    xs.push(x);
                }
            }
        }
        xs
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!(
            "| {} | {} |\n",
            self.x_label,
            self.series
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        out.push_str(&format!("|{}|\n", "---|".repeat(self.series.len() + 1)));
        for x in self.x_values() {
            let mut row = format!("| {} ", trim_float(x));
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|&&(px, _)| px == x)
                    .map(|&(_, y)| trim_float_sig(y))
                    .unwrap_or_else(|| "—".into());
                row.push_str(&format!("| {cell} "));
            }
            out.push_str(&row);
            out.push_str("|\n");
        }
        out.push_str(&format!("\n*(y = {})*\n", self.y_label));
        out
    }
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn trim_float_sig(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e-3 && v.abs() < 1e6 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_and_rows() {
        let mut fig = FigData::new("Test", "x", "speedup");
        let mut s1 = Series::new("a");
        s1.push(1.0, 1.0);
        s1.push(2.0, 1.9);
        let mut s2 = Series::new("b");
        s2.push(1.0, 1.0);
        fig.series.push(s1);
        fig.series.push(s2);
        let md = fig.to_markdown();
        assert!(md.contains("### Test"));
        assert!(md.contains("| x | a | b |"));
        assert!(md.contains("| 1 | 1.000 | 1.000 |"));
        assert!(
            md.contains("| 2 | 1.900 | — |"),
            "missing cell dashed:\n{md}"
        );
    }

    #[test]
    fn float_formatting() {
        assert_eq!(trim_float(4.0), "4");
        assert_eq!(trim_float_sig(0.000123), "1.230e-4");
        assert_eq!(trim_float_sig(9.87654), "9.877");
    }
}
