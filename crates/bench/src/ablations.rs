//! Ablation studies for the design choices called out in DESIGN.md.

use crate::figdata::{FigData, Series};
use nlheat_core::balance::{LbSchedule, LbSpec};
use nlheat_core::scenario::sweep::{Axis, ScenarioSweep};
use nlheat_core::scenario::{ClusterSpec, PartitionSpec, PlanSubstrate, RunReport, Scenario};
use nlheat_core::scenarios::{
    cut_drift, elastic_scale_out, heterogeneous_cluster, lopsided_owners, memory_pressure,
    plan_scale, propagating_crack, rank_failure, two_rack_net,
};
use nlheat_core::workload::WorkModel;
use nlheat_mesh::{Grid, SdGrid};
use nlheat_netmodel::{LinkClass, NetSpec};
use nlheat_partition::{edge_cut, sd_dual_graph, strip_partition, SdGraph};
use nlheat_sim::{simulate, RunSim, SimConfig, SimSubstrate, VirtualNode};

fn nodes1(n: usize) -> Vec<VirtualNode> {
    (0..n).map(|_| VirtualNode::with_cores(1)).collect()
}

/// **A1** — partition quality: multilevel METIS-substitute vs naive
/// strips, by dual-graph edge cut and simulated cross-node traffic.
pub fn a1_partition_quality(quick: bool) -> FigData {
    let mesh = if quick { 200 } else { 800 };
    let sd = 25;
    let steps = if quick { 3 } else { 20 };
    let mut fig = FigData::new(
        format!("A1 — partition quality on {mesh}x{mesh}, SD {sd}x{sd}"),
        "#nodes",
        "edge cut (cells) / cross-traffic (MB)",
    );
    let sds = SdGrid::tile_mesh(mesh, mesh, sd);
    let dual = sd_dual_graph(&sds);
    let mut cut_metis = Series::new("edgecut-metis");
    let mut cut_strip = Series::new("edgecut-strip");
    let mut mb_metis = Series::new("MB-metis");
    let mut mb_strip = Series::new("MB-strip");
    for &k in &[2usize, 4, 8] {
        let metis = nlheat_partition::part_mesh_dual(&sds, k as u32, 1);
        let strip = strip_partition(&sds, k as u32);
        cut_metis.push(k as f64, metis.edgecut as f64);
        cut_strip.push(k as f64, edge_cut(&dual, &strip) as f64);
        let mut cfg = SimConfig::paper(mesh, sd, steps, nodes1(k));
        cfg.partition = PartitionSpec::Metis { seed: 1 };
        mb_metis.push(k as f64, simulate(&cfg).cross_bytes as f64 / 1e6);
        cfg.partition = PartitionSpec::Strip;
        mb_strip.push(k as f64, simulate(&cfg).cross_bytes as f64 / 1e6);
    }
    fig.series = vec![cut_metis, cut_strip, mb_metis, mb_strip];
    fig
}

/// **A2** — hiding data-exchange time: case-1/case-2 overlap ON vs OFF
/// across a network-latency sweep (time ratio OFF/ON; > 1 means overlap
/// wins).
pub fn a2_overlap(quick: bool) -> FigData {
    let steps = if quick { 3 } else { 20 };
    let mut fig = FigData::new(
        "A2 — communication hiding: no-overlap time / overlap time",
        "latency (µs)",
        "slowdown without overlap",
    );
    let mut ratio = Series::new("no-overlap / overlap");
    for &lat_us in &[1.0f64, 100.0, 1000.0, 5000.0] {
        let mut cfg = SimConfig::paper(200, 50, steps, nodes1(4));
        cfg.net = NetSpec::shared(lat_us * 1e-6, 1e9);
        cfg.overlap = true;
        let with = simulate(&cfg).total_time;
        cfg.overlap = false;
        let without = simulate(&cfg).total_time;
        ratio.push(lat_us, without / with);
    }
    fig.series.push(ratio);
    fig
}

/// **A3** — SD size sweep (§6.1: "the size of an SD can be tuned"):
/// total time vs SD side length for a fixed mesh and node count.
pub fn a3_sd_size(quick: bool) -> FigData {
    let mesh = 400;
    let steps = if quick { 3 } else { 20 };
    let mut fig = FigData::new(
        "A3 — SD granularity on 400x400, 4 nodes x 2 cores",
        "SD side (cells)",
        "total time (ms)",
    );
    let mut t = Series::new("time");
    for &sd in &[10usize, 20, 25, 50, 100, 200] {
        let nodes = (0..4)
            .map(|_| VirtualNode {
                cores: 2,
                speed: 1.0,
                memory_bytes: None,
            })
            .collect();
        let cfg = SimConfig::paper(mesh, sd, steps, nodes);
        t.push(sd as f64, simulate(&cfg).total_time * 1e3);
    }
    fig.series.push(t);
    fig
}

/// **A4** — load balancer ON vs OFF on a heterogeneous cluster
/// (one node twice as fast).
pub fn a4_lb_heterogeneous(quick: bool) -> FigData {
    let steps = if quick { 8 } else { 40 };
    let mut fig = FigData::new(
        "A4 — LB under node heterogeneity (speeds 2:1:1:1)",
        "LB period (steps; 0 = off)",
        "total time (ms)",
    );
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 2.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
    ];
    let mut t = Series::new("time");
    let mut cfg = SimConfig::paper(400, 25, steps, nodes);
    cfg.lb = None;
    t.push(0.0, simulate(&cfg).total_time * 1e3);
    for &period in &[2usize, 4, 8] {
        cfg.lb = Some(LbSchedule::every(period));
        t.push(period as f64, simulate(&cfg).total_time * 1e3);
    }
    fig.series.push(t);
    fig
}

/// **A5** — the crack workload (§7 motivation): a low-work crack band
/// makes its host SDs cheap; LB ON vs OFF.
pub fn a5_crack(quick: bool) -> FigData {
    let steps = if quick { 8 } else { 40 };
    let mut fig = FigData::new(
        "A5 — crack workload (band of quarter-work SDs), 4 symmetric nodes",
        "LB period (steps; 0 = off)",
        "total time (ms)",
    );
    let mut t = Series::new("time");
    let mut cfg = SimConfig::paper(400, 25, steps, nodes1(4));
    // crack through the middle: the strip partition gives one node the
    // whole cheap band, so the others become the bottleneck
    cfg.partition = PartitionSpec::Strip;
    cfg.work = WorkModel::Crack {
        y_cell: 200,
        half_width: 30,
        factor: 0.25,
    };
    cfg.lb = None;
    t.push(0.0, simulate(&cfg).total_time * 1e3);
    for &period in &[2usize, 4, 8] {
        cfg.lb = Some(LbSchedule::every(period));
        t.push(period as f64, simulate(&cfg).total_time * 1e3);
    }
    fig.series.push(t);
    fig
}

/// **A5b** — a *propagating* crack (the §9 outlook toward fracture): the
/// quarter-work band jumps to a new position every `dwell` steps. The
/// balancer (period 4) wins when the dwell exceeds its adaptation time and
/// loses when the crack outruns it — the boundary this ablation maps out.
pub fn a5b_moving_crack(quick: bool) -> FigData {
    let steps = if quick { 32 } else { 64 };
    let mut fig = FigData::new(
        "A5b - propagating crack: LB gain vs crack dwell time",
        "dwell (steps between crack jumps)",
        "time without LB / time with LB (period 4)",
    );
    let mut ratio = Series::new("no-LB / LB");
    for &dwell in &[4usize, 8, 16, 32] {
        let mut cfg = SimConfig::paper(400, 25, steps, nodes1(4));
        cfg.partition = PartitionSpec::Strip;
        let jumps = steps / dwell;
        // Partial band (as in A5): eq. 8 models power per *node*, so a
        // crack that makes a whole strip cheap inflates that node's power
        // estimate and the plan oscillates — a granularity limitation of
        // the algorithm documented in EXPERIMENTS.md. A partial band keeps
        // the per-node estimate sound.
        cfg.work_schedule = (0..jumps)
            .map(|seg| {
                (
                    seg * dwell,
                    WorkModel::Crack {
                        y_cell: 100 + ((seg * 100) % 300) as i64,
                        half_width: 30,
                        factor: 0.25,
                    },
                )
            })
            .collect();
        cfg.lb = None;
        let off = simulate(&cfg).total_time;
        cfg.lb = Some(LbSchedule::every(4));
        let on = simulate(&cfg).total_time;
        ratio.push(dwell as f64, off / on);
    }
    fig.series.push(ratio);
    fig
}

/// **A6** — network-model sweep (the pluggable `NetSpec` layer): the same
/// heterogeneous-cluster workload under increasingly contended network
/// models, with the load balancer off and on. Shows how much of the LB win
/// survives as communication stops being free — the premise of
/// communication-aware balancing (Lifflander et al., arXiv:2404.16793).
pub fn a6_network_models(quick: bool) -> FigData {
    let steps = if quick { 8 } else { 40 };
    let mut fig = FigData::new(
        "A6 — network models on a heterogeneous 4-node cluster (speeds 2:1:1:1)",
        "model (0=instant 1=constant 2=shared 3=topology)",
        "total time (ms)",
    );
    let nodes = vec![
        VirtualNode {
            cores: 1,
            speed: 2.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
        VirtualNode {
            cores: 1,
            speed: 1.0,
            memory_bytes: None,
        },
    ];
    // A deliberately tight network so the serialization term matters:
    // 100 µs latency, 100 MB/s per NIC; the topology variant splits the
    // four nodes into two racks with a 4x slower inter-rack uplink
    // (the shared library interconnect, `scenarios::two_rack_net`).
    let specs: [(f64, NetSpec); 4] = [
        (0.0, NetSpec::Instant),
        (1.0, NetSpec::constant(1e-4, 1e8)),
        (2.0, NetSpec::shared(1e-4, 1e8)),
        (3.0, two_rack_net()),
    ];
    let mut net_axis = Axis::new("net");
    for (x, spec) in specs {
        net_axis = net_axis.value(format!("{x}"), x, move |sc: Scenario| sc.with_net(spec));
    }
    let sweep = ScenarioSweep::new(Scenario::square(400, 8.0, 25, steps).on(ClusterSpec { nodes }))
        .axis(net_axis)
        .axis(Axis::new("lb").value("off", 0.0, |sc: Scenario| sc).value(
            "on",
            1.0,
            |sc: Scenario| sc.with_lb(LbSchedule::every(4)),
        ))
        .with_parallelism(2);
    let mut off = Series::new("LB off");
    let mut on = Series::new("LB on (period 4)");
    for record in sweep.run_collect(&SimSubstrate) {
        let x = record.axis_x("net").expect("net axis");
        let series = match record.axis_label("lb") {
            Some("off") => &mut off,
            _ => &mut on,
        };
        series.push(x, record.makespan * 1e3);
    }
    fig.series = vec![off, on];
    fig
}

/// **A7** — communication-aware rebalancing: λ sweep on the two-rack
/// topology. Speeds are `[2, 1, 2, 1]` with racks `{0,1}` and `{2,3}`, so
/// each rack pairs one fast and one slow node and the *useful*
/// rebalancing flow (slow → fast) is entirely intra-rack; the even
/// neighbour split of Algorithm 1 nevertheless routes part of every
/// settlement across the rack boundary at λ = 0. Sweeping λ up gates
/// those transfers once their busy-time relief stops covering
/// `λ ×` the estimated inter-rack transfer seconds: inter-rack migration
/// bytes fall monotonically to zero while the makespan stays within noise
/// of the count-based baseline, because the same imbalance settles over
/// the cheap links instead.
pub fn a7_comm_aware_lambda(quick: bool) -> FigData {
    let steps = if quick { 16 } else { 48 };
    let mut fig = FigData::new(
        "A7 — cost-aware LB: λ sweep on 2 racks x 2 nodes (speeds 2:1:2:1)",
        "lambda",
        "inter-rack migration KB / total migration KB / time (ms)",
    );
    let base = Scenario::square(400, 8.0, 25, steps)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(two_rack_net());
    let sweep = ScenarioSweep::new(base)
        .axis(Axis::numeric(
            "lambda",
            &[0.0, 0.5, 1.0, 2.0, 4.0],
            |sc, lambda| {
                sc.with_lb(LbSchedule::every(4).with_spec(LbSpec::Tree { lambda, mu: 0.0 }))
            },
        ))
        .with_parallelism(2);
    let mut inter = Series::new("inter-rack-KB");
    let mut total = Series::new("migration-KB");
    let mut time = Series::new("time-ms");
    for record in sweep.run_collect(&SimSubstrate) {
        let lambda = record.axis_x("lambda").expect("lambda axis");
        inter.push(lambda, record.inter_rack_migration_bytes as f64 / 1e3);
        total.push(lambda, record.migration_bytes as f64 / 1e3);
        time.push(lambda, record.makespan * 1e3);
    }
    fig.series = vec![inter, total, time];
    fig
}

/// The A8 policy roster: every [`LbSpec`] variant, in the fixed order the
/// figure's x-axis uses.
pub fn a8_policies() -> Vec<(&'static str, LbSpec)> {
    vec![
        ("tree λ=1", LbSpec::tree(1.0)),
        ("diffusion", LbSpec::diffusion(1.0, 8)),
        ("greedy-steal", LbSpec::greedy_steal(1)),
        ("adaptive-λ", LbSpec::adaptive(LbSpec::tree(0.0), 0.05)),
        ("adaptive-μ", LbSpec::adaptive_mu(LbSpec::tree(0.0), 0.3)),
    ]
}

/// **A8** — pluggable balancing policies head to head on the A7 two-rack
/// topology (speeds 2:1:2:1, strip start): every `LbSpec` variant runs the
/// same workload through **both substrates** — the discrete-event
/// simulator at paper scale (makespan, migration traffic, inter-rack
/// bytes) and the real distributed runtime at smoke scale (migrations
/// observed on a 4-locality cluster from a deliberately lopsided explicit
/// start). A no-LB simulator baseline anchors the comparison.
pub fn a8_policy_comparison(quick: bool) -> FigData {
    let steps = if quick { 16 } else { 48 };
    let mut fig = FigData::new(
        "A8 — LB policies on 2 racks x 2 nodes (speeds 2:1:2:1; x: 0=tree λ=1, \
         1=diffusion, 2=greedy-steal, 3=adaptive-λ, 4=adaptive-μ)",
        "policy",
        "sim time (ms) / sim migration KB / sim inter-rack KB / real migrations",
    );
    // One scenario per substrate leg: the simulator sweeps the paper
    // scale, the real runtime a smoke scale — same network, same policy.
    let sim_base = Scenario::square(400, 8.0, 25, steps)
        .on(ClusterSpec::speeds(&[2.0, 1.0, 2.0, 1.0]))
        .with_partition(PartitionSpec::Strip)
        .with_net(two_rack_net());
    // Real-runtime leg at smoke scale: 16x16 mesh, 4 localities on the
    // same 2-rack NetSpec, node 0 holding everything except the three far
    // corners (a Fig. 14-style lopsided start that leaves every territory
    // non-empty, so all policies can find frontiers).
    let real_base = Scenario::square(16, 2.0, 4, 6)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net());
    let real_owners = lopsided_owners(&real_base.sd_grid(), 4);
    let mut baseline = Series::new("time-ms-no-LB");
    let no_lb = sim_base.clone().run_sim().makespan * 1e3;
    let mut time = Series::new("time-ms");
    let mut total = Series::new("migration-KB");
    let mut inter = Series::new("inter-rack-KB");
    let mut real = Series::new("real-migrations");
    for (i, (_name, spec)) in a8_policies().into_iter().enumerate() {
        let x = i as f64;
        baseline.push(x, no_lb);
        // simulator leg at paper scale
        let run = sim_base
            .clone()
            .with_lb(LbSchedule::every(4).with_spec(spec.clone()))
            .run_sim();
        time.push(x, run.makespan * 1e3);
        total.push(x, run.migration_bytes as f64 / 1e3);
        inter.push(x, run.inter_rack_migration_bytes as f64 / 1e3);
        let report = real_base
            .clone()
            .with_partition(PartitionSpec::Explicit(real_owners.clone()))
            .with_lb(LbSchedule::every(2).with_spec(spec))
            .run_dist();
        real.push(x, report.migrations as f64);
    }
    fig.series = vec![time, total, inter, real, baseline];
    fig
}

/// **A9** — ghost-traffic-aware balancing: μ sweep on the 2-rack
/// topology from a Fig.-14 lopsided start (node 0 owns everything except
/// three far-corner seeds), equal node speeds. Rebalancing must
/// redistribute ~3/4 of the mesh, and μ decides *where* the cross-rack
/// territories grow: each candidate SD pays its [`SdGraph`] edge-cut
/// delta (recurring ghost seconds per step) against its busy-time relief.
///
/// Simulator leg (paper scale): in the shaping band (μ ≲ 0.5) the
/// steady-state inter-rack ghost cut falls ~20% at **identical** makespan
/// and migration count — the planner picks cut-healing SDs within each
/// frontier for free. Past the band (μ = 1) the gate freezes cross-rack
/// borrowing: the cut collapses further but makespan pays — A9 maps that
/// boundary, like A7 does for λ.
///
/// Real-runtime leg (smoke scale): wall-clock busy relief is microseconds
/// against ~100 µs link estimates (the A8 caveat), so any practical μ
/// acts as a pure gate there; the leg shows μ keeping the balancer from
/// worsening the recurring cut, with the final inter-rack cut read from
/// the recorded [`nlheat_core::balance::EpochTrace`]s, falling back to
/// the initial cut when every epoch was gated.
pub fn a9_ghost_aware_mu(quick: bool) -> FigData {
    let steps = if quick { 24 } else { 48 };
    let mut fig = FigData::new(
        "A9 — ghost-aware LB: μ sweep, lopsided start on 2 racks x 2 nodes \
         (sim: steady-state inter-rack ghost cut + makespan; real: final cut)",
        "mu",
        "sim inter-rack ghost KB/step / sim time (ms) / sim migrations / real inter-rack ghost KB/step",
    );
    // Both substrate legs share the library's lopsided start and two-rack
    // interconnect; only the scale differs.
    let sim_base = Scenario::square(400, 8.0, 25, steps)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net());
    let real_base = Scenario::square(16, 2.0, 4, 6)
        .on(ClusterSpec::uniform(4, 1))
        .with_net(two_rack_net());
    let sim_sds = sim_base.sd_grid();
    let real_sds = real_base.sd_grid();
    let sim_owners = lopsided_owners(&sim_sds, 4);
    let real_owners = lopsided_owners(&real_sds, 4);
    // initial cuts for the gated-everything fallback, from the same
    // SdGraph the substrates plan with
    let comm = two_rack_net().comm_cost();
    let inter_cut = |graph: &SdGraph, owners: &[u32]| {
        graph.cut_bytes_where(owners, |a, b| comm.link_class(a, b) == LinkClass::InterRack)
    };
    let sim_graph = SdGraph::build(&sim_sds, Grid::square(400, 8.0).halo);
    let real_graph = SdGraph::build(&real_sds, Grid::square(16, 2.0).halo);

    let mut sim_inter = Series::new("sim-inter-rack-ghost-KB");
    let mut sim_time = Series::new("sim-time-ms");
    let mut sim_migr = Series::new("sim-migrations");
    let mut real_inter = Series::new("real-inter-rack-ghost-KB");
    for &mu in &[0.0, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let run = sim_base
            .clone()
            .with_partition(PartitionSpec::Explicit(sim_owners.clone()))
            .with_lb(LbSchedule::every(4).with_spec(LbSpec::tree(0.0).with_mu(mu)))
            .run_sim();
        let cut = run
            .epoch_traces
            .last()
            .map(|t| t.inter_rack_ghost_bytes_after)
            .unwrap_or_else(|| inter_cut(&sim_graph, &sim_owners));
        sim_inter.push(mu, cut as f64 / 1e3);
        sim_time.push(mu, run.makespan * 1e3);
        sim_migr.push(mu, run.migrations as f64);

        let report = real_base
            .clone()
            .with_partition(PartitionSpec::Explicit(real_owners.clone()))
            .with_lb(LbSchedule::every(2).with_spec(LbSpec::tree(0.0).with_mu(mu)))
            .run_dist();
        let rcut = report
            .epoch_traces
            .last()
            .map(|t| t.inter_rack_ghost_bytes_after)
            .unwrap_or_else(|| inter_cut(&real_graph, &real_owners));
        real_inter.push(mu, rcut as f64 / 1e3);
    }
    fig.series = vec![sim_inter, sim_time, sim_migr, real_inter];
    fig
}

/// Peak capacity overflow over the whole run, in KB: replay the recorded
/// plans backward from the final ownership (the same walk
/// [`RunReport::check_invariants`] asserts with) and report the worst
/// `Σ max(0, used − cap)` any state reaches. Zero when the report carries
/// no memory tables.
fn peak_overflow_kb(report: &RunReport) -> f64 {
    let (Some(caps), Some(fp)) = (&report.memory_bytes, &report.sd_footprint) else {
        return 0.0;
    };
    let overflow = |owners: &[u32]| -> u64 {
        let mut usage = vec![0u64; caps.len()];
        for (sd, &o) in owners.iter().enumerate() {
            usage[o as usize] = usage[o as usize].saturating_add(fp[sd]);
        }
        usage
            .iter()
            .zip(caps.iter())
            .map(|(&used, &cap)| used.saturating_sub(cap))
            .sum()
    };
    let mut owners = report.final_ownership.owners().to_vec();
    let mut peak = overflow(&owners);
    for moves in report.lb_plans.iter().rev() {
        for m in moves {
            owners[m.sd as usize] = m.from;
        }
        peak = peak.max(overflow(&owners));
    }
    peak as f64 / 1e3
}

/// **A10** — memory-aware planning under pressure: the `memory-pressure`
/// library scenario (node 3 twice as fast but capped ~1.5 SD footprints
/// above its strip start) planned by the capacity-blind flat tree vs the
/// hierarchical planner. The flat leg funnels SDs onto the fast node past
/// its capacity — the peak-overflow series quantifies by how much — while
/// the hierarchical capacity gate must hold overflow at exactly zero and
/// still shed load toward the other under-loaded nodes.
pub fn a10_memory_pressure(quick: bool) -> FigData {
    let mut fig = FigData::new(
        "A10 — memory pressure: capacity-blind flat tree vs hierarchical planner \
         (x: 0=flat tree λ=0, 1=hierarchical)",
        "planner",
        "sim time (ms) / migrations / peak capacity overflow (KB)",
    );
    let base = memory_pressure(quick);
    let mut time = Series::new("time-ms");
    let mut migr = Series::new("migrations");
    let mut over = Series::new("peak-overflow-KB");
    for (x, spec) in [
        (0.0, LbSpec::tree(0.0)),
        (1.0, LbSpec::hierarchical(LbSpec::tree(0.0), 0.0)),
    ] {
        let mut sc = base.clone();
        if let Some(lb) = &mut sc.lb {
            lb.spec = spec;
        }
        let run = sc.run_sim();
        time.push(x, run.makespan * 1e3);
        migr.push(x, run.migrations as f64);
        over.push(x, peak_overflow_kb(&run));
    }
    fig.series = vec![time, migr, over];
    fig
}

/// **A10b** — plan time vs cluster size on the plan-only substrate: the
/// synthetic `plan_scale` harness (~100 SDs per rank, 4 ranks/node, 25
/// nodes/rack, 7-period speed skew from a strip start) swept over rank
/// counts through [`ScenarioSweep`] + [`PlanSubstrate`], hierarchical vs
/// flat tree. The hierarchical series must grow near-linearly — that is
/// the subsystem's claim, regressed at fixed scale by the `plan/hier_10k`
/// bench — while the flat planner's global frontier walk goes superlinear.
/// Sweeps run at parallelism 1: plan time is the measured quantity, and
/// concurrent legs would contend for the cores the clock charges.
pub fn a10b_plan_time_scaling(quick: bool) -> FigData {
    let hier_sizes: &[usize] = if quick {
        &[16, 36, 64]
    } else {
        &[1000, 2500, 5000, 10_000]
    };
    // The flat walk is ~quadratic in rank count (the point of the
    // figure), so its full-mode leg stops at 1000 ranks — already ~10 s
    // of pure planning — while the hierarchical leg rides to 10k.
    let flat_sizes: &[usize] = if quick {
        &[16, 36, 64]
    } else {
        &[250, 500, 1000]
    };
    let mut fig = FigData::new(
        "A10b — plan time vs cluster size (plan-only substrate, ~100 SDs/rank)",
        "#ranks",
        "plan time (ms)",
    );
    let leg = |label: &str, sizes: &[usize], spec: LbSpec| -> Series {
        let mut axis = Axis::new("ranks");
        for &n in sizes {
            let mut sc = plan_scale(n);
            if let Some(lb) = &mut sc.lb {
                lb.spec = spec.clone();
            }
            axis = axis.value(format!("{n}"), n as f64, move |_| sc.clone());
        }
        let sweep = ScenarioSweep::new(plan_scale(sizes[0]))
            .axis(axis)
            .with_parallelism(1);
        let mut s = Series::new(label);
        for record in sweep.run_collect(&PlanSubstrate) {
            s.push(
                record.axis_x("ranks").expect("ranks axis"),
                record.makespan * 1e3,
            );
        }
        s
    };
    fig.series = vec![
        leg(
            "hier-plan-ms",
            hier_sizes,
            LbSpec::hierarchical(LbSpec::tree(0.0), 0.0),
        ),
        leg("flat-plan-ms", flat_sizes, LbSpec::tree(0.0)),
    ];
    fig
}

/// **A11** — intra-epoch work stealing vs epoch-level migration: the
/// Chase–Lev row-band stealing path dueled and composed with the LB
/// policies on the real runtime (the simulator has no notion of
/// intra-step scheduling). Four legs per scenario — neither, LB only,
/// stealing only, both — on multi-core re-clusterings of the crack and
/// heterogeneous-cluster scenarios (the library versions pin one core
/// per node, where a band task has no one to steal it).
///
/// Stealing is a pure scheduling change, so every leg's field is
/// asserted bit-identical to the baseline leg's, and the stealing legs
/// must actually exercise the scheduler (nonzero pool steals).
pub fn a11_intra_step_stealing(quick: bool) -> FigData {
    let mut fig = FigData::new(
        "A11 — intra-step stealing vs epoch LB (real runtime, multi-core nodes)",
        "leg (0 = neither, 1 = LB, 2 = stealing, 3 = both)",
        "makespan (ms)",
    );
    let cases: Vec<(&str, Scenario)> = vec![
        (
            "crack",
            propagating_crack(quick).on(ClusterSpec::uniform(4, 4)),
        ),
        (
            "hetero",
            heterogeneous_cluster(quick).on(ClusterSpec::new()
                .node(4, 2.0)
                .node(4, 1.0)
                .node(4, 1.0)
                .node(4, 0.5)),
        ),
    ];
    for (name, base) in cases {
        let mut series = Series::new(name);
        let mut base_field: Option<Vec<f64>> = None;
        for (leg, (lb_on, steal_on)) in [(false, false), (true, false), (false, true), (true, true)]
            .into_iter()
            .enumerate()
        {
            let mut sc = base.clone().with_intra_step_stealing(steal_on);
            if !lb_on {
                sc.lb = None;
            }
            let report = sc.run_dist();
            let field = report.field.as_ref().expect("dist runs carry the field");
            match &base_field {
                None => base_field = Some(field.clone()),
                Some(reference) => assert_eq!(
                    reference, field,
                    "{name} leg {leg}: scheduling must not perturb the field"
                ),
            }
            if steal_on {
                let steals: u64 = report
                    .dist_extras()
                    .expect("real-runtime extras")
                    .pool_steals
                    .iter()
                    .sum();
                assert!(steals > 0, "{name} leg {leg}: no steals observed");
            }
            series.push(leg as f64, report.makespan * 1e3);
        }
        fig.series.push(series);
    }
    fig
}

/// The A12 roster: the incremental policies, the repartitioner alone, and
/// the composed decorator, in the fixed x-axis order of the figure.
/// "repart-only" wraps a tree whose λ gates every incremental move, so
/// the only migrations it ever emits are staged replan diffs.
pub fn a12_policies() -> Vec<(&'static str, LbSpec)> {
    vec![
        ("tree λ=0", LbSpec::tree(0.0)),
        ("greedy-steal", LbSpec::greedy_steal(1)),
        ("hierarchical", LbSpec::hierarchical(LbSpec::tree(0.0), 0.0)),
        (
            "repart-only",
            LbSpec::repartition(LbSpec::tree(1e9), 1.15, 1, u64::MAX),
        ),
        (
            "repart+tree",
            LbSpec::repartition(LbSpec::tree(0.0), 1.15, 1, u64::MAX),
        ),
    ]
}

/// **A12** — cut-aware repartitioning vs incremental balancing: the
/// `cut-drift` library scenario (a decayed, island-riddled ownership on
/// the two-rack cluster plus a propagating crack) planned by every
/// [`a12_policies`] roster entry. Incremental policies can fix the count
/// skew but inherit the islands, so their steady-state inter-rack ghost
/// cut stays high; the drift monitor of [`LbSpec::Repartition`] re-invokes
/// the multilevel partitioner, and every repartitioning leg must land a
/// strictly lower recurring cut — at equal-or-better makespan for at
/// least one of them. Sim leg at `quick` scale, real leg at smoke scale
/// (A8 pattern).
///
/// Two elasticity timelines ride along on **both substrates**, asserting
/// the membership half of the subsystem end to end: `rank-failure` (the
/// evacuating replan must leave the failed rank empty) and
/// `elastic-scale-out` (the joining ranks must end up owning SDs), with
/// the plan sequences bit-identical across substrates under
/// `LbInput::Modeled`.
pub fn a12_repartition(quick: bool) -> FigData {
    let mut fig = FigData::new(
        "A12 — cut-aware repartitioning on the drifted 2-rack start (x: 0=tree λ=0, \
         1=greedy-steal, 2=hierarchical, 3=repart-only, 4=repart+tree)",
        "policy",
        "sim inter-rack ghost KB/step / sim time (ms) / sim replans / real inter-rack ghost KB/step",
    );
    let sim_base = cut_drift(quick);
    let real_base = cut_drift(true);
    let mut sim_cut = Series::new("sim-inter-rack-ghost-KB");
    let mut sim_time = Series::new("sim-time-ms");
    let mut sim_replans = Series::new("sim-replans");
    let mut real_cut = Series::new("real-inter-rack-ghost-KB");
    for (i, (_name, spec)) in a12_policies().into_iter().enumerate() {
        let x = i as f64;
        let mut sc = sim_base.clone();
        if let Some(lb) = &mut sc.lb {
            lb.spec = spec.clone();
        }
        let run = sc.run_sim();
        let trace = run.epoch_traces.last().expect("LB epochs must realize");
        sim_cut.push(x, trace.inter_rack_ghost_bytes_after as f64 / 1e3);
        sim_time.push(x, run.makespan * 1e3);
        sim_replans.push(
            x,
            run.epoch_traces.iter().filter(|t| t.replan).count() as f64,
        );

        let mut rc = real_base.clone();
        if let Some(lb) = &mut rc.lb {
            lb.spec = spec;
        }
        let report = rc.run_dist();
        let rtrace = report.epoch_traces.last().expect("LB epochs must realize");
        real_cut.push(x, rtrace.inter_rack_ghost_bytes_after as f64 / 1e3);
    }
    assert!(
        sim_replans.points[3..].iter().all(|p| p.1 >= 1.0),
        "the drift monitor must fire on the repartitioning legs: {:?}",
        sim_replans.points
    );

    // Elasticity timelines: both substrates, plans asserted identical.
    let mut elastic = Series::new("elastic-SDs (0/1: failed-rank, 2/3: joined-ranks)");
    for (x, sc, check) in [
        (
            0.0,
            rank_failure(true),
            (|counts: &[usize]| counts[3] as f64) as fn(&[usize]) -> f64,
        ),
        (2.0, elastic_scale_out(true), |counts: &[usize]| {
            (counts[2] + counts[3]) as f64
        }),
    ] {
        let real = sc.run_dist();
        let sim = sc.run_sim();
        real.check_invariants();
        sim.check_invariants();
        assert_eq!(
            real.lb_plans, sim.lb_plans,
            "elasticity timeline at x={x}: substrates must plan identically"
        );
        for (offset, report) in [(0.0, &real), (1.0, &sim)] {
            let y = check(&report.final_ownership.counts());
            if x == 0.0 {
                assert_eq!(
                    y, 0.0,
                    "{}: the failed rank must end evacuated",
                    report.substrate
                );
            } else {
                assert!(
                    y > 0.0,
                    "{}: the joined ranks must end up owning SDs",
                    report.substrate
                );
            }
            elastic.push(x + offset, y);
        }
    }
    fig.series = vec![sim_cut, sim_time, sim_replans, real_cut, elastic];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a5b_lb_wins_for_slow_cracks() {
        let fig = a5b_moving_crack(true);
        let pts = &fig.series[0].points;
        let at = |d: f64| pts.iter().find(|p| p.0 == d).unwrap().1;
        assert!(
            at(32.0) > 1.02,
            "a static-ish crack (dwell 32) must favour LB: ratio {}",
            at(32.0)
        );
        assert!(
            at(32.0) > at(4.0),
            "LB gain must grow with dwell: {:?}",
            pts
        );
    }

    #[test]
    fn a1_metis_cuts_less_than_strip_for_many_parts() {
        // For k = 2 a horizontal strip IS the optimal bisection of a
        // square, so parity is acceptable there; the multilevel partition
        // must win once strips become thin (k = 8 on the quick 8x8 SD
        // grid).
        let fig = a1_partition_quality(true);
        let metis = &fig.series[0].points;
        let strip = &fig.series[1].points;
        let at = |pts: &[(f64, f64)], k: f64| pts.iter().find(|p| p.0 == k).map(|p| p.1).unwrap();
        assert!(
            at(metis, 8.0) < at(strip, 8.0),
            "k=8: metis {} vs strip {}",
            at(metis, 8.0),
            at(strip, 8.0)
        );
        assert!(
            at(metis, 2.0) <= at(strip, 2.0) * 1.6,
            "k=2: metis must stay within 1.6x of the optimal strip"
        );
    }

    #[test]
    fn a2_overlap_gain_grows_with_latency() {
        let fig = a2_overlap(true);
        let pts = &fig.series[0].points;
        assert!(
            pts.last().unwrap().1 > pts.first().unwrap().1,
            "{}",
            fig.to_markdown()
        );
        assert!(pts.last().unwrap().1 > 1.05, "{}", fig.to_markdown());
    }

    #[test]
    fn a4_lb_improves_heterogeneous_makespan() {
        let fig = a4_lb_heterogeneous(true);
        let pts = &fig.series[0].points;
        let off = pts[0].1;
        let best_on = pts[1..].iter().map(|p| p.1).fold(f64::MAX, f64::min);
        assert!(best_on < off, "LB should help: off {off} on {best_on}");
    }

    #[test]
    fn a6_contention_is_monotone_and_lb_still_helps() {
        let fig = a6_network_models(true);
        let off = &fig.series[0].points;
        let on = &fig.series[1].points;
        // makespan must not decrease as the model gets more contended
        // (instant -> constant -> shared)
        assert!(off[0].1 <= off[1].1 * (1.0 + 1e-9), "{:?}", off);
        assert!(off[1].1 <= off[2].1 * (1.0 + 1e-9), "{:?}", off);
        // and the balancer must still win under every model
        for (o, w) in off.iter().zip(on) {
            assert!(
                w.1 < o.1,
                "LB must beat static under model {}: {} vs {}",
                o.0,
                w.1,
                o.1
            );
        }
    }

    #[test]
    fn a7_lambda_cuts_inter_rack_bytes_without_hurting_makespan() {
        let fig = a7_comm_aware_lambda(true);
        let inter = &fig.series[0].points;
        let time = &fig.series[2].points;
        assert!(
            inter[0].1 > 0.0,
            "the count-based baseline must cross racks: {inter:?}"
        );
        // inter-rack migration bytes fall monotonically in λ ...
        for w in inter.windows(2) {
            assert!(
                w[1].1 <= w[0].1,
                "inter-rack bytes must not grow with λ: {inter:?}"
            );
        }
        // ... and strictly below the λ=0 baseline once λ bites
        assert!(
            inter.last().unwrap().1 < inter[0].1,
            "λ must cut inter-rack migration bytes: {inter:?}"
        );
        // while the makespan stays within noise of the count-based plan
        let t0 = time[0].1;
        for &(lambda, t) in time {
            assert!(
                t <= t0 * 1.10,
                "λ={lambda} makespan {t} drifted from baseline {t0}"
            );
        }
    }

    #[test]
    fn a8_every_policy_beats_the_static_baseline() {
        // The simulator assertions are deterministic and checked every
        // attempt. The real-runtime leg plans from *measured* wall-clock
        // busy times, and at smoke scale scheduling noise on an
        // oversubscribed machine can flatten the contrast into a no-op
        // plan (same caveat as the dist-level heterogeneous-cluster
        // test), so the migration criterion gets a few attempts.
        let mut last_real = Vec::new();
        for _attempt in 0..3 {
            let fig = a8_policy_comparison(true);
            let time = &fig.series[0].points;
            let real = &fig.series[3].points;
            let no_lb = fig.series[4].points[0].1;
            assert_eq!(time.len(), 5, "all five policy variants must run");
            for (i, &(x, t)) in time.iter().enumerate() {
                assert!(t.is_finite() && t > 0.0, "policy {x} produced time {t}");
                // The strip start on 2:1:2:1 speeds is badly imbalanced,
                // so every policy must recover most of the static
                // penalty. The adaptive decorators may briefly gate while
                // their weights settle, hence the small allowance.
                assert!(
                    t <= no_lb * 1.05,
                    "policy {x} (series idx {i}) lost to no-LB: {t} vs {no_lb}"
                );
                assert!(real[i].1.is_finite(), "real run {x} must record a count");
            }
            let inter = &fig.series[2].points;
            assert!(
                inter.iter().all(|p| p.1.is_finite()),
                "inter-rack bytes must be recorded: {inter:?}"
            );
            // Migration counts must be positive for the ungated policies
            // (indices 1–3: diffusion, greedy-steal, adaptive-λ at its
            // initial λ=0); tree λ=1 legitimately gates everything at
            // smoke scale (wall-clock busy relief is microseconds, the
            // intra-rack link estimate is 100 µs), and adaptive-μ may
            // learn a gating μ from the smoke-scale ghost stalls for the
            // same reason (the A9 caveat).
            last_real = real.clone();
            if real[1..=3].iter().all(|p| p.1 > 0.0) {
                return;
            }
        }
        panic!(
            "ungated policies must migrate in the real runtime in at \
             least one of 3 attempts: {last_real:?}"
        );
    }

    #[test]
    fn a9_mu_cuts_recurring_inter_rack_ghost_traffic() {
        // Simulator leg (deterministic): the steady-state inter-rack
        // ghost cut is monotone non-increasing in μ, strictly below the
        // ghost-blind baseline once μ bites, and the makespan holds
        // within noise across the shaping band (μ ≤ 0.5; μ = 1 maps the
        // freeze boundary and is exempt, like A7's over-large λ).
        // Real leg: wall-clock noise allows plan-level variation, so only
        // the end-to-end claim is asserted, with the A8 retry pattern.
        let mut last_real = Vec::new();
        for _attempt in 0..3 {
            let fig = a9_ghost_aware_mu(true);
            let inter = &fig.series[0].points;
            let time = &fig.series[1].points;
            let migr = &fig.series[2].points;
            assert!(
                inter[0].1 > 0.0,
                "the blind baseline must pay inter-rack ghost traffic: {inter:?}"
            );
            for w in inter.windows(2) {
                assert!(
                    w[1].1 <= w[0].1,
                    "inter-rack ghost cut must not grow with μ: {inter:?}"
                );
            }
            let in_band: Vec<_> = inter.iter().filter(|p| p.0 <= 0.5).collect();
            assert!(
                in_band.last().unwrap().1 < inter[0].1,
                "μ must cut the recurring traffic within the shaping band: {inter:?}"
            );
            let t0 = time[0].1;
            for &(mu, t) in time.iter().filter(|p| p.0 <= 0.5) {
                assert!(
                    t <= t0 * 1.10,
                    "μ={mu} makespan {t} drifted from baseline {t0}"
                );
            }
            for &(mu, m) in migr.iter().filter(|p| p.0 <= 0.5) {
                assert!(m > 0.0, "μ={mu} must keep balancing in the shaping band");
            }
            // real leg: μ-gated runs must not end with more recurring
            // inter-rack traffic than the ghost-blind run
            let real = &fig.series[3].points;
            last_real = real.clone();
            if real.last().unwrap().1 <= real[0].1 {
                return;
            }
        }
        panic!(
            "real runtime: large μ must not leave a worse inter-rack cut \
             in at least one of 3 attempts: {last_real:?}"
        );
    }

    #[test]
    fn a10_hierarchical_holds_the_capacity_line() {
        // Both legs run the same deterministic simulation, so the
        // contrast is exact: the hierarchical planner must never exceed
        // any node's declared capacity (the gate it exists for), while
        // still planning migrations off the slow nodes; the capacity-
        // blind flat leg must overflow at least as much.
        let fig = a10_memory_pressure(true);
        let migr = &fig.series[1].points;
        let over = &fig.series[2].points;
        let flat_over = over[0].1;
        let hier_over = over[1].1;
        assert_eq!(hier_over, 0.0, "hierarchical leg overflowed: {over:?}");
        assert!(
            flat_over >= hier_over,
            "flat must not beat the gated planner on overflow: {over:?}"
        );
        assert!(
            migr[1].1 > 0.0,
            "the capacity gate must not freeze balancing entirely: {migr:?}"
        );
    }

    #[test]
    fn a10b_plan_time_scaling_covers_both_planners() {
        let fig = a10b_plan_time_scaling(true);
        assert_eq!(fig.series.len(), 2);
        for series in &fig.series {
            assert_eq!(series.points.len(), 3, "{}", series.label);
            for &(ranks, ms) in &series.points {
                assert!(
                    ms.is_finite() && ms > 0.0,
                    "{} at {ranks} ranks reported {ms} ms",
                    series.label
                );
            }
        }
    }

    #[test]
    fn a5_lb_improves_crack_makespan() {
        let fig = a5_crack(true);
        let pts = &fig.series[0].points;
        let off = pts[0].1;
        let best_on = pts[1..].iter().map(|p| p.1).fold(f64::MAX, f64::min);
        assert!(best_on < off, "LB should help: off {off} on {best_on}");
    }

    #[test]
    fn a12_repartitioning_heals_the_cut_policies_cannot() {
        // Everything here is deterministic (`LbInput::Modeled` planning on
        // both substrates), so the contrasts are exact.
        let fig = a12_repartition(true);
        let cut = &fig.series[0].points;
        let time = &fig.series[1].points;
        let replans = &fig.series[2].points;
        let real_cut = &fig.series[3].points;
        assert_eq!(cut.len(), 5, "all five roster entries must run");
        // the drift monitor must fire on the repartitioning legs and
        // never on the incremental ones
        for i in 0..3 {
            assert_eq!(replans[i].1, 0.0, "leg {i} cannot replan: {replans:?}");
        }
        for i in 3..5 {
            assert!(replans[i].1 >= 1.0, "leg {i} must replan: {replans:?}");
        }
        // every repartitioning leg lands a strictly lower steady-state
        // inter-rack ghost cut than the best incremental policy ...
        let best_cut = cut[..3].iter().map(|p| p.1).fold(f64::MAX, f64::min);
        let best_time = time[..3].iter().map(|p| p.1).fold(f64::MAX, f64::min);
        for i in 3..5 {
            assert!(
                cut[i].1 < best_cut,
                "leg {i} must beat every incremental cut: {cut:?}"
            );
        }
        // ... and at least one does so at equal-or-better makespan (the
        // headline claim); the composed leg keeps rebalancing against the
        // crack, so its makespan may trail the best incremental one by
        // migration overhead, but never by more than noise
        assert!(
            (3..5).any(|i| cut[i].1 < best_cut && time[i].1 <= best_time),
            "some repartitioning leg must win the cut at equal-or-better \
             makespan: cut {cut:?} time {time:?}"
        );
        assert!(
            time[4].1 <= best_time * 1.10,
            "the composed leg's makespan must stay within noise: {time:?}"
        );
        let best_real = real_cut[..3].iter().map(|p| p.1).fold(f64::MAX, f64::min);
        for i in 3..5 {
            assert!(
                real_cut[i].1 < best_real,
                "real leg {i} must beat every incremental cut: {real_cut:?}"
            );
        }
        // elasticity timelines: the failed rank ends empty, the joined
        // ranks end loaded, on both substrates
        let elastic = &fig.series[4].points;
        assert_eq!(elastic[0].1, 0.0, "real failed-rank SDs: {elastic:?}");
        assert_eq!(elastic[1].1, 0.0, "sim failed-rank SDs: {elastic:?}");
        assert!(elastic[2].1 > 0.0, "real joined-rank SDs: {elastic:?}");
        assert!(elastic[3].1 > 0.0, "sim joined-rank SDs: {elastic:?}");
    }

    #[test]
    fn a11_legs_run_bitwise_with_observable_steals() {
        // The bit-identity and steals>0 assertions live inside the
        // ablation itself; this pins the figure shape.
        let fig = a11_intra_step_stealing(true);
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.points.len(), 4, "four legs per scenario");
        }
    }
}
