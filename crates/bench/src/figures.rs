//! The seven evaluation figures of the paper (§8.1–§8.3).

use crate::figdata::{FigData, Series};
use nlheat_core::balance::iterate_rebalance;
use nlheat_core::ownership::Ownership;
use nlheat_mesh::SdGrid;
use nlheat_model::{ProblemSpec, SerialSolver};
use nlheat_sim::{simulate, SimConfig, VirtualNode};

/// Steps used by every scaling figure (the paper runs N = 20).
fn steps(quick: bool) -> usize {
    if quick {
        3
    } else {
        20
    }
}

/// **Fig. 8** — total numerical error e = Σ_k e_k (eq. 7) vs mesh size
/// h = 1/2ⁿ, n = 2..6, manufactured solution, ε = 8h. Real solver.
pub fn fig8(quick: bool) -> FigData {
    let mut fig = FigData::new(
        "Fig 8 — numerical error vs mesh size h (manufactured solution)",
        "h",
        "total error e = Σ e_k",
    );
    let mut series = Series::new("error");
    let exponents: &[u32] = if quick {
        &[2, 3, 4, 5]
    } else {
        &[2, 3, 4, 5, 6]
    };
    for &n_exp in exponents {
        let n = 1usize << n_exp;
        let parts = ProblemSpec::paper(n).build();
        let mut solver = SerialSolver::manufactured(&parts);
        let acc = solver.run_with_error(steps(quick));
        series.push(1.0 / n as f64, acc.total());
    }
    fig.series.push(series);
    fig
}

/// The SD-grid side lengths of the paper's strong-scaling studies:
/// 1×1, 2×2, 4×4, 8×8 SDs over the fixed mesh.
const STRONG_SD_SIDES: [usize; 4] = [1, 2, 4, 8];

/// **Fig. 9** — strong scaling of the shared-memory asynchronous solver:
/// 400×400 mesh, ε = 8h, 20 steps; speedup vs #SDs for 1/2/4 CPUs
/// (1-CPU baseline). DES substrate.
pub fn fig9(quick: bool) -> FigData {
    let mesh = if quick { 200 } else { 400 };
    let mut fig = FigData::new(
        format!("Fig 9 — strong scaling, shared memory ({mesh}x{mesh} mesh, eps=8h)"),
        "#SDs",
        "speedup vs 1 CPU",
    );
    let times: Vec<Vec<f64>> = [1usize, 2, 4]
        .iter()
        .map(|&cpus| {
            STRONG_SD_SIDES
                .iter()
                .map(|&side| {
                    let cfg = SimConfig::paper(
                        mesh,
                        mesh / side,
                        steps(quick),
                        vec![VirtualNode::with_cores(cpus)],
                    );
                    simulate(&cfg).total_time
                })
                .collect()
        })
        .collect();
    for (ci, &cpus) in [1usize, 2, 4].iter().enumerate() {
        let mut s = Series::new(format!("{cpus}CPU"));
        for (si, &side) in STRONG_SD_SIDES.iter().enumerate() {
            s.push((side * side) as f64, times[0][si] / times[ci][si]);
        }
        fig.series.push(s);
    }
    fig
}

/// **Fig. 10** — weak scaling of the shared-memory solver: SD fixed at
/// 50×50, problem 50n×50n; speedup vs #SDs for 1/2/4 compute units.
pub fn fig10(quick: bool) -> FigData {
    let mut fig = FigData::new(
        "Fig 10 — weak scaling, shared memory (SD = 50x50, mesh = 50n x 50n)",
        "#SDs",
        "speedup vs 1 unit",
    );
    let sides: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        (1..=8).collect()
    };
    for &units in &[1usize, 2, 4] {
        let mut s = Series::new(format!("{units}Node"));
        for &n in &sides {
            let mesh = 50 * n;
            let mk = |cores: usize| {
                SimConfig::paper(mesh, 50, steps(quick), vec![VirtualNode::with_cores(cores)])
            };
            let t1 = simulate(&mk(1)).total_time;
            let tn = simulate(&mk(units)).total_time;
            s.push((n * n) as f64, t1 / tn);
        }
        fig.series.push(s);
    }
    fig
}

/// **Fig. 11** — strong scaling of the distributed solver: 400×400 mesh,
/// 1/2/4 localities (halves/quadrants per §8.3); speedup vs #SDs,
/// 1-node baseline.
pub fn fig11(quick: bool) -> FigData {
    let mesh = if quick { 200 } else { 400 };
    let mut fig = FigData::new(
        format!("Fig 11 — strong scaling, distributed ({mesh}x{mesh} mesh, eps=8h)"),
        "#SDs",
        "speedup vs 1 node",
    );
    let times: Vec<Vec<f64>> = [1usize, 2, 4]
        .iter()
        .map(|&nodes| {
            STRONG_SD_SIDES
                .iter()
                .map(|&side| {
                    let cfg = SimConfig::paper(
                        mesh,
                        mesh / side,
                        steps(quick),
                        (0..nodes).map(|_| VirtualNode::with_cores(1)).collect(),
                    );
                    simulate(&cfg).total_time
                })
                .collect()
        })
        .collect();
    for (ni, &nodes) in [1usize, 2, 4].iter().enumerate() {
        let mut s = Series::new(format!("{nodes}Node"));
        for (si, &side) in STRONG_SD_SIDES.iter().enumerate() {
            s.push((side * side) as f64, times[0][si] / times[ni][si]);
        }
        fig.series.push(s);
    }
    fig
}

/// **Fig. 12** — weak scaling of the distributed solver: SD 50×50,
/// problem 50n×50n, SD distribution via the partitioner.
pub fn fig12(quick: bool) -> FigData {
    let mut fig = FigData::new(
        "Fig 12 — weak scaling, distributed (SD = 50x50, METIS-substitute distribution)",
        "#SDs",
        "speedup vs 1 node",
    );
    let sides: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        (1..=8).collect()
    };
    for &nodes in &[1usize, 2, 4] {
        let mut s = Series::new(format!("{nodes}Node"));
        for &n in &sides {
            let mesh = 50 * n;
            let mk = |k: usize| {
                SimConfig::paper(
                    mesh,
                    50,
                    steps(quick),
                    (0..k).map(|_| VirtualNode::with_cores(1)).collect(),
                )
            };
            let t1 = simulate(&mk(1)).total_time;
            let tn = simulate(&mk(nodes)).total_time;
            s.push((n * n) as f64, t1 / tn);
        }
        fig.series.push(s);
    }
    fig
}

/// **Fig. 13** — distributed scaling with METIS-substitute partitioning:
/// 800×800 mesh, 16×16 SDs of 50×50, 1..16 localities; measured vs
/// optimal speedup.
pub fn fig13(quick: bool) -> FigData {
    let (mesh, max_nodes) = if quick { (400, 8) } else { (800, 16) };
    let mut fig = FigData::new(
        format!("Fig 13 — distributed scaling with METIS-substitute ({mesh}x{mesh}, SD 50x50)"),
        "#nodes",
        "speedup",
    );
    let node_counts: Vec<usize> = (1..=max_nodes).collect();
    let t1 = simulate(&SimConfig::paper(
        mesh,
        50,
        steps(quick),
        vec![VirtualNode::with_cores(1)],
    ))
    .total_time;
    let mut measured = Series::new("Measured");
    let mut optimal = Series::new("Optimal");
    for &k in &node_counts {
        let cfg = SimConfig::paper(
            mesh,
            50,
            steps(quick),
            (0..k).map(|_| VirtualNode::with_cores(1)).collect(),
        );
        measured.push(k as f64, t1 / simulate(&cfg).total_time);
        optimal.push(k as f64, k as f64);
    }
    fig.series.push(measured);
    fig.series.push(optimal);
    fig
}

/// The Fig. 14 experiment output: per-iteration ownership grids plus
/// balance statistics.
#[derive(Debug, Clone)]
pub struct Fig14Output {
    /// Imbalance metric per iteration (max count − min count).
    pub fig: FigData,
    /// ASCII ownership grids, iteration 0 = initial.
    pub grids: Vec<String>,
    /// Per-node SD counts per iteration.
    pub counts: Vec<Vec<usize>>,
}

/// **Fig. 14** — redistribution of 5×5 SDs over 4 symmetric nodes from a
/// highly imbalanced start; Algorithm 1 balances within 3 iterations.
pub fn fig14() -> Fig14Output {
    let sds = SdGrid::new(5, 5, 50);
    // Initial state mirroring the paper: node 0 owns almost everything,
    // the other three hold one corner SD each.
    let mut owners = vec![0u32; 25];
    owners[sds.id(4, 0) as usize] = 1;
    owners[sds.id(0, 4) as usize] = 2;
    owners[sds.id(4, 4) as usize] = 3;
    let own = Ownership::new(sds, owners, 4);

    // Symmetric nodes: busy time proportional to owned SDs.
    let history = iterate_rebalance(&own, 3, |o| {
        o.counts().iter().map(|&c| c.max(1) as f64).collect()
    });
    let mut fig = FigData::new(
        "Fig 14 — load balancing of 5x5 SDs over 4 symmetric nodes",
        "iteration",
        "max-min SD count spread",
    );
    let mut spread = Series::new("spread");
    let mut counts = Vec::new();
    let mut grids = Vec::new();
    for (i, state) in history.iter().enumerate() {
        let c = state.counts();
        let max = *c.iter().max().unwrap() as f64;
        let min = *c.iter().min().unwrap() as f64;
        spread.push(i as f64, max - min);
        counts.push(c);
        grids.push(state.render());
    }
    fig.series.push(spread);
    Fig14Output { fig, grids, counts }
}

/// Crude shape check helpers shared by tests and EXPERIMENTS.md claims.
pub mod shape {
    use crate::figdata::FigData;

    /// Last y of the series named `label`.
    pub fn final_value(fig: &FigData, label: &str) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .and_then(|s| s.points.last())
            .map(|&(_, y)| y)
            .unwrap_or(f64::NAN)
    }

    /// True if the series' y values are non-increasing.
    pub fn decreasing(fig: &FigData, label: &str) -> bool {
        let s = fig
            .series
            .iter()
            .find(|s| s.label == label)
            .expect("series");
        s.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_error_decreases_with_h() {
        let fig = fig8(true);
        assert!(shape::decreasing(&fig, "error"), "{}", fig.to_markdown());
    }

    #[test]
    fn fig9_saturates_at_cpu_count() {
        let fig = fig9(true);
        // 1CPU flat at 1
        for &(_, y) in &fig.series[0].points {
            assert!((y - 1.0).abs() < 1e-9);
        }
        // 4CPU approaches 4 at 64 SDs, stays ≈1 at 1 SD
        let four = &fig.series[2];
        assert!((four.points[0].1 - 1.0).abs() < 0.1);
        assert!(four.points[3].1 > 2.5, "{}", fig.to_markdown());
    }

    #[test]
    fn fig11_distributed_strong_shape() {
        let fig = fig11(true);
        let four = &fig.series[2];
        assert!(four.points[0].1 <= 1.2, "1 SD cannot scale");
        assert!(
            four.points[3].1 > 3.0,
            "64 SDs over 4 nodes: {}",
            fig.to_markdown()
        );
    }

    #[test]
    fn fig13_near_linear() {
        let fig = fig13(true);
        let m = shape::final_value(&fig, "Measured");
        assert!(m > 6.0, "8-node speedup {m} (quick mode)");
    }

    #[test]
    fn fig14_balances_in_three_iterations() {
        let out = fig14();
        let last = out.counts.last().unwrap();
        let spread = last.iter().max().unwrap() - last.iter().min().unwrap();
        assert!(
            spread <= 2,
            "final counts {last:?}\n{}",
            out.grids.last().unwrap()
        );
        assert_eq!(out.grids.len(), out.counts.len());
    }
}
