//! Two-way partitioning: greedy graph growing + FM-style refinement,
//! wrapped in the multilevel V-cycle.

use crate::coarsen::coarsen_to;
use crate::graph::Csr;
use rand::Rng;

/// Cut weight of a bisection.
pub fn bisection_cut(g: &Csr, parts: &[u8]) -> i64 {
    let mut cut = 0;
    for v in 0..g.n() as u32 {
        for (u, w) in g.neighbors(v) {
            if u > v && parts[u as usize] != parts[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Greedy graph growing: grow part 0 from a seed until it reaches
/// `target0` weight; repeat for `tries` seeds and keep the lowest cut.
pub fn grow_bisection(g: &Csr, target0: i64, rng: &mut impl Rng, tries: usize) -> Vec<u8> {
    let n = g.n();
    assert!(n >= 2, "bisection needs at least two vertices");
    let mut best: Option<(i64, Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let mut parts = vec![1u8; n];
        let mut w0 = 0i64;
        // connection weight of each unassigned vertex to the grown region
        let mut conn = vec![0i64; n];
        let mut in_region = vec![false; n];
        let mut seed = rng.gen_range(0..n) as u32;
        while w0 < target0 && w0 < g.total_vwgt() {
            // pick the frontier vertex with max connection (greedy), or the
            // current seed when the frontier is empty (disconnected graph /
            // fresh start)
            let pick = (0..n as u32)
                .filter(|&v| !in_region[v as usize] && conn[v as usize] > 0)
                .max_by_key(|&v| (conn[v as usize], std::cmp::Reverse(v)))
                .unwrap_or({
                    // find any unassigned vertex starting from `seed`
                    let mut s = seed;
                    while in_region[s as usize] {
                        s = (s + 1) % n as u32;
                    }
                    s
                });
            in_region[pick as usize] = true;
            parts[pick as usize] = 0;
            w0 += g.vwgt[pick as usize];
            for (u, w) in g.neighbors(pick) {
                if !in_region[u as usize] {
                    conn[u as usize] += w;
                }
            }
            seed = pick;
        }
        let cut = bisection_cut(g, &parts);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, parts));
        }
    }
    best.unwrap().1
}

/// FM-style boundary refinement for a bisection with incremental gain
/// updates. Moves are accepted when they reduce the cut (or keep it equal
/// while improving balance) and keep part 0's weight within
/// `target0 ± slack`.
pub fn refine_bisection(g: &Csr, parts: &mut [u8], target0: i64, slack: i64, max_passes: u32) {
    let n = g.n();
    let mut w0: i64 = (0..n).filter(|&v| parts[v] == 0).map(|v| g.vwgt[v]).sum();
    for _pass in 0..max_passes {
        // gain(v): cut reduction if v switches sides
        let mut gain = vec![0i64; n];
        for v in 0..n as u32 {
            for (u, w) in g.neighbors(v) {
                if parts[u as usize] == parts[v as usize] {
                    gain[v as usize] -= w;
                } else {
                    gain[v as usize] += w;
                }
            }
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(gain[v as usize]));
        let mut moved_any = false;
        for &v in &order {
            // Re-read the (incrementally updated) gain: earlier moves in
            // this pass may have made v attractive or useless.
            let gv = gain[v as usize];
            if gv < 0 {
                continue;
            }
            let vw = g.vwgt[v as usize];
            let from0 = parts[v as usize] == 0;
            let new_w0 = if from0 { w0 - vw } else { w0 + vw };
            let balance_ok = (new_w0 - target0).abs() <= slack;
            let improves_balance = (new_w0 - target0).abs() < (w0 - target0).abs();
            if !balance_ok || (gv == 0 && !improves_balance) {
                continue;
            }
            // apply the move
            parts[v as usize] ^= 1;
            w0 = new_w0;
            moved_any = true;
            gain[v as usize] = -gv;
            for (u, w) in g.neighbors(v) {
                if parts[u as usize] == parts[v as usize] {
                    // edge became internal
                    gain[u as usize] -= 2 * w;
                } else {
                    gain[u as usize] += 2 * w;
                }
            }
        }
        if !moved_any {
            break;
        }
    }
}

/// Multilevel bisection of `g` with part 0 receiving roughly `frac0` of the
/// total vertex weight.
pub fn multilevel_bisection(g: &Csr, frac0: f64, rng: &mut impl Rng) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&frac0));
    let total = g.total_vwgt();
    let target0 = (total as f64 * frac0).round() as i64;
    let max_vwgt = g.vwgt.iter().copied().max().unwrap_or(1);
    let slack = max_vwgt.max((total as f64 * 0.02).ceil() as i64);

    if g.n() < 2 {
        return vec![0; g.n()];
    }
    let levels = coarsen_to(g, 40, rng);
    let coarsest = levels.last().map_or(g, |l| &l.graph);
    let mut parts = grow_bisection(coarsest, target0, rng, 8);
    refine_bisection(coarsest, &mut parts, target0, slack, 8);
    // project back through the chain, refining at every level
    for i in (0..levels.len()).rev() {
        let finer: &Csr = if i == 0 { g } else { &levels[i - 1].graph };
        let map = &levels[i].map;
        let mut fine_parts = vec![0u8; finer.n()];
        for v in 0..finer.n() {
            fine_parts[v] = parts[map[v] as usize];
        }
        parts = fine_parts;
        refine_bisection(finer, &mut parts, target0, slack, 8);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_graph(w: usize, h: usize) -> Csr {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        Csr::from_edges(w * h, &edges, vec![1; w * h])
    }

    fn part_weights(g: &Csr, parts: &[u8]) -> (i64, i64) {
        let mut w = (0, 0);
        for (v, &side) in parts.iter().enumerate() {
            if side == 0 {
                w.0 += g.vwgt[v];
            } else {
                w.1 += g.vwgt[v];
            }
        }
        w
    }

    #[test]
    fn grow_reaches_target_weight() {
        let g = grid_graph(8, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let parts = grow_bisection(&g, 32, &mut rng, 4);
        let (w0, w1) = part_weights(&g, &parts);
        assert_eq!(w0 + w1, 64);
        assert!((30..=36).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn refine_reduces_or_keeps_cut() {
        let g = grid_graph(8, 8);
        // deliberately bad start: checkerboard
        let mut parts: Vec<u8> = (0..64).map(|v| ((v / 8 + v % 8) % 2) as u8).collect();
        let before = bisection_cut(&g, &parts);
        refine_bisection(&g, &mut parts, 32, 4, 16);
        let after = bisection_cut(&g, &parts);
        // (no RNG needed: refinement is deterministic)
        assert!(after <= before);
        assert!(
            after < before / 2,
            "checkerboard must improve a lot: {before} -> {after}"
        );
        let (w0, _) = part_weights(&g, &parts);
        assert!((28..=36).contains(&w0), "balance kept: {w0}");
    }

    #[test]
    fn multilevel_bisection_on_grid_is_good() {
        // Optimal bisection of a 10x10 grid graph cuts 10 unit edges.
        let g = grid_graph(10, 10);
        let mut rng = StdRng::seed_from_u64(42);
        let parts = multilevel_bisection(&g, 0.5, &mut rng);
        let cut = bisection_cut(&g, &parts);
        assert!(cut <= 14, "cut {cut} too far from optimal 10");
        let (w0, w1) = part_weights(&g, &parts);
        assert!((w0 - w1).abs() <= 10, "weights {w0}/{w1}");
    }

    #[test]
    fn unbalanced_fraction_respected() {
        let g = grid_graph(8, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let parts = multilevel_bisection(&g, 0.25, &mut rng);
        let (w0, _) = part_weights(&g, &parts);
        assert!((12..=20).contains(&w0), "w0 = {w0}, target 16");
    }

    #[test]
    fn both_sides_nonempty() {
        let g = grid_graph(6, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let parts = multilevel_bisection(&g, 0.5, &mut rng);
        assert!(parts.contains(&0));
        assert!(parts.contains(&1));
    }

    #[test]
    fn bisection_deterministic_for_seed() {
        let g = grid_graph(9, 9);
        let a = multilevel_bisection(&g, 0.5, &mut StdRng::seed_from_u64(17));
        let b = multilevel_bisection(&g, 0.5, &mut StdRng::seed_from_u64(17));
        assert_eq!(a, b);
    }
}
